#include <gtest/gtest.h>

#include "protocol/sx_lock_table.h"

namespace nonserial {
namespace {

TEST(SxLockTableTest, SharedLocksCompatible) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  EXPECT_TRUE(table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_TRUE(table.TryAcquire(2, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_TRUE(table.HoldsShared(1, 0));
  EXPECT_TRUE(table.HoldsShared(2, 0));
}

TEST(SxLockTableTest, ExclusiveBlocksShared) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_FALSE(table.TryAcquire(2, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_EQ(conflicts, (std::vector<int>{1}));
}

TEST(SxLockTableTest, SharedBlocksExclusive) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts));
  ASSERT_TRUE(table.TryAcquire(2, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_FALSE(
      table.TryAcquire(3, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_EQ(conflicts.size(), 2u);
}

TEST(SxLockTableTest, UpgradeSucceedsForSoleSharedHolder) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_TRUE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_TRUE(table.HoldsExclusive(1, 0));
}

TEST(SxLockTableTest, UpgradeFailsWithOtherSharedHolders) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts));
  ASSERT_TRUE(table.TryAcquire(2, 0, SxLockTable::Mode::kShared, &conflicts));
  EXPECT_FALSE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_EQ(conflicts, (std::vector<int>{2}));
}

TEST(SxLockTableTest, ReacquireIsIdempotent) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_TRUE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  EXPECT_TRUE(table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts));
}

TEST(SxLockTableTest, ReleaseFreesKey) {
  SxLockTable table(1);
  std::vector<int> conflicts;
  ASSERT_TRUE(
      table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  table.Release(1, 0);
  EXPECT_FALSE(table.HoldsExclusive(1, 0));
  EXPECT_TRUE(table.TryAcquire(2, 0, SxLockTable::Mode::kShared, &conflicts));
}

TEST(SxLockTableTest, ReleaseAllReturnsAffectedKeys) {
  SxLockTable table(3);
  std::vector<int> conflicts;
  table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts);
  table.TryAcquire(1, 2, SxLockTable::Mode::kExclusive, &conflicts);
  std::vector<int> affected = table.ReleaseAll(1);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_FALSE(table.HoldsShared(1, 0));
  EXPECT_FALSE(table.HoldsExclusive(1, 2));
  EXPECT_TRUE(table.ReleaseAll(1).empty());
}

TEST(SxLockTableTest, KeysHeldByTracksBothModes) {
  SxLockTable table(3);
  std::vector<int> conflicts;
  table.TryAcquire(1, 0, SxLockTable::Mode::kShared, &conflicts);
  table.TryAcquire(1, 1, SxLockTable::Mode::kExclusive, &conflicts);
  EXPECT_EQ(table.KeysHeldBy(1), (std::vector<int>{0, 1}));
  EXPECT_TRUE(table.KeysHeldBy(2).empty());
}

}  // namespace
}  // namespace nonserial
