#include "predicate/eval_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "predicate/predicate.h"

namespace nonserial {
namespace {

// x=0, y=1, z=2 with a range clause per entity plus linking clauses —
// the shape the protocol's input constraints take.
Predicate TestPredicate() {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  p.AddClause(Clause({EntityVsConst(1, CompareOp::kLe, 100)}));
  p.AddClause(Clause({EntityVsEntity(0, CompareOp::kLe, 1),
                      EntityVsConst(0, CompareOp::kLe, 50)}));
  p.AddClause(Clause({EntityVsEntity(1, CompareOp::kLt, 2)}));
  return p;
}

TEST(EvalCacheTest, MemoizedAgreesWithPlainEvalOnRandomValues) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    ValueVector values = {rng.UniformInt(-20, 120), rng.UniformInt(-20, 120),
                          rng.UniformInt(-20, 120)};
    EXPECT_EQ(cached.Eval(predicate, values), predicate.Eval(values));
    for (int c = 0; c < cached.num_clauses(); ++c) {
      EXPECT_EQ(cached.EvalClause(predicate, c, values),
                predicate.clauses()[c].Eval(values));
    }
  }
}

TEST(EvalCacheTest, SecondProbeWithSameValuesHits) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  EXPECT_TRUE(cached.EvalClause(predicate, 0, values));
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_TRUE(cached.EvalClause(predicate, 0, values));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCacheTest, EpochBumpInvalidatesEntriesOverThatEntity) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  // Clause 3 is y < z (entities 1, 2); prime the cache.
  EXPECT_TRUE(cached.EvalClause(predicate, 3, values));
  // A version install on y ages the entry; the next probe replaces it and
  // counts an invalidation (the recomputed result is still correct).
  cache.BumpEntity(1);
  EXPECT_TRUE(cached.EvalClause(predicate, 3, values));
  EvalCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.epoch_bumps, 1);
  // The refreshed entry carries the new epoch: hits again.
  EXPECT_TRUE(cached.EvalClause(predicate, 3, values));
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(EvalCacheTest, BumpOfUnrelatedEntityKeepsEntriesFresh) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  EXPECT_TRUE(cached.EvalClause(predicate, 3, values));  // Over y, z.
  cache.BumpEntity(0);  // x is not in clause 3's object.
  EXPECT_TRUE(cached.EvalClause(predicate, 3, values));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().invalidations, 0);
}

TEST(EvalCacheTest, InvalidateAllAgesEveryEntry) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  for (int c = 0; c < cached.num_clauses(); ++c) {
    cached.EvalClause(predicate, c, values);
  }
  cache.InvalidateAll();
  for (int c = 0; c < cached.num_clauses(); ++c) {
    EXPECT_EQ(cached.EvalClause(predicate, c, values),
              predicate.clauses()[c].Eval(values));
  }
  EvalCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.invalidations, cached.num_clauses());
}

TEST(EvalCacheTest, OutOfRangeEntityBumpInvalidatesConservatively) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  cached.EvalClause(predicate, 0, values);
  cache.BumpEntity(999);  // Beyond the epoch table: global bump.
  cached.EvalClause(predicate, 0, values);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(EvalCacheTest, MirrorsCountersIntoProtocolMetrics) {
  EvalCache cache(3);
  ProtocolMetrics metrics;
  cache.SetMetrics(&metrics);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  cached.EvalClause(predicate, 0, values);
  cached.EvalClause(predicate, 0, values);
  cache.BumpEntity(0);
  cached.EvalClause(predicate, 0, values);
  EXPECT_EQ(metrics.cache_hits.value(), 1);
  EXPECT_EQ(metrics.cache_misses.value(), 2);
  EXPECT_EQ(metrics.cache_invalidations.value(), 1);
}

TEST(EvalCacheTest, ClearDropsEntriesAndCounters) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  cached.EvalClause(predicate, 0, values);
  cached.EvalClause(predicate, 0, values);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(EvalCacheStripeTest, StripeAgreesWithScalarOnRandomValues) {
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    ValueVector values = {rng.UniformInt(-20, 120), rng.UniformInt(-20, 120),
                          rng.UniformInt(-20, 120)};
    std::vector<Value> stripe;
    for (int i = 0; i < 9; ++i) stripe.push_back(rng.UniformInt(-20, 120));
    for (int c = 0; c < cached.num_clauses(); ++c) {
      for (EntityId striped : cached.ClauseEntities(c)) {
        std::vector<uint8_t> out(stripe.size());
        cached.EvalClauseStripe(predicate, c, values, striped, stripe.data(),
                                static_cast<int32_t>(stripe.size()),
                                out.data());
        ValueVector probe = values;
        for (size_t i = 0; i < stripe.size(); ++i) {
          probe[striped] = stripe[i];
          EXPECT_EQ(out[i] != 0, predicate.clauses()[c].Eval(probe));
        }
      }
    }
  }
}

TEST(EvalCacheStripeTest, StripeAndScalarShareEntries) {
  // The batch path must produce the exact keys of the scalar path: entries
  // a scalar evaluation inserted answer stripe probes and vice versa.
  EvalCache cache(3);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  ValueVector values = {10, 20, 30};
  const std::vector<Value> stripe = {5, 10, 15};
  // Scalar inserts for y = 5, 10, 15 on clause 3 (y < z).
  for (Value y : stripe) {
    ValueVector probe = values;
    probe[1] = y;
    cached.EvalClause(predicate, 3, probe);
  }
  EXPECT_EQ(cache.stats().misses, 3);
  std::vector<uint8_t> out(stripe.size());
  cached.EvalClauseStripe(predicate, 3, values, /*striped_entity=*/1,
                          stripe.data(), 3, out.data());
  EXPECT_EQ(cache.stats().misses, 3) << "stripe probe missed scalar entries";
  EXPECT_EQ(cache.stats().hits, 3);
  // And the reverse: a fresh stripe inserts entries the scalar path hits.
  const std::vector<Value> fresh = {40, 45};
  cached.EvalClauseStripe(predicate, 3, values, 1, fresh.data(), 2,
                          out.data());
  EXPECT_EQ(cache.stats().misses, 5);
  ValueVector probe = values;
  probe[1] = 40;
  cached.EvalClause(predicate, 3, probe);
  EXPECT_EQ(cache.stats().hits, 4);
  EXPECT_EQ(cache.stats().misses, 5);
}

// Regression: EnsureEntities used to swap the epoch array non-atomically,
// yet the parallel driver reaches it while verifier threads probe the
// cache. The table is now published through an atomic pointer with retired
// tables kept alive. Concurrent growers, bumpers, and evaluators must not
// crash or corrupt results (the TSan leg of scripts/ci.sh checks the data
// races this test provokes).
TEST(EvalCacheConcurrencyTest, ConcurrentGrowthProbesAndBumps) {
  EvalCache cache(1);
  Predicate predicate = TestPredicate();
  CachedPredicate cached(predicate, &cache);
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  // Growers: ratchet the epoch table upward while everything else runs.
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&cache, g] {
      for (int n = 1; n <= 2000; ++n) cache.EnsureEntities(n + g);
    });
  }
  // Bumpers: invalidate entities, racing the growth copies.
  threads.emplace_back([&cache, &done] {
    int e = 0;
    while (!done.load(std::memory_order_acquire)) {
      cache.BumpEntity(e++ % 3);
    }
  });
  // Evaluators: memoized results must stay correct throughout.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cached, &predicate, t] {
      Rng rng(100 + t);
      for (int trial = 0; trial < 2000; ++trial) {
        ValueVector values = {rng.UniformInt(-20, 120),
                              rng.UniformInt(-20, 120),
                              rng.UniformInt(-20, 120)};
        ASSERT_EQ(cached.Eval(predicate, values), predicate.Eval(values));
      }
    });
  }
  threads[0].join();
  threads[1].join();
  done.store(true, std::memory_order_release);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
}

TEST(EvalCacheTest, StructurallyIdenticalPredicatesShareEntries) {
  // Two transactions with the same specification predicate: the second's
  // evaluations hit the entries the first's populated (keying is by clause
  // structure + values, not by object identity).
  EvalCache cache(3);
  Predicate a = TestPredicate();
  Predicate b = TestPredicate();
  CachedPredicate cached_a(a, &cache);
  CachedPredicate cached_b(b, &cache);
  ValueVector values = {10, 20, 30};
  cached_a.Eval(a, values);
  int64_t misses_after_a = cache.stats().misses;
  cached_b.Eval(b, values);
  EXPECT_EQ(cache.stats().misses, misses_after_a);
  EXPECT_GT(cache.stats().hits, 0);
}

}  // namespace
}  // namespace nonserial
