// Hostile-input fuzz for the session wire protocol: the decoder and the
// live server must treat every byte sequence as untrusted. Invariants:
//  - the codec never crashes, loops, or over-reads on any input;
//  - a truncated frame is kNeedMore, a damaged frame is kCorrupt, and a
//    single flipped bit can never pass as a valid frame;
//  - on a live server, a corrupt frame costs exactly the connection that
//    sent it; a CRC-valid-but-malformed body costs one error response; a
//    concurrent well-behaved session is never disturbed either way.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace nonserial {
namespace {

// --- deterministic request generator ---------------------------------------

Predicate RandomPredicate(std::mt19937* rng) {
  std::uniform_int_distribution<int> small(0, 3);
  std::vector<Clause> clauses;
  int num_clauses = small(*rng);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Atom> atoms;
    int num_atoms = 1 + small(*rng);
    for (int a = 0; a < num_atoms; ++a) {
      Atom atom;
      atom.lhs = (*rng)() % 2 == 0 ? Term::Entity(small(*rng))
                                   : Term::Constant(small(*rng));
      atom.op = static_cast<CompareOp>((*rng)() % 6);
      atom.rhs = (*rng)() % 2 == 0 ? Term::Entity(small(*rng))
                                   : Term::Constant((*rng)() % 100);
      atoms.push_back(atom);
    }
    clauses.emplace_back(std::move(atoms));
  }
  return Predicate(std::move(clauses));
}

wire::Request RandomRequest(std::mt19937* rng) {
  static const wire::MsgType kTypes[] = {
      wire::MsgType::kBegin,  wire::MsgType::kRead,
      wire::MsgType::kWrite,  wire::MsgType::kPredicate,
      wire::MsgType::kCommit, wire::MsgType::kAbort,
      wire::MsgType::kPing,
  };
  wire::Request request;
  request.type = kTypes[(*rng)() % 7];
  switch (request.type) {
    case wire::MsgType::kBegin: {
      request.name = "tx" + std::to_string((*rng)() % 1000);
      request.use_staged = (*rng)() % 2 == 0;
      int num_preds = static_cast<int>((*rng)() % 4);
      for (int i = 0; i < num_preds; ++i) {
        request.predecessors.push_back(static_cast<int>((*rng)() % 64));
      }
      if (!request.use_staged) {
        request.input = RandomPredicate(rng);
        request.output = RandomPredicate(rng);
      }
      break;
    }
    case wire::MsgType::kRead:
      request.entity = static_cast<EntityId>((*rng)() % 64);
      break;
    case wire::MsgType::kWrite:
      request.entity = static_cast<EntityId>((*rng)() % 64);
      request.value = static_cast<Value>((*rng)()) - (1 << 30);
      break;
    case wire::MsgType::kPredicate:
      request.input = RandomPredicate(rng);
      request.output = RandomPredicate(rng);
      break;
    case wire::MsgType::kPing:
      request.value = static_cast<Value>((*rng)());
      break;
    default:
      break;
  }
  return request;
}

// --- codec properties -------------------------------------------------------

TEST(WireCodecFuzzTest, RandomRequestsRoundTrip) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    wire::Request request = RandomRequest(&rng);
    std::string frame = wire::EncodeRequest(request);
    wire::DecodedFrame decoded = wire::DecodeFrame(frame.data(), frame.size());
    ASSERT_EQ(decoded.status, wire::FrameStatus::kOk) << decoded.error;
    ASSERT_EQ(decoded.frame_bytes, frame.size());
    ASSERT_EQ(decoded.type, request.type);
    wire::Request round;
    Status s = wire::DecodeRequest(decoded.type, decoded.payload, &round);
    ASSERT_TRUE(s.ok()) << s.ToString();
    // Re-encoding the decoded request must reproduce the frame bit-exactly
    // (a stronger check than field equality, and it needs no operator==).
    EXPECT_EQ(wire::EncodeRequest(round), frame);
  }
}

TEST(WireCodecFuzzTest, ResponsesRoundTrip) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    wire::Response response;
    response.code = static_cast<StatusCode>(
        rng() % (static_cast<int>(StatusCode::kResourceExhausted) + 1));
    response.value = static_cast<Value>(rng()) - (1 << 30);
    if (rng() % 2 == 0) response.message = "error detail " + std::to_string(rng() % 100);
    std::string frame = wire::EncodeResponse(response);
    wire::DecodedFrame decoded = wire::DecodeFrame(frame.data(), frame.size());
    ASSERT_EQ(decoded.status, wire::FrameStatus::kOk);
    ASSERT_EQ(decoded.type, wire::MsgType::kResponse);
    wire::Response round;
    ASSERT_TRUE(wire::DecodeResponse(decoded.payload, &round).ok());
    EXPECT_EQ(round.code, response.code);
    EXPECT_EQ(round.value, response.value);
    EXPECT_EQ(round.message, response.message);
  }
}

TEST(WireCodecFuzzTest, EveryTruncationNeedsMore) {
  std::mt19937 rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    std::string frame = wire::EncodeRequest(RandomRequest(&rng));
    for (size_t len = 0; len < frame.size(); ++len) {
      wire::DecodedFrame decoded = wire::DecodeFrame(frame.data(), len);
      ASSERT_EQ(decoded.status, wire::FrameStatus::kNeedMore)
          << "prefix of " << len << "/" << frame.size()
          << " bytes decoded as something other than kNeedMore";
    }
  }
}

TEST(WireCodecFuzzTest, EverySingleBitFlipIsRejected) {
  std::mt19937 rng(13);
  for (int iter = 0; iter < 20; ++iter) {
    std::string frame = wire::EncodeRequest(RandomRequest(&rng));
    for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
      std::string damaged = frame;
      damaged[bit / 8] = static_cast<char>(
          static_cast<uint8_t>(damaged[bit / 8]) ^ (1u << (bit % 8)));
      wire::DecodedFrame decoded =
          wire::DecodeFrame(damaged.data(), damaged.size());
      // A flip in the length field may leave the frame looking longer than
      // the buffer (kNeedMore); every other flip must fail the magic or
      // CRC check. Passing as kOk would be a codec hole.
      ASSERT_NE(decoded.status, wire::FrameStatus::kOk)
          << "bit " << bit << " flip went undetected";
    }
  }
}

TEST(WireCodecFuzzTest, OversizedLengthFieldIsCorrupt) {
  std::string frame = wire::EncodeRequest(wire::Request{});  // Any valid frame.
  uint32_t huge = wire::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) frame[5 + i] = static_cast<char>(huge >> (8 * i));
  wire::DecodedFrame decoded = wire::DecodeFrame(frame.data(), frame.size());
  EXPECT_EQ(decoded.status, wire::FrameStatus::kCorrupt);
}

TEST(WireCodecFuzzTest, RandomGarbageNeverDecodesAsValid) {
  std::mt19937 rng(17);
  for (int iter = 0; iter < 2000; ++iter) {
    size_t len = rng() % 256;
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    wire::DecodedFrame decoded = wire::DecodeFrame(garbage.data(), len);
    // Random bytes essentially never carry the magic AND a matching CRC;
    // with a fixed seed this is deterministic. Mostly this asserts "no
    // crash, no over-read" under ASan.
    EXPECT_NE(decoded.status, wire::FrameStatus::kOk);
  }
}

TEST(WireCodecFuzzTest, RandomPayloadsNeverCrashRequestDecoding) {
  std::mt19937 rng(19);
  static const wire::MsgType kTypes[] = {
      wire::MsgType::kBegin,  wire::MsgType::kRead,
      wire::MsgType::kWrite,  wire::MsgType::kPredicate,
      wire::MsgType::kCommit, wire::MsgType::kAbort,
      wire::MsgType::kPing,   wire::MsgType::kResponse,
  };
  for (int iter = 0; iter < 5000; ++iter) {
    size_t len = rng() % 128;
    std::string payload(len, '\0');
    for (char& c : payload) c = static_cast<char>(rng());
    wire::Request request;
    // Must return a Status for every input, valid or not.
    wire::DecodeRequest(kTypes[rng() % 8], payload, &request).ok();
    wire::Response response;
    wire::DecodeResponse(payload, &response).ok();
  }
}

// --- live-server hostility ---------------------------------------------------

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.initial = {50, 50};
    options.protocol.metrics = &metrics_;
    options.poll_us = 100;
    options.max_poll_us = 1'000;
    engine_ = std::make_unique<Engine>(options);
    ServerOptions server_options;
    server_options.num_workers = 2;
    server_ = std::make_unique<SessionServer>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    engine_->Shutdown();
    server_->Stop();
  }

  Status Connect(Client* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  ProtocolMetrics metrics_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<SessionServer> server_;
};

TEST_F(ServerFuzzTest, CorruptFrameCostsOnlyItsOwnConnection) {
  Client hostile;
  ASSERT_TRUE(Connect(&hostile).ok());
  // A well-behaved session opens a transaction first.
  Client good;
  ASSERT_TRUE(Connect(&good).ok());
  StatusOr<int> begun = good.Begin("good", {}, Predicate::True(),
                                   Predicate::True());
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  ASSERT_TRUE(good.Write(0, 61).ok());

  // Valid frame with one corrupted payload byte: CRC mismatch.
  std::string frame = wire::EncodeRequest([] {
    wire::Request r;
    r.type = wire::MsgType::kPing;
    r.value = 42;
    return r;
  }());
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  ASSERT_TRUE(hostile.SendRaw(frame).ok());
  // The server answers with an error and/or hard-closes; it never hangs
  // and never crashes.
  StatusOr<wire::Response> response = hostile.ReadResponse();
  if (response.ok()) {
    EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
    // After the error response the connection is torn down.
    EXPECT_EQ(hostile.ReadResponse().status().code(), StatusCode::kAborted);
  } else {
    EXPECT_EQ(response.status().code(), StatusCode::kAborted);
  }

  // The other session never noticed.
  ASSERT_TRUE(good.Commit().ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(),
            (ValueVector{61, 50}));
  EXPECT_GE(metrics_.server_wire_errors.value(), 1);
}

TEST_F(ServerFuzzTest, MalformedBodySurvivesTheStream) {
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  // CRC-valid frame whose body is garbage for its type: kRead wants 4
  // bytes, this carries none. One error response; the stream lives on.
  ASSERT_TRUE(
      client.SendRaw(wire::EncodeFrame(wire::MsgType::kRead, "")).ok());
  StatusOr<wire::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  // Same connection, valid request: still served.
  StatusOr<Value> pong = client.Ping(1234);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, 1234);
  EXPECT_GE(metrics_.server_wire_errors.value(), 1);
}

TEST_F(ServerFuzzTest, RandomGarbageStreamsNeverCrashTheServer) {
  std::mt19937 rng(20260808);
  for (int conn = 0; conn < 16; ++conn) {
    Client hostile;
    ASSERT_TRUE(Connect(&hostile).ok());
    size_t len = 1 + rng() % 512;
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    if (!hostile.SendRaw(garbage).ok()) continue;
    // Whatever comes back (error response, close, or nothing parseable),
    // the client call returns and the server stays up.
    hostile.ReadResponse();
  }
  // Proof of life after the onslaught, on a fresh connection.
  Client good;
  ASSERT_TRUE(Connect(&good).ok());
  StatusOr<Value> pong = good.Ping(7);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, 7);
}

TEST_F(ServerFuzzTest, TruncatedFrameThenCompletionIsServed) {
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  wire::Request ping;
  ping.type = wire::MsgType::kPing;
  ping.value = 99;
  std::string frame = wire::EncodeRequest(ping);
  // Drip the frame in two halves: the server must buffer, not reject.
  ASSERT_TRUE(client.SendRaw(frame.substr(0, frame.size() / 2)).ok());
  ASSERT_TRUE(client.SendRaw(frame.substr(frame.size() / 2)).ok());
  StatusOr<wire::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk);
  EXPECT_EQ(response->value, 99);
}

TEST_F(ServerFuzzTest, PipelinedRequestsAnswerInOrder) {
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  // Several pings in one write: per-connection FIFO must answer in order.
  std::string burst;
  for (Value v = 0; v < 8; ++v) {
    wire::Request ping;
    ping.type = wire::MsgType::kPing;
    ping.value = 100 + v;
    burst += wire::EncodeRequest(ping);
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (Value v = 0; v < 8; ++v) {
    StatusOr<wire::Response> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->value, 100 + v);
  }
}

}  // namespace
}  // namespace nonserial
