#include "graph/incremental_digraph.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/digraph.h"

namespace nonserial {
namespace {

TEST(IncrementalDigraphTest, StaysAcyclicOnForwardChain) {
  IncrementalDigraph g;
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_FALSE(g.HasCycle());
  // Chain edges respect the maintained order: all cheap inserts.
  EXPECT_EQ(g.stats().cheap_inserts, 3);
  EXPECT_EQ(g.stats().reorders, 0);
}

TEST(IncrementalDigraphTest, DetectsCycleOnClosingEdge) {
  IncrementalDigraph g;
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(2, 0));
  EXPECT_TRUE(g.HasCycle());
  // Latched: a later harmless edge still reports the cyclic state.
  EXPECT_FALSE(g.AddEdge(5, 6));
  EXPECT_TRUE(g.HasCycle());
}

TEST(IncrementalDigraphTest, SelfLoopIsACycle) {
  IncrementalDigraph g;
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_TRUE(g.HasCycle());
}

TEST(IncrementalDigraphTest, DuplicateEdgesAreIdempotent) {
  IncrementalDigraph g;
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.stats().edges_added, 1);
}

TEST(IncrementalDigraphTest, OrderIndexRespectsEveryEdge) {
  // Insert edges against the initial order (high -> low node ids) to force
  // region repairs, then check the invariant the repairs maintain.
  IncrementalDigraph g(8);
  ASSERT_TRUE(g.AddEdge(7, 3));
  ASSERT_TRUE(g.AddEdge(5, 2));
  ASSERT_TRUE(g.AddEdge(3, 2));
  ASSERT_TRUE(g.AddEdge(6, 0));
  ASSERT_TRUE(g.AddEdge(2, 0));
  EXPECT_GT(g.stats().reorders, 0);
  struct Edge {
    int from, to;
  };
  for (Edge e : {Edge{7, 3}, Edge{5, 2}, Edge{3, 2}, Edge{6, 0}, Edge{2, 0}}) {
    EXPECT_LT(g.OrderIndex(e.from), g.OrderIndex(e.to))
        << e.from << " -> " << e.to;
  }
}

// Differential check against the from-scratch Digraph: for random edge
// sequences, after every insertion the incremental cyclicity verdict must
// equal a full rebuild-and-DFS of the same edge set.
TEST(IncrementalDigraphTest, MatchesFromScratchDigraphOnRandomSequences) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    int n = rng.UniformInt(2, 12);
    IncrementalDigraph incremental(n);
    Digraph scratch(n);
    int edges = rng.UniformInt(1, 3 * n);
    for (int k = 0; k < edges; ++k) {
      int from = rng.UniformInt(0, n - 1);
      int to = rng.UniformInt(0, n - 1);
      bool still_acyclic = incremental.AddEdge(from, to);
      scratch.AddEdge(from, to);
      ASSERT_EQ(still_acyclic, !scratch.HasCycle())
          << "trial " << trial << " after edge " << from << "->" << to;
      ASSERT_EQ(incremental.HasCycle(), scratch.HasCycle());
    }
  }
}

// The point of the Pearce–Kelly maintenance: repairs visit only the
// affected region, not the whole graph. Build a long chain, then insert
// one order-violating edge between adjacent-in-order nodes — the region is
// tiny even though the graph is large.
TEST(IncrementalDigraphTest, RepairVisitsOnlyAffectedRegion) {
  const int kNodes = 1000;
  IncrementalDigraph g(kNodes);
  for (int i = 0; i + 1 < kNodes; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 1));  // Order-respecting: all cheap.
  }
  ASSERT_EQ(g.stats().region_nodes, 0);
  // 500 -> 499 would close a cycle through the chain; use two fresh nodes
  // placed at the end of the order instead: connect them against the order.
  g.EnsureNodes(kNodes + 2);
  ASSERT_TRUE(g.AddEdge(kNodes + 1, kNodes));
  EXPECT_TRUE(g.stats().region_nodes > 0);
  EXPECT_LE(g.stats().region_nodes, 4) << "repair scanned beyond the region";
  EXPECT_FALSE(g.HasCycle());
}

}  // namespace
}  // namespace nonserial
