// Crash-recovery fuzz: seeded workloads run through the parallel driver
// with a write-ahead log attached (and, on some seeds, a randomized
// failpoint schedule injecting aborts into the protocol's phase
// boundaries). Afterwards the log is "crashed" at random prefixes —
// every prefix is a legal crash point — and each recovery's surviving
// committed set must pass the Section 3 correctness checker. This is the
// durability half of Theorem 2: a crash may lose in-flight work, but the
// state it leaves behind is always some correct execution's.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/verify.h"
#include "fuzz_support.h"
#include "sim/parallel_driver.h"
#include "storage/wal.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

SimWorkload TinyWorkload(uint64_t seed) {
  DesignWorkloadParams params;
  params.num_txs = 5;
  params.num_entities = 6;
  params.num_conjuncts = 2;
  params.reads_per_tx = 2;
  params.think_time = 0;
  params.arrival_spacing = 0;
  params.precedence_prob = 0.3;
  params.hot_theta = 0.6;
  params.seed = seed;
  return MakeDesignWorkload(params);
}

std::vector<CorrectExecutionProtocol::TxRecord> ToRecords(
    const SimWorkload& workload, const std::vector<RecoveredTx>& committed) {
  std::vector<CorrectExecutionProtocol::TxRecord> records(workload.txs.size());
  for (const RecoveredTx& t : committed) {
    CorrectExecutionProtocol::TxRecord& r = records[t.tx];
    r.name = t.name.empty() ? workload.txs[t.tx].name : t.name;
    r.input_state = t.input_state;
    r.feeder_txs.insert(t.feeders.begin(), t.feeders.end());
    r.writes = t.writes;
    r.committed = true;
  }
  return records;
}

/// Recovers the log's first `prefix` records and checks the surviving
/// committed set is a correct execution.
void ExpectPrefixRecoversCorrectly(const SimWorkload& workload,
                                   const WriteAheadLog& wal, size_t prefix,
                                   uint64_t seed) {
  RecoveryResult rec = wal.Recover(prefix);
  Status verdict = VerifyCepHistory(workload, ToRecords(workload, rec.committed),
                                    rec.store->LatestCommittedSnapshot(),
                                    WorkloadConstraint(workload));
  EXPECT_TRUE(verdict.ok()) << "seed " << seed << " prefix " << prefix << "/"
                            << wal.size() << ": " << verdict.ToString() << "; "
                            << fuzz::ReproduceHint(seed);
}

TEST(CrashRecoveryFuzzTest, RandomKillPointsAlwaysRecoverCorrectHistories) {
  constexpr int kSeeds = 200;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    SCOPED_TRACE(fuzz::ReproduceHint(seed));
    SimWorkload workload = TinyWorkload(seed);
    WriteAheadLog wal(workload.initial);
    Rng rng(seed * 0x9e3779b9ULL);

    // Every fourth seed runs under a randomized failpoint schedule: the
    // protocol's phase-boundary points fire with small probabilities, so
    // the log also contains histories shaped by injected faults.
    std::vector<std::unique_ptr<ScopedFailpoint>> schedule;
    if (seed % 4 == 0) {
      FailpointRegistry::Global().Seed(seed);
      for (const char* point :
           {"cep.pre_validate", "cep.post_install", "cep.pre_commit",
            "ks.lock_acquire", "driver.lost_wakeup"}) {
        if (!rng.Bernoulli(0.5)) continue;
        FailpointSpec spec;
        spec.probability = 0.1 + 0.2 * rng.NextDouble();
        spec.max_fires = rng.UniformInt(1, 4);
        schedule.push_back(std::make_unique<ScopedFailpoint>(point, spec));
      }
    }

    ParallelDriverConfig config;
    config.num_threads = 2;
    config.us_per_tick = 0;
    config.max_restarts = 60;
    config.backoff_us = 1;
    config.poll_us = 50;
    config.max_wall_ms = 20'000;
    config.wal = &wal;
    // Every third seed logs through the group-commit pipeline: the durable
    // image is then built from batched chunk writes, and every kill point
    // below must still recover a correct history.
    config.wal_group_commit = seed % 3 == 0;
    ParallelDriver driver(config);
    std::shared_ptr<VersionStore> store;
    std::shared_ptr<CorrectExecutionProtocol> cep;
    ParallelRunResult result = driver.Run(workload, &store, &cep);
    ASSERT_FALSE(result.watchdog_expired) << "seed " << seed;
    schedule.clear();  // Disarm before verification.

    // The full log must recover exactly the live engine's outcome...
    size_t log_len = wal.size();
    RecoveryResult full = wal.Recover();
    EXPECT_EQ(static_cast<int>(full.committed.size()), result.committed_count)
        << "seed " << seed;
    EXPECT_EQ(full.store->LatestCommittedSnapshot(),
              store->LatestCommittedSnapshot())
        << "seed " << seed;
    ExpectPrefixRecoversCorrectly(workload, wal, log_len, seed);

    // ...and any random kill point must recover *some* correct history.
    for (int k = 0; k < 4; ++k) {
      size_t prefix =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(log_len)));
      ExpectPrefixRecoversCorrectly(workload, wal, prefix, seed);
    }
  }
}

TEST(CrashRecoveryFuzzTest, RecoveredCommittedSetsAreDownwardClosed) {
  // Commit log order respects both the workload partial order and
  // reads-from, so a crashed prefix can never keep a successor while
  // losing its predecessor or feeder.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    SCOPED_TRACE(fuzz::ReproduceHint(seed));
    SimWorkload workload = TinyWorkload(seed + 1000);
    WriteAheadLog wal(workload.initial);
    ParallelDriverConfig config;
    config.num_threads = 3;
    config.us_per_tick = 0;
    config.max_restarts = 60;
    config.backoff_us = 1;
    config.poll_us = 50;
    config.max_wall_ms = 20'000;
    config.wal = &wal;
    ParallelDriver driver(config);
    ParallelRunResult result = driver.Run(workload);
    ASSERT_FALSE(result.watchdog_expired) << "seed " << seed;
    for (size_t prefix = 0; prefix <= wal.size(); ++prefix) {
      RecoveryResult rec = wal.Recover(prefix);
      std::vector<bool> alive(workload.txs.size(), false);
      for (const RecoveredTx& t : rec.committed) alive[t.tx] = true;
      for (const RecoveredTx& t : rec.committed) {
        for (int pred : workload.txs[t.tx].predecessors) {
          EXPECT_TRUE(alive[pred])
              << "seed " << seed << " prefix " << prefix << ": tx " << t.tx
              << " survived without its predecessor " << pred;
        }
        for (int feeder : t.feeders) {
          EXPECT_TRUE(alive[feeder])
              << "seed " << seed << " prefix " << prefix << ": tx " << t.tx
              << " survived without its feeder " << feeder;
        }
      }
    }
  }
}

TEST(CrashRecoveryFuzzTest, CrashBetweenBatchStageAndBatchFlushLosesOnlyStagedWork) {
  // Group commit's precise new failure mode: frames staged in the volatile
  // buffer when the crash hits never reached the medium. HoldFlushesForTest
  // parks the writer before batch pickup, so everything logged after a
  // random point of the history is staged-but-unflushed at the crash. The
  // invariant: recovery keeps exactly the durably-acked commits, the crash
  // fails every staged ack, and the survivor set is still downward closed
  // (FIFO staging preserves log order).
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed) + "; " +
                 fuzz::ReproduceHint(seed));
    Rng rng(seed * 0x51afd6ed558ccd7bULL);
    constexpr int kWriters = 8;
    constexpr int kEntities = 4;
    WriteAheadLog wal(ValueVector(kEntities, 0));
    wal.EnableGroupCommit();

    int hold_after = static_cast<int>(rng.UniformInt(0, kWriters));
    std::vector<bool> acked(kWriters, false);
    std::vector<WalCommitHandle> staged_handles;
    for (int w = 0; w < kWriters; ++w) {
      if (w == hold_after) wal.HoldFlushesForTest(true);
      int appends = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<std::pair<EntityId, Value>> writes;
      for (int a = 0; a < appends; ++a) {
        EntityId e = static_cast<EntityId>(rng.UniformInt(0, kEntities - 1));
        Value v = static_cast<Value>(w * 10 + a + 1);
        wal.LogAppend(e, v, w);
        writes.emplace_back(e, v);
      }
      wal.LogTxPayload(w, "t" + std::to_string(w), ValueVector(kEntities, 0),
                       {}, writes);
      WalCommitHandle h = wal.LogCommit(w);
      if (w < hold_after) {
        ASSERT_TRUE(wal.WaitDurable(h)) << "writer " << w;
        acked[w] = true;
      } else {
        staged_handles.push_back(h);  // Would block; resolve at the crash.
      }
    }
    if (hold_after == kWriters) wal.HoldFlushesForTest(true);

    // Crash between batch-stage and batch-flush.
    wal.LogCrashMarker();
    for (size_t i = 0; i < staged_handles.size(); ++i) {
      EXPECT_FALSE(wal.WaitDurable(staged_handles[i]))
          << "staged commit " << i << " must fail at the crash";
    }
    WalStats stats = wal.stats();
    EXPECT_EQ(stats.group_commit_failed_acks,
              static_cast<int64_t>(staged_handles.size()));

    RecoveryResult rec = wal.Recover();
    ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
    std::vector<bool> recovered(kWriters, false);
    for (const RecoveredTx& t : rec.committed) {
      ASSERT_GE(t.tx, 0);
      ASSERT_LT(t.tx, kWriters);
      recovered[t.tx] = true;
    }
    for (int w = 0; w < kWriters; ++w) {
      if (acked[w]) {
        EXPECT_TRUE(recovered[w]) << "acked commit " << w << " lost";
      } else {
        EXPECT_FALSE(recovered[w])
            << "staged commit " << w << " leaked to the durable image";
      }
    }
    wal.HoldFlushesForTest(false);
    wal.DisableGroupCommit();
  }
}

}  // namespace
}  // namespace nonserial
