#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/version_store.h"

namespace nonserial {
namespace {

TEST(VersionStoreTest, InitialVersionsCommitted) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.num_entities(), 2);
  ASSERT_EQ(store.ChainSize(0), 1);
  EXPECT_TRUE(store.VersionAt(0, 0).committed);
  EXPECT_EQ(store.VersionAt(0, 0).writer, kInitialWriter);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);
  EXPECT_EQ(store.Read(VersionRef{1, 0}), 20);
}

TEST(VersionStoreTest, AppendCreatesUncommittedVersion) {
  VersionStore store({10});
  int idx = store.Append(0, 11, /*writer=*/3);
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(store.VersionAt(0, 1).committed);
  EXPECT_EQ(store.LatestLiveIndex(0), 1);
  EXPECT_EQ(store.LatestCommittedIndex(0), 0);
}

TEST(VersionStoreTest, CommitWriterFlipsAllItsVersions) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  EXPECT_TRUE(store.VersionAt(0, 1).committed);
  EXPECT_TRUE(store.VersionAt(1, 1).committed);
  EXPECT_FALSE(store.VersionAt(0, 2).committed);
  EXPECT_EQ(store.LatestCommittedIndex(0), 1);
}

TEST(VersionStoreTest, RollbackMarksDeadAndPreservesIndices) {
  VersionStore store({10});
  int a = store.Append(0, 11, 3);
  int b = store.Append(0, 12, 4);
  store.RollbackWriter(3);
  EXPECT_TRUE(store.VersionAt(0, a).dead);
  EXPECT_FALSE(store.VersionAt(0, b).dead);
  EXPECT_EQ(store.LatestLiveIndex(0), b);
  // References to the dead version still resolve (never dangles).
  EXPECT_EQ(store.Read(VersionRef{0, a}), 11);
}

TEST(VersionStoreTest, RollbackDoesNotKillCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  store.RollbackWriter(3);
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

// Regression: when every version except the initial one is dead, the
// latest-live and latest-committed walks must fall back to version 0 — the
// initial version is committed and never rolled back, so the chain can
// never be liveness-empty.
TEST(VersionStoreTest, AllVersionsDeadExceptInitial) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 3);
  store.Append(0, 13, 4);
  store.RollbackWriter(3);
  store.RollbackWriter(4);
  EXPECT_EQ(store.LatestLiveIndex(0), 0);
  EXPECT_EQ(store.LatestCommittedIndex(0), 0);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{10}));
  EXPECT_FALSE(store.LatestIndexBy(0, 3).has_value());
  EXPECT_EQ(store.TotalLiveVersions(), 1);
}

// Regression: CommitWriter after a partial rollback (same runtime id
// restarted) must commit only the surviving attempt's versions, never
// resurrect the dead ones.
TEST(VersionStoreTest, CommitWriterSkipsRolledBackVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);   // First attempt.
  store.RollbackWriter(3);  // Aborted.
  int retry = store.Append(0, 12, 3);  // Second attempt.
  store.CommitWriter(3);
  EXPECT_TRUE(store.VersionAt(0, 1).dead);
  EXPECT_FALSE(store.VersionAt(0, 1).committed);
  EXPECT_TRUE(store.VersionAt(0, retry).committed);
  EXPECT_EQ(store.LatestCommittedIndex(0), retry);
  auto latest = store.LatestIndexBy(0, 3);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, retry);
}

TEST(VersionStoreTest, LatestIndexByWriter) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 3);
  store.Append(0, 13, 4);
  auto idx = store.LatestIndexBy(0, 3);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(store.Read(VersionRef{0, *idx}), 12);
  EXPECT_FALSE(store.LatestIndexBy(0, 99).has_value());
  // Rolled-back versions are invisible.
  store.RollbackWriter(3);
  EXPECT_FALSE(store.LatestIndexBy(0, 3).has_value());
}

TEST(VersionStoreTest, LatestCommittedSnapshot) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 4);
  store.CommitWriter(3);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 20}));
  store.CommitWriter(4);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 21}));
}

TEST(VersionStoreTest, ChainSnapshotCopiesTheChain) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  std::vector<Version> snapshot = store.ChainSnapshot(0);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].value, 10);
  EXPECT_EQ(snapshot[1].value, 11);
  // A later append does not grow the copy.
  store.Append(0, 12, 4);
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(store.ChainSize(0), 3);
}

TEST(VersionStoreTest, AsDatabaseStateContainsAllCommittedValues) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  DatabaseState db = store.AsDatabaseState();
  EXPECT_TRUE(db.IsVersionState({10}));
  EXPECT_TRUE(db.IsVersionState({11}));
  EXPECT_FALSE(db.IsVersionState({12}));
}

TEST(VersionStoreGcTest, CollectsObsoleteCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  // Initial (10) and 11 are obsolete; 12 is the latest committed.
  EXPECT_EQ(store.CollectObsolete({}), 2);
  EXPECT_TRUE(store.VersionAt(0, 0).dead);
  EXPECT_TRUE(store.VersionAt(0, 1).dead);
  EXPECT_FALSE(store.VersionAt(0, 2).dead);
  EXPECT_EQ(store.LatestCommittedIndex(0), 2);
  // Idempotent.
  EXPECT_EQ(store.CollectObsolete({}), 0);
}

TEST(VersionStoreGcTest, PinnedVersionsSurvive) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  EXPECT_EQ(store.CollectObsolete({VersionRef{0, 1}}), 1);  // Only initial.
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

TEST(VersionStoreGcTest, UncommittedVersionsNeverCollected) {
  VersionStore store({10});
  store.Append(0, 11, 3);  // Uncommitted.
  EXPECT_EQ(store.CollectObsolete({}), 0);
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

TEST(VersionStoreGcTest, CollectedReferencesStillResolve) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  ASSERT_EQ(store.CollectObsolete({}), 1);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);  // Dead but addressable.
}

TEST(VersionStoreTest, TotalLiveVersions) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.TotalLiveVersions(), 2);
  store.Append(0, 11, 3);
  EXPECT_EQ(store.TotalLiveVersions(), 3);
  store.RollbackWriter(3);
  EXPECT_EQ(store.TotalLiveVersions(), 2);
}

// Concurrency smoke: writers appending to disjoint-and-shared entities
// while readers snapshot — every version must land exactly once and stay
// addressable. (Run under TSan via scripts/ci.sh.)
TEST(VersionStoreConcurrencyTest, ConcurrentAppendsAndReads) {
  constexpr int kEntities = 8;
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 200;
  VersionStore store(ValueVector(kEntities, 0));
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        EntityId e = (w + i) % kEntities;
        int idx = store.Append(e, w * 1000 + i, /*writer=*/w);
        EXPECT_EQ(store.VersionAt(e, idx).value, w * 1000 + i);
      }
      store.CommitWriter(w);
    });
  }
  threads.emplace_back([&store] {
    for (int i = 0; i < 200; ++i) {
      for (EntityId e = 0; e < kEntities; ++e) {
        std::vector<Version> chain = store.ChainSnapshot(e);
        EXPECT_GE(static_cast<int>(chain.size()), 1);
        EXPECT_EQ(chain[0].writer, kInitialWriter);
      }
    }
  });
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (EntityId e = 0; e < kEntities; ++e) total += store.ChainSize(e);
  EXPECT_EQ(total, kEntities + kWriters * kAppendsPerWriter);
}

}  // namespace
}  // namespace nonserial
