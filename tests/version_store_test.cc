#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "storage/version_store.h"

namespace nonserial {
namespace {

TEST(VersionStoreTest, InitialVersionsCommitted) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.num_entities(), 2);
  ASSERT_EQ(store.ChainSize(0), 1);
  EXPECT_TRUE(store.VersionAt(0, 0).committed);
  EXPECT_EQ(store.VersionAt(0, 0).writer, kInitialWriter);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);
  EXPECT_EQ(store.Read(VersionRef{1, 0}), 20);
}

TEST(VersionStoreTest, AppendCreatesUncommittedVersion) {
  VersionStore store({10});
  int idx = store.Append(0, 11, /*writer=*/3);
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(store.VersionAt(0, 1).committed);
  EXPECT_EQ(store.LatestLiveIndex(0), 1);
  EXPECT_EQ(store.LatestCommittedIndex(0), 0);
}

TEST(VersionStoreTest, CommitWriterFlipsAllItsVersions) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  EXPECT_TRUE(store.VersionAt(0, 1).committed);
  EXPECT_TRUE(store.VersionAt(1, 1).committed);
  EXPECT_FALSE(store.VersionAt(0, 2).committed);
  EXPECT_EQ(store.LatestCommittedIndex(0), 1);
}

TEST(VersionStoreTest, RollbackMarksDeadAndPreservesIndices) {
  VersionStore store({10});
  int a = store.Append(0, 11, 3);
  int b = store.Append(0, 12, 4);
  store.RollbackWriter(3);
  EXPECT_TRUE(store.VersionAt(0, a).dead);
  EXPECT_FALSE(store.VersionAt(0, b).dead);
  EXPECT_EQ(store.LatestLiveIndex(0), b);
  // References to the dead version still resolve (never dangles).
  EXPECT_EQ(store.Read(VersionRef{0, a}), 11);
}

TEST(VersionStoreTest, RollbackDoesNotKillCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  store.RollbackWriter(3);
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

// Regression: when every version except the initial one is dead, the
// latest-live and latest-committed walks must fall back to version 0 — the
// initial version is committed and never rolled back, so the chain can
// never be liveness-empty.
TEST(VersionStoreTest, AllVersionsDeadExceptInitial) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 3);
  store.Append(0, 13, 4);
  store.RollbackWriter(3);
  store.RollbackWriter(4);
  EXPECT_EQ(store.LatestLiveIndex(0), 0);
  EXPECT_EQ(store.LatestCommittedIndex(0), 0);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{10}));
  EXPECT_FALSE(store.LatestIndexBy(0, 3).has_value());
  EXPECT_EQ(store.TotalLiveVersions(), 1);
}

// Regression: CommitWriter after a partial rollback (same runtime id
// restarted) must commit only the surviving attempt's versions, never
// resurrect the dead ones.
TEST(VersionStoreTest, CommitWriterSkipsRolledBackVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);   // First attempt.
  store.RollbackWriter(3);  // Aborted.
  int retry = store.Append(0, 12, 3);  // Second attempt.
  store.CommitWriter(3);
  EXPECT_TRUE(store.VersionAt(0, 1).dead);
  EXPECT_FALSE(store.VersionAt(0, 1).committed);
  EXPECT_TRUE(store.VersionAt(0, retry).committed);
  EXPECT_EQ(store.LatestCommittedIndex(0), retry);
  auto latest = store.LatestIndexBy(0, 3);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, retry);
}

TEST(VersionStoreTest, LatestIndexByWriter) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 3);
  store.Append(0, 13, 4);
  auto idx = store.LatestIndexBy(0, 3);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(store.Read(VersionRef{0, *idx}), 12);
  EXPECT_FALSE(store.LatestIndexBy(0, 99).has_value());
  // Rolled-back versions are invisible.
  store.RollbackWriter(3);
  EXPECT_FALSE(store.LatestIndexBy(0, 3).has_value());
}

TEST(VersionStoreTest, LatestCommittedSnapshot) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 4);
  store.CommitWriter(3);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 20}));
  store.CommitWriter(4);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 21}));
}

TEST(VersionStoreTest, ChainSnapshotCopiesTheChain) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  std::vector<Version> snapshot = store.ChainSnapshot(0);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].value, 10);
  EXPECT_EQ(snapshot[1].value, 11);
  // A later append does not grow the copy.
  store.Append(0, 12, 4);
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(store.ChainSize(0), 3);
}

TEST(VersionStoreTest, AsDatabaseStateContainsAllCommittedValues) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  DatabaseState db = store.AsDatabaseState();
  EXPECT_TRUE(db.IsVersionState({10}));
  EXPECT_TRUE(db.IsVersionState({11}));
  EXPECT_FALSE(db.IsVersionState({12}));
}

TEST(VersionStoreGcTest, CollectsObsoleteCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  // Initial (10) and 11 are obsolete; 12 is the latest committed.
  EXPECT_EQ(store.CollectObsolete({}), 2);
  EXPECT_TRUE(store.VersionAt(0, 0).dead);
  EXPECT_TRUE(store.VersionAt(0, 1).dead);
  EXPECT_FALSE(store.VersionAt(0, 2).dead);
  EXPECT_EQ(store.LatestCommittedIndex(0), 2);
  // Idempotent.
  EXPECT_EQ(store.CollectObsolete({}), 0);
}

TEST(VersionStoreGcTest, PinnedVersionsSurvive) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  EXPECT_EQ(store.CollectObsolete({VersionRef{0, 1}}), 1);  // Only initial.
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

TEST(VersionStoreGcTest, UncommittedVersionsNeverCollected) {
  VersionStore store({10});
  store.Append(0, 11, 3);  // Uncommitted.
  EXPECT_EQ(store.CollectObsolete({}), 0);
  EXPECT_FALSE(store.VersionAt(0, 1).dead);
}

TEST(VersionStoreGcTest, CollectedReferencesStillResolve) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  ASSERT_EQ(store.CollectObsolete({}), 1);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);  // Dead but addressable.
}

TEST(VersionStoreTest, TotalLiveVersions) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.TotalLiveVersions(), 2);
  store.Append(0, 11, 3);
  EXPECT_EQ(store.TotalLiveVersions(), 3);
  store.RollbackWriter(3);
  EXPECT_EQ(store.TotalLiveVersions(), 2);
}

TEST(VersionStoreTest, ForEachVersionVisitsInIndexOrder) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.RollbackWriter(4);
  std::vector<std::pair<Value, int>> seen;
  store.ForEachVersion(0, [&](const Version& v, int index) {
    seen.emplace_back(v.value, index);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<Value, int>{10, 0}));
  EXPECT_EQ(seen[1], (std::pair<Value, int>{11, 1}));
  EXPECT_EQ(seen[2], (std::pair<Value, int>{12, 2}));
  // The dead flag is observed per slot, atomically.
  store.ForEachVersion(0, [&](const Version& v, int index) {
    EXPECT_EQ(v.dead, index == 2);
  });
}

// Slab growth: appending past the initial slab capacity must retire the old
// slab through the epoch reclaimer while keeping every index addressable,
// and with no reader pinning an epoch the retired slabs are freed promptly.
TEST(VersionStoreTest, SlabGrowthKeepsIndicesStableAndReclaims) {
  VersionStore store({10});
  constexpr int kAppends = 100;  // Several doublings past the initial 8.
  for (int i = 0; i < kAppends; ++i) {
    EXPECT_EQ(store.Append(0, 100 + i, /*writer=*/3), i + 1);
  }
  EXPECT_EQ(store.ChainSize(0), kAppends + 1);
  for (int i = 0; i < kAppends; ++i) {
    EXPECT_EQ(store.Read(VersionRef{0, i + 1}), 100 + i);
  }
  // Each growth's Retire() call also sweeps the retire list; with no epoch
  // pinned, at most the most recent retiree can still be pending.
  EXPECT_LE(store.PendingRetiredSlabs(), 1u);
}

// The consistent-cut contract of AsDatabaseState: a CommitWriter that flips
// versions of several entities is observed either fully or not at all. The
// committer writes round k to BOTH entities and commits; a state where
// entity 0 knows round k but entity 1 does not (or vice versa) is a mixed
// cut that no serial prefix produced. (Run under TSan via scripts/ci.sh.)
TEST(VersionStoreConcurrencyTest, AsDatabaseStateIsACoherentCut) {
  constexpr int kRounds = 300;
  VersionStore store({0, 0});
  std::thread committer([&store] {
    for (int k = 1; k <= kRounds; ++k) {
      store.Append(0, k, /*writer=*/k);
      store.Append(1, k, /*writer=*/k);
      store.CommitWriter(k);
    }
  });
  int64_t checked = 0;
  for (int pass = 0; pass < 200; ++pass) {
    DatabaseState db = store.AsDatabaseState();
    std::vector<Value> c0 = db.CandidateValues(0);
    std::vector<Value> c1 = db.CandidateValues(1);
    // Committed rounds accumulate, so the candidate sets are {0..k} for the
    // same k on both entities iff the cut is coherent.
    ASSERT_EQ(c0.size(), c1.size())
        << "mixed cut: entity 0 has " << c0.size() << " committed values, "
        << "entity 1 has " << c1.size();
    ++checked;
  }
  committer.join();
  EXPECT_EQ(checked, 200);
  // After quiescing, the final state has every round on both entities.
  DatabaseState final_db = store.AsDatabaseState();
  EXPECT_EQ(final_db.CandidateValues(0).size(),
            static_cast<size_t>(kRounds + 1));
  EXPECT_EQ(final_db.CandidateValues(1).size(),
            static_cast<size_t>(kRounds + 1));
}

// Lock-free readers racing slab growth: ForEachVersion walkers must always
// observe frozen identity fields (value/writer/seq) for every index below
// the loaded size, across arbitrary many slab replacements. (TSan leg
// exercises the epoch-reclamation protocol.)
TEST(VersionStoreConcurrencyTest, ForEachVersionRacesSlabGrowth) {
  constexpr int kAppends = 2000;
  VersionStore store({0});
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &done] {
      while (!done.load(std::memory_order_acquire)) {
        int last_index = -1;
        store.ForEachVersion(0, [&](const Version& v, int index) {
          EXPECT_EQ(index, last_index + 1);
          last_index = index;
          // Identity fields are frozen at publication: version i holds i.
          EXPECT_EQ(v.value, index);
        });
        EXPECT_GE(last_index, 0);  // The initial version is always there.
      }
    });
  }
  for (int i = 1; i <= kAppends; ++i) store.Append(0, i, /*writer=*/7);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(store.ChainSize(0), kAppends + 1);
}

// Concurrency smoke: writers appending to disjoint-and-shared entities
// while readers snapshot — every version must land exactly once and stay
// addressable. (Run under TSan via scripts/ci.sh.)
TEST(VersionStoreConcurrencyTest, ConcurrentAppendsAndReads) {
  constexpr int kEntities = 8;
  constexpr int kWriters = 4;
  constexpr int kAppendsPerWriter = 200;
  VersionStore store(ValueVector(kEntities, 0));
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        EntityId e = (w + i) % kEntities;
        int idx = store.Append(e, w * 1000 + i, /*writer=*/w);
        EXPECT_EQ(store.VersionAt(e, idx).value, w * 1000 + i);
      }
      store.CommitWriter(w);
    });
  }
  threads.emplace_back([&store] {
    for (int i = 0; i < 200; ++i) {
      for (EntityId e = 0; e < kEntities; ++e) {
        std::vector<Version> chain = store.ChainSnapshot(e);
        EXPECT_GE(static_cast<int>(chain.size()), 1);
        EXPECT_EQ(chain[0].writer, kInitialWriter);
      }
    }
  });
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (EntityId e = 0; e < kEntities; ++e) total += store.ChainSize(e);
  EXPECT_EQ(total, kEntities + kWriters * kAppendsPerWriter);
}

}  // namespace
}  // namespace nonserial
