#include <gtest/gtest.h>

#include "storage/version_store.h"

namespace nonserial {
namespace {

TEST(VersionStoreTest, InitialVersionsCommitted) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.num_entities(), 2);
  ASSERT_EQ(store.Chain(0).size(), 1u);
  EXPECT_TRUE(store.Chain(0)[0].committed);
  EXPECT_EQ(store.Chain(0)[0].writer, kInitialWriter);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);
  EXPECT_EQ(store.Read(VersionRef{1, 0}), 20);
}

TEST(VersionStoreTest, AppendCreatesUncommittedVersion) {
  VersionStore store({10});
  int idx = store.Append(0, 11, /*writer=*/3);
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(store.Chain(0)[1].committed);
  EXPECT_EQ(store.LatestLiveIndex(0), 1);
  EXPECT_EQ(store.LatestCommittedIndex(0), 0);
}

TEST(VersionStoreTest, CommitWriterFlipsAllItsVersions) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  EXPECT_TRUE(store.Chain(0)[1].committed);
  EXPECT_TRUE(store.Chain(1)[1].committed);
  EXPECT_FALSE(store.Chain(0)[2].committed);
  EXPECT_EQ(store.LatestCommittedIndex(0), 1);
}

TEST(VersionStoreTest, RollbackMarksDeadAndPreservesIndices) {
  VersionStore store({10});
  int a = store.Append(0, 11, 3);
  int b = store.Append(0, 12, 4);
  store.RollbackWriter(3);
  EXPECT_TRUE(store.Chain(0)[a].dead);
  EXPECT_FALSE(store.Chain(0)[b].dead);
  EXPECT_EQ(store.LatestLiveIndex(0), b);
  // References to the dead version still resolve (never dangles).
  EXPECT_EQ(store.Read(VersionRef{0, a}), 11);
}

TEST(VersionStoreTest, RollbackDoesNotKillCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  store.RollbackWriter(3);
  EXPECT_FALSE(store.Chain(0)[1].dead);
}

TEST(VersionStoreTest, LatestIndexByWriter) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 3);
  store.Append(0, 13, 4);
  auto idx = store.LatestIndexBy(0, 3);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(store.Read(VersionRef{0, *idx}), 12);
  EXPECT_FALSE(store.LatestIndexBy(0, 99).has_value());
  // Rolled-back versions are invisible.
  store.RollbackWriter(3);
  EXPECT_FALSE(store.LatestIndexBy(0, 3).has_value());
}

TEST(VersionStoreTest, LatestCommittedSnapshot) {
  VersionStore store({10, 20});
  store.Append(0, 11, 3);
  store.Append(1, 21, 4);
  store.CommitWriter(3);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 20}));
  store.CommitWriter(4);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{11, 21}));
}

TEST(VersionStoreTest, AsDatabaseStateContainsAllCommittedValues) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  DatabaseState db = store.AsDatabaseState();
  EXPECT_TRUE(db.IsVersionState({10}));
  EXPECT_TRUE(db.IsVersionState({11}));
  EXPECT_FALSE(db.IsVersionState({12}));
}

TEST(VersionStoreGcTest, CollectsObsoleteCommittedVersions) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  // Initial (10) and 11 are obsolete; 12 is the latest committed.
  EXPECT_EQ(store.CollectObsolete({}), 2);
  EXPECT_TRUE(store.Chain(0)[0].dead);
  EXPECT_TRUE(store.Chain(0)[1].dead);
  EXPECT_FALSE(store.Chain(0)[2].dead);
  EXPECT_EQ(store.LatestCommittedIndex(0), 2);
  // Idempotent.
  EXPECT_EQ(store.CollectObsolete({}), 0);
}

TEST(VersionStoreGcTest, PinnedVersionsSurvive) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.Append(0, 12, 4);
  store.CommitWriter(3);
  store.CommitWriter(4);
  EXPECT_EQ(store.CollectObsolete({VersionRef{0, 1}}), 1);  // Only initial.
  EXPECT_FALSE(store.Chain(0)[1].dead);
}

TEST(VersionStoreGcTest, UncommittedVersionsNeverCollected) {
  VersionStore store({10});
  store.Append(0, 11, 3);  // Uncommitted.
  EXPECT_EQ(store.CollectObsolete({}), 0);
  EXPECT_FALSE(store.Chain(0)[1].dead);
}

TEST(VersionStoreGcTest, CollectedReferencesStillResolve) {
  VersionStore store({10});
  store.Append(0, 11, 3);
  store.CommitWriter(3);
  ASSERT_EQ(store.CollectObsolete({}), 1);
  EXPECT_EQ(store.Read(VersionRef{0, 0}), 10);  // Dead but addressable.
}

TEST(VersionStoreTest, TotalLiveVersions) {
  VersionStore store({10, 20});
  EXPECT_EQ(store.TotalLiveVersions(), 2);
  store.Append(0, 11, 3);
  EXPECT_EQ(store.TotalLiveVersions(), 3);
  store.RollbackWriter(3);
  EXPECT_EQ(store.TotalLiveVersions(), 2);
}

}  // namespace
}  // namespace nonserial
