#include <gtest/gtest.h>

#include "protocol/pw_mvto.h"

namespace nonserial {
namespace {

TxProfile Profile(const std::string& name, std::vector<int> preds = {},
                  Predicate output = Predicate::True()) {
  TxProfile profile;
  profile.name = name;
  profile.output = std::move(output);
  profile.predecessors = std::move(preds);
  return profile;
}

class PwMvtoTest : public ::testing::Test {
 protected:
  // Entities x=0, y=1 in *different* conjunct objects.
  PwMvtoTest() : store_({50, 50}), ctrl_(&store_, {{0}, {1}}) {}

  VersionStore store_;
  PwMvtoController ctrl_;
};

TEST_F(PwMvtoTest, TimestampsDrawnLazilyPerObject) {
  ctrl_.Register(0, Profile("t0"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.GroupTimestamp(0, 0), -1);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.GroupTimestamp(0, 0), 1);
  EXPECT_EQ(ctrl_.GroupTimestamp(0, 1), -1);  // y's object untouched.
  EXPECT_EQ(ctrl_.stats().timestamps_drawn, 1);
}

TEST_F(PwMvtoTest, PerObjectOrdersMayDisagree) {
  // t0 touches x first but y second; t1 the reverse. Per-object clocks give
  // t0 < t1 on x and t1 < t0 on y — a schedule global MVTO cannot accept
  // when it forces conflicts, and the essence of predicate-wise freedom.
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);  // t0 draws x-ts 1.
  ASSERT_EQ(ctrl_.Read(1, 1, &v), ReqResult::kGranted);  // t1 draws y-ts 1.
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);  // t1 draws x-ts 2.
  ASSERT_EQ(ctrl_.Read(0, 1, &v), ReqResult::kGranted);  // t0 draws y-ts 2.
  EXPECT_LT(ctrl_.GroupTimestamp(0, 0), ctrl_.GroupTimestamp(1, 0));
  EXPECT_LT(ctrl_.GroupTimestamp(1, 1), ctrl_.GroupTimestamp(0, 1));
  // Both can still write "their" entity and commit.
  ASSERT_EQ(ctrl_.Write(0, 1, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(1, 0, 70), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(1), ReqResult::kGranted);
}

TEST_F(PwMvtoTest, LateWriteWithinObjectAborted) {
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);  // old: x-ts 1.
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);  // young: x-ts 2.
  // old writes x after young read the initial version at x-ts 2.
  EXPECT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kAborted);
  EXPECT_EQ(ctrl_.stats().late_write_aborts, 1);
}

TEST_F(PwMvtoTest, LateWriteInOtherObjectUnaffected) {
  // The same interleaving as above, but the write targets the *other*
  // object: a global-timestamp MVTO with eager timestamps would abort some
  // order; per-object clocks never even conflict.
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Write(0, 1, 60), ReqResult::kGranted);  // y: fresh clock.
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(1), ReqResult::kGranted);
}

TEST_F(PwMvtoTest, ReaderWaitsForUncommittedVersion) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);
}

TEST_F(PwMvtoTest, AbortRemovesVersionsAndTimestamps) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.Abort(0);
  EXPECT_EQ(ctrl_.GroupTimestamp(0, 0), -1);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
}

TEST_F(PwMvtoTest, FailedOutputConditionAborts) {
  Predicate impossible;
  impossible.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 200)}));
  ctrl_.Register(0, Profile("t0", {}, impossible));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kAborted);
}

TEST_F(PwMvtoTest, BeginChainsOnPredecessors) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1", {0}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
}

TEST_F(PwMvtoTest, EntityOutsideAnyObjectUsesCatchAllGroup) {
  VersionStore store({50, 50, 50});
  PwMvtoController ctrl(&store, {{0}});  // Entity 2 in no object.
  ctrl.Register(0, Profile("t0"));
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl.Read(0, 2, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  EXPECT_EQ(ctrl.Commit(0), ReqResult::kGranted);
}

}  // namespace
}  // namespace nonserial
