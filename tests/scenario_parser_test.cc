// Parser coverage for the scenario DSL: the happy path, every documented
// validation rule, and the error-path matrix (unknown names, duplicate
// steps, malformed permutations, truncated files).

#include <string>

#include <gtest/gtest.h>

#include "scenario/parser.h"
#include "scenario/scenario.h"

namespace nonserial {
namespace scenario {
namespace {

// A minimal two-session scenario used as the editing base.
constexpr char kBase[] = R"spec(
scenario base
class cpc
description "two sessions"
setup {
  entity x = 20
  entity y = 20
  constraint "(x >= 0) & (y >= 0)"
}
session s1 {
  input  "(x >= 0) & (y >= 0)"
  output "(x >= 0) & (y >= 0)"
  step r1x { read x }
  step w1y { write y = x + 1 }
  step c1 { commit }
}
session s2 {
  input  "x >= 0"
  output "x >= 0"
  step r2x { read x }
  step c2 { commit }
}
permutation r1x r2x w1y c1 c2
)spec";

TEST(ScenarioParser, ParsesTheBaseScenario) {
  StatusOr<ScenarioSpec> spec = ParseScenario(kBase);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "base");
  EXPECT_EQ(spec->figure2_class, "cpc");
  ASSERT_EQ(spec->entity_names.size(), 2u);
  EXPECT_EQ(spec->initial, (ValueVector{20, 20}));
  ASSERT_EQ(spec->sessions.size(), 2u);
  EXPECT_EQ(spec->sessions[0].steps.size(), 3u);
  EXPECT_EQ(spec->sessions[0].steps[1].kind, Step::Kind::kWrite);
  ASSERT_EQ(spec->permutations.size(), 1u);
  EXPECT_EQ(spec->permutations[0].order.size(), 5u);
  // The constraint objects come out one set per conjunct.
  EXPECT_EQ(spec->Objects().size(), 2u);
}

TEST(ScenarioParser, WriteExpressionEvaluates) {
  StatusOr<ScenarioSpec> spec = ParseScenario(kBase);
  ASSERT_TRUE(spec.ok());
  const Step& w1y = spec->sessions[0].steps[1];
  // y = x + 1 over (x=3, y=4).
  EXPECT_EQ(w1y.write_expr.Eval(ValueVector{3, 4}), 4);
}

TEST(ScenarioParser, ExpectBlocksParse) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               R"spec(permutation r1x r2x w1y c1 c2 {
                    expect "CEP" { s1 commit s2 commit
                                   classes +cpc -sr final y = 40 }
                  })spec");
  StatusOr<ScenarioSpec> spec = ParseScenario(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->permutations[0].expectations.size(), 1u);
  const Expectation& e = spec->permutations[0].expectations[0];
  EXPECT_EQ(e.protocol, "CEP");
  EXPECT_EQ(e.verdicts[0], Verdict::kCommit);
  ASSERT_EQ(e.classes.size(), 2u);
  EXPECT_EQ(e.classes[0].cls, ClassAssertion::Cls::kCpc);
  EXPECT_TRUE(e.classes[0].expected);
  EXPECT_EQ(e.classes[1].cls, ClassAssertion::Cls::kSr);
  EXPECT_FALSE(e.classes[1].expected);
  ASSERT_EQ(e.final_state.size(), 1u);
  EXPECT_EQ(e.final_state[0].second, 40);
}

TEST(ScenarioParser, AllPermutationsParses) {
  std::string text = kBase;
  text += "\nall-permutations max-runs 64\n";
  StatusOr<ScenarioSpec> spec = ParseScenario(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->all_permutations.enabled);
  EXPECT_EQ(spec->all_permutations.max_runs, 64);
}

// --- error paths ----------------------------------------------------------

// Expects ParseScenario(text) to fail with `needle` in the message.
void ExpectError(const std::string& text, const std::string& needle) {
  StatusOr<ScenarioSpec> spec = ParseScenario(text);
  ASSERT_FALSE(spec.ok()) << "expected a parse error mentioning '" << needle
                          << "'";
  EXPECT_NE(spec.status().message().find(needle), std::string::npos)
      << "actual error: " << spec.status().message();
}

TEST(ScenarioParserErrors, UnknownSessionInAfter) {
  std::string text = kBase;
  text.replace(text.find("input  \"x >= 0\""), 0, "after ghost\n  ");
  ExpectError(text, "unknown session 'ghost'");
}

TEST(ScenarioParserErrors, UnknownSessionInExpect) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation r1x r2x w1y c1 c2 {\n"
               "  expect \"CEP\" { nosuch commit }\n}");
  ExpectError(text, "unknown session 'nosuch'");
}

TEST(ScenarioParserErrors, DuplicateStepNamesAreGlobal) {
  // r1x is declared in s1; reusing the name in a third session must fail
  // even across session boundaries (permutations reference steps by bare
  // name).
  std::string text = kBase;
  text +=
      "session s3 {\n"
      "  input  \"x >= 0\"\n"
      "  output \"x >= 0\"\n"
      "  step r1x { read x }\n"
      "  step c3 { commit }\n"
      "}\n";
  ExpectError(text, "duplicate step name");
}

TEST(ScenarioParserErrors, DuplicateSessionName) {
  std::string text = kBase;
  size_t pos = text.find("session s2");
  text.replace(pos, std::string("session s2").size(), "session s1");
  ExpectError(text, "duplicate session 's1'");
}

TEST(ScenarioParserErrors, MalformedPermutationUnknownStep) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation r1x r2x nope c1 c2");
  ExpectError(text, "unknown step 'nope'");
}

TEST(ScenarioParserErrors, PermutationOutOfProgramOrder) {
  // w1y injected before r1x violates s1's program order.
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation w1y r1x r2x c1 c2");
  ExpectError(text, "program order");
}

TEST(ScenarioParserErrors, PermutationMissingSteps) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation r1x r2x w1y c1");
  ExpectError(text, "missing steps");
}

TEST(ScenarioParserErrors, TruncatedFileInsideSession) {
  std::string text = kBase;
  text = text.substr(0, text.find("step w1y"));
  ExpectError(text, "truncated");
}

TEST(ScenarioParserErrors, TruncatedString) {
  std::string text = kBase;
  size_t pos = text.find("\"x >= 0\"\n  output");
  text = text.substr(0, pos + 3);  // cut inside the quoted predicate
  ExpectError(text, "unterminated string");
}

TEST(ScenarioParserErrors, ReadOutsideInputPredicate) {
  // s2's input only covers x; reading y must be rejected (I_t rule).
  std::string text = kBase;
  text.replace(text.find("step r2x { read x }"),
               std::string("step r2x { read x }").size(),
               "step r2x { read y }");
  ExpectError(text, "input");
}

TEST(ScenarioParserErrors, WriteUsesUnreadEntity) {
  std::string text = kBase;
  text.replace(text.find("step w1y { write y = x + 1 }"),
               std::string("step w1y { write y = x + 1 }").size(),
               "step w1y { write y = y + 1 }");
  ExpectError(text, "before the session has read it");
}

TEST(ScenarioParserErrors, UnknownEntity) {
  std::string text = kBase;
  text.replace(text.find("step r1x { read x }"),
               std::string("step r1x { read x }").size(),
               "step r1x { read q }");
  ExpectError(text, "unknown entity 'q'");
}

TEST(ScenarioParserErrors, CommitNotLast) {
  // Swap s2's steps so its commit precedes the read.
  std::string text = kBase;
  text.replace(text.find("step r2x { read x }\n  step c2 { commit }"),
               std::string("step r2x { read x }\n  step c2 { commit }").size(),
               "step c2 { commit }\n  step r2x { read x }");
  ExpectError(text, "last");
}

TEST(ScenarioParserErrors, MissingPermutation) {
  std::string text = kBase;
  text = text.substr(0, text.find("permutation"));
  ExpectError(text, "permutation");
}

TEST(ScenarioParserErrors, UnknownVerdict) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation r1x r2x w1y c1 c2 {\n"
               "  expect \"CEP\" { s1 exploded s2 commit }\n}");
  ExpectError(text, "unknown verdict");
}

TEST(ScenarioParserErrors, ExpectMustListEverySession) {
  std::string text = kBase;
  text.replace(text.find("permutation r1x r2x w1y c1 c2"),
               std::string("permutation r1x r2x w1y c1 c2").size(),
               "permutation r1x r2x w1y c1 c2 {\n"
               "  expect \"CEP\" { s1 commit }\n}");
  ExpectError(text, "every session");
}

TEST(ScenarioParserErrors, BadPredicate) {
  std::string text = kBase;
  text.replace(text.find("\"(x >= 0) & (y >= 0)\"\n  output"),
               std::string("\"(x >= 0) & (y >= 0)\"").size(),
               "\"(x >>> 0)\"");
  ExpectError(text, "bad predicate");
}

TEST(ScenarioParserErrors, EmptyInput) {
  ExpectError("", "name");
}

TEST(ScenarioParserErrors, GarbageToken) {
  ExpectError("scenario s @", "unexpected character");
}

}  // namespace
}  // namespace scenario
}  // namespace nonserial
