#include <gtest/gtest.h>

#include <memory>

#include "core/verify.h"
#include "sim/parallel_driver.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

DesignWorkloadParams ContentionParams(uint64_t seed) {
  DesignWorkloadParams params;
  params.num_txs = 12;
  params.num_entities = 8;  // Small database: heavy read/write overlap.
  params.num_conjuncts = 2;
  params.reads_per_tx = 3;
  params.think_time = 2;
  params.hot_theta = 0.8;
  params.precedence_prob = 0.25;
  params.seed = seed;
  return params;
}

ParallelDriverConfig DriverConfig(int threads, ProtocolMetrics* metrics) {
  ParallelDriverConfig config;
  config.num_threads = threads;
  config.us_per_tick = 20;  // 2-tick thinks become 40µs client latency.
  config.max_restarts = 80;
  config.max_wall_ms = 60'000;
  config.protocol.metrics = metrics;
  return config;
}

// The headline concurrent-engine test (run under TSan via scripts/ci.sh):
// four client threads drive a contended design workload through one
// protocol instance, and the emitted history must still pass the Section 3
// correctness checker — Theorem 2 with real interleaving.
TEST(ParallelDriverTest, ContendedFourThreadRunVerifies) {
  SimWorkload workload = MakeDesignWorkload(ContentionParams(7));
  ProtocolMetrics metrics;
  ParallelDriver driver(DriverConfig(4, &metrics));
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ParallelRunResult result = driver.Run(workload, &store, &cep);
  EXPECT_FALSE(result.watchdog_expired);
  EXPECT_GT(result.committed_count, 0);
  EXPECT_GT(result.wall_micros, 0);
  Status verdict =
      VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload));
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  // The engine did real validations and the sink saw them.
  EXPECT_GE(metrics.validations.value(), result.committed_count);
}

TEST(ParallelDriverTest, SingleThreadRunCommitsEverything) {
  // One thread drives transactions strictly one-after-another: no
  // concurrency, so nothing can block or abort, and every transaction
  // commits.
  SimWorkload workload = MakeDesignWorkload(ContentionParams(11));
  ParallelDriver driver(DriverConfig(1, nullptr));
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ParallelRunResult result = driver.Run(workload, &store, &cep);
  EXPECT_TRUE(result.all_committed);
  EXPECT_EQ(result.committed_count, static_cast<int>(workload.txs.size()));
  EXPECT_EQ(result.total_aborts, 0);
  Status verdict =
      VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload));
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ParallelDriverTest, RepeatedRunsStayCorrect) {
  // Interleavings differ run to run; correctness must not.
  for (uint64_t seed : {3, 4, 5}) {
    SimWorkload workload = MakeDesignWorkload(ContentionParams(seed));
    ParallelDriver driver(DriverConfig(3, nullptr));
    std::shared_ptr<VersionStore> store;
    std::shared_ptr<CorrectExecutionProtocol> cep;
    ParallelRunResult result = driver.Run(workload, &store, &cep);
    EXPECT_FALSE(result.watchdog_expired) << "seed " << seed;
    Status verdict =
        VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload));
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << ": " << verdict.ToString();
  }
}

}  // namespace
}  // namespace nonserial
