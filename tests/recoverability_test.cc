#include <gtest/gtest.h>

#include "classes/recoverability.h"
#include "common/random.h"
#include "workload/schedule_gen.h"

namespace nonserial {
namespace {

Schedule Parse(const std::string& text) {
  auto s = ParseSchedule(text);
  EXPECT_TRUE(s.ok()) << text;
  return std::move(s).value();
}

TEST(CommitPointsTest, AfterLastOpShape) {
  Schedule s = Parse("R1(x) W2(x) W1(x)");
  CommitPoints commits = CommitsAfterLastOp(s);
  EXPECT_EQ(commits.position[0], 3);  // t1's last op at index 2.
  EXPECT_EQ(commits.position[1], 2);  // t2's last op at index 1.
  EXPECT_TRUE(ValidateCommitPoints(s, commits).ok());
}

TEST(CommitPointsTest, AtEndRespectsOrder) {
  Schedule s = Parse("W1(x) W2(x)");
  CommitPoints commits = CommitsAtEnd(s, {1, 0});  // t2 commits first.
  EXPECT_LT(commits.position[1], commits.position[0]);
  EXPECT_TRUE(ValidateCommitPoints(s, commits).ok());
}

TEST(CommitPointsTest, PrematureCommitRejected) {
  Schedule s = Parse("R1(x) W1(x)");
  CommitPoints commits;
  commits.position = {1};  // Before t1's last op.
  EXPECT_FALSE(ValidateCommitPoints(s, commits).ok());
}

TEST(RecoverabilityTest, CleanScheduleIsStrict) {
  // t1 finishes and commits before t2 touches x.
  Schedule s = Parse("R1(x) W1(x) R2(x) W2(x)");
  CommitPoints commits = CommitsAfterLastOp(s);
  RecoveryClassification r = ClassifyRecovery(s, commits);
  EXPECT_TRUE(r.recoverable);
  EXPECT_TRUE(r.cascadeless);
  EXPECT_TRUE(r.strict);
}

TEST(RecoverabilityTest, DirtyReadWithLateSourceCommitIsRcOnly) {
  // t2 reads t1's uncommitted write, but t1 commits before t2 does:
  // recoverable, not cascadeless.
  Schedule s = Parse("W1(x) R2(x) W2(y)");
  CommitPoints commits;
  commits.position = {3, 4};  // t1 commits at 3, t2 at 4.
  RecoveryClassification r = ClassifyRecovery(s, commits);
  EXPECT_TRUE(r.recoverable);
  EXPECT_FALSE(r.cascadeless);
  EXPECT_FALSE(r.strict);
}

TEST(RecoverabilityTest, ReaderCommittingFirstIsNotRecoverable) {
  // t2 reads from t1 and commits before t1: if t1 aborts, t2's committed
  // result is based on a value that never existed.
  Schedule s = Parse("W1(x) R2(x)");
  CommitPoints commits;
  commits.position = {4, 3};  // t2 commits before t1.
  RecoveryClassification r = ClassifyRecovery(s, commits);
  EXPECT_FALSE(r.recoverable);
  EXPECT_FALSE(r.cascadeless);
  EXPECT_FALSE(r.strict);
}

TEST(RecoverabilityTest, DirtyOverwriteBreaksStrictnessOnly) {
  // t2 overwrites t1's uncommitted value but reads nothing from it.
  Schedule s = Parse("W1(x) W2(x)");
  CommitPoints commits;
  commits.position = {3, 4};
  RecoveryClassification r = ClassifyRecovery(s, commits);
  EXPECT_TRUE(r.recoverable);   // No reads-from at all.
  EXPECT_TRUE(r.cascadeless);
  EXPECT_FALSE(r.strict);       // Before-image UNDO would be wrong.
}

TEST(RecoverabilityTest, OwnWritesNeverDirty) {
  Schedule s = Parse("W1(x) R1(x) W1(x)");
  CommitPoints commits = CommitsAfterLastOp(s);
  RecoveryClassification r = ClassifyRecovery(s, commits);
  EXPECT_TRUE(r.strict);
}

TEST(RecoverabilityTest, InitialReadsAlwaysClean) {
  Schedule s = Parse("R1(x) R2(x)");
  CommitPoints commits = CommitsAfterLastOp(s);
  EXPECT_TRUE(ClassifyRecovery(s, commits).strict);
}

// Property: ST => ACA => RC on random schedules and random commit points.
class RecoveryHierarchyTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryHierarchyTest, HierarchyHolds) {
  Rng rng(GetParam());
  ScheduleGenParams params;
  params.num_txs = 3;
  params.num_entities = 2;
  params.ops_per_tx = 3;
  for (int i = 0; i < 200; ++i) {
    Schedule s = RandomSchedule(params, &rng);
    // Random commit order at the end.
    std::vector<TxId> order = {0, 1, 2};
    rng.Shuffle(&order);
    CommitPoints commits = CommitsAtEnd(s, order);
    RecoveryClassification r = ClassifyRecovery(s, commits);
    EXPECT_TRUE(!r.strict || r.cascadeless) << s.ToString();
    EXPECT_TRUE(!r.cascadeless || r.recoverable) << s.ToString();
    // With commits immediately after the last op, the hierarchy holds too.
    RecoveryClassification r2 =
        ClassifyRecovery(s, CommitsAfterLastOp(s));
    EXPECT_TRUE(!r2.strict || r2.cascadeless) << s.ToString();
    EXPECT_TRUE(!r2.cascadeless || r2.recoverable) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryHierarchyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(RecoverabilityTest, PaperMotivation_SerializableButNotRecoverable) {
  // The paper's intro: serializable schedules include non-recoverable ones.
  // W1(x) R2(x) W2(y) with t2 committing first is view-serializable
  // (t1, t2) yet not recoverable.
  Schedule s = Parse("W1(x) R2(x) W2(y)");
  CommitPoints commits;
  commits.position = {5, 4};  // t2 first.
  EXPECT_FALSE(IsRecoverable(s, commits));
}

TEST(RecoverabilityTest, ToStringRendersFlags) {
  RecoveryClassification r;
  r.recoverable = true;
  EXPECT_EQ(r.ToString(), "RC - -");
}

}  // namespace
}  // namespace nonserial
