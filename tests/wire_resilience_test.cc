// Fault-tolerance layer tests: the net.* failpoint catalog on the server's
// send path, the RetryingClient's reconnect/backoff/resend machinery, the
// exactly-once commit-token protocol (including across crash recovery),
// session leases, and engine-level transaction retirement. The full
// randomized sweep lives in tools/wire_chaos (gated in CI); these are the
// deterministic single-fault versions of each ingredient.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/wal.h"

namespace nonserial {
namespace {

Predicate Wide() {
  Predicate p;
  for (EntityId e = 0; e < 2; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, 1'000)}));
  }
  return p;
}

/// Arms `name` to fire exactly once, skipping the first `skip` evaluations.
ScopedFailpoint FireOnce(const std::string& name, int64_t skip = 0) {
  FailpointSpec spec;
  spec.probability = 1.0;
  spec.skip_first = skip;
  spec.max_fires = 1;
  return ScopedFailpoint(name, spec);
}

class WireResilienceTest : public ::testing::Test {
 protected:
  void StartServer(int64_t lease_ms = 0, bool retire = true) {
    wal_ = std::make_unique<WriteAheadLog>(ValueVector{50, 50});
    EngineOptions options;
    options.initial = {50, 50};
    options.wal = wal_.get();
    options.retire_terminated_tx = retire;
    options.protocol.metrics = &metrics_;
    options.poll_us = 100;
    options.max_poll_us = 1'000;
    engine_ = std::make_unique<Engine>(std::move(options));
    ServerOptions server_options;
    server_options.lease_ms = lease_ms;
    server_ = std::make_unique<SessionServer>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    FailpointRegistry::Global().DisarmAll();
    if (engine_ != nullptr) engine_->Shutdown();
    if (server_ != nullptr) server_->Stop();
  }

  RetryingClientOptions RetryOptions() {
    RetryingClientOptions options;
    options.port = server_->port();
    options.op_deadline_ms = 200;
    options.backoff_base_us = 100;
    options.backoff_max_us = 2'000;
    options.seed = 7;
    return options;
  }

  ProtocolMetrics metrics_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<SessionServer> server_;
};

TEST_F(WireResilienceTest, RetryingClientCompletesWithoutFaults) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  for (int i = 0; i < 3; ++i) {
    StatusOr<int> tx = client.Begin("plain", {});
    ASSERT_TRUE(tx.ok()) << tx.status().ToString();
    StatusOr<Value> v = client.Read(0);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(client.Write(0, 60 + i).ok());
    ASSERT_TRUE(client.Commit().ok());
  }
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{62, 50}));
  EXPECT_EQ(client.stats().reconnects, 1);  // The lazy initial connect only.
  EXPECT_EQ(client.stats().transport_errors, 0);
}

TEST_F(WireResilienceTest, DroppedResponseFrameIsRetriedTransparently) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  // Drop the BEGIN ack: the client times out the receive, reconnects,
  // re-stages its predicates, and retries — the caller never notices.
  auto drop = FireOnce("net.drop_frame", /*skip=*/1);
  StatusOr<int> tx = client.Begin("dropped", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Write(0, 70).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_GE(client.stats().transport_errors, 1);
  EXPECT_GE(client.stats().reconnects, 2);
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 70);
}

TEST_F(WireResilienceTest, CorruptFrameDisconnectsButClientRecovers) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  auto corrupt = FireOnce("net.corrupt_frame");
  StatusOr<int> tx = client.Begin("corrupted", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Write(1, 75).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_GE(client.stats().transport_errors, 1);
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[1], 75);
}

TEST_F(WireResilienceTest, PartialWriteTearsConnectionMidFrame) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  auto tear = FireOnce("net.partial_write");
  StatusOr<int> tx = client.Begin("torn", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Write(0, 80).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_GE(client.stats().transport_errors, 1);
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 80);
}

TEST_F(WireResilienceTest, LostCommitAckIsAnsweredFromTokenTable) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  StatusOr<int> tx = client.Begin("acked_once", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Write(0, 90).ok());
  // The commit executes and commits durably server-side, but the ack is
  // never sent and the connection drops. The resend (same token) must be
  // answered from the token table — not re-executed.
  auto lost_ack = FireOnce("net.disconnect_before_commit_ack");
  int64_t retries_before = metrics_.server_retries.value();
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(client.stats().commit_resends, 1);
  EXPECT_EQ(client.stats().commit_replays, 1);
  EXPECT_EQ(metrics_.server_retries.value(), retries_before + 1);
  // Exactly one apply: the committed value landed once.
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 90);
  int committed_tx = -1;
  EXPECT_EQ(engine_->LookupCommitToken(client.last_commit_token(),
                                       &committed_tx),
            Engine::TokenState::kCommitted);
  EXPECT_EQ(committed_tx, *tx);
}

TEST_F(WireResilienceTest, CommitTokenSurvivesCrashRecovery) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(client.Begin("durable", {}).ok());
  ASSERT_TRUE(client.Write(0, 95).ok());
  ASSERT_TRUE(client.Commit().ok());
  uint64_t token = client.last_commit_token();
  int committed_tx = client.tx();
  client.Disconnect();

  // Crash-kill + recover: the token table is rebuilt from the WAL's
  // kCommitToken records, so a resend after restart still replays.
  server_->Stop();
  RecoveryResult rec = engine_->CrashRecover(RecoveryOptions{});
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].commit_token, token);
  server_ = std::make_unique<SessionServer>(engine_.get(), ServerOptions{});
  ASSERT_TRUE(server_->Start().ok());

  Client raw;
  ASSERT_TRUE(raw.Connect("127.0.0.1", server_->port()).ok());
  // Resending the committed token on a brand-new session (no open
  // transaction) replays the original verdict and tx id.
  wire::Request request;
  request.type = wire::MsgType::kCommit;
  request.token = token;
  StatusOr<wire::Response> response = raw.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk);
  EXPECT_EQ(response->value, committed_tx);
  // An unknown token on the same idle session means "never committed".
  request.token = token + 1;
  response = raw.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, StatusCode::kFailedPrecondition);
}

TEST_F(WireResilienceTest, LeaseReclaimsAbandonedSession) {
  StartServer(/*lease_ms=*/30);
  Client abandoned;
  ASSERT_TRUE(abandoned.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<int> tx = abandoned.Begin("silent", {}, Wide(), Wide());
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_EQ(engine_->inflight(), 1);
  // Client goes silent; the lease sweep must close the connection, roll
  // the transaction back, and release the admission slot.
  bool reclaimed = false;
  for (int i = 0; i < 400 && !reclaimed; ++i) {
    reclaimed =
        server_->active_connections() == 0 && engine_->inflight() == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(reclaimed);
  EXPECT_GE(metrics_.server_lease_expired.value(), 1);
}

TEST_F(WireResilienceTest, ActiveSessionOutlivesItsLease) {
  StartServer(/*lease_ms=*/200);
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  // Keep pausing for a fraction of the lease between requests: activity
  // renews the lease, so a live conversation is never reclaimed.
  for (int i = 0; i < 4; ++i) {
    StatusOr<int> tx = client.Begin("alive", {});
    ASSERT_TRUE(tx.ok()) << tx.status().ToString();
    ASSERT_TRUE(client.Write(0, 60 + i).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ASSERT_TRUE(client.Commit().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_EQ(metrics_.server_lease_expired.value(), 0);
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 63);
}

TEST_F(WireResilienceTest, CommittedSessionTransactionsRetire) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  constexpr int kTxs = 20;
  for (int i = 0; i < kTxs; ++i) {
    ASSERT_TRUE(client.Begin("churn", {}).ok());
    ASSERT_TRUE(client.Write(0, 100 + i).ok());
    ASSERT_TRUE(client.Commit().ok());
  }
  // Every committed, independent transaction is immediately eligible: the
  // live scan set stays O(1) instead of O(total transactions).
  EXPECT_EQ(metrics_.engine_retired_tx.value(), kTxs);
  EXPECT_EQ(engine_->cep()->stats().retired, kTxs);
  for (int tx = 0; tx < kTxs; ++tx) {
    EXPECT_TRUE(engine_->controller()->IsRetired(tx)) << "tx " << tx;
  }
  // Retired ids are terminal: naming one as a predecessor is rejected.
  StatusOr<int> tx = client.Begin("late", {0});
  EXPECT_EQ(tx.status().code(), StatusCode::kInvalidArgument);
  // And the store still serves the latest committed value.
  ASSERT_TRUE(client.Begin("reader", {}).ok());
  StatusOr<Value> v = client.Read(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100 + kTxs - 1);
  ASSERT_TRUE(client.Commit().ok());
}

TEST_F(WireResilienceTest, IdenticallySeededClientsDrawDistinctTokens) {
  StartServer();
  // Two clients with byte-identical options (same seed, as two processes
  // running the defaults would): their commit tokens must still differ.
  // The server's token table is keyed by token alone, so a shared stream
  // would answer one client's commit with the other's verdict — silently
  // dropping its writes while reporting OK.
  RetryingClient a(RetryOptions());
  RetryingClient b(RetryOptions());
  ASSERT_TRUE(a.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(b.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(a.Begin("a", {}).ok());
  ASSERT_TRUE(a.Write(0, 61).ok());
  ASSERT_TRUE(a.Commit().ok());
  ASSERT_TRUE(b.Begin("b", {}).ok());
  ASSERT_TRUE(b.Write(1, 62).ok());
  ASSERT_TRUE(b.Commit().ok());
  EXPECT_NE(a.last_commit_token(), b.last_commit_token());
  // Both commits applied — neither was mistaken for a replay of the other.
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{61, 62}));
}

TEST_F(WireResilienceTest, DeterministicTokensAreAnExplicitOptIn) {
  StartServer();
  RetryingClientOptions options = RetryOptions();
  options.deterministic_tokens = true;
  RetryingClient a(options);
  ASSERT_TRUE(a.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(a.Begin("a", {}).ok());
  ASSERT_TRUE(a.Write(0, 64).ok());
  ASSERT_TRUE(a.Commit().ok());
  // Same seed, same stream: a replay harness reproduces the exact token
  // sequence. This is also why live clients must not share a seed in this
  // mode — b's identical first token is answered from the token table as
  // a replay of a's commit, and b's write never applies.
  RetryingClient b(options);
  ASSERT_TRUE(b.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(b.Begin("b", {}).ok());
  ASSERT_TRUE(b.Write(1, 65).ok());
  ASSERT_TRUE(b.Commit().ok());
  EXPECT_EQ(b.last_commit_token(), a.last_commit_token());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{64, 50}));
}

TEST_F(WireResilienceTest, NonAbortingErrorKeepsTransactionOpen) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(client.Begin("survivor", {}).ok());
  // An out-of-range entity is a per-request error: the server answers
  // kInvalidArgument and keeps the transaction open. The client must not
  // declare the transaction dead, or the two ends desync (the server still
  // holds the open transaction and its admission slot, and the client's
  // next Begin would bounce off "session already has an open transaction").
  StatusOr<Value> bad_read = client.Read(99);
  EXPECT_EQ(bad_read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.in_transaction());
  Status bad_write = client.Write(99, 1);
  EXPECT_EQ(bad_write.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.in_transaction());
  // The same transaction carries on and commits.
  ASSERT_TRUE(client.Write(0, 55).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 55);
}

TEST_F(WireResilienceTest, UnresolvedCommitStaysResolvable) {
  StartServer();
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(client.Begin("unresolved", {}).ok());
  ASSERT_TRUE(client.Write(0, 77).ok());
  // Kill the server: every commit attempt dies in transport and the retry
  // budget runs out with the verdict genuinely unknown.
  int port = server_->port();
  server_->Stop();
  Status commit = client.Commit();
  EXPECT_EQ(commit.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(client.commit_pending());
  uint64_t token = client.last_commit_token();
  EXPECT_NE(token, 0u);
  // Until the verdict resolves, new work and aborts are refused — the
  // commit may or may not have applied, and only its token can tell.
  EXPECT_EQ(client.Begin("next", {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.Abort().code(), StatusCode::kFailedPrecondition);
  // Restart on the same port; Commit() resumes with the *same* token and
  // learns the truth: the transaction died with its server session, so it
  // never committed.
  ServerOptions server_options;
  server_options.port = port;
  Status start;
  for (int i = 0; i < 100; ++i) {
    server_ = std::make_unique<SessionServer>(engine_.get(), server_options);
    start = server_->Start();
    if (start.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(start.ok()) << start.ToString();
  commit = client.Commit();
  EXPECT_EQ(commit.code(), StatusCode::kAborted);
  EXPECT_FALSE(client.commit_pending());
  EXPECT_EQ(client.last_commit_token(), token);
  // The session is whole again: a fresh transaction commits normally.
  ASSERT_TRUE(client.Begin("after", {}).ok());
  ASSERT_TRUE(client.Write(0, 78).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot()[0], 78);
}

TEST_F(WireResilienceTest, CommitTokenClaimIsExclusive) {
  StartServer();
  // Engine-level exactly-once: the token claim in Session::Commit is
  // atomic, so a second transaction presenting an already-used token is
  // shed before it executes — the server does not depend on client
  // discipline (or the wire pre-check) to prevent a double apply.
  engine::TxSpec spec;
  spec.name = "claimer";
  spec.input = Wide();
  spec.output = Wide();
  std::unique_ptr<Session> s1 = engine_->OpenSession();
  ASSERT_TRUE(s1->Begin(spec).ok());
  ASSERT_TRUE(s1->Write(0, 71).ok());
  ASSERT_TRUE(s1->Commit(/*token=*/1234).ok());
  std::unique_ptr<Session> s2 = engine_->OpenSession();
  spec.name = "loser";
  ASSERT_TRUE(s2->Begin(spec).ok());
  ASSERT_TRUE(s2->Write(1, 72).ok());
  Status reuse = s2->Commit(/*token=*/1234);
  EXPECT_EQ(reuse.code(), StatusCode::kResourceExhausted);
  // The shed commit did not execute and did not kill the transaction: the
  // same transaction commits under its own token.
  EXPECT_TRUE(s2->in_transaction());
  ASSERT_TRUE(s2->Commit(/*token=*/5678).ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{71, 72}));
  int committed_tx = -1;
  ASSERT_EQ(engine_->LookupCommitToken(1234, &committed_tx),
            Engine::TokenState::kCommitted);
  EXPECT_EQ(committed_tx, s1->tx());
}

TEST_F(WireResilienceTest, RetirementOffByDefaultKeepsIdsLive) {
  StartServer(/*lease_ms=*/0, /*retire=*/false);
  RetryingClient client(RetryOptions());
  ASSERT_TRUE(client.StagePredicates(Wide(), Wide()).ok());
  ASSERT_TRUE(client.Begin("first", {}).ok());
  ASSERT_TRUE(client.Write(0, 70).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(metrics_.engine_retired_tx.value(), 0);
  EXPECT_FALSE(engine_->controller()->IsRetired(0));
  // Without retirement, committed ids remain valid P-predecessors.
  StatusOr<int> tx = client.Begin("second", {0});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Commit().ok());
}

}  // namespace
}  // namespace nonserial
