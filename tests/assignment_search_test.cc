#include <gtest/gtest.h>

#include "common/random.h"
#include "predicate/assignment_search.h"

namespace nonserial {
namespace {

Predicate RangePredicate(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TEST(AssignmentSearchTest, TruePredicateTrivial) {
  std::vector<std::vector<Value>> candidates = {{1, 2}, {3}};
  auto choice = FindSatisfyingAssignment(Predicate::True(), candidates);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ((*choice)[0], 0);  // Unconstrained entities keep choice 0.
  EXPECT_EQ((*choice)[1], 0);
}

TEST(AssignmentSearchTest, PicksSatisfyingVersion) {
  std::vector<std::vector<Value>> candidates = {{5, 50, 500}};
  auto choice = FindSatisfyingAssignment(RangePredicate(0, 10, 100),
                                         candidates);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ((*choice)[0], 1);  // Value 50.
}

TEST(AssignmentSearchTest, UnsatisfiableReturnsNullopt) {
  std::vector<std::vector<Value>> candidates = {{5, 500}};
  EXPECT_FALSE(
      FindSatisfyingAssignment(RangePredicate(0, 10, 100), candidates)
          .has_value());
}

TEST(AssignmentSearchTest, CrossEntityConstraint) {
  // Need x < y; versions x in {9, 3}, y in {2, 5}.
  Predicate p;
  p.AddClause(Clause({EntityVsEntity(0, CompareOp::kLt, 1)}));
  std::vector<std::vector<Value>> candidates = {{9, 3}, {2, 5}};
  auto choice = FindSatisfyingAssignment(p, candidates);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(candidates[0][(*choice)[0]], 3);
  EXPECT_EQ(candidates[1][(*choice)[1]], 5);
}

TEST(AssignmentSearchTest, EmptyCandidateListFails) {
  std::vector<std::vector<Value>> candidates = {{}};
  EXPECT_FALSE(FindSatisfyingAssignment(RangePredicate(0, 0, 10), candidates)
                   .has_value());
}

TEST(AssignmentSearchTest, PredicateMentionsUnknownEntityFails) {
  std::vector<std::vector<Value>> candidates = {{1}};
  EXPECT_FALSE(FindSatisfyingAssignment(RangePredicate(3, 0, 10), candidates)
                   .has_value());
}

TEST(AssignmentSearchTest, ExhaustiveAndPrunedAgree) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(4));
    std::vector<std::vector<Value>> candidates(n);
    for (int e = 0; e < n; ++e) {
      int k = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < k; ++i) {
        candidates[e].push_back(rng.UniformInt(0, 9));
      }
    }
    Predicate p;
    int num_clauses = 1 + static_cast<int>(rng.Uniform(4));
    for (int c = 0; c < num_clauses; ++c) {
      Clause clause;
      int atoms = 1 + static_cast<int>(rng.Uniform(3));
      for (int a = 0; a < atoms; ++a) {
        EntityId lhs = static_cast<EntityId>(rng.Uniform(n));
        CompareOp op = static_cast<CompareOp>(rng.Uniform(6));
        if (rng.Bernoulli(0.5)) {
          clause.AddAtom(
              EntityVsEntity(lhs, op, static_cast<EntityId>(rng.Uniform(n))));
        } else {
          clause.AddAtom(EntityVsConst(lhs, op, rng.UniformInt(0, 9)));
        }
      }
      p.AddClause(std::move(clause));
    }
    auto pruned =
        FindSatisfyingAssignment(p, candidates, SearchMode::kPruned);
    auto exhaustive =
        FindSatisfyingAssignment(p, candidates, SearchMode::kExhaustive);
    EXPECT_EQ(pruned.has_value(), exhaustive.has_value())
        << "trial " << trial << " predicate " << p.ToString();
  }
}

TEST(AssignmentSearchTest, PruningVisitsFewerNodes) {
  // A predicate falsified early: pruning should cut the cartesian space.
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kEq, -1)}));  // Impossible.
  for (EntityId e = 1; e < 8; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
  }
  std::vector<std::vector<Value>> candidates(8, std::vector<Value>{0, 1, 2});
  SearchStats pruned_stats, exhaustive_stats;
  EXPECT_FALSE(FindSatisfyingAssignment(p, candidates, SearchMode::kPruned,
                                        &pruned_stats)
                   .has_value());
  EXPECT_FALSE(FindSatisfyingAssignment(
                   p, candidates, SearchMode::kExhaustive, &exhaustive_stats)
                   .has_value());
  EXPECT_LT(pruned_stats.nodes_visited, exhaustive_stats.nodes_visited);
  EXPECT_EQ(exhaustive_stats.nodes_visited, 6561);  // 3^8 leaves.
}

TEST(IndexedSearchTest, AgreesWithPrunedOnRandomInstances) {
  Rng rng(271828);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(4));
    std::vector<std::vector<Value>> candidates(n);
    for (int e = 0; e < n; ++e) {
      int k = 1 + static_cast<int>(rng.Uniform(5));
      for (int i = 0; i < k; ++i) candidates[e].push_back(rng.UniformInt(0, 9));
    }
    Predicate p;
    int num_clauses = 1 + static_cast<int>(rng.Uniform(5));
    for (int c = 0; c < num_clauses; ++c) {
      Clause clause;
      int atoms = 1 + static_cast<int>(rng.Uniform(2));  // Many unit clauses.
      for (int a = 0; a < atoms; ++a) {
        EntityId lhs = static_cast<EntityId>(rng.Uniform(n));
        CompareOp op = static_cast<CompareOp>(rng.Uniform(6));
        clause.AddAtom(EntityVsConst(lhs, op, rng.UniformInt(0, 9)));
      }
      p.AddClause(std::move(clause));
    }
    auto indexed =
        FindSatisfyingAssignment(p, candidates, SearchMode::kIndexed);
    auto pruned =
        FindSatisfyingAssignment(p, candidates, SearchMode::kPruned);
    ASSERT_EQ(indexed.has_value(), pruned.has_value()) << p.ToString();
    if (indexed.has_value()) {
      // The mapped-back choice satisfies the predicate on original lists.
      ValueVector values(n);
      for (int e = 0; e < n; ++e) values[e] = candidates[e][(*indexed)[e]];
      EXPECT_TRUE(p.Eval(values)) << p.ToString();
    }
  }
}

TEST(IndexedSearchTest, FilterPrunesBeforeSearching) {
  // A predicate that is unit-refutable: index filtering alone detects the
  // contradiction, with zero search nodes.
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 5)}));
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 3)}));
  std::vector<std::vector<Value>> candidates = {{0, 2, 4, 6, 8}};
  SearchStats stats;
  EXPECT_FALSE(FindSatisfyingAssignment(p, candidates, SearchMode::kIndexed,
                                        &stats)
                   .has_value());
  EXPECT_EQ(stats.nodes_visited, 0);
}

TEST(IndexedSearchTest, ConstantOnLeftHandled) {
  // 5 <= e0 filters just like e0 >= 5.
  Predicate p;
  p.AddClause(Clause({MakeAtom(Term::Constant(5), CompareOp::kLe,
                               Term::Entity(0))}));
  std::vector<std::vector<Value>> candidates = {{1, 7}};
  auto choice = FindSatisfyingAssignment(p, candidates, SearchMode::kIndexed);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(candidates[0][(*choice)[0]], 7);
}

TEST(AssignmentSearchTest, StatsCountNodes) {
  std::vector<std::vector<Value>> candidates = {{1, 2}, {3, 4}};
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  p.AddClause(Clause({EntityVsConst(1, CompareOp::kGe, 0)}));
  SearchStats stats;
  ASSERT_TRUE(FindSatisfyingAssignment(p, candidates, SearchMode::kPruned,
                                       &stats)
                  .has_value());
  EXPECT_GT(stats.nodes_visited, 0);
}

}  // namespace
}  // namespace nonserial
