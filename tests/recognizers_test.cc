#include <gtest/gtest.h>

#include "classes/recognizers.h"
#include "common/random.h"
#include "workload/schedule_gen.h"

namespace nonserial {
namespace {

Schedule Parse(const std::string& text) {
  auto s = ParseSchedule(text);
  EXPECT_TRUE(s.ok()) << text;
  return std::move(s).value();
}

// Objects "x and y in different conjuncts".
ObjectSetList SplitXY(const Schedule& s) {
  ObjectSetList objects;
  for (EntityId e = 0; e < s.num_entities(); ++e) objects.push_back({e});
  return objects;
}

// One object covering every entity.
ObjectSetList OneObject(const Schedule& s) {
  std::set<EntityId> all;
  for (EntityId e = 0; e < s.num_entities(); ++e) all.insert(e);
  return {all};
}

// --- Serial and trivially serializable schedules -----------------------

TEST(RecognizersTest, SerialScheduleInEveryClass) {
  Schedule s = Parse("R1(x) W1(x) R2(x) W2(x)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_TRUE(m.csr && m.vsr && m.mvcsr && m.mvsr && m.pwcsr && m.pwsr &&
              m.cpc && m.pc);
}

TEST(RecognizersTest, EmptyScheduleInEveryClass) {
  Schedule s;
  ClassMembership m = ClassifyAll(s, {});
  EXPECT_TRUE(m.csr && m.vsr && m.mvcsr && m.mvsr && m.pwcsr && m.pwsr &&
              m.cpc && m.pc);
}

// --- The paper's Figure 2 regions --------------------------------------

// Region 1: fully interleaved read-write pair — in no class at all.
TEST(Figure2Test, Region1NonCpc) {
  Schedule s = Parse("R1(x) R2(x) W1(x) W2(x)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
  EXPECT_FALSE(m.mvcsr);
  EXPECT_FALSE(m.mvsr);
  EXPECT_FALSE(m.pwcsr);
  EXPECT_FALSE(m.pwsr);
  EXPECT_FALSE(m.cpc);
  EXPECT_FALSE(m.pc);
}

// Region 2: in CPC (per-conjunct read-before-write graphs acyclic) but in
// none of PWCSR, MVCSR, SR.
TEST(Figure2Test, Region2CpcOnly) {
  Schedule s = Parse("R1(y) R2(x) W1(x) W2(x) W2(y) W1(y)");
  ObjectSetList objects = SplitXY(s);
  ClassMembership m = ClassifyAll(s, objects);
  EXPECT_TRUE(m.cpc);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.pwcsr);
  EXPECT_FALSE(m.mvcsr);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
  EXPECT_FALSE(m.mvsr);
  EXPECT_FALSE(m.pwsr);
}

// Region 3: per-conjunct serializable with *different* serialization orders
// (x: t1 then t2; y: t2 then t1) — PWCSR but neither SR nor MVCSR.
TEST(Figure2Test, Region3PwcsrNotSrNotMvcsr) {
  Schedule s = Parse("R1(x) W1(x) R2(y) W2(y) R2(x) W2(x) R1(y) W1(y)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_TRUE(m.pwcsr);
  EXPECT_TRUE(m.pwsr);
  EXPECT_TRUE(m.cpc);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
  EXPECT_FALSE(m.mvcsr);
  EXPECT_FALSE(m.mvsr);
}

// Region 4 = the paper's Example 1: in PWCSR ∩ MVCSR (hence MVSR) but not
// SR — t2 reads x from t1 while t1 reads y "around" t2 via an old version.
TEST(Figure2Test, Region4Example1) {
  Schedule s = Parse("R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_TRUE(m.mvcsr);
  EXPECT_TRUE(m.mvsr);
  EXPECT_TRUE(m.pwcsr);
  EXPECT_TRUE(m.pwsr);
  EXPECT_TRUE(m.cpc);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
}

// Region 5: view serializable thanks to a dead write, but not conflict
// serializable, and (single object) not PWCSR.
TEST(Figure2Test, Region5SrNotPwcsr) {
  Schedule s = Parse("R1(x) W2(x) W1(x) W3(x)");
  ClassMembership m = ClassifyAll(s, OneObject(s));
  EXPECT_TRUE(m.vsr);
  EXPECT_TRUE(m.mvsr);
  EXPECT_TRUE(m.mvcsr);
  EXPECT_TRUE(m.cpc);  // Single-object CPC = MVCSR here.
  EXPECT_TRUE(m.pwsr);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.pwcsr);
}

// Region 6: view serializable but outside MVCSR — a read-before-write cycle
// between t1 and t3 that view equivalence (via the dead write of t2)
// tolerates. Objects: one conjunct covering both x and y.
TEST(Figure2Test, Region6SrNotMvcsr) {
  Schedule s = Parse("R3(y) W2(x) R1(x) W3(x) W1(y) W1(x)");
  ClassMembership m = ClassifyAll(s, OneObject(s));
  EXPECT_TRUE(m.vsr);
  EXPECT_TRUE(m.mvsr);
  EXPECT_TRUE(m.pwsr);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.mvcsr);
  EXPECT_FALSE(m.cpc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.pwcsr);
}

// Region 7: a write slipped between a read and the reader's own write — in
// MVCSR (the old version serves the reader) but in neither SR nor PWCSR.
TEST(Figure2Test, Region7MvcsrNotPwcsrNotSr) {
  Schedule s = Parse("R1(x) W2(x) W1(x)");
  ClassMembership m = ClassifyAll(s, OneObject(s));
  EXPECT_TRUE(m.mvcsr);
  EXPECT_TRUE(m.mvsr);
  EXPECT_TRUE(m.cpc);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
  EXPECT_FALSE(m.pwcsr);
  EXPECT_FALSE(m.pwsr);
}

// Region 8: multiversion serializable and MV conflict serializable — the
// final read of y may take t2's version — but not conflict serializable
// (and here not view serializable either, since single-version final state
// pins y to t1).
TEST(Figure2Test, Region8MvsrAndMvcsrNotCsr) {
  Schedule s = Parse("R1(x) R2(x) W1(x) W1(y) W2(y) W3(x)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_TRUE(m.mvsr);
  EXPECT_TRUE(m.mvcsr);
  EXPECT_TRUE(m.cpc);
  EXPECT_TRUE(m.pc);
  EXPECT_FALSE(m.csr);
  EXPECT_FALSE(m.vsr);
}

// Region 9: all conflicts resolved in the same order — plain CSR, hence in
// every class.
TEST(Figure2Test, Region9Csr) {
  Schedule s = Parse("R1(x) W1(x) R2(x) R1(y) W1(y) R2(y) W2(y)");
  ClassMembership m = ClassifyAll(s, SplitXY(s));
  EXPECT_TRUE(m.csr && m.vsr && m.mvcsr && m.mvsr && m.pwcsr && m.pwsr &&
              m.cpc && m.pc);
}

// Examples 3a / 3b: the per-conjunct decompositions of Example 2 are serial
// schedules.
TEST(Figure2Test, Example3DecompositionsAreSerial) {
  Schedule s = Parse("R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)");
  EntityId x = 0, y = 1;
  Schedule sx = s.ProjectEntities({x});
  Schedule sy = s.ProjectEntities({y});
  EXPECT_TRUE(IsConflictSerializable(sx));
  EXPECT_TRUE(IsConflictSerializable(sy));
  EXPECT_TRUE(IsViewSerializable(sx));
  EXPECT_TRUE(IsViewSerializable(sy));
}

// --- Witness orders ------------------------------------------------------

TEST(RecognizersTest, CsrWitnessIsTopologicalOrder) {
  Schedule s = Parse("R1(x) W1(x) R2(x)");
  std::vector<TxId> witness;
  ASSERT_TRUE(IsConflictSerializable(s, &witness));
  EXPECT_EQ(witness, (std::vector<TxId>{0, 1}));
}

TEST(RecognizersTest, MvsrWitnessServesAllReads) {
  Schedule s = Parse("R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)");
  std::vector<TxId> witness;
  ASSERT_TRUE(IsMVViewSerializable(s, &witness));
  EXPECT_EQ(witness, (std::vector<TxId>{1, 0}));  // t2 then t1.
}

// --- Containment properties over random schedules ------------------------

class ContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentTest, ClassContainmentsHoldOnRandomSchedules) {
  Rng rng(GetParam());
  ScheduleGenParams params;
  params.num_txs = 3;
  params.num_entities = 3;
  params.ops_per_tx = 3;
  for (int i = 0; i < 60; ++i) {
    Schedule s = RandomSchedule(params, &rng);
    ObjectSetList objects = PartitionObjects(s.num_entities(), 2);
    ClassMembership m = ClassifyAll(s, objects);
    // The containment lattice of Figure 2.
    EXPECT_TRUE(!m.csr || m.vsr) << s.ToString();      // CSR ⊆ SR.
    EXPECT_TRUE(!m.vsr || m.mvsr) << s.ToString();     // SR ⊆ MVSR.
    EXPECT_TRUE(!m.csr || m.mvcsr) << s.ToString();    // CSR ⊆ MVCSR.
    EXPECT_TRUE(!m.mvcsr || m.mvsr) << s.ToString();   // MVCSR ⊆ MVSR.
    EXPECT_TRUE(!m.csr || m.pwcsr) << s.ToString();    // CSR ⊆ PWCSR.
    EXPECT_TRUE(!m.vsr || m.pwsr) << s.ToString();     // SR ⊆ PWSR.
    EXPECT_TRUE(!m.pwcsr || m.pwsr) << s.ToString();   // PWCSR ⊆ PWSR.
    EXPECT_TRUE(!m.mvcsr || m.cpc) << s.ToString();    // MVCSR ⊆ CPC.
    EXPECT_TRUE(!m.pwcsr || m.cpc) << s.ToString();    // PWCSR ⊆ CPC.
    EXPECT_TRUE(!m.cpc || m.pc) << s.ToString();       // CPC ⊆ PC.
    EXPECT_TRUE(!m.mvsr || m.pc) << s.ToString();      // MVSR ⊆ PC.
    EXPECT_TRUE(!m.pwsr || m.pc) << s.ToString();      // PWSR ⊆ PC.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(ContainmentTest, SingletonObjectsMakeEverythingCpcWithoutWwOnly) {
  // With per-entity objects, CPC admits any schedule whose per-entity
  // read-before-write graph is acyclic — strictly more than CSR.
  Schedule s = Parse("R1(x) W1(x) R2(y) W2(y) R2(x) W2(x) R1(y) W1(y)");
  EXPECT_TRUE(IsConflictPredicateCorrect(s, SplitXY(s)));
  EXPECT_FALSE(IsConflictSerializable(s));
}

TEST(RecognizersTest, MembershipToString) {
  ClassMembership m;
  m.csr = true;
  m.cpc = true;
  std::string text = m.ToString();
  EXPECT_NE(text.find("CSR"), std::string::npos);
  EXPECT_NE(text.find("CPC"), std::string::npos);
}

TEST(RecognizersTest, ClassifyAllReportsExactness) {
  Schedule s = Parse("R1(x) W1(x)");
  bool exact = false;
  ClassifyAll(s, OneObject(s), &exact);
  EXPECT_TRUE(exact);
}

TEST(RecognizersTest, ClassifyAllSkipsExactClassesAboveLimit) {
  // 12 active transactions exceed kMaxExactTxs: polynomial classes are
  // still reported, the exponential ones are skipped (false, exact=false).
  Schedule s;
  for (TxId tx = 0; tx < 12; ++tx) {
    s.AppendRead(tx, "x");
  }
  bool exact = true;
  ClassMembership m = ClassifyAll(s, {{0}}, &exact);
  EXPECT_FALSE(exact);
  EXPECT_TRUE(m.csr);    // Reads only: trivially conflict serializable.
  EXPECT_TRUE(m.mvcsr);
  EXPECT_TRUE(m.cpc);
  EXPECT_FALSE(m.vsr);   // Skipped, not computed.
}

// The graphs the recognizers are built on.
TEST(RecognizersTest, ConflictGraphEdges) {
  Schedule s = Parse("R1(x) W2(x) W1(y) R2(y)");
  Digraph g = ConflictGraph(s);
  EXPECT_TRUE(g.HasEdge(0, 1));  // R1(x) before W2(x) and W1(y) before R2(y).
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(RecognizersTest, ReadWriteGraphIgnoresWwAndWr) {
  Schedule s = Parse("W1(x) R2(x) W1(y) W2(y)");
  Digraph g = ReadWriteGraph(s);
  // Only reads-before-writes count; R2(x) has no later write of x.
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(RecognizersTest, ReadWriteGraphRestrictedByEntitySet) {
  Schedule s = Parse("R1(x) W2(x) R2(y) W1(y)");
  std::set<EntityId> x_only = {0};
  std::set<EntityId> y_only = {1};
  EXPECT_TRUE(ReadWriteGraph(s, &x_only).HasEdge(0, 1));
  EXPECT_FALSE(ReadWriteGraph(s, &x_only).HasEdge(1, 0));
  EXPECT_TRUE(ReadWriteGraph(s, &y_only).HasEdge(1, 0));
  EXPECT_TRUE(ReadWriteGraph(s).HasCycle());
}

}  // namespace
}  // namespace nonserial
