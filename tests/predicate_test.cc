#include <gtest/gtest.h>

#include "common/status.h"
#include "predicate/predicate.h"

namespace nonserial {
namespace {

// Resolver for tests: names "a".."e" map to 0..4.
StatusOr<EntityId> TestResolve(const std::string& name) {
  if (name.size() == 1 && name[0] >= 'a' && name[0] <= 'e') {
    return static_cast<EntityId>(name[0] - 'a');
  }
  return Status::NotFound("unknown " + name);
}

TEST(CompareOpTest, AllOperatorsEvaluate) {
  EXPECT_TRUE(EvalCompare(1, CompareOp::kEq, 1));
  EXPECT_TRUE(EvalCompare(1, CompareOp::kNe, 2));
  EXPECT_TRUE(EvalCompare(1, CompareOp::kLt, 2));
  EXPECT_TRUE(EvalCompare(2, CompareOp::kLe, 2));
  EXPECT_TRUE(EvalCompare(3, CompareOp::kGt, 2));
  EXPECT_TRUE(EvalCompare(2, CompareOp::kGe, 2));
  EXPECT_FALSE(EvalCompare(1, CompareOp::kEq, 2));
  EXPECT_FALSE(EvalCompare(2, CompareOp::kLt, 2));
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "!=");
  EXPECT_STREQ(CompareOpName(CompareOp::kLe), "<=");
}

TEST(AtomTest, EntityVsConst) {
  Atom atom = EntityVsConst(0, CompareOp::kGt, 5);
  EXPECT_TRUE(atom.Eval({6, 0}));
  EXPECT_FALSE(atom.Eval({5, 0}));
}

TEST(AtomTest, EntityVsEntity) {
  Atom atom = EntityVsEntity(0, CompareOp::kLe, 1);
  EXPECT_TRUE(atom.Eval({3, 3}));
  EXPECT_TRUE(atom.Eval({2, 3}));
  EXPECT_FALSE(atom.Eval({4, 3}));
}

TEST(AtomTest, CollectEntities) {
  std::set<EntityId> out;
  EntityVsEntity(2, CompareOp::kEq, 4).CollectEntities(&out);
  EXPECT_EQ(out, (std::set<EntityId>{2, 4}));
  out.clear();
  EntityVsConst(1, CompareOp::kEq, 9).CollectEntities(&out);
  EXPECT_EQ(out, (std::set<EntityId>{1}));
}

TEST(ClauseTest, DisjunctionSemantics) {
  Clause clause({EntityVsConst(0, CompareOp::kEq, 1),
                 EntityVsConst(1, CompareOp::kEq, 2)});
  EXPECT_TRUE(clause.Eval({1, 0}));
  EXPECT_TRUE(clause.Eval({0, 2}));
  EXPECT_FALSE(clause.Eval({0, 0}));
}

TEST(ClauseTest, EmptyClauseIsFalse) {
  Clause clause;
  EXPECT_FALSE(clause.Eval({1, 2}));
}

TEST(ClauseTest, ObjectIsEntitySet) {
  Clause clause({EntityVsEntity(0, CompareOp::kLt, 2),
                 EntityVsConst(2, CompareOp::kGe, 0)});
  EXPECT_EQ(clause.Object(), (std::set<EntityId>{0, 2}));
}

TEST(PredicateTest, TrueWhenEmpty) {
  EXPECT_TRUE(Predicate::True().Eval({}));
  EXPECT_TRUE(Predicate::True().IsTrue());
}

TEST(PredicateTest, ConjunctionSemantics) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 10)}));
  EXPECT_TRUE(p.Eval({5}));
  EXPECT_FALSE(p.Eval({-1}));
  EXPECT_FALSE(p.Eval({11}));
}

TEST(PredicateTest, EntitiesUnion) {
  Predicate p;
  p.AddClause(Clause({EntityVsEntity(0, CompareOp::kLt, 1)}));
  p.AddClause(Clause({EntityVsConst(3, CompareOp::kEq, 0)}));
  EXPECT_EQ(p.Entities(), (std::set<EntityId>{0, 1, 3}));
}

TEST(PredicateTest, ObjectsDeduplicated) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 9)}));  // Same object.
  p.AddClause(Clause({EntityVsEntity(0, CompareOp::kLt, 1)}));
  ObjectSetList objects = p.Objects();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0], (std::set<EntityId>{0}));
  EXPECT_EQ(objects[1], (std::set<EntityId>{0, 1}));
}

TEST(PredicateTest, AndConcatenatesClauses) {
  Predicate a, b;
  a.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  b.AddClause(Clause({EntityVsConst(1, CompareOp::kGe, 0)}));
  Predicate both = Predicate::And(a, b);
  EXPECT_EQ(both.clauses().size(), 2u);
  EXPECT_TRUE(both.Eval({0, 0}));
  EXPECT_FALSE(both.Eval({-1, 0}));
}

TEST(PredicateTest, ToStringReadable) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kLt, 5),
                      EntityVsEntity(0, CompareOp::kEq, 1)}));
  EXPECT_EQ(p.ToString(), "(e0 < 5 | e0 = e1)");
  EXPECT_EQ(Predicate::True().ToString(), "true");
}

TEST(ParsePredicateTest, SingleAtom) {
  auto p = ParsePredicate("a < 5", TestResolve);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Eval({4, 0, 0, 0, 0}));
  EXPECT_FALSE(p->Eval({5, 0, 0, 0, 0}));
}

TEST(ParsePredicateTest, FullGrammar) {
  auto p = ParsePredicate("(a <= b | c != 0) & (d >= -2)", TestResolve);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->clauses().size(), 2u);
  EXPECT_TRUE(p->Eval({1, 2, 0, 0, 0}));   // a<=b, d>=-2.
  EXPECT_TRUE(p->Eval({3, 2, 7, 0, 0}));   // c!=0, d>=-2.
  EXPECT_FALSE(p->Eval({3, 2, 0, 0, 0}));  // First clause fails.
  EXPECT_FALSE(p->Eval({1, 2, 0, -3, 0}));
}

TEST(ParsePredicateTest, TrueAndEmptyTexts) {
  EXPECT_TRUE(ParsePredicate("true", TestResolve)->IsTrue());
  EXPECT_TRUE(ParsePredicate("", TestResolve)->IsTrue());
  EXPECT_TRUE(ParsePredicate("  ", TestResolve)->IsTrue());
}

TEST(ParsePredicateTest, AllOperators) {
  for (const char* text :
       {"a = 1", "a != 1", "a < 1", "a <= 1", "a > 1", "a >= 1"}) {
    EXPECT_TRUE(ParsePredicate(text, TestResolve).ok()) << text;
  }
}

TEST(ParsePredicateTest, NegativeConstants) {
  auto p = ParsePredicate("a > -10", TestResolve);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Eval({-9, 0, 0, 0, 0}));
  EXPECT_FALSE(p->Eval({-10, 0, 0, 0, 0}));
}

TEST(ParsePredicateTest, UnknownEntityRejected) {
  EXPECT_EQ(ParsePredicate("zz < 5", TestResolve).status().code(),
            StatusCode::kNotFound);
}

TEST(ParsePredicateTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(ParsePredicate("a <", TestResolve).ok());
  EXPECT_FALSE(ParsePredicate("(a < 5", TestResolve).ok());
  EXPECT_FALSE(ParsePredicate("a 5", TestResolve).ok());
  EXPECT_FALSE(ParsePredicate("a < 5 garbage", TestResolve).ok());
  EXPECT_FALSE(ParsePredicate("& a < 5", TestResolve).ok());
}

TEST(ParsePredicateTest, RoundTripThroughToString) {
  auto p = ParsePredicate("(a <= b | c != 0) & (d >= -2)", TestResolve);
  ASSERT_TRUE(p.ok());
  std::string rendered = p->ToString([](EntityId e) {
    return std::string(1, static_cast<char>('a' + e));
  });
  auto reparsed = ParsePredicate(rendered, TestResolve);
  ASSERT_TRUE(reparsed.ok());
  // Same truth table on a few points.
  for (ValueVector v : {ValueVector{1, 2, 0, 0, 0}, ValueVector{3, 2, 0, 0, 0},
                        ValueVector{3, 2, 7, -5, 0}}) {
    EXPECT_EQ(p->Eval(v), reparsed->Eval(v));
  }
}

}  // namespace
}  // namespace nonserial
