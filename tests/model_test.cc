#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "model/entity.h"
#include "model/state.h"
#include "model/transaction.h"
#include "model/version_search.h"

namespace nonserial {
namespace {

TEST(EntityCatalogTest, RegisterAndResolve) {
  EntityCatalog catalog;
  auto x = catalog.Register("x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 0);
  EXPECT_EQ(catalog.size(), 1);
  EXPECT_EQ(catalog.Name(0), "x");
  EXPECT_EQ(*catalog.Resolve("x"), 0);
}

TEST(EntityCatalogTest, DuplicateRejected) {
  EntityCatalog catalog;
  ASSERT_TRUE(catalog.Register("x").ok());
  EXPECT_EQ(catalog.Register("x").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(EntityCatalogTest, UnknownNameNotFound) {
  EntityCatalog catalog;
  EXPECT_EQ(catalog.Resolve("nope").status().code(), StatusCode::kNotFound);
}

TEST(EntityCatalogTest, RegisterMany) {
  EntityCatalog catalog;
  std::vector<EntityId> ids = catalog.RegisterMany("e", 5);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(catalog.Name(3), "e3");
}

TEST(EntityCatalogTest, DomainsStored) {
  EntityCatalog catalog;
  auto x = catalog.Register("x", Domain{0, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(catalog.domain(*x).Contains(5));
  EXPECT_FALSE(catalog.domain(*x).Contains(11));
}

TEST(EntityCatalogTest, EmptyDomainRejected) {
  EntityCatalog catalog;
  EXPECT_FALSE(catalog.Register("x", Domain{5, 4}).ok());
}

TEST(DatabaseStateTest, CandidatesAreDistinctValues) {
  DatabaseState db(2);
  db.Add({1, 10});
  db.Add({2, 10});
  db.Add({1, 20});
  EXPECT_EQ(db.CandidateValues(0), (std::vector<Value>{1, 2}));
  EXPECT_EQ(db.CandidateValues(1), (std::vector<Value>{10, 20}));
  EXPECT_EQ(db.size(), 3);
}

// Regression for the quadratic dedup: CandidateValues used to rescan its
// output vector per state (O(states²) per entity). The fix builds with a
// hash set in one pass — this test pins the first-seen-order contract the
// rest of the system depends on (VersionAssignment choices index into it)
// over a long history with heavy duplication, where the quadratic path was
// both slow and easy to get subtly wrong.
TEST(DatabaseStateTest, LongHistoryCandidatesKeepFirstSeenOrder) {
  constexpr int kStates = 2000;
  DatabaseState db(2);
  for (int i = 0; i < kStates; ++i) {
    // Entity 0 cycles a small value set; entity 1 grows a sparse one. Both
    // see every value many times at staggered first occurrences.
    db.Add({i % 7, (i % 13 == 0) ? i : (i % 13)});
  }
  std::vector<Value> c0 = db.CandidateValues(0);
  EXPECT_EQ(c0, (std::vector<Value>{0, 1, 2, 3, 4, 5, 6}));
  std::vector<Value> c1 = db.CandidateValues(1);
  // First-seen order: 0 (i=0), then 1..12 (i=1..12) — with i=13 mapping to
  // the new value 13, etc. Verify the prefix and that there are no dups.
  ASSERT_GE(c1.size(), 13u);
  for (int v = 0; v < 13; ++v) EXPECT_EQ(c1[v], v);
  std::set<Value> distinct(c1.begin(), c1.end());
  EXPECT_EQ(distinct.size(), c1.size());
  // The columnar arena mirrors the per-entity lists exactly.
  CandidateBuffer columnar = db.ColumnarCandidates();
  ASSERT_EQ(columnar.num_entities(), 2);
  EXPECT_TRUE(columnar.view(0) ==
              (CandidateView{c0.data(), static_cast<int32_t>(c0.size())}));
  EXPECT_TRUE(columnar.view(1) ==
              (CandidateView{c1.data(), static_cast<int32_t>(c1.size())}));
}

TEST(DatabaseStateTest, ColumnarCandidatesMatchesAllCandidateValues) {
  DatabaseState db(3);
  db.Add({1, 10, 5});
  db.Add({2, 10, 5});
  db.Add({1, 20, 6});
  EXPECT_TRUE(db.ColumnarCandidates() ==
              CandidateBuffer::FromLists(db.AllCandidateValues()));
}

TEST(DatabaseStateTest, VersionStateMembership) {
  DatabaseState db(2);
  db.Add({1, 10});
  db.Add({2, 20});
  // Mix-and-match across unique states is a version state.
  EXPECT_TRUE(db.IsVersionState({1, 20}));
  EXPECT_TRUE(db.IsVersionState({2, 10}));
  EXPECT_TRUE(db.IsVersionState({1, 10}));
  EXPECT_FALSE(db.IsVersionState({3, 10}));
  EXPECT_FALSE(db.IsVersionState({1}));
}

TEST(DatabaseStateTest, SingletonStateHasOneVersionState) {
  // |S| = 1 implies V_S = {S^U} (noted in the paper).
  DatabaseState db(2);
  db.Add({1, 2});
  EXPECT_TRUE(db.IsVersionState({1, 2}));
  EXPECT_FALSE(db.IsVersionState({1, 3}));
  EXPECT_EQ(db.CandidateValues(0).size(), 1u);
}

TEST(DatabaseStateTest, UnionAddsProducedState) {
  DatabaseState db(1);
  db.Add({1});
  db.Union({2});
  EXPECT_EQ(db.size(), 2);
  EXPECT_TRUE(db.IsVersionState({2}));
}

TEST(ExprTest, ConstAndVar) {
  EXPECT_EQ(Expr::Const(7).Eval({}), 7);
  EXPECT_EQ(Expr::Var(1).Eval({10, 20}), 20);
}

TEST(ExprTest, Arithmetic) {
  ValueVector v = {10, 3};
  EXPECT_EQ(Expr::Add(Expr::Var(0), Expr::Var(1)).Eval(v), 13);
  EXPECT_EQ(Expr::Sub(Expr::Var(0), Expr::Var(1)).Eval(v), 7);
  EXPECT_EQ(Expr::Mul(Expr::Var(0), Expr::Var(1)).Eval(v), 30);
  EXPECT_EQ(Expr::Min(Expr::Var(0), Expr::Var(1)).Eval(v), 3);
  EXPECT_EQ(Expr::Max(Expr::Var(0), Expr::Var(1)).Eval(v), 10);
}

TEST(ExprTest, NestedExpression) {
  // clamp(x + 5, 0, 10) with x = 8 -> 10.
  Expr clamp = Expr::Min(
      Expr::Max(Expr::Add(Expr::Var(0), Expr::Const(5)), Expr::Const(0)),
      Expr::Const(10));
  EXPECT_EQ(clamp.Eval({8}), 10);
  EXPECT_EQ(clamp.Eval({-20}), 0);
  EXPECT_EQ(clamp.Eval({2}), 7);
}

TEST(ExprTest, CollectReads) {
  std::set<EntityId> reads;
  Expr::Add(Expr::Var(2), Expr::Mul(Expr::Var(0), Expr::Const(3)))
      .CollectReads(&reads);
  EXPECT_EQ(reads, (std::set<EntityId>{0, 2}));
}

TEST(ExprTest, ToStringReadable) {
  EntityCatalog catalog;
  catalog.RegisterMany("v", 2);
  EXPECT_EQ(Expr::Add(Expr::Var(0), Expr::Const(1)).ToString(catalog),
            "(v0 + 1)");
}

TEST(LeafProgramTest, ApplyOverlaysWrites) {
  LeafProgram program;
  program.AddWrite(0, Expr::Const(99));
  UniqueState out = program.Apply({1, 2, 3});
  EXPECT_EQ(out, (UniqueState{99, 2, 3}));
}

TEST(LeafProgramTest, SimultaneousAssignmentSemantics) {
  // Swap x and y: both expressions read the *input* state.
  LeafProgram program;
  program.AddWrite(0, Expr::Var(1));
  program.AddWrite(1, Expr::Var(0));
  UniqueState out = program.Apply({1, 2});
  EXPECT_EQ(out, (UniqueState{2, 1}));
}

TEST(LeafProgramTest, ReadsIncludeExprOperandsAndDeclared) {
  LeafProgram program;
  program.AddRead(5);
  program.AddWrite(0, Expr::Var(3));
  EXPECT_EQ(program.reads(), (std::set<EntityId>{3, 5}));
  EXPECT_EQ(program.WriteSet(), (std::set<EntityId>{0}));
}

TEST(TransactionTreeTest, ValidateGoodTree) {
  TransactionTree tree;
  int leaf0 = tree.AddLeaf("t.0", LeafProgram());
  int leaf1 = tree.AddLeaf("t.1", LeafProgram());
  int root = tree.AddInternal("t", {leaf0, leaf1}, {{0, 1}});
  tree.SetRoot(root);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(TransactionTreeTest, MissingRootRejected) {
  TransactionTree tree;
  tree.AddLeaf("t.0", LeafProgram());
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TransactionTreeTest, DoubleParentRejected) {
  TransactionTree tree;
  int leaf = tree.AddLeaf("t.0", LeafProgram());
  int a = tree.AddInternal("a", {leaf}, {});
  int root = tree.AddInternal("t", {a, leaf}, {});
  tree.SetRoot(root);
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TransactionTreeTest, CyclicPartialOrderRejected) {
  TransactionTree tree;
  int leaf0 = tree.AddLeaf("t.0", LeafProgram());
  int leaf1 = tree.AddLeaf("t.1", LeafProgram());
  int root = tree.AddInternal("t", {leaf0, leaf1}, {{0, 1}, {1, 0}});
  tree.SetRoot(root);
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TransactionTreeTest, SetsComputedOverSubtree) {
  TransactionTree tree;
  LeafProgram p0;
  p0.AddWrite(0, Expr::Var(1));
  LeafProgram p1;
  p1.AddWrite(2, Expr::Const(5));
  Specification spec0;
  spec0.input.AddClause(Clause({EntityVsConst(1, CompareOp::kGe, 0)}));
  int leaf0 = tree.AddLeaf("t.0", p0, spec0);
  int leaf1 = tree.AddLeaf("t.1", p1);
  int root = tree.AddInternal("t", {leaf0, leaf1}, {});
  tree.SetRoot(root);
  EXPECT_EQ(tree.UpdateSet(root), (std::set<EntityId>{0, 2}));
  EXPECT_EQ(tree.ReadSet(root), (std::set<EntityId>{1}));
  EXPECT_EQ(tree.InputSet(leaf0), (std::set<EntityId>{1}));
}

TEST(VersionSearchTest, FindsAssignmentOverDatabaseState) {
  DatabaseState db(2);
  db.Add({5, 50});
  db.Add({15, 5});
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 10)}));
  p.AddClause(Clause({EntityVsConst(1, CompareOp::kGe, 10)}));
  auto result = AssignVersions(db, p);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], 15);  // From second unique state.
  EXPECT_EQ(result->values[1], 50);  // From first: a true mix.
  EXPECT_TRUE(OneTransactionVersionCorrectness(db, p));
}

TEST(VersionSearchTest, UnsatisfiableReported) {
  DatabaseState db(1);
  db.Add({5});
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 10)}));
  EXPECT_EQ(AssignVersions(db, p).status().code(),
            StatusCode::kUnsatisfiable);
  EXPECT_FALSE(OneTransactionVersionCorrectness(db, p));
}

TEST(VersionSearchTest, EmptyDatabaseRejected) {
  DatabaseState db(1);
  EXPECT_EQ(AssignVersions(db, Predicate::True()).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nonserial
