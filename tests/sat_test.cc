#include <gtest/gtest.h>

#include "common/random.h"
#include "predicate/assignment_search.h"
#include "predicate/sat.h"

namespace nonserial {
namespace {

BoolLiteral Pos(int v) { return BoolLiteral{v, false}; }
BoolLiteral Neg(int v) { return BoolLiteral{v, true}; }

TEST(BoolFormulaTest, EvalRespectsLiterals) {
  BoolFormula f;
  f.num_vars = 2;
  f.clauses = {{Pos(0), Neg(1)}};
  EXPECT_TRUE(f.Eval({true, true}));
  EXPECT_TRUE(f.Eval({false, false}));
  EXPECT_FALSE(f.Eval({false, true}));
}

TEST(BoolFormulaTest, ToStringDimacsLike) {
  BoolFormula f;
  f.num_vars = 2;
  f.clauses = {{Pos(0), Neg(1)}};
  std::string s = f.ToString();
  EXPECT_NE(s.find("p cnf 2 1"), std::string::npos);
  EXPECT_NE(s.find("1 -2 0"), std::string::npos);
}

TEST(SolveSatTest, EmptyFormulaSatisfiable) {
  BoolFormula f;
  f.num_vars = 3;
  auto result = SolveSat(f);
  ASSERT_TRUE(result.has_value());
}

TEST(SolveSatTest, SimpleSatisfiable) {
  BoolFormula f;
  f.num_vars = 2;
  f.clauses = {{Pos(0)}, {Neg(1)}};
  auto result = SolveSat(f);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[0]);
  EXPECT_FALSE((*result)[1]);
}

TEST(SolveSatTest, ContradictionUnsatisfiable) {
  BoolFormula f;
  f.num_vars = 1;
  f.clauses = {{Pos(0)}, {Neg(0)}};
  EXPECT_FALSE(SolveSat(f).has_value());
}

TEST(SolveSatTest, EmptyClauseUnsatisfiable) {
  BoolFormula f;
  f.num_vars = 1;
  f.clauses = {{}};
  EXPECT_FALSE(SolveSat(f).has_value());
}

TEST(SolveSatTest, PigeonholeStyleUnsat) {
  // x0 XOR-ish contradiction across three clauses:
  // (x0 | x1) & (!x0 | x1) & (!x1).
  BoolFormula f;
  f.num_vars = 2;
  f.clauses = {{Pos(0), Pos(1)}, {Neg(0), Pos(1)}, {Neg(1)}};
  EXPECT_FALSE(SolveSat(f).has_value());
}

TEST(SolveSatTest, StatsPopulated) {
  BoolFormula f;
  f.num_vars = 4;
  f.clauses = {{Pos(0), Pos(1)}, {Neg(0), Pos(2)}, {Neg(2), Pos(3)}};
  SatStats stats;
  ASSERT_TRUE(SolveSat(f, &stats).has_value());
  EXPECT_GE(stats.decisions + stats.unit_propagations, 0);
}

// Brute-force reference.
bool BruteForceSat(const BoolFormula& f) {
  int n = f.num_vars;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<bool> assignment(n);
    for (int v = 0; v < n; ++v) assignment[v] = (mask >> v) & 1;
    if (f.Eval(assignment)) return true;
  }
  return false;
}

class RandomSatTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSatTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    int vars = 3 + static_cast<int>(rng.Uniform(6));  // 3..8
    int clauses = 1 + static_cast<int>(rng.Uniform(30));
    BoolFormula f = RandomKSat(vars, clauses, 3, &rng);
    auto result = SolveSat(f);
    EXPECT_EQ(result.has_value(), BruteForceSat(f))
        << "mismatch on:\n"
        << f.ToString();
    if (result.has_value()) EXPECT_TRUE(f.Eval(*result));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSatTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RandomKSatTest, ShapeRespected) {
  Rng rng(99);
  BoolFormula f = RandomKSat(10, 20, 3, &rng);
  EXPECT_EQ(f.num_vars, 10);
  EXPECT_EQ(f.clauses.size(), 20u);
  for (const auto& clause : f.clauses) {
    EXPECT_EQ(clause.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(clause[0].var, clause[1].var);
    EXPECT_NE(clause[1].var, clause[2].var);
    EXPECT_NE(clause[0].var, clause[2].var);
  }
}

// --- Lemma 1: the SAT reduction ---------------------------------------

TEST(Lemma1Test, ReductionShape) {
  BoolFormula f;
  f.num_vars = 3;
  f.clauses = {{Pos(0), Neg(2)}};
  Predicate p = FormulaToPredicate(f);
  ASSERT_EQ(p.clauses().size(), 1u);
  EXPECT_EQ(p.clauses()[0].atoms().size(), 2u);
  // Version candidates: every entity has versions {0, 1}.
  auto candidates = Lemma1CandidateSets(3);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], (std::vector<Value>{0, 1}));
}

class Lemma1EquivalenceTest : public ::testing::TestWithParam<int> {};

// The heart of Lemma 1: C is satisfiable iff there is a version state of
// S = {all-0, all-1} satisfying I_t = reduction(C).
TEST_P(Lemma1EquivalenceTest, SatAgreesWithVersionCorrectness) {
  Rng rng(GetParam() * 1000 + 17);
  for (int i = 0; i < 30; ++i) {
    int vars = 3 + static_cast<int>(rng.Uniform(5));
    int clauses = 1 + static_cast<int>(rng.Uniform(25));
    BoolFormula f = RandomKSat(vars, clauses, 3, &rng);
    bool sat = SolveSat(f).has_value();
    Predicate reduced = FormulaToPredicate(f);
    auto assignment =
        FindSatisfyingAssignment(reduced, Lemma1CandidateSets(vars));
    EXPECT_EQ(sat, assignment.has_value()) << f.ToString();
    if (assignment.has_value()) {
      // The version choice is a satisfying truth assignment.
      std::vector<bool> truth(vars);
      for (int v = 0; v < vars; ++v) truth[v] = (*assignment)[v] == 1;
      EXPECT_TRUE(f.Eval(truth));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

// Ground truth by exhaustive enumeration (feasible up to ~20 variables);
// unlike BruteForceSat above, also produces the witness assignment.
std::optional<std::vector<bool>> BruteForceSolve(const BoolFormula& f) {
  for (uint32_t mask = 0; mask < (1u << f.num_vars); ++mask) {
    std::vector<bool> assignment(f.num_vars);
    for (int v = 0; v < f.num_vars; ++v) {
      assignment[v] = ((mask >> v) & 1) != 0;
    }
    if (f.Eval(assignment)) return assignment;
  }
  return std::nullopt;
}

TEST(SolveSatTest, PureLiteralEliminationSolvesWithoutDecisions) {
  // x0 is a unit; x1 and x2 each occur with a single polarity. DPLL should
  // settle the whole formula by propagation + pure-literal elimination.
  BoolFormula f;
  f.num_vars = 3;
  f.clauses = {{Pos(0)}, {Pos(1), Neg(2)}, {Pos(1)}, {Neg(2)}};
  SatStats stats;
  auto result = SolveSat(f, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(f.Eval(*result));
  EXPECT_EQ(stats.decisions, 0);
  EXPECT_GT(stats.pure_eliminations + stats.unit_propagations, 0);
}

class SatDifferentialFuzzTest : public ::testing::TestWithParam<int> {};

// Differential fuzz: DPLL (unit propagation + pure-literal elimination)
// against brute-force enumeration on seeded random 3-SAT instances around
// the satisfiability phase transition, up to 12 variables.
TEST_P(SatDifferentialFuzzTest, AgreesWithBruteForce) {
  Rng rng(GetParam() * 7919 + 42);
  SatStats stats;
  for (int i = 0; i < 60; ++i) {
    int vars = 3 + static_cast<int>(rng.Uniform(10));  // 3..12.
    // Clause counts spanning under- and over-constrained instances
    // (ratio ~4.3 clauses/var is the hard region for 3-SAT).
    int clauses = 1 + static_cast<int>(rng.Uniform(
                          static_cast<uint32_t>(5 * vars)));
    BoolFormula f = RandomKSat(vars, clauses, 3, &rng);
    auto dpll = SolveSat(f, &stats);
    auto brute = BruteForceSolve(f);
    ASSERT_EQ(dpll.has_value(), brute.has_value()) << f.ToString();
    if (dpll.has_value()) {
      EXPECT_TRUE(f.Eval(*dpll)) << f.ToString();
    }
  }
  // The heuristics must actually fire across a fuzz run of this size.
  EXPECT_GT(stats.unit_propagations, 0);
  EXPECT_GT(stats.pure_eliminations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatDifferentialFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nonserial
