// Trace-emission tests for the non-CEP controllers: every protocol drives
// its canonical two-transaction conflict with a TraceRecorder attached
// through the base ConcurrencyController::SetObserver, and the test pins
// the emitted event kinds, peers, entities, and protocol tags. (The CEP
// engine's own emission is pinned by trace_test.cc.)

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocol/mvto.h"
#include "protocol/nested_cep.h"
#include "protocol/pw_mvto.h"
#include "protocol/trace.h"
#include "protocol/two_phase_locking.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name, std::vector<int> preds = {},
                  Predicate input = Predicate::True()) {
  TxProfile profile;
  profile.name = name;
  profile.input = std::move(input);
  profile.predecessors = std::move(preds);
  return profile;
}

int CountKind(const TraceRecorder& trace, TraceEvent::Kind kind) {
  return static_cast<int>(trace.OfKind(kind).size());
}

// --- Strict 2PL ----------------------------------------------------------

class S2plTraceTest : public ::testing::Test {
 protected:
  S2plTraceTest()
      : store_({50, 50}),
        ctrl_(&store_, TwoPhaseLockingController::Options()) {
    // Attach through the base interface: the observer API is part of
    // ConcurrencyController, not any one protocol.
    ConcurrencyController& base = ctrl_;
    base.SetObserver(&trace_);
  }

  VersionStore store_;
  TwoPhaseLockingController ctrl_;
  TraceRecorder trace_;
};

TEST_F(S2plTraceTest, WriterBlocksReaderEmitsGrantBlockAndWakeupGrant) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.WriteDone(0, 0);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);

  // The block names the conflicting holder and the contested entity.
  std::vector<TraceEvent> blocks = trace_.OfKind(TraceEvent::Kind::kLockBlock);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].tx, 1);
  EXPECT_EQ(blocks[0].other, 0);
  EXPECT_EQ(blocks[0].entity, 0);
  EXPECT_EQ(blocks[0].protocol, "S2PL");

  // One grant for the writer's X lock, one for the reader's retry.
  std::vector<TraceEvent> grants = trace_.OfKind(TraceEvent::Kind::kLockGrant);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].tx, 0);
  EXPECT_EQ(grants[1].tx, 1);

  std::vector<TraceEvent> writes = trace_.OfKind(TraceEvent::Kind::kWrite);
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].value, 60);
  std::vector<TraceEvent> reads = trace_.OfKind(TraceEvent::Kind::kRead);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].value, 60);
  EXPECT_EQ(CountKind(trace_, TraceEvent::Kind::kCommitted), 1);

  for (const TraceEvent& event : trace_.events()) {
    EXPECT_EQ(event.protocol, "S2PL") << event.ToString();
  }
}

TEST_F(S2plTraceTest, DeadlockEmitsVictimEvent) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(1, 1, 2), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 1, &v), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kAborted);

  std::vector<TraceEvent> victims =
      trace_.OfKind(TraceEvent::Kind::kDeadlockVictim);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].tx, 1);  // The requester whose wait closes the cycle.
  EXPECT_EQ(victims[0].other, 0);
  EXPECT_EQ(victims[0].entity, 0);

  ctrl_.Abort(1);
  EXPECT_EQ(CountKind(trace_, TraceEvent::Kind::kAborted), 1);
}

TEST_F(S2plTraceTest, PredecessorChainEmitsCommitWait) {
  ctrl_.Register(0, Profile("pred"));
  ctrl_.Register(1, Profile("succ", {0}));
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kBlocked);

  std::vector<TraceEvent> waits =
      trace_.OfKind(TraceEvent::Kind::kCommitWait);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].tx, 1);
  EXPECT_EQ(waits[0].other, 0);
}

// --- Predicate-wise 2PL --------------------------------------------------

TEST(Pw2plTraceTest, EarlyGroupReleaseEmitsGroupReleaseEvent) {
  VersionStore store({50, 50});
  TwoPhaseLockingController::Options options;
  options.predicatewise = true;
  options.objects = {{0}, {1}};  // x and y in different conjuncts.
  options.planned_ops[0] = {{true, 0}, {true, 1}};
  options.planned_ops[1] = {{true, 0}};
  TwoPhaseLockingController ctrl(&store, std::move(options));
  TraceRecorder trace;
  ctrl.SetObserver(&trace);

  ctrl.Register(0, Profile("t0"));
  ctrl.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(1, 0, 70), ReqResult::kBlocked);
  ctrl.WriteDone(0, 0);  // x-conjunct done: its locks drop early.

  std::vector<TraceEvent> releases =
      trace.OfKind(TraceEvent::Kind::kGroupRelease);
  ASSERT_GE(releases.size(), 1u);
  EXPECT_EQ(releases[0].tx, 0);
  EXPECT_EQ(releases[0].other, 0);  // Conjunct object id.
  EXPECT_EQ(releases[0].entity, 0);
  EXPECT_EQ(releases[0].protocol, "PW-2PL");

  for (const TraceEvent& event : trace.events()) {
    EXPECT_EQ(event.protocol, "PW-2PL") << event.ToString();
  }
}

// --- MVTO ----------------------------------------------------------------

class MvtoTraceTest : public ::testing::Test {
 protected:
  MvtoTraceTest() : store_({50, 50}), ctrl_(&store_) {
    ConcurrencyController& base = ctrl_;
    base.SetObserver(&trace_);
  }

  VersionStore store_;
  MvtoController ctrl_;
  TraceRecorder trace_;
};

TEST_F(MvtoTraceTest, BeginEmitsValidatedWithTimestamp) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);

  std::vector<TraceEvent> admits = trace_.OfKind(TraceEvent::Kind::kValidated);
  ASSERT_EQ(admits.size(), 2u);
  EXPECT_EQ(admits[0].protocol, "MVTO");
  // The event value carries the drawn timestamp; later Begin, later ts.
  EXPECT_GT(admits[1].value, admits[0].value);
}

TEST_F(MvtoTraceTest, DirtyReadWaitEmitsCommitWaitNamingWriter) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);

  std::vector<TraceEvent> waits =
      trace_.OfKind(TraceEvent::Kind::kCommitWait);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].tx, 1);
  EXPECT_EQ(waits[0].other, 0);  // The uncommitted version's writer.
  EXPECT_EQ(waits[0].entity, 0);

  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  std::vector<TraceEvent> reads = trace_.OfKind(TraceEvent::Kind::kRead);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].value, 60);
}

TEST_F(MvtoTraceTest, LateWriteEmitsTsAbort) {
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kAborted);

  std::vector<TraceEvent> ts_aborts =
      trace_.OfKind(TraceEvent::Kind::kTsAbort);
  ASSERT_EQ(ts_aborts.size(), 1u);
  EXPECT_EQ(ts_aborts[0].tx, 0);
  EXPECT_EQ(ts_aborts[0].entity, 0);
  EXPECT_EQ(ts_aborts[0].protocol, "MVTO");
}

// --- PW-MVTO -------------------------------------------------------------

class PwMvtoTraceTest : public ::testing::Test {
 protected:
  PwMvtoTraceTest() : store_({50, 50}), ctrl_(&store_, {{0}, {1}}) {
    ConcurrencyController& base = ctrl_;
    base.SetObserver(&trace_);
  }

  VersionStore store_;
  PwMvtoController ctrl_;
  TraceRecorder trace_;
};

TEST_F(PwMvtoTraceTest, LazyTimestampsEmitTsDrawPerObject) {
  ctrl_.Register(0, Profile("t0"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(CountKind(trace_, TraceEvent::Kind::kTsDraw), 0);  // Lazy.

  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);   // Object 0.
  ASSERT_EQ(ctrl_.Write(0, 1, 60), ReqResult::kGranted);  // Object 1.
  ctrl_.WriteDone(0, 1);

  std::vector<TraceEvent> draws = trace_.OfKind(TraceEvent::Kind::kTsDraw);
  ASSERT_EQ(draws.size(), 2u);
  EXPECT_EQ(draws[0].tx, 0);
  EXPECT_EQ(draws[0].other, 0);  // Conjunct object the ts belongs to.
  EXPECT_EQ(draws[1].other, 1);
  EXPECT_EQ(draws[0].value, ctrl_.GroupTimestamp(0, 0));
  EXPECT_EQ(draws[1].value, ctrl_.GroupTimestamp(0, 1));

  for (const TraceEvent& event : trace_.events()) {
    EXPECT_EQ(event.protocol, "PW-MVTO") << event.ToString();
  }
}

TEST_F(PwMvtoTraceTest, LateWriteWithinObjectEmitsTsAbort) {
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  // t0 draws object 0's timestamp first (older); t1 then reads the same
  // entity with a younger timestamp, so t0's write arrives late.
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  ASSERT_LT(ctrl_.GroupTimestamp(0, 0), ctrl_.GroupTimestamp(1, 0));
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kAborted);

  std::vector<TraceEvent> ts_aborts =
      trace_.OfKind(TraceEvent::Kind::kTsAbort);
  ASSERT_EQ(ts_aborts.size(), 1u);
  EXPECT_EQ(ts_aborts[0].tx, 0);
  EXPECT_EQ(ts_aborts[0].entity, 0);
  EXPECT_EQ(ts_aborts[0].protocol, "PW-MVTO");
}

// --- Nested-CEP ----------------------------------------------------------

NestedGroup Group(const std::string& name, Predicate input) {
  NestedGroup g;
  g.name = name;
  g.input = std::move(input);
  return g;
}

class NestedCepTraceTest : public ::testing::Test {
 protected:
  NestedCepTraceTest() : store_({50, 50}) {
    NestedCepController::Options options;
    options.groups = {Group("A", Range(0, 0, 100)),
                      Group("B", Range(1, 0, 100))};
    options.group_of_tx = {0, 0, 1, 1};
    ctrl_ = std::make_unique<NestedCepController>(&store_,
                                                  std::move(options));
    ctrl_->Register(0, Profile("a0", {}, Range(0, 0, 100)));
    ctrl_->Register(1, Profile("a1", {}, Range(0, 0, 100)));
    ctrl_->Register(2, Profile("b0", {}, Range(1, 0, 100)));
    ctrl_->Register(3, Profile("b1", {}, Range(1, 0, 100)));
  }

  VersionStore store_;
  std::unique_ptr<NestedCepController> ctrl_;
  TraceRecorder trace_;
};

TEST_F(NestedCepTraceTest, GroupLifecycleTaggedNestedScopeEventsTaggedCep) {
  ConcurrencyController* base = ctrl_.get();
  base->SetObserver(&trace_);

  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 0, 60), ReqResult::kGranted);
  ctrl_->WriteDone(0, 0);
  // First member's commit is relative: parked until the sibling finishes.
  ASSERT_EQ(ctrl_->Commit(0), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_->Commit(1), ReqResult::kGranted);
  (void)ctrl_->TakeWakeups();
  ASSERT_EQ(ctrl_->Commit(0), ReqResult::kGranted);

  // Group lifecycle events carry the controller's own tag and the group id.
  std::vector<TraceEvent> starts =
      trace_.OfKind(TraceEvent::Kind::kGroupStart);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].tx, 0);  // Group id.
  EXPECT_EQ(starts[0].protocol, "Nested-CEP");
  std::vector<TraceEvent> commits =
      trace_.OfKind(TraceEvent::Kind::kGroupCommit);
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].tx, 0);
  EXPECT_EQ(commits[0].protocol, "Nested-CEP");

  // The scope engine's member events flowed into the same sink, tagged by
  // the inner protocol.
  auto tally = trace_.Tally();
  ASSERT_TRUE(tally.count("CEP"));
  EXPECT_GE(tally["CEP"]["validated"], 2);  // Both members admitted.
  EXPECT_GE(tally["CEP"]["write"], 1);
  EXPECT_GE(tally["CEP"]["committed"], 1);
  ASSERT_TRUE(tally.count("Nested-CEP"));
  EXPECT_EQ(tally["Nested-CEP"]["group-start"], 1);
  EXPECT_EQ(tally["Nested-CEP"]["group-commit"], 1);
}

TEST_F(NestedCepTraceTest, SetObserverReachesScopesOpenedEarlier) {
  // Scope A's engine exists before the sink is attached; the override must
  // still reach it.
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ctrl_->SetObserver(&trace_);
  ASSERT_EQ(ctrl_->Write(0, 0, 60), ReqResult::kGranted);
  ctrl_->WriteDone(0, 0);

  EXPECT_GE(CountKind(trace_, TraceEvent::Kind::kWrite), 1);
  EXPECT_EQ(trace_.OfKind(TraceEvent::Kind::kWrite)[0].protocol, "CEP");

  // And scopes opened after attachment get it at creation.
  ASSERT_EQ(ctrl_->Begin(2), ReqResult::kGranted);
  auto tally = trace_.Tally();
  EXPECT_EQ(tally["Nested-CEP"]["group-start"], 1);  // Group B only.
}

}  // namespace
}  // namespace nonserial
