#include <gtest/gtest.h>

#include "schedule/po_program.h"

namespace nonserial {
namespace {

Op R(TxId tx, EntityId e) { return Op{tx, OpKind::kRead, e}; }
Op W(TxId tx, EntityId e) { return Op{tx, OpKind::kWrite, e}; }

Schedule Parse(const std::string& text) {
  auto s = ParseSchedule(text);
  EXPECT_TRUE(s.ok()) << text;
  return std::move(s).value();
}

TEST(PoProgramTest, ChainProgramIsTotalOrder) {
  PoProgram p = ChainProgram(0, {R(0, 0), W(0, 0), R(0, 1)});
  EXPECT_TRUE(ValidatePoProgram(p).ok());
  EXPECT_EQ(p.order.size(), 2u);
  EXPECT_EQ(CountLinearExtensions(p), 1);
}

TEST(PoProgramTest, UnorderedOpsHaveFactorialExtensions) {
  PoProgram p;
  p.tx = 0;
  p.ops = {R(0, 0), R(0, 1), R(0, 2)};
  EXPECT_EQ(CountLinearExtensions(p), 6);
}

TEST(PoProgramTest, DiamondOrderExtensions) {
  // 0 before {1,2} before 3: two extensions.
  PoProgram p;
  p.tx = 0;
  p.ops = {R(0, 0), W(0, 0), W(0, 1), R(0, 1)};
  p.order = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(CountLinearExtensions(p), 2);
}

TEST(PoProgramTest, CyclicOrderRejected) {
  PoProgram p;
  p.tx = 0;
  p.ops = {R(0, 0), W(0, 0)};
  p.order = {{0, 1}, {1, 0}};
  EXPECT_FALSE(ValidatePoProgram(p).ok());
}

TEST(PoProgramTest, WrongTxRejected) {
  PoProgram p;
  p.tx = 0;
  p.ops = {R(1, 0)};
  EXPECT_FALSE(ValidatePoProgram(p).ok());
}

TEST(LegalInterleavingTest, ChainProgramsMatchExactOrder) {
  std::vector<PoProgram> programs = {
      ChainProgram(0, {R(0, 0), W(0, 0)}),
      ChainProgram(1, {R(1, 1), W(1, 1)})};
  EXPECT_TRUE(IsLegalInterleaving(Parse("R1(x) R2(y) W1(x) W2(y)"),
                                  programs));
  // W1 before R1 violates t1's chain.
  EXPECT_FALSE(IsLegalInterleaving(Parse("W1(x) R1(x) R2(y) W2(y)"),
                                   programs));
}

TEST(LegalInterleavingTest, PartialOrderAdmitsReordering) {
  // t1's two reads are unordered: both observed orders are legal.
  PoProgram p;
  p.tx = 0;
  p.ops = {R(0, 0), R(0, 1)};
  EXPECT_TRUE(IsLegalInterleaving(Parse("R1(x) R1(y)"), {p}));
  EXPECT_TRUE(IsLegalInterleaving(Parse("R1(y) R1(x)"), {p}));
}

TEST(LegalInterleavingTest, MissingOrExtraOpsRejected) {
  std::vector<PoProgram> programs = {ChainProgram(0, {R(0, 0), W(0, 0)})};
  EXPECT_FALSE(IsLegalInterleaving(Parse("R1(x)"), programs));
  EXPECT_FALSE(IsLegalInterleaving(Parse("R1(x) W1(x) R1(x)"), programs));
  // A transaction with no program at all.
  EXPECT_FALSE(IsLegalInterleaving(Parse("R1(x) W1(x) R2(x)"), programs));
}

TEST(LegalInterleavingTest, DuplicateOpsNeedBacktracking) {
  // Two identical writes with a read between them in the DAG: W a, then R,
  // then W. Greedy matching of the first observed W to the "later" W would
  // fail; exact matching succeeds.
  PoProgram p;
  p.tx = 0;
  p.ops = {W(0, 0), R(0, 0), W(0, 0)};
  p.order = {{0, 1}, {1, 2}};
  EXPECT_TRUE(IsLegalInterleaving(Parse("W1(x) R1(x) W1(x)"), {p}));
  EXPECT_FALSE(IsLegalInterleaving(Parse("W1(x) W1(x) R1(x)"), {p}));
}

TEST(PoInterleavingTest, TotalOrdersGiveMultinomialCount) {
  std::vector<PoProgram> programs = {
      ChainProgram(0, {R(0, 0), W(0, 0)}),
      ChainProgram(1, {R(1, 1), W(1, 1)})};
  int64_t count = ForEachPoInterleaving(programs, 2,
                                        [](const Schedule&) { return true; });
  EXPECT_EQ(count, 6);  // C(4,2).
}

TEST(PoInterleavingTest, PartialOrderMultipliesInterleavings) {
  // Same ops but t1's two ops unordered: every merge of 2+2 ops times the
  // 2 linear extensions = 12.
  PoProgram loose;
  loose.tx = 0;
  loose.ops = {R(0, 0), W(0, 0)};  // No order edges.
  std::vector<PoProgram> programs = {loose,
                                     ChainProgram(1, {R(1, 1), W(1, 1)})};
  int64_t count = ForEachPoInterleaving(programs, 2,
                                        [](const Schedule&) { return true; });
  EXPECT_EQ(count, 12);
}

TEST(PoInterleavingTest, EveryEmittedScheduleIsLegal) {
  PoProgram p0;
  p0.tx = 0;
  p0.ops = {R(0, 0), W(0, 0), R(0, 1)};
  p0.order = {{0, 1}};  // Read x before write x; R(y) free.
  std::vector<PoProgram> programs = {p0,
                                     ChainProgram(1, {W(1, 1)})};
  int64_t count =
      ForEachPoInterleaving(programs, 2, [&](const Schedule& s) {
        EXPECT_TRUE(IsLegalInterleaving(s, programs)) << s.ToString();
        return true;
      });
  EXPECT_GT(count, 0);
}

TEST(PoInterleavingTest, StopsEarly) {
  std::vector<PoProgram> programs = {ChainProgram(0, {R(0, 0), W(0, 0)}),
                                     ChainProgram(1, {R(1, 0)})};
  int visited = 0;
  ForEachPoInterleaving(programs, 1, [&](const Schedule&) {
    ++visited;
    return false;
  });
  EXPECT_EQ(visited, 1);
}

}  // namespace
}  // namespace nonserial
