#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "storage/version_store.h"
#include "storage/wal_format.h"

namespace nonserial {
namespace {

// ---- hand encoders for on-media format tests ------------------------------

void PutU8(uint8_t v, std::string* out) { out->push_back(static_cast<char>(v)); }

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutLenString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Frames `payload` under `kind` exactly as the writer does (magic, kind,
/// len, CRC over kind+len+payload) — lets a test fabricate frames in
/// layouts the current writer no longer emits.
std::string FrameBytes(uint8_t kind, const std::string& payload) {
  std::string out;
  PutU32(wal_format::kFrameMagic, &out);
  PutU8(kind, &out);
  PutU32(static_cast<uint32_t>(payload.size()), &out);
  uint8_t prefix[5];
  prefix[0] = kind;
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) prefix[1 + i] = (len >> (8 * i)) & 0xFF;
  uint32_t crc = wal_format::Crc32(prefix, sizeof(prefix));
  crc = wal_format::Crc32(reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size(), crc);
  PutU32(crc, &out);
  out.append(payload);
  return out;
}

/// A store with an attached log, pre-loaded with a tiny two-writer history:
/// writer 0 commits {e0=10, e1=11}, writer 1 appends e0=20 but has not
/// terminated when the helper returns.
struct LoggedStore {
  LoggedStore() : wal({0, 0, 0}), store(wal.initial()) {
    store.SetWal(&wal);
    store.Append(0, 10, /*writer=*/0);
    store.Append(1, 11, /*writer=*/0);
    wal.LogTxPayload(0, "t0", {0, 0, 0}, {}, {{0, 10}, {1, 11}});
    store.CommitWriter(0);
    store.Append(0, 20, /*writer=*/1);
  }

  WriteAheadLog wal;
  VersionStore store;
};

TEST(WalTest, StoreLogsEveryMutation) {
  LoggedStore s;
  // 3 appends + payload + commit.
  EXPECT_EQ(s.wal.size(), 5u);
  std::vector<WalRecord> records = s.wal.Snapshot();
  EXPECT_EQ(records[0].kind, WalRecord::Kind::kAppend);
  EXPECT_EQ(records[0].entity, 0);
  EXPECT_EQ(records[0].value, 10);
  EXPECT_EQ(records[2].kind, WalRecord::Kind::kTxPayload);
  EXPECT_EQ(records[3].kind, WalRecord::Kind::kCommit);
  EXPECT_EQ(records[4].kind, WalRecord::Kind::kAppend);
  EXPECT_EQ(records[4].writer, 1);
}

TEST(WalTest, RecoverReplaysCommittedAndDiscardsInFlight) {
  LoggedStore s;
  RecoveryResult rec = s.wal.Recover();
  ASSERT_NE(rec.store, nullptr);
  // Writer 0 is durable; writer 1's e0=20 was in flight at the "crash".
  EXPECT_EQ(rec.replayed_appends, 2);
  EXPECT_EQ(rec.discarded_appends, 1);
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 0);
  EXPECT_EQ(rec.committed[0].name, "t0");
  ValueVector snapshot = rec.store->LatestCommittedSnapshot();
  EXPECT_EQ(snapshot, (ValueVector{10, 11, 0}));
}

TEST(WalTest, RecoverDiscardsRolledBackWriters) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 7, /*writer=*/0);
  store.RollbackWriter(0);
  RecoveryResult rec = wal.Recover();
  EXPECT_EQ(rec.replayed_appends, 0);
  EXPECT_EQ(rec.discarded_appends, 1);
  EXPECT_TRUE(rec.committed.empty());
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{0}));
}

TEST(WalTest, EveryPrefixIsAConsistentCrashImage) {
  LoggedStore s;
  // Extend the history: writer 1 commits too.
  s.wal.LogTxPayload(1, "t1", {10, 11, 0}, {0}, {{0, 20}});
  s.store.CommitWriter(1);
  size_t n = s.wal.size();
  for (size_t prefix = 0; prefix <= n; ++prefix) {
    RecoveryResult rec = s.wal.Recover(prefix);
    // A writer is durable iff its commit record is inside the prefix; its
    // effects are all-or-nothing.
    ValueVector snapshot = rec.store->LatestCommittedSnapshot();
    if (rec.committed.size() == 0) {
      EXPECT_EQ(snapshot, (ValueVector{0, 0, 0})) << "prefix " << prefix;
    } else if (rec.committed.size() == 1) {
      EXPECT_EQ(snapshot, (ValueVector{10, 11, 0})) << "prefix " << prefix;
    } else {
      EXPECT_EQ(snapshot, (ValueVector{20, 11, 0})) << "prefix " << prefix;
    }
  }
  // The full log recovers both writers, in commit order.
  RecoveryResult full = s.wal.Recover();
  ASSERT_EQ(full.committed.size(), 2u);
  EXPECT_EQ(full.committed[0].tx, 0);
  EXPECT_EQ(full.committed[1].tx, 1);
  EXPECT_EQ(full.committed[1].feeders, (std::vector<int>{0}));
}

TEST(WalTest, CrashMarkerKillsPendingAppendsOfReusedWriterIds) {
  WriteAheadLog wal({0});
  {
    VersionStore store(wal.initial());
    store.SetWal(&wal);
    store.Append(0, 5, /*writer=*/0);  // In flight at the crash.
  }
  wal.LogCrashMarker();
  // The same writer id re-runs after restart and commits value 6.
  RecoveryResult rec = wal.Recover();
  rec.store->SetWal(&wal);
  rec.store->Append(0, 6, /*writer=*/0);
  wal.LogTxPayload(0, "t0", {0}, {}, {{0, 6}});
  rec.store->CommitWriter(0);
  // Recovery must not resurrect the pre-crash append: only value 6 is
  // durable, and the chain holds exactly initial + one committed version.
  RecoveryResult after = wal.Recover();
  EXPECT_EQ(after.replayed_appends, 1);
  EXPECT_EQ(after.discarded_appends, 1);
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{6}));
  EXPECT_EQ(after.store->ChainSize(0), 2);
}

TEST(WalTest, RecoveredChainOrderMatchesLogOrder) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 1, /*writer=*/0);
  wal.LogTxPayload(0, "a", {0}, {}, {{0, 1}});
  store.CommitWriter(0);
  store.Append(0, 2, /*writer=*/1);
  wal.LogTxPayload(1, "b", {1}, {0}, {{0, 2}});
  store.CommitWriter(1);
  RecoveryResult rec = wal.Recover();
  ASSERT_EQ(rec.store->ChainSize(0), 3);
  EXPECT_EQ(rec.store->VersionAt(0, 1).value, 1);
  EXPECT_EQ(rec.store->VersionAt(0, 1).writer, 0);
  EXPECT_EQ(rec.store->VersionAt(0, 2).value, 2);
  EXPECT_EQ(rec.store->VersionAt(0, 2).writer, 1);
}

TEST(WalTest, CommitWithoutPayloadSynthesizesStoreOnlyRecord) {
  // Store-only users (no protocol engine) never log payloads; recovery
  // still restores their committed versions.
  WriteAheadLog wal({0, 0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(1, 9, /*writer=*/3);
  store.CommitWriter(3);
  RecoveryResult rec = wal.Recover();
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 3);
  EXPECT_EQ(rec.committed[0].writes, (std::vector<std::pair<EntityId, Value>>{
                                         {1, 9}}));
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{0, 9}));
}

TEST(WalTest, CrashMarkersFenceBothPreCrashEpochsOfAReusedWriterId) {
  // A writer id that was in flight at TWO successive crashes must not
  // resurrect the pending appends of either pre-crash epoch when it
  // finally commits in the third.
  WriteAheadLog wal({0});
  {
    VersionStore store(wal.initial());
    store.SetWal(&wal);
    store.Append(0, 5, /*writer=*/0);  // Epoch 1, in flight at crash 1.
  }
  wal.LogCrashMarker();
  {
    RecoveryResult rec = wal.Recover();
    ASSERT_TRUE(rec.status.ok());
    rec.store->SetWal(&wal);
    rec.store->Append(0, 6, /*writer=*/0);  // Epoch 2, in flight at crash 2.
  }
  wal.LogCrashMarker();
  // Epoch 3: the same writer id commits value 7.
  RecoveryResult rec = wal.Recover();
  ASSERT_TRUE(rec.status.ok());
  rec.store->SetWal(&wal);
  rec.store->Append(0, 7, /*writer=*/0);
  wal.LogTxPayload(0, "t0", {0}, {}, {{0, 7}});
  rec.store->CommitWriter(0);

  RecoveryResult after = wal.Recover();
  EXPECT_EQ(after.replayed_appends, 1);
  EXPECT_EQ(after.discarded_appends, 2);  // One loser per pre-crash epoch.
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{7}));
  EXPECT_EQ(after.store->ChainSize(0), 2);  // Initial + the one commit.
  ASSERT_EQ(after.committed.size(), 1u);
  EXPECT_EQ(after.committed[0].tx, 0);
}

TEST(WalTest, StatsCountsWithoutDecodingRecords) {
  LoggedStore s;
  WalStats stats = s.wal.stats();
  EXPECT_EQ(stats.records, 5);
  EXPECT_EQ(stats.total_records, 5);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_GE(stats.segments, 1);
  EXPECT_EQ(stats.checkpoints, 0);
  EXPECT_FALSE(stats.media_failed);
  EXPECT_EQ(s.wal.size(), 5u);
}

TEST(WalTest, TailSinceDecodesOnlyTheRequestedSuffix) {
  // Small segments so the tail walk crosses several segment boundaries.
  WriteAheadLog wal({0}, /*segment_bytes=*/64);
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  for (int w = 0; w < 12; ++w) {
    store.Append(0, w + 1, w);
    store.CommitWriter(w);
  }
  EXPECT_GT(wal.stats().segments, 1);
  std::vector<WalRecord> all = wal.Snapshot();
  ASSERT_EQ(all.size(), 24u);  // Append + commit per writer.
  for (size_t from : {size_t{0}, size_t{5}, size_t{11}, size_t{23},
                      size_t{24}}) {
    std::vector<WalRecord> tail = wal.TailSince(from);
    ASSERT_EQ(tail.size(), all.size() - from) << "from " << from;
    for (size_t j = 0; j < tail.size(); ++j) {
      EXPECT_EQ(tail[j].kind, all[from + j].kind) << from << "+" << j;
      EXPECT_EQ(tail[j].writer, all[from + j].writer) << from << "+" << j;
      EXPECT_EQ(tail[j].value, all[from + j].value) << from << "+" << j;
    }
  }
}

TEST(WalTest, SerializedImageRoundTripsThroughFromImage) {
  LoggedStore s;
  std::string image = s.wal.SerializedImage();
  std::unique_ptr<WriteAheadLog> copy =
      WriteAheadLog::FromImage(image, s.wal.initial());
  EXPECT_EQ(copy->size(), s.wal.size());
  RecoveryResult a = s.wal.Recover();
  RecoveryResult b = copy->Recover();
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(b.replayed_appends, a.replayed_appends);
  EXPECT_EQ(b.discarded_appends, a.discarded_appends);
  EXPECT_EQ(b.store->LatestCommittedSnapshot(),
            a.store->LatestCommittedSnapshot());
}

TEST(WalTest, CheckpointCompactsCommittedStateAndCarriesPending) {
  LoggedStore s;  // Writer 0 committed {e0=10, e1=11}; writer 1 in flight.
  Status cp = s.wal.Checkpoint();
  ASSERT_TRUE(cp.ok()) << cp.ToString();
  WalStats stats = s.wal.stats();
  EXPECT_EQ(stats.checkpoints, 1);
  // Only writer 1's in-flight append is carried forward as a record.
  EXPECT_EQ(s.wal.size(), 1u);

  // Recovery through the checkpoint matches pre-checkpoint recovery.
  RecoveryResult rec = s.wal.Recover();
  ASSERT_TRUE(rec.status.ok());
  EXPECT_TRUE(rec.checkpoint_restored);
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 0);
  EXPECT_EQ(rec.committed[0].name, "t0");
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{10, 11, 0}));

  // The carried writer can still commit after the checkpoint.
  s.wal.LogTxPayload(1, "t1", {10, 11, 0}, {0}, {{0, 20}});
  s.store.CommitWriter(1);
  RecoveryResult after = s.wal.Recover();
  ASSERT_EQ(after.committed.size(), 2u);
  EXPECT_EQ(after.committed[1].tx, 1);
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{20, 11, 0}));
  EXPECT_EQ(after.store->ChainSize(0), 3);  // Initial, then w0, then w1.
}

TEST(WalTest, LegacyCheckpointFrameWithoutTokensStillDecodes) {
  // Hand-encode the pre-commit-token checkpoint layout under the legacy
  // kind byte: committed entries go straight from tx id to tx body, no
  // u64 token field. A WAL checkpointed by an older build must keep
  // recovering — the kind byte is the format version.
  std::string payload;
  PutU32(1, &payload);  // One committed transaction.
  PutU32(7, &payload);  // tx id (i32).
  PutLenString("t7", &payload);
  PutU32(2, &payload);  // input_state: {5, 6}.
  PutU64(5, &payload);
  PutU64(6, &payload);
  PutU32(0, &payload);  // No feeders.
  PutU32(1, &payload);  // One write: e0 = 9.
  PutU32(0, &payload);
  PutU64(9, &payload);
  PutU32(1, &payload);  // One chain of one version: writer 7 wrote 9.
  PutU32(1, &payload);
  PutU32(7, &payload);
  PutU64(9, &payload);
  std::string frame = FrameBytes(wal_format::kCheckpointFrameKind, payload);

  wal_format::DecodedFrame decoded =
      wal_format::DecodeFrame(frame.data(), frame.size());
  ASSERT_EQ(decoded.status, wal_format::FrameStatus::kOk);
  ASSERT_TRUE(decoded.is_checkpoint);
  ASSERT_EQ(decoded.checkpoint.committed.size(), 1u);
  const RecoveredTx& tx = decoded.checkpoint.committed[0];
  EXPECT_EQ(tx.tx, 7);
  EXPECT_EQ(tx.commit_token, 0u);  // Legacy layout: no token was logged.
  EXPECT_EQ(tx.name, "t7");
  EXPECT_EQ(tx.input_state, (ValueVector{5, 6}));
  ASSERT_EQ(tx.writes.size(), 1u);
  EXPECT_EQ(tx.writes[0], (std::pair<EntityId, Value>{0, 9}));
  ASSERT_EQ(decoded.checkpoint.chains.size(), 1u);
}

TEST(WalTest, CheckpointTokensRoundTripThroughV2Frames) {
  WalCheckpoint checkpoint;
  RecoveredTx tx;
  tx.tx = 3;
  tx.name = "tok";
  tx.commit_token = 0xFEED'FACE'CAFE'BEEFull;
  tx.input_state = {1};
  tx.writes = {{0, 2}};
  checkpoint.committed.push_back(tx);
  std::string frame;
  wal_format::AppendCheckpointFrame(checkpoint, &frame);
  // The writer emits the v2 kind byte (offset 4, after the frame magic).
  ASSERT_GT(frame.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(frame[4]), wal_format::kCheckpointFrameKindV2);
  wal_format::DecodedFrame decoded =
      wal_format::DecodeFrame(frame.data(), frame.size());
  ASSERT_EQ(decoded.status, wal_format::FrameStatus::kOk);
  ASSERT_TRUE(decoded.is_checkpoint);
  ASSERT_EQ(decoded.checkpoint.committed.size(), 1u);
  EXPECT_EQ(decoded.checkpoint.committed[0].commit_token,
            0xFEED'FACE'CAFE'BEEFull);
}

TEST(WalTest, CompactToReplacesTheLogWithTheRecoveredState) {
  LoggedStore s;
  RecoveryResult rec = s.wal.Recover();
  int64_t reclaimed = s.wal.CompactTo(rec);
  EXPECT_GE(reclaimed, 1);
  // Recovered state holds only committed work: the compacted log is a
  // bare checkpoint, writer 1's in-flight append is gone with the history.
  EXPECT_EQ(s.wal.size(), 0u);
  EXPECT_EQ(s.wal.stats().compactions, 1);
  RecoveryResult after = s.wal.Recover();
  ASSERT_TRUE(after.status.ok());
  EXPECT_TRUE(after.checkpoint_restored);
  ASSERT_EQ(after.committed.size(), 1u);
  EXPECT_EQ(after.committed[0].tx, 0);
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{10, 11, 0}));
}

TEST(WalTest, TornTailIsTruncatedAndTheMediumFailsSticky) {
  FailpointRegistry::Global().Seed(7);
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 1, /*writer=*/0);
  wal.LogTxPayload(0, "a", {0}, {}, {{0, 1}});
  store.CommitWriter(0);
  {
    ScopedFailpoint fp("wal.torn_tail", FailpointSpec{1.0, 0, 1});
    store.Append(0, 2, /*writer=*/1);  // Torn mid-frame; device dies.
  }
  WalStats stats = wal.stats();
  EXPECT_EQ(stats.torn_writes, 1);
  EXPECT_TRUE(stats.media_failed);
  store.Append(0, 3, /*writer=*/1);  // Swallowed by the failed medium.
  EXPECT_EQ(wal.stats().dropped_records, 1);

  // Recovery truncates the torn frame and keeps the committed prefix —
  // normal crash semantics, not corruption.
  RecoveryResult rec = wal.Recover();
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_TRUE(rec.truncated_tail);
  EXPECT_FALSE(rec.corruption_detected);
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{1}));

  // Restart replaces the medium and repairs the tail; logging resumes.
  wal.LogCrashMarker();
  EXPECT_FALSE(wal.stats().media_failed);
  RecoveryResult clean = wal.Recover();
  EXPECT_FALSE(clean.truncated_tail);
  store.Append(0, 4, /*writer=*/2);
  EXPECT_EQ(wal.Snapshot().back().value, 4);
}

TEST(WalTest, BitFlipMidLogIsDetectedNeverSilent) {
  FailpointRegistry::Global().Seed(11);
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  {
    ScopedFailpoint fp("wal.bit_flip", FailpointSpec{1.0, 0, 1});
    store.Append(0, 1, /*writer=*/0);  // Lands with one byte wrong.
  }
  wal.LogTxPayload(0, "a", {0}, {}, {{0, 1}});
  store.CommitWriter(0);  // Valid frames AFTER the damage: mid-log corruption.
  EXPECT_EQ(wal.stats().bit_flips, 1);

  RecoveryResult strict = wal.Recover();
  EXPECT_FALSE(strict.status.ok());
  EXPECT_TRUE(strict.corruption_detected);
  bool corrupt_diag = false;
  for (const SegmentDiagnostic& d : strict.segments) {
    corrupt_diag |= d.state == SegmentDiagnostic::State::kCorrupt;
  }
  EXPECT_TRUE(corrupt_diag);

  RecoveryOptions opts;
  opts.best_effort = true;
  RecoveryResult salvage = wal.Recover(opts);
  ASSERT_TRUE(salvage.status.ok()) << salvage.status.ToString();
  EXPECT_TRUE(salvage.corruption_detected);
  EXPECT_TRUE(salvage.salvaged);
  // Nothing decodable precedes the flipped frame: the salvageable
  // committed prefix is empty.
  EXPECT_TRUE(salvage.committed.empty());
  EXPECT_EQ(salvage.store->LatestCommittedSnapshot(), (ValueVector{0}));
}

TEST(WalTest, LostSegmentIsReportedThroughItsTombstone) {
  FailpointRegistry::Global().Seed(13);
  WriteAheadLog wal({0}, /*segment_bytes=*/64);
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  ScopedFailpoint fp("wal.segment_lost", FailpointSpec{1.0, 0, 1});
  for (int w = 0; w < 6; ++w) {
    store.Append(0, w + 1, w);
    store.CommitWriter(w);
  }
  ASSERT_EQ(wal.stats().lost_segments, 1);  // First seal dropped its data.

  RecoveryResult strict = wal.Recover();
  EXPECT_FALSE(strict.status.ok());
  EXPECT_TRUE(strict.corruption_detected);
  bool lost_diag = false;
  for (const SegmentDiagnostic& d : strict.segments) {
    lost_diag |= d.state == SegmentDiagnostic::State::kLost;
  }
  EXPECT_TRUE(lost_diag);

  RecoveryOptions opts;
  opts.best_effort = true;
  RecoveryResult salvage = wal.Recover(opts);
  ASSERT_TRUE(salvage.status.ok());
  EXPECT_TRUE(salvage.salvaged);
  // The lost segment was the log's head: nothing verifiable precedes it.
  EXPECT_TRUE(salvage.committed.empty());
  EXPECT_EQ(salvage.store->LatestCommittedSnapshot(), (ValueVector{0}));
}

TEST(WalTest, WriteErrorFailsTheMediumUntilRestart) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  {
    ScopedFailpoint fp("wal.write_error", FailpointSpec{1.0, 0, 1});
    store.Append(0, 1, /*writer=*/0);  // Never reaches the medium.
  }
  store.Append(0, 2, /*writer=*/0);  // Sticky failure swallows this too.
  EXPECT_EQ(wal.size(), 0u);
  WalStats stats = wal.stats();
  EXPECT_EQ(stats.write_errors, 1);
  EXPECT_EQ(stats.dropped_records, 1);
  EXPECT_TRUE(stats.media_failed);

  wal.LogCrashMarker();  // Restart replaces the medium.
  EXPECT_FALSE(wal.stats().media_failed);
  store.Append(0, 3, /*writer=*/0);
  EXPECT_EQ(wal.size(), 2u);  // Crash marker + the new append.
}

TEST(WalTest, CheckpointRefusesToLaunderADamagedImage) {
  FailpointRegistry::Global().Seed(17);
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  {
    ScopedFailpoint fp("wal.bit_flip", FailpointSpec{1.0, 0, 1});
    store.Append(0, 1, /*writer=*/0);
  }
  store.CommitWriter(0);  // Valid frame after the flip: corruption.
  Status cp = wal.Checkpoint();
  EXPECT_FALSE(cp.ok());
  // The damage is still visible to recovery (nothing was compacted away).
  EXPECT_TRUE(wal.Recover().corruption_detected);
}

TEST(WalTest, GroupCommitFlushesBatchesAndAcksCommits) {
  WriteAheadLog wal({0, 0, 0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  wal.EnableGroupCommit();
  ASSERT_TRUE(wal.group_commit_enabled());

  store.Append(0, 10, /*writer=*/0);
  store.Append(1, 11, /*writer=*/0);
  wal.LogTxPayload(0, "t0", {0, 0, 0}, {}, {{0, 10}, {1, 11}});
  WalCommitHandle h0 = store.CommitWriter(0);
  EXPECT_TRUE(wal.WaitDurable(h0));
  store.Append(2, 12, /*writer=*/1);
  wal.LogTxPayload(1, "t1", {10, 11, 0}, {0}, {{2, 12}});
  WalCommitHandle h1 = store.CommitWriter(1);
  EXPECT_TRUE(wal.WaitDurable(h1));
  wal.Flush();

  WalStats stats = wal.stats();
  EXPECT_GE(stats.group_commit_batches, 1);
  EXPECT_EQ(stats.group_commit_frames, 7);  // 3 appends + 2 payloads + 2 commits.
  EXPECT_EQ(stats.group_commit_commits, 2);
  EXPECT_EQ(stats.group_commit_failed_acks, 0);
  // One flush per batch, never per commit.
  EXPECT_LE(stats.device_flushes, stats.group_commit_batches);

  // The durable image is indistinguishable from a sync-mode log: same
  // records, same recovery.
  RecoveryResult rec = wal.Recover();
  ASSERT_TRUE(rec.status.ok());
  ASSERT_EQ(rec.committed.size(), 2u);
  EXPECT_EQ(rec.committed[0].tx, 0);
  EXPECT_EQ(rec.committed[1].tx, 1);
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{10, 11, 12}));

  wal.DisableGroupCommit();
  EXPECT_FALSE(wal.group_commit_enabled());
}

TEST(WalTest, GroupCommitDefaultHandleIsResolvedOk) {
  WriteAheadLog wal({0});
  WalCommitHandle null_handle;
  EXPECT_FALSE(static_cast<bool>(null_handle));
  EXPECT_TRUE(wal.WaitDurable(null_handle));
}

// Satellite audit: torn-tail truncation must never salvage a writer's
// kCommit while dropping one of its earlier kAppend frames. FIFO staging
// plus prefix-only truncation make the bad state unrepresentable; this
// pins the invariant over batched writes across many torn-prefix draws.
TEST(WalTest, TornBatchNeverSalvagesACommitWithoutItsAppends) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FailpointRegistry::Global().Seed(seed);
    WriteAheadLog wal({0, 0});
    VersionStore store(wal.initial());
    store.SetWal(&wal);
    wal.EnableGroupCommit();
    wal.HoldFlushesForTest(true);
    // Writer 0's whole life (2 appends + payload + commit) lands in ONE
    // batch, so the torn write cuts inside the batch at a random byte.
    store.Append(0, 1, /*writer=*/0);
    store.Append(1, 2, /*writer=*/0);
    wal.LogTxPayload(0, "a", {0, 0}, {}, {{0, 1}, {1, 2}});
    WalCommitHandle h = store.CommitWriter(0);
    // A second writer's in-flight append trails the commit in the same
    // batch, so torn prefixes exist that keep the commit whole.
    store.Append(0, 9, /*writer=*/1);
    ScopedFailpoint fp("wal.torn_tail", FailpointSpec{1.0, 0, 1});
    wal.HoldFlushesForTest(false);
    bool acked = wal.WaitDurable(h);
    wal.Flush();
    EXPECT_FALSE(acked) << "torn batch must fail its acks (seed " << seed
                        << ")";
    EXPECT_TRUE(wal.stats().media_failed);

    RecoveryResult rec = wal.Recover();
    ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
    EXPECT_FALSE(rec.corruption_detected) << "seed " << seed;
    ValueVector snapshot = rec.store->LatestCommittedSnapshot();
    if (rec.committed.empty()) {
      EXPECT_EQ(snapshot, (ValueVector{0, 0})) << "seed " << seed;
    } else {
      // The commit survived the torn prefix: every one of the writer's
      // appends preceded it in the batch, so its effects are complete.
      ASSERT_EQ(rec.committed.size(), 1u);
      EXPECT_EQ(rec.committed[0].tx, 0);
      EXPECT_EQ(snapshot, (ValueVector{1, 2})) << "seed " << seed;
    }
  }
}

// Satellite bugfix: a media fault anywhere in a batch fails EVERY commit
// ack in it — no partial-batch success — and the sticky failed medium
// still clears on crash restart.
TEST(WalTest, WriteErrorMidBatchFailsEveryAckInTheBatch) {
  FailpointRegistry::Global().Seed(23);
  WriteAheadLog wal({0, 0});
  wal.EnableGroupCommit();
  wal.HoldFlushesForTest(true);
  // Two independent committers share the staged batch.
  wal.LogAppend(0, 1, /*writer=*/0);
  wal.LogTxPayload(0, "a", {0, 0}, {}, {{0, 1}});
  WalCommitHandle ha = wal.LogCommit(0);
  wal.LogAppend(1, 2, /*writer=*/1);
  wal.LogTxPayload(1, "b", {0, 0}, {}, {{1, 2}});
  WalCommitHandle hb = wal.LogCommit(1);
  {
    ScopedFailpoint fp("wal.write_error", FailpointSpec{1.0, 0, 1});
    wal.HoldFlushesForTest(false);
    EXPECT_FALSE(wal.WaitDurable(ha));
    EXPECT_FALSE(wal.WaitDurable(hb));
    wal.Flush();
  }
  WalStats stats = wal.stats();
  EXPECT_TRUE(stats.media_failed);
  EXPECT_EQ(stats.group_commit_failed_acks, 2);
  EXPECT_EQ(wal.size(), 0u);  // Nothing reached the medium.

  // Crash restart replaces the medium; the pipeline resumes cleanly.
  wal.LogCrashMarker();
  EXPECT_FALSE(wal.stats().media_failed);
  wal.LogAppend(0, 3, /*writer=*/2);
  wal.LogTxPayload(2, "c", {0, 0}, {}, {{0, 3}});
  EXPECT_TRUE(wal.WaitDurable(wal.LogCommit(2)));
  RecoveryResult rec = wal.Recover();
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 2);
  wal.DisableGroupCommit();
}

TEST(WalTest, CrashDiscardsStagedFramesAndFailsTheirAcks) {
  WriteAheadLog wal({0});
  wal.EnableGroupCommit();
  wal.HoldFlushesForTest(true);
  wal.LogAppend(0, 1, /*writer=*/0);
  wal.LogTxPayload(0, "a", {0}, {}, {{0, 1}});
  WalCommitHandle h = wal.LogCommit(0);
  // The crash lands between batch-stage and batch-flush: the staging
  // buffer is volatile, so the frames are gone and the ack fails.
  wal.LogCrashMarker();
  EXPECT_FALSE(wal.WaitDurable(h));
  WalStats stats = wal.stats();
  EXPECT_EQ(stats.group_staged_dropped, 3);
  EXPECT_EQ(stats.group_commit_failed_acks, 1);
  RecoveryResult rec = wal.Recover();
  EXPECT_TRUE(rec.committed.empty());
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{0}));
  // The pipeline survives the restart: release the hold and new commits
  // flush normally.
  wal.HoldFlushesForTest(false);
  wal.LogAppend(0, 2, /*writer=*/1);
  wal.LogTxPayload(1, "b", {0}, {}, {{0, 2}});
  EXPECT_TRUE(wal.WaitDurable(wal.LogCommit(1)));
  wal.DisableGroupCommit();
}

// Satellite bugfix: Checkpoint() must capture one consistent view — a
// commit racing the checkpoint is either fully inside the checkpoint
// image or fully carried forward, never compacted away.
TEST(WalTest, CheckpointRacingCommittersLosesNoAckedCommit) {
  for (bool group : {false, true}) {
    WriteAheadLog wal({0});
    if (group) wal.EnableGroupCommit();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          int w = t * kPerThread + i;
          wal.LogAppend(0, w + 1, w);
          wal.LogTxPayload(w, "t" + std::to_string(w), {0}, {}, {{0, w + 1}});
          EXPECT_TRUE(wal.WaitDurable(wal.LogCommit(w)));
        }
      });
    }
    std::thread checkpointer([&wal] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(wal.Checkpoint().ok());
        std::this_thread::yield();
      }
    });
    for (std::thread& w : workers) w.join();
    checkpointer.join();
    if (group) {
      wal.Flush();
      wal.DisableGroupCommit();
    }
    RecoveryResult rec = wal.Recover();
    ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
    ASSERT_EQ(rec.committed.size(),
              static_cast<size_t>(kThreads * kPerThread))
        << (group ? "group" : "sync");
    std::vector<bool> seen(kThreads * kPerThread, false);
    for (const RecoveredTx& tx : rec.committed) {
      ASSERT_GE(tx.tx, 0);
      ASSERT_LT(tx.tx, kThreads * kPerThread);
      EXPECT_FALSE(seen[tx.tx]);
      seen[tx.tx] = true;
    }
  }
}

// Satellite bugfix: a commit that lands between the recovery scan and
// CompactTo is part of the post-scan suffix and must survive compaction.
TEST(WalTest, CompactToKeepsCommitsThatLandedAfterTheRecoveryScan) {
  LoggedStore s;
  RecoveryResult rec = s.wal.Recover();
  ASSERT_EQ(rec.committed.size(), 1u);
  // Writer 1 (in flight at the scan) commits before the compaction runs.
  s.wal.LogTxPayload(1, "t1", {10, 11, 0}, {0}, {{0, 20}});
  s.store.CommitWriter(1);
  s.wal.CompactTo(rec);
  RecoveryResult after = s.wal.Recover();
  ASSERT_TRUE(after.status.ok());
  ASSERT_EQ(after.committed.size(), 2u);
  EXPECT_EQ(after.committed[0].tx, 0);
  EXPECT_EQ(after.committed[1].tx, 1);
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{20, 11, 0}));
}

TEST(WalTest, DetachedStoreDoesNotLog) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 1, /*writer=*/0);
  store.SetWal(nullptr);
  store.Append(0, 2, /*writer=*/0);
  EXPECT_EQ(wal.size(), 1u);
}

}  // namespace
}  // namespace nonserial
