#include "storage/wal.h"

#include <gtest/gtest.h>

#include "storage/version_store.h"

namespace nonserial {
namespace {

/// A store with an attached log, pre-loaded with a tiny two-writer history:
/// writer 0 commits {e0=10, e1=11}, writer 1 appends e0=20 but has not
/// terminated when the helper returns.
struct LoggedStore {
  LoggedStore() : wal({0, 0, 0}), store(wal.initial()) {
    store.SetWal(&wal);
    store.Append(0, 10, /*writer=*/0);
    store.Append(1, 11, /*writer=*/0);
    wal.LogTxPayload(0, "t0", {0, 0, 0}, {}, {{0, 10}, {1, 11}});
    store.CommitWriter(0);
    store.Append(0, 20, /*writer=*/1);
  }

  WriteAheadLog wal;
  VersionStore store;
};

TEST(WalTest, StoreLogsEveryMutation) {
  LoggedStore s;
  // 3 appends + payload + commit.
  EXPECT_EQ(s.wal.size(), 5u);
  std::vector<WalRecord> records = s.wal.Snapshot();
  EXPECT_EQ(records[0].kind, WalRecord::Kind::kAppend);
  EXPECT_EQ(records[0].entity, 0);
  EXPECT_EQ(records[0].value, 10);
  EXPECT_EQ(records[2].kind, WalRecord::Kind::kTxPayload);
  EXPECT_EQ(records[3].kind, WalRecord::Kind::kCommit);
  EXPECT_EQ(records[4].kind, WalRecord::Kind::kAppend);
  EXPECT_EQ(records[4].writer, 1);
}

TEST(WalTest, RecoverReplaysCommittedAndDiscardsInFlight) {
  LoggedStore s;
  RecoveryResult rec = s.wal.Recover();
  ASSERT_NE(rec.store, nullptr);
  // Writer 0 is durable; writer 1's e0=20 was in flight at the "crash".
  EXPECT_EQ(rec.replayed_appends, 2);
  EXPECT_EQ(rec.discarded_appends, 1);
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 0);
  EXPECT_EQ(rec.committed[0].name, "t0");
  ValueVector snapshot = rec.store->LatestCommittedSnapshot();
  EXPECT_EQ(snapshot, (ValueVector{10, 11, 0}));
}

TEST(WalTest, RecoverDiscardsRolledBackWriters) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 7, /*writer=*/0);
  store.RollbackWriter(0);
  RecoveryResult rec = wal.Recover();
  EXPECT_EQ(rec.replayed_appends, 0);
  EXPECT_EQ(rec.discarded_appends, 1);
  EXPECT_TRUE(rec.committed.empty());
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{0}));
}

TEST(WalTest, EveryPrefixIsAConsistentCrashImage) {
  LoggedStore s;
  // Extend the history: writer 1 commits too.
  s.wal.LogTxPayload(1, "t1", {10, 11, 0}, {0}, {{0, 20}});
  s.store.CommitWriter(1);
  size_t n = s.wal.size();
  for (size_t prefix = 0; prefix <= n; ++prefix) {
    RecoveryResult rec = s.wal.Recover(prefix);
    // A writer is durable iff its commit record is inside the prefix; its
    // effects are all-or-nothing.
    ValueVector snapshot = rec.store->LatestCommittedSnapshot();
    if (rec.committed.size() == 0) {
      EXPECT_EQ(snapshot, (ValueVector{0, 0, 0})) << "prefix " << prefix;
    } else if (rec.committed.size() == 1) {
      EXPECT_EQ(snapshot, (ValueVector{10, 11, 0})) << "prefix " << prefix;
    } else {
      EXPECT_EQ(snapshot, (ValueVector{20, 11, 0})) << "prefix " << prefix;
    }
  }
  // The full log recovers both writers, in commit order.
  RecoveryResult full = s.wal.Recover();
  ASSERT_EQ(full.committed.size(), 2u);
  EXPECT_EQ(full.committed[0].tx, 0);
  EXPECT_EQ(full.committed[1].tx, 1);
  EXPECT_EQ(full.committed[1].feeders, (std::vector<int>{0}));
}

TEST(WalTest, CrashMarkerKillsPendingAppendsOfReusedWriterIds) {
  WriteAheadLog wal({0});
  {
    VersionStore store(wal.initial());
    store.SetWal(&wal);
    store.Append(0, 5, /*writer=*/0);  // In flight at the crash.
  }
  wal.LogCrashMarker();
  // The same writer id re-runs after restart and commits value 6.
  RecoveryResult rec = wal.Recover();
  rec.store->SetWal(&wal);
  rec.store->Append(0, 6, /*writer=*/0);
  wal.LogTxPayload(0, "t0", {0}, {}, {{0, 6}});
  rec.store->CommitWriter(0);
  // Recovery must not resurrect the pre-crash append: only value 6 is
  // durable, and the chain holds exactly initial + one committed version.
  RecoveryResult after = wal.Recover();
  EXPECT_EQ(after.replayed_appends, 1);
  EXPECT_EQ(after.discarded_appends, 1);
  EXPECT_EQ(after.store->LatestCommittedSnapshot(), (ValueVector{6}));
  EXPECT_EQ(after.store->ChainSize(0), 2);
}

TEST(WalTest, RecoveredChainOrderMatchesLogOrder) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 1, /*writer=*/0);
  wal.LogTxPayload(0, "a", {0}, {}, {{0, 1}});
  store.CommitWriter(0);
  store.Append(0, 2, /*writer=*/1);
  wal.LogTxPayload(1, "b", {1}, {0}, {{0, 2}});
  store.CommitWriter(1);
  RecoveryResult rec = wal.Recover();
  ASSERT_EQ(rec.store->ChainSize(0), 3);
  EXPECT_EQ(rec.store->VersionAt(0, 1).value, 1);
  EXPECT_EQ(rec.store->VersionAt(0, 1).writer, 0);
  EXPECT_EQ(rec.store->VersionAt(0, 2).value, 2);
  EXPECT_EQ(rec.store->VersionAt(0, 2).writer, 1);
}

TEST(WalTest, CommitWithoutPayloadSynthesizesStoreOnlyRecord) {
  // Store-only users (no protocol engine) never log payloads; recovery
  // still restores their committed versions.
  WriteAheadLog wal({0, 0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(1, 9, /*writer=*/3);
  store.CommitWriter(3);
  RecoveryResult rec = wal.Recover();
  ASSERT_EQ(rec.committed.size(), 1u);
  EXPECT_EQ(rec.committed[0].tx, 3);
  EXPECT_EQ(rec.committed[0].writes, (std::vector<std::pair<EntityId, Value>>{
                                         {1, 9}}));
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{0, 9}));
}

TEST(WalTest, DetachedStoreDoesNotLog) {
  WriteAheadLog wal({0});
  VersionStore store(wal.initial());
  store.SetWal(&wal);
  store.Append(0, 1, /*writer=*/0);
  store.SetWal(nullptr);
  store.Append(0, 2, /*writer=*/0);
  EXPECT_EQ(wal.size(), 1u);
}

}  // namespace
}  // namespace nonserial
