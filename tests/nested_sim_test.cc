#include <gtest/gtest.h>

#include "core/database.h"
#include "workload/nested_gen.h"

namespace nonserial {
namespace {

TEST(NestedSimTest, SmallNestedWorkloadCommitsEverything) {
  NestedWorkloadParams params;
  params.num_projects = 3;
  params.members_per_project = 3;
  params.entities_per_project = 4;
  params.think_time = 40;
  params.project_chain_prob = 0.5;
  params.member_chain_prob = 0.4;
  params.seed = 5;
  NestedWorkload nw = MakeNestedDesignWorkload(params);

  Simulator sim;
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<ConcurrencyController> controller;
  SimResult result = sim.Run(nw.workload, MakeNestedCepFactory(nw.nested),
                             &store, &controller);
  EXPECT_TRUE(result.all_committed);
  // Every entity stays within bounds: the scope constraints held.
  for (Value v : result.final_state) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 100);
  }
  const auto* nested =
      dynamic_cast<const NestedCepController*>(controller.get());
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->stats().group_commits, 3);
  // Every group transaction committed at the top level too.
  for (int g = 0; g < 3; ++g) {
    EXPECT_TRUE(nested->GroupCommitted(g));
    EXPECT_TRUE(nested->top_cep().IsCommitted(g));
  }
}

class NestedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NestedSweepTest, NestedRunsConvergeAcrossSeeds) {
  NestedWorkloadParams params;
  params.num_projects = 4;
  params.members_per_project = 4;
  params.entities_per_project = 4;
  params.think_time = 60;
  params.project_chain_prob = 0.5;
  params.member_chain_prob = 0.5;
  params.seed = GetParam();
  NestedWorkload nw = MakeNestedDesignWorkload(params);

  Simulator sim;
  SimResult result = sim.Run(nw.workload, MakeNestedCepFactory(nw.nested));
  EXPECT_TRUE(result.all_committed) << "seed " << GetParam();
  for (Value v : result.final_state) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 100);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(NestedSimTest, ChainedProjectsSeeEachOthersResults) {
  // Two projects over one shared entity; project B follows project A. B's
  // member must observe A's published write.
  NestedWorkload nw;
  nw.workload.initial = {50};
  nw.workload.objects = {{0}};
  Predicate bounds;
  bounds.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  bounds.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 100)}));

  NestedGroup a;
  a.name = "A";
  a.input = bounds;
  NestedGroup b;
  b.name = "B";
  b.input = bounds;
  b.predecessors = {0};
  nw.nested.groups = {a, b};
  nw.nested.group_of_tx = {0, 1};

  SimTx ta;
  ta.name = "a member";
  ta.input = bounds;
  ta.steps = {SimStep::Read(0), SimStep::Write(0, Expr::Const(75))};
  SimTx tb;
  tb.name = "b member";
  tb.input = bounds;
  tb.arrival = 1;
  tb.steps = {SimStep::Read(0),
              SimStep::Write(0, Expr::Add(Expr::Var(0), Expr::Const(1)))};
  nw.workload.txs = {ta, tb};

  Simulator sim;
  SimResult result = sim.Run(nw.workload, MakeNestedCepFactory(nw.nested));
  ASSERT_TRUE(result.all_committed);
  EXPECT_EQ(result.final_state[0], 76);  // 75 from A, +1 from B.
}

}  // namespace
}  // namespace nonserial
