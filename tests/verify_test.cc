#include <gtest/gtest.h>

#include "core/database.h"
#include "core/verify.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

TEST(VerifyTest, CepRunOnGeneratedWorkloadVerifies) {
  DesignWorkloadParams params;
  params.num_txs = 12;
  params.num_entities = 16;
  params.num_conjuncts = 4;
  params.think_time = 30;
  params.precedence_prob = 0.25;
  params.relational_clause_prob = 0.5;
  params.seed = 3;
  SimWorkload w = MakeDesignWorkload(params);
  RunReport report = RunWorkload(w, ProtocolKind::kCep, WorkloadConstraint(w));
  EXPECT_TRUE(report.result.all_committed);
  EXPECT_TRUE(report.verification.ok()) << report.verification;
}

// Theorem 2 as a property: every CEP history across seeds and contention
// levels re-verifies as a correct, parent-based execution.
struct Theorem2Params {
  uint64_t seed;
  double precedence_prob;
  int num_conjuncts;
};

class Theorem2Test : public ::testing::TestWithParam<Theorem2Params> {};

TEST_P(Theorem2Test, EmittedHistoriesAreCorrectExecutions) {
  DesignWorkloadParams params;
  params.num_txs = 14;
  params.num_entities = 12;  // Small: plenty of contention.
  params.num_conjuncts = GetParam().num_conjuncts;
  params.reads_per_tx = 4;
  params.think_time = 15;
  params.cross_group_fraction = 0.3;
  params.precedence_prob = GetParam().precedence_prob;
  params.relational_clause_prob = 0.4;
  params.arrival_spacing = 5;
  params.seed = GetParam().seed;
  SimWorkload w = MakeDesignWorkload(params);
  RunReport report = RunWorkload(w, ProtocolKind::kCep, WorkloadConstraint(w));
  EXPECT_TRUE(report.verification.ok())
      << "seed " << GetParam().seed << ": " << report.verification;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem2Test,
    ::testing::Values(Theorem2Params{1, 0.0, 1}, Theorem2Params{2, 0.0, 4},
                      Theorem2Params{3, 0.3, 2}, Theorem2Params{4, 0.5, 4},
                      Theorem2Params{5, 0.7, 3}, Theorem2Params{6, 0.4, 6},
                      Theorem2Params{7, 0.9, 2}, Theorem2Params{8, 0.2, 8}));

TEST(VerifyTest, DoctoredHistoryFailsVerification) {
  // Run a healthy workload, then check a *corrupted* constraint: a final
  // state violating t_f's input predicate must be rejected.
  DesignWorkloadParams params;
  params.num_txs = 6;
  params.num_entities = 8;
  params.seed = 11;
  SimWorkload w = MakeDesignWorkload(params);
  Simulator sim;
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<ConcurrencyController> controller;
  SimResult result = sim.Run(w, MakeControllerFactory(ProtocolKind::kCep),
                             &store, &controller);
  ASSERT_TRUE(result.all_committed);
  const auto* cep =
      dynamic_cast<const CorrectExecutionProtocol*>(controller.get());
  ASSERT_NE(cep, nullptr);
  // Healthy constraint passes.
  EXPECT_TRUE(VerifyCepHistory(w, *cep, *store, WorkloadConstraint(w)).ok());
  // An impossible constraint fails at t_f / the root's output condition.
  Predicate impossible;
  impossible.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 1000)}));
  EXPECT_FALSE(VerifyCepHistory(w, *cep, *store, impossible).ok());
}

TEST(VerifyTest, EmittedHistoryClassMembershipConsistent) {
  // One concrete seed of the E13 experiment as a regression test: the CEP
  // history verifies as a correct execution and, when non-serializable,
  // demonstrates the paper's thesis directly.
  DesignWorkloadParams params;
  params.num_txs = 8;
  params.num_entities = 8;
  params.num_conjuncts = 2;
  params.reads_per_tx = 3;
  params.think_time = 120;
  params.cross_group_fraction = 0.3;
  params.precedence_prob = 0.25;
  params.arrival_spacing = 10;
  params.seed = 7919;
  SimWorkload w = MakeDesignWorkload(params);
  RunReport report = RunWorkload(w, ProtocolKind::kCep, WorkloadConstraint(w));
  ASSERT_TRUE(report.result.all_committed);
  ASSERT_TRUE(report.verification.ok()) << report.verification;
  // The history is well-formed for analysis.
  const EmittedHistory& history = report.result.history;
  EXPECT_TRUE(
      ValidateCommitPoints(history.schedule, history.commits).ok());
  EXPECT_EQ(history.committed.size(), w.txs.size());
  // The strengthened commit rule guarantees recoverability.
  EXPECT_TRUE(IsRecoverable(history.schedule, history.commits));
}

TEST(VerifyTest, EmptyHistoryVerifies) {
  SimWorkload w;
  w.initial = {50};
  Simulator sim;
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<ConcurrencyController> controller;
  sim.Run(w, MakeControllerFactory(ProtocolKind::kCep), &store, &controller);
  const auto* cep =
      dynamic_cast<const CorrectExecutionProtocol*>(controller.get());
  Predicate constraint;
  constraint.AddClause(Clause({EntityVsConst(0, CompareOp::kEq, 50)}));
  EXPECT_TRUE(VerifyCepHistory(w, *cep, *store, constraint).ok());
}

}  // namespace
}  // namespace nonserial
