// End-to-end tests for the networked front end: full transaction
// lifecycles over TCP, staged predicates, admission shedding on the wire,
// teardown ordering with live clients — and the headline check that the
// protocol's verdict is transport-independent: a write-skew interleaving
// driven across two TCP sessions must land exactly where the in-process
// session API lands it (both commit — correctness without serializability).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

// The write-skew guard: both entities still at-or-below the initial 50.
Predicate BothBelow50() {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 50)}));
  p.AddClause(Clause({EntityVsConst(1, CompareOp::kLe, 50)}));
  return p;
}

EngineOptions BaseOptions(ProtocolMetrics* metrics = nullptr) {
  EngineOptions options;
  options.initial = {50, 50};
  options.protocol.metrics = metrics;
  options.poll_us = 100;
  options.max_poll_us = 1'000;
  return options;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(EngineOptions engine_options, int num_workers = 4) {
    engine_ = std::make_unique<Engine>(std::move(engine_options));
    ServerOptions server_options;
    server_options.num_workers = num_workers;
    server_ = std::make_unique<SessionServer>(engine_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    // The one safe order: wake parked sessions first, then stop the server.
    if (engine_ != nullptr) engine_->Shutdown();
    if (server_ != nullptr) server_->Stop();
  }

  Status Connect(Client* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  ProtocolMetrics metrics_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<SessionServer> server_;
};

TEST_F(ServerTest, PingAndConnectionAccounting) {
  StartServer(BaseOptions(&metrics_));
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  StatusOr<Value> pong = client.Ping(31337);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, 31337);
  EXPECT_EQ(server_->active_connections(), 1);
  EXPECT_GE(metrics_.server_requests.value(), 1);
  EXPECT_GE(metrics_.server_queue_depth.count(), 1);
}

TEST_F(ServerTest, FullTransactionLifecycleOverTcp) {
  StartServer(BaseOptions(&metrics_));
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  StatusOr<int> tx = client.Begin("t0", {}, Range(0, 0, 100), Range(0, 0, 100));
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  StatusOr<Value> v = client.Read(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 50);
  ASSERT_TRUE(client.Write(0, 60).ok());
  v = client.Read(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 60);  // Own write visible through the wire.
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{60, 50}));
}

TEST_F(ServerTest, StagedPredicatesDriveBegin) {
  StartServer(BaseOptions(&metrics_));
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  // BEGIN(use_staged) without a prior PREDICATE frame is a sequence error.
  EXPECT_EQ(client.BeginStaged("early", {}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(
      client.StagePredicates(Range(0, 0, 100), Range(0, 0, 100)).ok());
  // The staged spec survives abort-retry loops: use it twice.
  StatusOr<int> tx = client.BeginStaged("staged", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Abort().ok());
  tx = client.BeginStaged("staged-retry", {});
  ASSERT_TRUE(tx.ok()) << tx.status().ToString();
  ASSERT_TRUE(client.Write(0, 70).ok());
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{70, 50}));
}

TEST_F(ServerTest, DroppedConnectionRollsItsTransactionBack) {
  StartServer(BaseOptions(&metrics_));
  {
    Client client;
    ASSERT_TRUE(Connect(&client).ok());
    ASSERT_TRUE(
        client.Begin("doomed", {}, Predicate::True(), Predicate::True()).ok());
    ASSERT_TRUE(client.Write(0, 99).ok());
    // Client vanishes mid-transaction.
  }
  // The server notices the close and the session destructor rolls back.
  for (int i = 0; i < 200 && engine_->inflight() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(engine_->inflight(), 0);
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{50, 50}));
}

TEST_F(ServerTest, AdmissionShedSurfacesAsRetryLaterOnTheWire) {
  EngineOptions options = BaseOptions(&metrics_);
  options.max_inflight_tx = 1;
  StartServer(options);
  Client first, second;
  ASSERT_TRUE(Connect(&first).ok());
  ASSERT_TRUE(Connect(&second).ok());
  ASSERT_TRUE(
      first.Begin("a", {}, Predicate::True(), Predicate::True()).ok());
  // Budget exhausted: the wire answer is RETRY_LATER, not a hang.
  EXPECT_EQ(
      second.Begin("b", {}, Predicate::True(), Predicate::True()).status().code(),
      StatusCode::kResourceExhausted);
  ASSERT_TRUE(first.Commit().ok());
  // The client retries and gets in.
  EXPECT_TRUE(
      second.Begin("b", {}, Predicate::True(), Predicate::True()).ok());
  ASSERT_TRUE(second.Commit().ok());
  EXPECT_GE(metrics_.server_shed.value(), 1);
  EXPECT_EQ(metrics_.server_accepted.value(), 2);
}

// One write-skew interleaving, expressed against any transaction handle.
// T1 and T2 each check "x <= 50 and y <= 50" as their input condition, then
// blindly bump their own entity to 80; both begin before either commits.
// Under a serializability-based scheduler one of them must be rejected; the
// paper's point is that with these specifications both commits are correct,
// and the CEP accepts exactly that.
struct SkewVerdict {
  bool t1_committed = false;
  bool t2_committed = false;
  ValueVector final_state;

  bool operator==(const SkewVerdict& other) const {
    return t1_committed == other.t1_committed &&
           t2_committed == other.t2_committed &&
           final_state == other.final_state;
  }
};

SkewVerdict RunWriteSkewInProcess(Engine* engine) {
  SkewVerdict verdict;
  std::unique_ptr<Session> t1 = engine->OpenSession();
  std::unique_ptr<Session> t2 = engine->OpenSession();
  engine::TxSpec spec1{"skew1", BothBelow50(), Predicate::True(), {}};
  engine::TxSpec spec2{"skew2", BothBelow50(), Predicate::True(), {}};
  bool b1 = t1->Begin(spec1).ok();
  bool b2 = t2->Begin(spec2).ok();
  verdict.t1_committed =
      b1 && t1->Write(0, 80).ok() && t1->Commit().ok();
  verdict.t2_committed =
      b2 && t2->Write(1, 80).ok() && t2->Commit().ok();
  verdict.final_state = engine->store()->LatestCommittedSnapshot();
  return verdict;
}

SkewVerdict RunWriteSkewOverTcp(Engine* engine, Client* t1, Client* t2) {
  SkewVerdict verdict;
  bool b1 = t1->Begin("skew1", {}, BothBelow50(), Predicate::True()).ok();
  bool b2 = t2->Begin("skew2", {}, BothBelow50(), Predicate::True()).ok();
  verdict.t1_committed =
      b1 && t1->Write(0, 80).ok() && t1->Commit().ok();
  verdict.t2_committed =
      b2 && t2->Write(1, 80).ok() && t2->Commit().ok();
  verdict.final_state = engine->store()->LatestCommittedSnapshot();
  return verdict;
}

TEST_F(ServerTest, TwoSessionWriteSkewMatchesInProcessVerdict) {
  // In-process baseline on its own engine.
  Engine baseline(BaseOptions());
  SkewVerdict in_process = RunWriteSkewInProcess(&baseline);
  baseline.Shutdown();

  // The same interleaving through two TCP sessions.
  StartServer(BaseOptions(&metrics_));
  Client t1, t2;
  ASSERT_TRUE(Connect(&t1).ok());
  ASSERT_TRUE(Connect(&t2).ok());
  SkewVerdict wired = RunWriteSkewOverTcp(engine_.get(), &t1, &t2);

  // The CEP verdict is transport-independent...
  EXPECT_EQ(wired, in_process);
  // ...and it is the non-serializable acceptance the paper argues for:
  // both transactions commit even though no serial order admits the second
  // one's input condition after the first one's write.
  EXPECT_TRUE(wired.t1_committed);
  EXPECT_TRUE(wired.t2_committed);
  EXPECT_EQ(wired.final_state, (ValueVector{80, 80}));
}

TEST_F(ServerTest, UnsatisfiableBeginVerdictMatchesInProcess) {
  // With bounded waiting, a begin whose input can never be satisfied
  // resolves to kAborted — identically in-process and over the wire.
  EngineOptions options = BaseOptions();
  options.max_blocked_us = 10'000;

  Engine baseline(options);
  std::unique_ptr<Session> session = baseline.OpenSession();
  engine::TxSpec spec{"impossible", Range(0, 90, 100), Predicate::True(), {}};
  Status in_process = session->Begin(spec);
  baseline.Shutdown();

  options.protocol.metrics = &metrics_;
  StartServer(options);
  Client client;
  ASSERT_TRUE(Connect(&client).ok());
  Status wired =
      client.Begin("impossible", {}, Range(0, 90, 100), Predicate::True())
          .status();
  EXPECT_EQ(wired.code(), in_process.code());
  EXPECT_EQ(wired.code(), StatusCode::kAborted);
}

TEST_F(ServerTest, EngineFirstTeardownWithLiveClients) {
  StartServer(BaseOptions(&metrics_));
  Client active, idle;
  ASSERT_TRUE(Connect(&active).ok());
  ASSERT_TRUE(Connect(&idle).ok());
  ASSERT_TRUE(
      active.Begin("open", {}, Predicate::True(), Predicate::True()).ok());
  ASSERT_TRUE(active.Write(0, 99).ok());

  // Engine first (wakes anything parked), then the server.
  engine_->Shutdown();
  server_->Stop();
  EXPECT_EQ(server_->active_connections(), 0);

  // The in-flight transaction never committed; the store is clean.
  EXPECT_EQ(engine_->store()->LatestCommittedSnapshot(), (ValueVector{50, 50}));

  // Clients observe a dead connection, not a hang: either an error
  // response raced out or the socket is simply closed.
  StatusOr<Value> pong = active.Ping(1);
  EXPECT_FALSE(pong.ok());

  // Both Stop and Shutdown stay idempotent after the fact.
  server_->Stop();
  engine_->Shutdown();
}

TEST_F(ServerTest, ManyConcurrentSessionsMakeProgress) {
  StartServer(BaseOptions(&metrics_), /*num_workers=*/4);
  constexpr int kClients = 8;
  constexpr int kRounds = 16;
  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      for (int round = 0; round < kRounds; ++round) {
        StatusOr<int> tx =
            client.Begin("load", {}, Predicate::True(), Predicate::True());
        if (!tx.ok()) continue;  // Shed or aborted: try the next round.
        EntityId e = static_cast<EntityId>(i % 2);
        if (!client.Write(e, i * 100 + round).ok()) continue;
        if (client.Commit().ok()) commits.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Writers never block each other in this protocol; with True predicates
  // every attempt should land.
  EXPECT_EQ(commits.load(), kClients * kRounds);
  EXPECT_GE(metrics_.server_accepted.value(), commits.load());
  EXPECT_EQ(engine_->inflight(), 0);
}

}  // namespace
}  // namespace nonserial
