#ifndef NONSERIAL_TESTS_FUZZ_SUPPORT_H_
#define NONSERIAL_TESTS_FUZZ_SUPPORT_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace nonserial {
namespace fuzz {

/// Seed override for the fuzz tests: NONSERIAL_FUZZ_SEED=<n> re-runs only
/// seed n, so a failure printed by ReproduceHint() replays in isolation.
/// Returns 0 (no override) when the variable is unset or unparsable.
inline uint64_t SeedOverride() {
  const char* env = std::getenv("NONSERIAL_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

/// True if `seed` should run under the current override (all seeds when no
/// override is set, exactly the override otherwise).
inline bool ShouldRunSeed(uint64_t seed) {
  uint64_t only = SeedOverride();
  return only == 0 || only == seed;
}

/// Attached to every fuzz assertion: how to replay just this seed.
inline std::string ReproduceHint(uint64_t seed) {
  return "reproduce with NONSERIAL_FUZZ_SEED=" + std::to_string(seed);
}

}  // namespace fuzz
}  // namespace nonserial

#endif  // NONSERIAL_TESTS_FUZZ_SUPPORT_H_
