#include <gtest/gtest.h>

#include "model/execution.h"

namespace nonserial {
namespace {

// A two-leaf tree over entities {x=0, y=1, z=2}: t.0 writes x := x + 1;
// t.1 writes y := x * 2 (reading x); t_f reads everything.
struct SimpleTree {
  TransactionTree tree;
  int leaf0, leaf1, tf, root;

  explicit SimpleTree(std::vector<std::pair<int, int>> partial_order = {}) {
    LeafProgram p0;
    p0.AddWrite(0, Expr::Add(Expr::Var(0), Expr::Const(1)));
    LeafProgram p1;
    p1.AddWrite(1, Expr::Mul(Expr::Var(0), Expr::Const(2)));
    LeafProgram pf;
    pf.AddRead(0);
    pf.AddRead(1);
    pf.AddRead(2);
    leaf0 = tree.AddLeaf("t.0", p0);
    leaf1 = tree.AddLeaf("t.1", p1);
    tf = tree.AddLeaf("t.f", pf);
    if (partial_order.empty()) {
      partial_order = {{0, 2}, {1, 2}};  // Both before t_f.
    }
    root = tree.AddInternal("t", {leaf0, leaf1, tf}, partial_order,
                            Specification(), /*final_child=*/2);
    tree.SetRoot(root);
  }
};

TEST(SerialExecutionTest, DefaultOrderComputesSequentially) {
  SimpleTree t;
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  // Serial t.0 then t.1: x = 11, y = 22, z = 7.
  ExecutionEvaluator eval(t.tree, *exec);
  auto out = eval.OutputOf(t.root);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (UniqueState{11, 22, 7}));
}

TEST(SerialExecutionTest, ExplicitOrderRespected) {
  SimpleTree t;
  std::map<int, std::vector<int>> orders = {{t.root, {1, 0, 2}}};
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7}, &orders);
  ASSERT_TRUE(exec.ok());
  // t.1 first: y = 20; then t.0: x = 11.
  ExecutionEvaluator eval(t.tree, *exec);
  auto out = eval.OutputOf(t.root);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, (UniqueState{11, 20, 7}));
}

TEST(SerialExecutionTest, OrderViolatingPartialOrderRejected) {
  SimpleTree t({{0, 1}, {0, 2}, {1, 2}});  // t.0 before t.1.
  std::map<int, std::vector<int>> orders = {{t.root, {1, 0, 2}}};
  EXPECT_FALSE(MakeSerialExecution(t.tree, {10, 0, 7}, &orders).ok());
}

TEST(SerialExecutionTest, SerialExecutionPassesAllChecks) {
  SimpleTree t;
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(ValidateExecutionStructure(t.tree, *exec).ok());
  EXPECT_TRUE(CheckParentBased(t.tree, *exec).ok());
  EXPECT_TRUE(CheckCorrectness(t.tree, *exec).ok());
  EXPECT_TRUE(CheckCorrectExecution(t.tree, *exec).ok());
}

TEST(ExecutionCheckTest, MissingNodeExecutionRejected) {
  SimpleTree t;
  TreeExecution exec;
  exec.root_input = {10, 0, 7};
  EXPECT_FALSE(ValidateExecutionStructure(t.tree, exec).ok());
}

TEST(ExecutionCheckTest, PartialOrderInvalidationDetected) {
  // P: t.0 before t.1; R: t.1 before t.0 — violates the execution rule.
  SimpleTree t({{0, 1}, {0, 2}, {1, 2}});
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  NodeExecution& ne = exec->node_executions[t.root];
  ne.reads_from.push_back({1, 0});  // (t.1, t.0) ∈ R against P.
  Status status = ValidateExecutionStructure(t.tree, *exec);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("partial order invalidation"),
            std::string::npos);
}

TEST(ExecutionCheckTest, ParentBasedViolationDetected) {
  SimpleTree t;
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  // Corrupt t.1's input: value 999 comes from nobody.
  exec->node_executions[t.root].inputs[1][0] = 999;
  EXPECT_TRUE(ValidateExecutionStructure(t.tree, *exec).ok());
  EXPECT_FALSE(CheckParentBased(t.tree, *exec).ok());
}

TEST(ExecutionCheckTest, MultiversionReadIsParentBased) {
  // t.1 reads the *parent's* x although t.0 wrote x first — legal in the
  // model (multiple versions), impossible in a single-version serial run.
  SimpleTree t;
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  NodeExecution& ne = exec->node_executions[t.root];
  ne.inputs[1][0] = 10;  // Parent's version of x, not t.0's 11.
  // t_f now observes y = 20 from t.1 and x = 11 from t.0 directly.
  ne.reads_from.push_back({0, 2});
  ne.inputs[2] = {11, 20, 7};
  EXPECT_TRUE(CheckParentBased(t.tree, *exec).ok());
}

TEST(ExecutionCheckTest, InputPredicateViolationDetected) {
  SimpleTree t;
  t.tree.mutable_node(t.leaf1).spec.input.AddClause(
      Clause({EntityVsConst(0, CompareOp::kGe, 100)}));
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  Status status = CheckCorrectness(t.tree, *exec);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("input predicate"), std::string::npos);
}

TEST(ExecutionCheckTest, OutputPredicateViolationDetected) {
  SimpleTree t;
  t.tree.mutable_node(t.root).spec.output.AddClause(
      Clause({EntityVsConst(1, CompareOp::kGe, 1000)}));
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  Status status = CheckCorrectness(t.tree, *exec);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("output predicate"), std::string::npos);
}

TEST(ExecutionCheckTest, SatisfiedSpecificationsPass) {
  SimpleTree t;
  t.tree.mutable_node(t.leaf1).spec.input.AddClause(
      Clause({EntityVsConst(0, CompareOp::kGe, 10)}));
  t.tree.mutable_node(t.root).spec.output.AddClause(
      Clause({EntityVsConst(1, CompareOp::kGe, 20)}));
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(CheckCorrectExecution(t.tree, *exec).ok());
}

// The Figure 1 tree: t with children t.0, t.1, t.2; t.0 has leaves
// t.0.0..t.0.2; t.1 has t.1.0 (itself nested: t.1.0.0, t.1.0.1) and t.1.1
// (t.1.1.0..t.1.1.2); t.2 has t.2.0. We realize it with counter bumps.
TEST(NestedExecutionTest, Figure1TreeSerialExecutionIsCorrect) {
  TransactionTree tree;
  auto bump = [&](const std::string& name, EntityId e) {
    LeafProgram p;
    p.AddWrite(e, Expr::Add(Expr::Var(e), Expr::Const(1)));
    return tree.AddLeaf(name, p);
  };
  // t.0: three leaves, sequential.
  int t00 = bump("t.0.0", 0);
  int t01 = bump("t.0.1", 0);
  int t02 = bump("t.0.2", 1);
  int t0 = tree.AddInternal("t.0", {t00, t01, t02}, {{0, 1}, {1, 2}},
                            Specification(), 2);
  // t.1.0: two leaves.
  int t100 = bump("t.1.0.0", 1);
  int t101 = bump("t.1.0.1", 2);
  int t10 = tree.AddInternal("t.1.0", {t100, t101}, {{0, 1}},
                             Specification(), 1);
  // t.1.1: three leaves, unordered.
  int t110 = bump("t.1.1.0", 0);
  int t111 = bump("t.1.1.1", 1);
  int t112 = bump("t.1.1.2", 2);
  int t11 = tree.AddInternal("t.1.1", {t110, t111, t112}, {},
                             Specification(), 2);
  int t1 = tree.AddInternal("t.1", {t10, t11}, {}, Specification(), 1);
  // t.2: one leaf.
  int t20 = bump("t.2.0", 2);
  int t2 = tree.AddInternal("t.2", {t20}, {}, Specification(), 0);
  int root = tree.AddInternal("t", {t0, t1, t2}, {{0, 1}, {1, 2}},
                              Specification(), 2);
  tree.SetRoot(root);
  ASSERT_TRUE(tree.Validate().ok());

  auto exec = MakeSerialExecution(tree, {0, 0, 0});
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(CheckCorrectExecution(tree, *exec).ok());

  ExecutionEvaluator eval(tree, *exec);
  auto out = eval.OutputOf(root);
  ASSERT_TRUE(out.ok());
  // Writes: e0 bumped by t.0.0, t.0.1, t.1.1.0 = 3;
  // e1 by t.0.2, t.1.0.0, t.1.1.1 = 3; e2 by t.1.0.1, t.1.1.2, t.2.0 = 3.
  EXPECT_EQ(*out, (UniqueState{3, 3, 3}));
  (void)t1;
  (void)t2;
}

TEST(EvaluatorTest, InputOfRootIsRootInput) {
  SimpleTree t;
  auto exec = MakeSerialExecution(t.tree, {10, 0, 7});
  ASSERT_TRUE(exec.ok());
  ExecutionEvaluator eval(t.tree, *exec);
  auto input = eval.InputOf(t.root);
  ASSERT_TRUE(input.ok());
  EXPECT_EQ(*input, (ValueVector{10, 0, 7}));
}

TEST(EvaluatorTest, NodeWithoutFinalChildHasNoOutput) {
  TransactionTree tree;
  int leaf = tree.AddLeaf("t.0", LeafProgram());
  int root = tree.AddInternal("t", {leaf}, {}, Specification(), -1);
  tree.SetRoot(root);
  TreeExecution exec;
  exec.root_input = {};
  NodeExecution ne;
  ne.inputs = {ValueVector{}};
  exec.node_executions[root] = ne;
  ExecutionEvaluator eval(tree, exec);
  EXPECT_FALSE(eval.OutputOf(root).ok());
}

}  // namespace
}  // namespace nonserial
