// Runs every checked-in scenario in scenarios/ — the anomaly zoo — against
// all six protocols, asserting the expect blocks embedded in each spec.
// This is the same sweep tools/run_scenarios performs; here it gates ctest.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

#ifndef NONSERIAL_SCENARIO_DIR
#error "NONSERIAL_SCENARIO_DIR must point at the checked-in scenarios/"
#endif

namespace nonserial {
namespace scenario {
namespace {

std::vector<std::filesystem::path> SpecFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(NONSERIAL_SCENARIO_DIR)) {
    if (entry.path().extension() == ".spec") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ScenarioSuite, ZooIsSeededAndParses) {
  std::vector<std::filesystem::path> files = SpecFiles();
  // The acceptance floor: at least ten scenarios in the zoo.
  EXPECT_GE(files.size(), 10u);
  bool saw_cpc_not_sr = false;
  for (const auto& path : files) {
    StatusOr<ScenarioSpec> spec = ParseScenario(Slurp(path));
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status().ToString();
    EXPECT_EQ(path.stem().string(), spec->name) << path;
    // Scan for the required CPC-admits / SR-forbids split somewhere in
    // the zoo's expectations.
    for (const Permutation& perm : spec->permutations) {
      for (const Expectation& e : perm.expectations) {
        bool plus_cpc = false;
        bool minus_sr = false;
        for (const ClassAssertion& a : e.classes) {
          if (a.cls == ClassAssertion::Cls::kCpc && a.expected)
            plus_cpc = true;
          if (a.cls == ClassAssertion::Cls::kSr && !a.expected)
            minus_sr = true;
        }
        saw_cpc_not_sr |= plus_cpc && minus_sr;
      }
    }
  }
  EXPECT_TRUE(saw_cpc_not_sr)
      << "no scenario asserts a +cpc -sr split anywhere in the zoo";
}

TEST(ScenarioSuite, EverySpecPassesItsExpectations) {
  for (const auto& path : SpecFiles()) {
    StatusOr<ScenarioSpec> spec = ParseScenario(Slurp(path));
    ASSERT_TRUE(spec.ok()) << path;
    StatusOr<SpecResult> result = RunSpec(*spec, SuiteOptions{});
    ASSERT_TRUE(result.ok()) << path << ": " << result.status().ToString();
    EXPECT_TRUE(result->ok())
        << path << " first failure: "
        << (result->failures.empty() ? "" : result->failures[0]);
  }
}

TEST(ScenarioSuite, ChaosReplayHoldsAcrossTheZoo) {
  SuiteOptions options;
  options.chaos = true;
  int crash_points = 0;
  for (const auto& path : SpecFiles()) {
    StatusOr<ScenarioSpec> spec = ParseScenario(Slurp(path));
    ASSERT_TRUE(spec.ok()) << path;
    StatusOr<SpecResult> result = RunSpec(*spec, options);
    ASSERT_TRUE(result.ok()) << path;
    EXPECT_TRUE(result->ok())
        << path << " first failure: "
        << (result->failures.empty() ? "" : result->failures[0]);
    crash_points += result->chaos_crash_points;
  }
  EXPECT_GT(crash_points, 0);
}

}  // namespace
}  // namespace scenario
}  // namespace nonserial
