#include <gtest/gtest.h>

#include "classes/recognizers.h"
#include "classes/recoverability.h"
#include "core/database.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

// A tiny two-transaction workload: t0 bumps x, t1 bumps y.
SimWorkload DisjointWorkload() {
  SimWorkload w;
  w.initial = {50, 50};
  w.objects = {{0}, {1}};
  for (int i = 0; i < 2; ++i) {
    SimTx tx;
    tx.name = i == 0 ? "bump-x" : "bump-y";
    EntityId e = i;
    tx.input = Range(e, 0, 100);
    tx.output = Range(e, 0, 100);
    tx.steps = {SimStep::Read(e),
                SimStep::Write(e, Expr::Add(Expr::Var(e), Expr::Const(1)))};
    tx.arrival = i;
    w.txs.push_back(std::move(tx));
  }
  return w;
}

class AllProtocolsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocolsTest, DisjointWorkloadCommitsEverywhere) {
  SimWorkload w = DisjointWorkload();
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(GetParam()));
  EXPECT_TRUE(result.all_committed);
  EXPECT_EQ(result.committed_count, 2);
  EXPECT_EQ(result.final_state, (ValueVector{51, 51}));
  EXPECT_EQ(result.total_aborts, 0);
}

TEST_P(AllProtocolsTest, ConflictingWorkloadStillConverges) {
  // Both transactions read and bump the same entity.
  SimWorkload w;
  w.initial = {50};
  w.objects = {{0}};
  for (int i = 0; i < 2; ++i) {
    SimTx tx;
    tx.name = i == 0 ? "a" : "b";
    tx.input = Range(0, 0, 100);
    tx.output = Range(0, 0, 100);
    tx.steps = {SimStep::Read(0),
                SimStep::Write(0, Expr::Add(Expr::Var(0), Expr::Const(1)))};
    tx.arrival = i;
    w.txs.push_back(std::move(tx));
  }
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(GetParam()));
  EXPECT_TRUE(result.all_committed) << ProtocolKindName(GetParam());
  // Depending on the protocol the final value is 51 (lost-update-free
  // multiversion mix is legal under CEP: both read 50) or 52 (serial).
  EXPECT_GE(result.final_state[0], 51);
  EXPECT_LE(result.final_state[0], 52);
}

TEST_P(AllProtocolsTest, PrecedenceChainRespected) {
  // t1 must follow t0. Under every protocol t1 observes t0's write.
  SimWorkload w;
  w.initial = {50};
  w.objects = {{0}};
  SimTx t0;
  t0.name = "first";
  t0.input = Range(0, 0, 100);
  t0.output = Range(0, 0, 100);
  t0.steps = {SimStep::Read(0), SimStep::Write(0, Expr::Const(60))};
  SimTx t1;
  t1.name = "second";
  t1.input = Range(0, 0, 100);
  t1.output = Range(0, 0, 100);
  t1.steps = {SimStep::Read(0),
              SimStep::Write(0, Expr::Add(Expr::Var(0), Expr::Const(1)))};
  t1.predecessors = {0};
  w.txs = {t0, t1};
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(GetParam()));
  ASSERT_TRUE(result.all_committed) << ProtocolKindName(GetParam());
  EXPECT_EQ(result.final_state[0], 61) << ProtocolKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocolsTest,
    ::testing::Values(ProtocolKind::kCep, ProtocolKind::kStrict2pl,
                      ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto,
                      ProtocolKind::kPwMvto),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = ProtocolKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SimulatorTest, ThinkTimeExtendsMakespan) {
  SimWorkload fast = DisjointWorkload();
  SimWorkload slow = DisjointWorkload();
  for (SimTx& tx : slow.txs) tx.think_between_ops = 1000;
  Simulator sim;
  SimResult fast_result =
      sim.Run(fast, MakeControllerFactory(ProtocolKind::kCep));
  SimResult slow_result =
      sim.Run(slow, MakeControllerFactory(ProtocolKind::kCep));
  EXPECT_GT(slow_result.makespan, fast_result.makespan + 1000);
}

TEST(SimulatorTest, BlockedTimeAccountedUnder2pl) {
  // Writer holds the lock while thinking; the reader's wait is recorded.
  SimWorkload w;
  w.initial = {50};
  w.objects = {{0}};
  SimTx writer;
  writer.name = "writer";
  writer.input = Range(0, 0, 100);
  writer.output = Predicate::True();
  writer.steps = {SimStep::Write(0, Expr::Const(60)), SimStep::Think(500)};
  SimTx reader;
  reader.name = "reader";
  reader.input = Range(0, 0, 100);
  reader.output = Predicate::True();
  reader.steps = {SimStep::Read(0)};
  reader.arrival = 5;
  w.txs = {writer, reader};
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(ProtocolKind::kStrict2pl));
  ASSERT_TRUE(result.all_committed);
  EXPECT_GT(result.tx[1].blocked_time, 400);
  // Under CEP the reader never waits for the thinker.
  SimResult cep = sim.Run(w, MakeControllerFactory(ProtocolKind::kCep));
  ASSERT_TRUE(cep.all_committed);
  EXPECT_LT(cep.tx[1].blocked_time, 10);
}

TEST(SimulatorTest, AbortsCountedAndRetried) {
  // MVTO: old transaction writes after a younger read — aborts, restarts,
  // and eventually commits.
  SimWorkload w;
  w.initial = {50};
  w.objects = {{0}};
  SimTx old_tx;
  old_tx.name = "old";
  old_tx.input = Range(0, 0, 100);
  old_tx.steps = {SimStep::Think(10), SimStep::Write(0, Expr::Const(60))};
  SimTx young;
  young.name = "young";
  young.input = Range(0, 0, 100);
  young.arrival = 1;
  young.steps = {SimStep::Read(0)};
  w.txs = {old_tx, young};
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(ProtocolKind::kMvto));
  EXPECT_TRUE(result.all_committed);
  EXPECT_GE(result.total_aborts, 1);
  EXPECT_GE(result.total_wasted_ops, 0);
}

TEST(SimulatorTest, GeneratedDesignWorkloadConvergesUnderAllProtocols) {
  DesignWorkloadParams params;
  params.num_txs = 10;
  params.num_entities = 16;
  params.num_conjuncts = 4;
  params.think_time = 20;
  params.precedence_prob = 0.3;
  params.seed = 7;
  SimWorkload w = MakeDesignWorkload(params);
  for (ProtocolKind kind :
       {ProtocolKind::kCep, ProtocolKind::kStrict2pl,
        ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto,
        ProtocolKind::kPwMvto}) {
    Simulator sim;
    SimResult result = sim.Run(w, MakeControllerFactory(kind));
    EXPECT_TRUE(result.all_committed) << ProtocolKindName(kind);
    // The database constraint holds on the final state.
    EXPECT_TRUE(WorkloadConstraint(w).Eval(result.final_state))
        << ProtocolKindName(kind);
  }
}

TEST(SimulatorTest, EmittedHistoryRecordsCommittedOps) {
  SimWorkload w = DisjointWorkload();
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(ProtocolKind::kCep));
  ASSERT_TRUE(result.all_committed);
  const EmittedHistory& history = result.history;
  // 2 txs x (1 read + 1 write) = 4 ops.
  EXPECT_EQ(history.schedule.ops().size(), 4u);
  EXPECT_EQ(history.committed.size(), 2u);
  EXPECT_TRUE(ValidateCommitPoints(history.schedule, history.commits).ok());
  // Disjoint entities: trivially conflict serializable and strict.
  EXPECT_TRUE(IsConflictSerializable(history.schedule));
  EXPECT_TRUE(IsStrict(history.schedule, history.commits));
}

TEST(SimulatorTest, EmittedHistoryExcludesAbortedAttempts) {
  // MVTO scenario with a guaranteed abort: the final history must contain
  // only the committed attempts' operations.
  SimWorkload w;
  w.initial = {50};
  w.objects = {{0}};
  SimTx old_tx;
  old_tx.name = "old";
  old_tx.input = Range(0, 0, 100);
  old_tx.steps = {SimStep::Think(10), SimStep::Write(0, Expr::Const(60))};
  SimTx young;
  young.name = "young";
  young.input = Range(0, 0, 100);
  young.arrival = 1;
  young.steps = {SimStep::Read(0)};
  w.txs = {old_tx, young};
  Simulator sim;
  SimResult result = sim.Run(w, MakeControllerFactory(ProtocolKind::kMvto));
  ASSERT_TRUE(result.all_committed);
  ASSERT_GE(result.total_aborts, 1);
  // Committed attempts performed exactly 1 write (old) + 1 read (young).
  EXPECT_EQ(result.history.schedule.ops().size(), 2u);
}

TEST(SimulatorTest, Strict2plHistoryIsSerializableAndStrict) {
  DesignWorkloadParams params;
  params.num_txs = 8;
  params.num_entities = 8;
  params.think_time = 30;
  params.seed = 21;
  SimWorkload w = MakeDesignWorkload(params);
  Simulator sim;
  SimResult result =
      sim.Run(w, MakeControllerFactory(ProtocolKind::kStrict2pl));
  ASSERT_TRUE(result.all_committed);
  EXPECT_TRUE(IsConflictSerializable(result.history.schedule));
  EXPECT_TRUE(IsStrict(result.history.schedule, result.history.commits));
  EXPECT_TRUE(IsRecoverable(result.history.schedule, result.history.commits));
}

TEST(SimulatorTest, PlannedOpsExtraction) {
  SimWorkload w = DisjointWorkload();
  auto planned = PlannedOpsOf(w);
  ASSERT_EQ(planned.size(), 2u);
  EXPECT_EQ(planned[0].size(), 2u);
  EXPECT_FALSE(planned[0][0].first);  // Read.
  EXPECT_TRUE(planned[0][1].first);   // Write.
}

}  // namespace
}  // namespace nonserial
