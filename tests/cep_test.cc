#include <gtest/gtest.h>

#include "protocol/cep.h"

namespace nonserial {
namespace {

// Entities x=0, y=1 with initial value 50 and domain constraint [0, 100].
Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name, Predicate input,
                  Predicate output = Predicate::True(),
                  std::vector<int> preds = {}) {
  TxProfile profile;
  profile.name = name;
  profile.input = std::move(input);
  profile.output = std::move(output);
  profile.predecessors = std::move(preds);
  return profile;
}

class CepTest : public ::testing::Test {
 protected:
  CepTest() : store_({50, 50}), cep_(&store_) {}

  VersionStore store_;
  CorrectExecutionProtocol cep_;
};

TEST_F(CepTest, SingleTransactionLifecycle) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100), Range(0, 0, 100)));
  EXPECT_EQ(cep_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(cep_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  EXPECT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
  ASSERT_TRUE(cep_.records()[0].committed);
  EXPECT_EQ(cep_.records()[0].writes,
            (std::vector<std::pair<EntityId, Value>>{{0, 60}}));
  EXPECT_EQ(cep_.records()[0].input_state, (ValueVector{50, 50}));
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{60, 50}));
}

TEST_F(CepTest, OwnWriteVisibleToOwnRead) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 75), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  Value v = 0;
  ASSERT_EQ(cep_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 75);
}

TEST_F(CepTest, WritersNeverBlock) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  cep_.Register(1, Profile("t1", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  // Both write x concurrently; each creates its own version.
  EXPECT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  EXPECT_EQ(cep_.Write(1, 0, 70), ReqResult::kGranted);
  EXPECT_EQ(store_.ChainSize(0), 3);
}

TEST_F(CepTest, ReaderBlocksOnActiveWriteOnly) {
  cep_.Register(0, Profile("writer", Predicate::True()));
  cep_.Register(1, Profile("reader", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  // Write in progress: the read blocks (Figure 3 "false" entry).
  Value v = 0;
  EXPECT_EQ(cep_.Read(1, 0, &v), ReqResult::kBlocked);
  cep_.WriteDone(0, 0);
  std::vector<int> wakeups = cep_.TakeWakeups();
  EXPECT_EQ(wakeups, (std::vector<int>{1}));
  EXPECT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);  // Still the assigned (initial) version.
}

TEST_F(CepTest, ValidationBlockedOnActiveWriter) {
  cep_.Register(0, Profile("writer", Predicate::True()));
  cep_.Register(1, Profile("reader", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  EXPECT_EQ(cep_.Begin(1), ReqResult::kBlocked);  // Rv lock vs active W.
  cep_.WriteDone(0, 0);
  EXPECT_EQ(cep_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(cep_.Begin(1), ReqResult::kGranted);
}

TEST_F(CepTest, UnsatisfiableValidationWaitsForNewVersions) {
  // Reader needs x >= 90; only 50 exists.
  cep_.Register(0, Profile("reader", Range(0, 90, 100)));
  cep_.Register(1, Profile("writer", Predicate::True()));
  EXPECT_EQ(cep_.Begin(0), ReqResult::kBlocked);
  EXPECT_GT(cep_.stats().validation_retries, 0);
  // A sibling writes a satisfying version.
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(1, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(1, 0);
  EXPECT_EQ(cep_.TakeWakeups(), (std::vector<int>{0}));
  EXPECT_EQ(cep_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 95);
}

TEST_F(CepTest, MixedVersionStateIsAssignable) {
  // t0 writes x=60, t1 writes y=70; t2 requires (x >= 60) & (y >= 70):
  // only the mix of both new versions satisfies it.
  cep_.Register(0, Profile("tx", Predicate::True()));
  cep_.Register(1, Profile("ty", Predicate::True()));
  Predicate mix = Predicate::And(Range(0, 60, 100), Range(1, 70, 100));
  cep_.Register(2, Profile("mix", mix));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Write(1, 1, 70), ReqResult::kGranted);
  cep_.WriteDone(1, 1);
  ASSERT_EQ(cep_.Begin(2), ReqResult::kGranted);
  Value x = 0, y = 0;
  ASSERT_EQ(cep_.Read(2, 0, &x), ReqResult::kGranted);
  ASSERT_EQ(cep_.Read(2, 1, &y), ReqResult::kGranted);
  EXPECT_EQ(x, 60);
  EXPECT_EQ(y, 70);
}

TEST_F(CepTest, ReEvalReassignsUnreadValidatedReader) {
  // t1 precedes t2 in P. t2 validates against the initial version; when t1
  // then writes x, t2 (Rv only, nothing read) is silently re-assigned.
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 0, 100), Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 77), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  EXPECT_EQ(cep_.stats().reassigns, 1);
  EXPECT_EQ(cep_.stats().po_aborts, 0);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 77);  // The predecessor's version, as the partial order demands.
}

TEST_F(CepTest, ReEvalAbortsReaderThatReadStaleVersion) {
  // Same setup, but t2 reads x before t1 writes: partial-order
  // invalidation, Figure 4's abort branch.
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 0, 100), Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 77), ReqResult::kGranted);
  EXPECT_EQ(cep_.stats().po_aborts, 1);
  EXPECT_EQ(cep_.TakeForcedAborts(), (std::vector<int>{1}));
  cep_.WriteDone(0, 0);
  cep_.Abort(1);
  // t2 restarts and now sees the predecessor's version.
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 77);
}

TEST_F(CepTest, NonPredecessorWriteDoesNotDisturbReader) {
  // No partial order: a concurrent write leaves the reader on its old
  // version (multiversion tolerance — the paper's key concurrency win).
  cep_.Register(0, Profile("reader", Range(0, 0, 100)));
  cep_.Register(1, Profile("writer", Predicate::True()));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(0, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(1, 0, 99), ReqResult::kGranted);
  cep_.WriteDone(1, 0);
  EXPECT_EQ(cep_.stats().po_aborts, 0);
  EXPECT_TRUE(cep_.TakeForcedAborts().empty());
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
}

TEST_F(CepTest, CommitWaitsForPredecessor) {
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Predicate::True(), Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kBlocked);
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(cep_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
}

TEST_F(CepTest, CommitWaitsForAssignedAuthor) {
  // t1 writes x=95; t2's input constraint is only satisfiable by that
  // version, so t2's commit waits for t1's.
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 90, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kBlocked);
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(cep_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
  EXPECT_EQ(cep_.records()[1].feeder_txs, (std::set<int>{0}));
}

TEST_F(CepTest, AbortCascadesToReaderOfDeadVersion) {
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 90, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 95);
  cep_.Abort(0);  // t1 dies; t2 consumed its version.
  EXPECT_EQ(cep_.stats().cascade_aborts, 1);
  EXPECT_EQ(cep_.TakeForcedAborts(), (std::vector<int>{1}));
}

TEST_F(CepTest, AbortReassignsUnreadDependant) {
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  cep_.Abort(0);
  EXPECT_TRUE(cep_.TakeForcedAborts().empty());
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);  // Back on a live version.
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
}

// Regression: t2 is assigned t1's versions of BOTH x and y but has only
// read y when t1 aborts. The cascade scan must consider the whole
// assignment — bailing out at the first (unread) entity and re-solving
// with the consumed y still pinned would smuggle t1's rolled-back value
// into t2's input state.
TEST_F(CepTest, AbortCascadesWhenAnyReadEntityHoldsDeadVersion) {
  Predicate both = Predicate::And(Range(0, 90, 100), Range(1, 90, 100));
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", both));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Write(0, 1, 95), ReqResult::kGranted);
  cep_.WriteDone(0, 1);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);  // Assigned t1's x and y.
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 1, &v), ReqResult::kGranted);  // Reads y only.
  EXPECT_EQ(v, 95);
  cep_.Abort(0);
  EXPECT_EQ(cep_.stats().cascade_aborts, 1);
  EXPECT_EQ(cep_.TakeForcedAborts(), (std::vector<int>{1}));
  // And the doomed attempt cannot commit even if the driver races to it.
  EXPECT_EQ(cep_.Commit(1), ReqResult::kAborted);
}

// Regression (Theorem 2 under concurrent drivers): once Figure 4 condemns
// an attempt, a Commit racing the abort signal must lose — the partial-
// order invalidation would otherwise be published.
TEST_F(CepTest, ForcedAbortBeatsRacingCommit) {
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", Range(0, 0, 100), Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);  // Reads stale x.
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 77), ReqResult::kGranted);  // PO invalidation.
  cep_.WriteDone(0, 0);
  // Signals drained (as a concurrent driver thread would have done) —
  // the engine must still remember the condemnation.
  EXPECT_EQ(cep_.TakeForcedAborts(), (std::vector<int>{1}));
  EXPECT_EQ(cep_.Commit(1), ReqResult::kAborted);
  cep_.Abort(1);
  // A fresh attempt is clean.
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 77);
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
}

TEST_F(CepTest, FailedOutputConditionAborts) {
  Predicate impossible = Range(0, 200, 300);
  cep_.Register(0, Profile("t0", Predicate::True(), impossible));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  EXPECT_EQ(cep_.Commit(0), ReqResult::kAborted);
  cep_.Abort(0);
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{50, 50}));
}

TEST_F(CepTest, CommitWaitsResolveAfterAuthorsCommit) {
  // Two consumers each validated against a different producer's version;
  // both commits block until their producers commit, then proceed.
  cep_.Register(0, Profile("t0", Range(1, 90, 100)));
  cep_.Register(1, Profile("t1", Range(0, 90, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kBlocked);  // y=90 not yet written.
  ASSERT_EQ(cep_.Begin(1), ReqResult::kBlocked);
  // Each writes what the other needs.
  // (Writes require kExecuting; use fresh writers instead.)
  cep_.Register(2, Profile("wx", Predicate::True()));
  cep_.Register(3, Profile("wy", Predicate::True()));
  ASSERT_EQ(cep_.Begin(2), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(3), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(2, 0, 95), ReqResult::kGranted);
  cep_.WriteDone(2, 0);
  ASSERT_EQ(cep_.Write(3, 1, 95), ReqResult::kGranted);
  cep_.WriteDone(3, 1);
  (void)cep_.TakeWakeups();
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  // t0 waits on writer 3; t1 waits on writer 2 — no cycle here; both
  // proceed once the writers commit.
  EXPECT_EQ(cep_.Commit(0), ReqResult::kBlocked);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kBlocked);
  EXPECT_EQ(cep_.Commit(2), ReqResult::kGranted);
  EXPECT_EQ(cep_.Commit(3), ReqResult::kGranted);
  (void)cep_.TakeWakeups();
  EXPECT_EQ(cep_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
}

TEST_F(CepTest, StatsTrackValidations) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(cep_.stats().validations, 1);
}

TEST_F(CepTest, ReassignFailureAbortsReader) {
  // t2 follows t1 in P, needs (x <= y), and has already read y = 50
  // (pinned). When t1 writes x = 90, the Figure 4 re-assign must pin
  // x to 90 — but 90 <= 50 fails and nothing else can move: the reader
  // is force-aborted.
  Predicate rel = Range(0, 0, 100);
  rel = Predicate::And(rel, Range(1, 0, 100));
  rel.AddClause(Clause({EntityVsEntity(0, CompareOp::kLe, 1)}));
  cep_.Register(0, Profile("t1", Predicate::True()));
  cep_.Register(1, Profile("t2", rel, Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 1, &v), ReqResult::kGranted);  // y pinned at 50.
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 90), ReqResult::kGranted);
  EXPECT_EQ(cep_.stats().reassigns, 1);
  EXPECT_EQ(cep_.stats().reassign_failures, 1);
  EXPECT_EQ(cep_.TakeForcedAborts(), (std::vector<int>{1}));
}

TEST_F(CepTest, PinnedVersionsProtectAssignmentsFromGc) {
  // t1 commits a new version of x; t2 validates against the *old* initial
  // version (its constraint demands a small x). GC must not collect the
  // version t2 is assigned.
  cep_.Register(0, Profile("writer", Predicate::True()));
  cep_.Register(1, Profile("reader", Range(0, 0, 55)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 90), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Commit(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);  // Assigned initial x=50.
  std::vector<VersionRef> pinned = cep_.PinnedVersions();
  ASSERT_FALSE(pinned.empty());
  // Without pins the initial version of x would be obsolete (90 is the
  // latest committed); the pin keeps it.
  store_.CollectObsolete(pinned);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  EXPECT_EQ(cep_.Commit(1), ReqResult::kGranted);
}

// Regression: the optimistic out-of-lock validation used to rescan without
// bound — a write storm on a hot entity invalidated the snapshot on every
// pass, livelocking Begin. The rescan cap must kick in and fall back to the
// in-lock Figure 4 search, which cannot be invalidated.
TEST(CepStarvationTest, HotEntityWriteStormCannotLivelockValidation) {
  VersionStore store({50, 50});
  ProtocolMetrics metrics;
  CorrectExecutionProtocol::Options options;
  options.metrics = &metrics;
  options.max_validation_rescans = 4;
  bool storm_on = false;
  CorrectExecutionProtocol* engine = nullptr;
  // Deterministic write storm: every unlocked search window of the victim's
  // validation, the already-executing writer installs a fresh version of
  // the hot entity, bumping its chain stamp and invalidating the snapshot.
  options.validation_interference = [&](int tx) {
    if (!storm_on || tx != 0) return;
    ASSERT_EQ(engine->Write(1, 0, 50), ReqResult::kGranted);
    engine->WriteDone(1, 0);
  };
  CorrectExecutionProtocol cep(&store, options);
  engine = &cep;

  TxProfile victim;
  victim.name = "victim";
  victim.input = Range(0, 0, 100);
  cep.Register(0, victim);
  TxProfile writer;
  writer.name = "writer";
  writer.input = Range(0, 0, 100);
  cep.Register(1, writer);
  ASSERT_EQ(cep.Begin(1), ReqResult::kGranted);

  storm_on = true;
  ReqResult r = cep.Begin(0);
  storm_on = false;
  // Begin terminated (no livelock) and the starvation fallback engaged.
  EXPECT_EQ(r, ReqResult::kGranted);
  EXPECT_GE(cep.stats().validation_rescans, 4);
  EXPECT_GE(cep.stats().validation_starved, 1);
  EXPECT_GE(metrics.validation_starved.value(), 1);

  // The fallback assignment is a real one: the victim executes to commit.
  // If it was (re-)assigned one of the storm writer's uncommitted versions,
  // commit rule 2 parks it until the writer commits — that's correctness,
  // not starvation.
  Value v = 0;
  ASSERT_EQ(cep.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  ReqResult commit_victim = cep.Commit(0);
  ASSERT_EQ(cep.Commit(1), ReqResult::kGranted);
  if (commit_victim != ReqResult::kGranted) {
    (void)cep.TakeWakeups();
    commit_victim = cep.Commit(0);
  }
  EXPECT_EQ(commit_victim, ReqResult::kGranted);
  EXPECT_EQ(cep.WaiterFootprint(), 0u);
}

// A bounded version of the same storm, with the incremental machinery on:
// after the first invalidated pass the rescans must run as *delta*
// revalidations — the untouched entity stays pinned to the previous
// choice and only the stormed entity is re-searched.
TEST(CepDeltaRevalidationTest, RescansAfterInterferenceAreDeltaSolves) {
  VersionStore store({50, 50});
  ProtocolMetrics metrics;
  EvalCache cache(2);
  CorrectExecutionProtocol::Options options;
  options.metrics = &metrics;
  options.eval_cache = &cache;
  options.delta_revalidate = true;
  int storm_left = 0;
  CorrectExecutionProtocol* engine = nullptr;
  options.validation_interference = [&](int tx) {
    if (storm_left <= 0 || tx != 0) return;
    --storm_left;
    ASSERT_EQ(engine->Write(1, 0, 40), ReqResult::kGranted);
    engine->WriteDone(1, 0);
  };
  CorrectExecutionProtocol cep(&store, options);
  engine = &cep;

  TxProfile victim;
  victim.name = "victim";
  victim.input = Predicate::And(Range(0, 0, 100), Range(1, 0, 100));
  victim.input.AddClause(Clause({EntityVsEntity(0, CompareOp::kLe, 1)}));
  cep.Register(0, victim);
  TxProfile writer;
  writer.name = "writer";
  writer.input = Range(0, 0, 100);
  cep.Register(1, writer);
  ASSERT_EQ(cep.Begin(1), ReqResult::kGranted);

  storm_left = 2;
  ReqResult r = cep.Begin(0);
  EXPECT_EQ(r, ReqResult::kGranted);
  EXPECT_EQ(storm_left, 0);
  // Both invalidated passes rescanned, and the rescans were delta solves —
  // never the in-lock starvation fallback.
  EXPECT_GE(cep.stats().validation_rescans, 2);
  EXPECT_GE(cep.stats().delta_rescans, 1);
  EXPECT_EQ(cep.stats().delta_fallbacks, 0);
  EXPECT_EQ(cep.stats().validation_starved, 0);
  EXPECT_GE(metrics.delta_rescans.value(), 1);

  // The delta-found assignment is a real one: the victim reads a version of
  // x that satisfies x <= y and commits (waiting on the writer if it was
  // assigned an uncommitted storm version — commit rule 2).
  Value x = -1, y = -1;
  ASSERT_EQ(cep.Read(0, 0, &x), ReqResult::kGranted);
  ASSERT_EQ(cep.Read(0, 1, &y), ReqResult::kGranted);
  EXPECT_LE(x, y);
  ReqResult commit_victim = cep.Commit(0);
  ASSERT_EQ(cep.Commit(1), ReqResult::kGranted);
  if (commit_victim != ReqResult::kGranted) {
    (void)cep.TakeWakeups();
    commit_victim = cep.Commit(0);
  }
  EXPECT_EQ(commit_victim, ReqResult::kGranted);
}

using CepDeathTest = CepTest;

TEST_F(CepDeathTest, ReadOutsideInputConstraintRejected) {
  // The paper: "If the transaction does not have a Rv-lock on the data
  // item, then the read is rejected."
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  EXPECT_DEATH((void)cep_.Read(0, 1, &v), "input constraint");
}

}  // namespace
}  // namespace nonserial
