#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/thread_pool.h"

namespace nonserial {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithZeroWorkers) {
  // The caller participates, so a threadless pool degrades to a plain loop.
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndNested) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL() << "no indices to run"; });
  // Nested ParallelFor must not deadlock even when outer work occupies
  // every worker (caller participation guarantees progress).
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, SubmitRunsBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // Destructor drains the queue.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
}

}  // namespace
}  // namespace nonserial
