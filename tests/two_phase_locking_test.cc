#include <gtest/gtest.h>

#include <algorithm>

#include "protocol/two_phase_locking.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name,
                  std::vector<int> preds = {},
                  Predicate output = Predicate::True()) {
  TxProfile profile;
  profile.name = name;
  profile.output = std::move(output);
  profile.predecessors = std::move(preds);
  return profile;
}

class S2plTest : public ::testing::Test {
 protected:
  S2plTest()
      : store_({50, 50}),
        ctrl_(&store_, TwoPhaseLockingController::Options()) {}

  VersionStore store_;
  TwoPhaseLockingController ctrl_;
};

TEST_F(S2plTest, ReadWriteCommitLifecycle) {
  ctrl_.Register(0, Profile("t0"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.WriteDone(0, 0);
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);  // Own write visible.
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{60, 50}));
}

TEST_F(S2plTest, SharedLocksAllowConcurrentReaders) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
}

TEST_F(S2plTest, WriterBlocksReaderUntilCommit) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.WriteDone(0, 0);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
  EXPECT_GT(ctrl_.stats().lock_waits, 0);
  // Lock held to commit — this is the long-duration-wait pathology.
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);
}

TEST_F(S2plTest, DeadlockDetectedAndRequesterAborted) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(1, 1, 2), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(0, 1, &v), ReqResult::kBlocked);
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kAborted);  // Would close cycle.
  EXPECT_EQ(ctrl_.stats().deadlock_aborts, 1);
  ctrl_.Abort(1);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{0}));
  EXPECT_EQ(ctrl_.Read(0, 1, &v), ReqResult::kGranted);
}

TEST_F(S2plTest, BeginChainsOnPredecessors) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1", {0}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
}

TEST_F(S2plTest, FailedOutputConditionAborts) {
  ctrl_.Register(0, Profile("t0", {}, Range(0, 200, 300)));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.WriteDone(0, 0);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kAborted);
  ctrl_.Abort(0);
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{50, 50}));
}

TEST_F(S2plTest, AbortRollsBackAndReleasesLocks) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ctrl_.WriteDone(0, 0);
  ctrl_.Abort(0);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);  // The write is gone.
}

class Pw2plTest : public ::testing::Test {
 protected:
  Pw2plTest() : store_({50, 50}) {
    TwoPhaseLockingController::Options options;
    options.predicatewise = true;
    options.objects = {{0}, {1}};  // x and y in different conjuncts.
    // t0 plans to write x then y; t1 plans to write x.
    options.planned_ops[0] = {{true, 0}, {true, 1}};
    options.planned_ops[1] = {{true, 0}};
    ctrl_ = std::make_unique<TwoPhaseLockingController>(&store_,
                                                        std::move(options));
  }

  VersionStore store_;
  std::unique_ptr<TwoPhaseLockingController> ctrl_;
};

TEST_F(Pw2plTest, GroupLocksReleasedWhenConjunctDone) {
  ctrl_->Register(0, Profile("t0"));
  ctrl_->Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 0, 60), ReqResult::kGranted);
  // While the write op is still in flight, the group is not yet released.
  EXPECT_EQ(ctrl_->Write(1, 0, 70), ReqResult::kBlocked);
  ctrl_->WriteDone(0, 0);  // x-conjunct done: its locks drop early.
  EXPECT_GT(ctrl_->stats().group_releases, 0);
  EXPECT_EQ(ctrl_->TakeWakeups(), (std::vector<int>{1}));
  // t1 can now write x even though t0 is still running (writing y).
  EXPECT_EQ(ctrl_->Write(1, 0, 70), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 1, 61), ReqResult::kGranted);
  ctrl_->WriteDone(0, 1);
  ctrl_->WriteDone(1, 0);
  EXPECT_EQ(ctrl_->Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_->Commit(1), ReqResult::kGranted);
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{70, 61}));
}

TEST_F(Pw2plTest, NameReflectsMode) {
  EXPECT_EQ(ctrl_->name(), "PW-2PL");
  VersionStore other({1});
  TwoPhaseLockingController strict(&other,
                                   TwoPhaseLockingController::Options());
  EXPECT_EQ(strict.name(), "S2PL");
}

// Regression: Abort used to leave the aborter's emptied waiter sets behind
// as map entries, so key_waiters_ / commit_waiters_ grew one tombstone per
// contended key (or awaited commit) forever under abort/restart churn.
TEST_F(S2plTest, AbortPrunesEmptyWaiterEntries) {
  ctrl_.Register(0, Profile("holder"));
  ctrl_.Register(1, Profile("waiter", /*preds=*/{0}));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  // t1 waits on t0's commit (precedence) — a commit_waiters_ entry.
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kBlocked);
  EXPECT_GT(ctrl_.WaiterFootprint(), 0u);
  ctrl_.Abort(1);
  // t1 was the only waiter anywhere; its abort must leave no residue.
  EXPECT_EQ(ctrl_.WaiterFootprint(), 0u);
  ctrl_.Abort(0);
  EXPECT_EQ(ctrl_.WaiterFootprint(), 0u);
}

TEST_F(S2plTest, WaiterFootprintStaysFlatUnderAbortChurn) {
  ctrl_.Register(0, Profile("holder"));
  ctrl_.Register(1, Profile("churner"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  // Long abort/restart churn against a held lock: the churner blocks on
  // the same key each round and aborts. Before the fix every round's
  // emptied waiter set survived as a tombstone; the footprint must stay
  // bounded by the single live blocking relationship instead.
  size_t high_water = 0;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
    Value v = 0;
    ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
    ctrl_.Abort(1);
    high_water = std::max(high_water, ctrl_.WaiterFootprint());
  }
  EXPECT_EQ(high_water, 0u);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.WaiterFootprint(), 0u);
}

}  // namespace
}  // namespace nonserial
