#include "engine/engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/metrics.h"
#include "storage/wal.h"

namespace nonserial {
namespace {

// Entities x=0, y=1 with initial value 50 and domain constraint [0, 100].
Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

engine::TxSpec Spec(const std::string& name,
                    Predicate input = Predicate::True(),
                    Predicate output = Predicate::True(),
                    std::vector<int> preds = {}) {
  engine::TxSpec spec;
  spec.name = name;
  spec.input = std::move(input);
  spec.output = std::move(output);
  spec.predecessors = std::move(preds);
  return spec;
}

EngineOptions BaseOptions(ProtocolMetrics* metrics = nullptr) {
  EngineOptions options;
  options.initial = {50, 50};
  options.protocol.metrics = metrics;
  options.poll_us = 100;
  options.max_poll_us = 1'000;
  return options;
}

TEST(EngineSessionTest, SingleSessionLifecycle) {
  Engine engine(BaseOptions());
  std::unique_ptr<Session> session = engine.OpenSession();
  ASSERT_TRUE(session->Begin(Spec("t0", Range(0, 0, 100))).ok());
  EXPECT_TRUE(session->in_transaction());
  StatusOr<Value> v = session->Read(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 50);
  ASSERT_TRUE(session->Write(0, 60).ok());
  v = session->Read(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 60);  // Own write visible.
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_FALSE(session->in_transaction());
  EXPECT_EQ(engine.store()->LatestCommittedSnapshot(), (ValueVector{60, 50}));
}

TEST(EngineSessionTest, CallSequenceErrors) {
  Engine engine(BaseOptions());
  std::unique_ptr<Session> session = engine.OpenSession();
  // No transaction open yet.
  EXPECT_EQ(session->Read(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->Write(0, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->Commit().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session->Abort().ok());  // Idle abort is a no-op.

  ASSERT_TRUE(session->Begin(Spec("t0")).ok());
  // Double begin.
  EXPECT_EQ(session->Begin(Spec("t1")).code(),
            StatusCode::kFailedPrecondition);
  // Bad entity ids.
  EXPECT_EQ(session->Read(-1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Write(99, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session->Abort().ok());
}

TEST(EngineSessionTest, BadPredecessorIsInvalidArgument) {
  Engine engine(BaseOptions());
  std::unique_ptr<Session> session = engine.OpenSession();
  // A predecessor must name an earlier transaction; this session's first
  // transaction has id 0, so any predecessor is out of range.
  engine::TxSpec spec = Spec("t0");
  spec.predecessors = {5};
  EXPECT_EQ(session->Begin(spec).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(session->in_transaction());
  // The failed begin released its admission slot.
  EXPECT_EQ(engine.inflight(), 0);
}

TEST(EngineSessionTest, TxIdReusedAfterAbortFreshAfterCommit) {
  Engine engine(BaseOptions());
  std::unique_ptr<Session> session = engine.OpenSession();
  ASSERT_TRUE(session->Begin(Spec("a")).ok());
  int first = session->tx();
  ASSERT_TRUE(session->Abort().ok());
  ASSERT_TRUE(session->Begin(Spec("b")).ok());
  // Abort-retry churn must not grow the controller's id space.
  EXPECT_EQ(session->tx(), first);
  ASSERT_TRUE(session->Commit().ok());
  ASSERT_TRUE(session->Begin(Spec("c")).ok());
  // A committed id is terminal; the next attempt gets a fresh one.
  EXPECT_GT(session->tx(), first);
  ASSERT_TRUE(session->Commit().ok());
}

TEST(EngineSessionTest, ReserveTxIdFloorKeepsSessionIdsDisjoint) {
  Engine engine(BaseOptions());
  engine.ReserveTxIdFloor(10);
  std::unique_ptr<Session> session = engine.OpenSession();
  ASSERT_TRUE(session->Begin(Spec("t")).ok());
  EXPECT_GE(session->tx(), 10);
  ASSERT_TRUE(session->Commit().ok());
}

TEST(EngineSessionTest, AdmissionControlShedsOverBudget) {
  ProtocolMetrics metrics;
  EngineOptions options = BaseOptions(&metrics);
  options.max_inflight_tx = 1;
  Engine engine(options);
  std::unique_ptr<Session> s1 = engine.OpenSession();
  std::unique_ptr<Session> s2 = engine.OpenSession();
  ASSERT_TRUE(s1->Begin(Spec("a")).ok());
  // Budget exhausted: the second begin is shed, not blocked.
  EXPECT_EQ(s2->Begin(Spec("b")).code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(s2->in_transaction());
  ASSERT_TRUE(s1->Commit().ok());
  // The slot is free again.
  EXPECT_TRUE(s2->Begin(Spec("b")).ok());
  ASSERT_TRUE(s2->Commit().ok());
  EXPECT_EQ(metrics.server_accepted.value(), 2);
  EXPECT_EQ(metrics.server_shed.value(), 1);
  EXPECT_EQ(metrics.server_inflight.count(), 2);
}

TEST(EngineSessionTest, SessionDestructorRollsBackAndReleasesAdmission) {
  ProtocolMetrics metrics;
  EngineOptions options = BaseOptions(&metrics);
  options.max_inflight_tx = 1;
  Engine engine(options);
  {
    std::unique_ptr<Session> s1 = engine.OpenSession();
    ASSERT_TRUE(s1->Begin(Spec("a")).ok());
    ASSERT_TRUE(s1->Write(0, 99).ok());
    // Session departs mid-transaction (a dropped connection).
  }
  EXPECT_EQ(engine.inflight(), 0);
  // The abandoned write never committed.
  EXPECT_EQ(engine.store()->LatestCommittedSnapshot(), (ValueVector{50, 50}));
  std::unique_ptr<Session> s2 = engine.OpenSession();
  EXPECT_TRUE(s2->Begin(Spec("b")).ok());
  ASSERT_TRUE(s2->Commit().ok());
  EXPECT_EQ(metrics.server_sessions_opened.value(), 2);
  EXPECT_EQ(metrics.server_sessions_closed.value(), 1);
}

TEST(EngineSessionTest, CrossSessionWakeupUnblocksValidation) {
  Engine engine(BaseOptions());
  // Session A needs x >= 90; only 50 exists, so its begin parks in
  // validation until some other session commits a satisfying version.
  std::unique_ptr<Session> a = engine.OpenSession();
  std::unique_ptr<Session> b = engine.OpenSession();
  Status begin_status = Status::OK();
  Value seen = 0;
  std::thread blocked([&] {
    begin_status = a->Begin(Spec("reader", Range(0, 90, 100)));
    if (begin_status.ok()) {
      StatusOr<Value> v = a->Read(0);
      if (v.ok()) seen = *v;
      a->Commit();
    }
  });
  // Give A a moment to park, then satisfy its input predicate from B.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(b->Begin(Spec("writer")).ok());
  ASSERT_TRUE(b->Write(0, 95).ok());
  ASSERT_TRUE(b->Commit().ok());
  blocked.join();
  EXPECT_TRUE(begin_status.ok()) << begin_status.ToString();
  EXPECT_EQ(seen, 95);
}

TEST(EngineSessionTest, BoundedWaitingAbortsAfterBlockedBudget) {
  ProtocolMetrics metrics;
  EngineOptions options = BaseOptions(&metrics);
  options.max_blocked_us = 10'000;  // 10ms budget, polls of 100us..1ms.
  Engine engine(options);
  std::unique_ptr<Session> session = engine.OpenSession();
  // Unsatisfiable input (x >= 90 with only 50 on the chain) and nobody to
  // wake us: the blocked budget converts the park into a deadline abort.
  Status s = session->Begin(Spec("reader", Range(0, 90, 100)));
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_FALSE(session->in_transaction());
  EXPECT_GE(metrics.deadline_aborts.value(), 1);
  EXPECT_EQ(engine.inflight(), 0);
}

TEST(EngineSessionTest, OutputPredicateRejectsBadCommit) {
  // O_t demands x <= 100; writing 200 must not survive commit validation.
  // Bounded waiting turns the commit-time revalidation park into an abort
  // (an unbounded session would wait for a sibling to fix the state).
  EngineOptions options = BaseOptions();
  options.max_blocked_us = 10'000;
  Engine engine(options);
  std::unique_ptr<Session> session = engine.OpenSession();
  ASSERT_TRUE(
      session->Begin(Spec("t0", Range(0, 0, 100), Range(0, 0, 100))).ok());
  ASSERT_TRUE(session->Write(0, 200).ok());
  EXPECT_EQ(session->Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(engine.store()->LatestCommittedSnapshot(), (ValueVector{50, 50}));
}

TEST(EngineSessionTest, CommitIsDurableUnderGroupCommitWal) {
  ProtocolMetrics metrics;
  WriteAheadLog wal({50, 50});
  EngineOptions options = BaseOptions(&metrics);
  options.wal = &wal;
  options.wal_group_commit = true;
  {
    Engine engine(options);
    std::unique_ptr<Session> session = engine.OpenSession();
    ASSERT_TRUE(session->Begin(Spec("t0")).ok());
    ASSERT_TRUE(session->Write(0, 77).ok());
    ASSERT_TRUE(session->Commit().ok());
    session.reset();
    engine.Shutdown();
  }
  // Commit returned OK, so the commit record is on the medium: a recovery
  // from the log alone reproduces the committed state.
  RecoveryResult rec = wal.Recover(RecoveryOptions{});
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{77, 50}));
  // Shutdown folded the WAL pipeline counters into the metrics sink.
  EXPECT_GE(metrics.group_commit_commits.value(), 1);
  EXPECT_GE(metrics.group_commit_batches.value(), 1);
}

TEST(EngineSessionTest, WalBacklogBoundShedsNewTransactions) {
  ProtocolMetrics metrics;
  WriteAheadLog wal({50, 50});
  EngineOptions options = BaseOptions(&metrics);
  options.wal = &wal;
  options.wal_group_commit = true;
  options.max_wal_backlog_frames = 2;
  Engine engine(options);
  ScopedEngineShutdown guard(&engine);
  wal.HoldFlushesForTest(true);
  // Stall the flush pipeline and stage more frames than the bound.
  std::unique_ptr<Session> writer = engine.OpenSession();
  ASSERT_TRUE(writer->Begin(Spec("w")).ok());
  for (Value v = 0; v < 8; ++v) {
    ASSERT_TRUE(writer->Write(0, v).ok());
  }
  EXPECT_GT(wal.PipelineDepth(), 2u);
  // Group-commit acks are behind: admission turns new work away.
  std::unique_ptr<Session> late = engine.OpenSession();
  EXPECT_EQ(late->Begin(Spec("late")).code(), StatusCode::kResourceExhausted);
  EXPECT_GE(metrics.server_shed.value(), 1);
  wal.HoldFlushesForTest(false);
  ASSERT_TRUE(writer->Abort().ok());
}

}  // namespace
}  // namespace nonserial
