#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/digraph.h"

namespace nonserial {
namespace {

TEST(DigraphTest, EmptyGraphIsAcyclic) {
  Digraph g;
  EXPECT_FALSE(g.HasCycle());
  EXPECT_EQ(g.num_nodes(), 0);
  ASSERT_TRUE(g.TopologicalOrder().has_value());
}

TEST(DigraphTest, AddEdgeGrowsNodes) {
  Digraph g;
  g.AddEdge(2, 5);
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_TRUE(g.HasEdge(2, 5));
  EXPECT_FALSE(g.HasEdge(5, 2));
}

TEST(DigraphTest, ParallelEdgesCollapse) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g(2);
  g.AddEdge(1, 1);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, ChainIsAcyclic) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_FALSE(g.HasCycle());
  auto topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(*topo, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DigraphTest, TriangleCycleDetected) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.TopologicalOrder().has_value());
  std::vector<int> cycle = g.FindCycle();
  EXPECT_EQ(cycle.size(), 3u);
  std::set<int> members(cycle.begin(), cycle.end());
  EXPECT_EQ(members, (std::set<int>{0, 1, 2}));
}

TEST(DigraphTest, CycleInLargerGraphFound) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);  // 2-cycle off to the side.
  std::vector<int> cycle = g.FindCycle();
  std::set<int> members(cycle.begin(), cycle.end());
  EXPECT_EQ(members, (std::set<int>{3, 4}));
}

TEST(DigraphTest, ReachesFollowsPaths) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_TRUE(g.Reaches(0, 2));
  EXPECT_TRUE(g.Reaches(0, 0));  // Trivially.
  EXPECT_FALSE(g.Reaches(2, 0));
  EXPECT_FALSE(g.Reaches(0, 4));
}

TEST(DigraphTest, TransitiveClosure) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto closure = g.TransitiveClosure();
  EXPECT_TRUE(closure[0][1]);
  EXPECT_TRUE(closure[0][2]);
  EXPECT_FALSE(closure[0][3]);
  EXPECT_FALSE(closure[2][0]);
  EXPECT_FALSE(closure[0][0]);  // Non-empty paths only; no self loop.
}

TEST(DigraphTest, TransitiveClosureWithCycleIncludesSelf) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  auto closure = g.TransitiveClosure();
  EXPECT_TRUE(closure[0][0]);
  EXPECT_TRUE(closure[1][1]);
}

TEST(DigraphTest, StronglyConnectedComponents) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // {0,1}
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);  // {2,3}
  int count = 0;
  std::vector<int> comp = g.StronglyConnectedComponents(&count);
  EXPECT_EQ(count, 3);  // {0,1}, {2,3}, {4}.
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
}

TEST(DigraphTest, ToStringListsEdges) {
  Digraph g(2);
  g.AddEdge(0, 1);
  EXPECT_NE(g.ToString().find("0->1"), std::string::npos);
}

TEST(DigraphTest, ToDotRendersNodesAndEdges) {
  Digraph g(2);
  g.AddEdge(0, 1);
  std::string dot = g.ToDot([](int n) { return "t" + std::to_string(n); });
  EXPECT_NE(dot.find("digraph G"), std::string::npos);
  EXPECT_NE(dot.find("label=\"t0\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  // Default labels are indices.
  EXPECT_NE(g.ToDot().find("label=\"1\""), std::string::npos);
}

TEST(PermutationTest, VisitsAllPermutations) {
  int count = 0;
  bool found = ForEachPermutation(4, [&](const std::vector<int>&) {
    ++count;
    return false;
  });
  EXPECT_FALSE(found);
  EXPECT_EQ(count, 24);
}

TEST(PermutationTest, StopsEarlyWhenAccepted) {
  int count = 0;
  bool found = ForEachPermutation(5, [&](const std::vector<int>& p) {
    ++count;
    return p[0] == 1;  // Found once 1 leads.
  });
  EXPECT_TRUE(found);
  EXPECT_LT(count, 120);
}

TEST(PermutationTest, ZeroElementsRunsOnce) {
  int count = 0;
  ForEachPermutation(0, [&](const std::vector<int>& p) {
    EXPECT_TRUE(p.empty());
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace nonserial
