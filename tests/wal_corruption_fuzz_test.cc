// Corruption fuzz over the framed write-ahead log. Seeded workloads run
// through the parallel driver with a segmented WAL attached; the durable
// image is then damaged the way real media fails — torn tails (byte-prefix
// cuts), single-bit flips anywhere in the image, and whole-segment drops —
// and recovery of the damaged image is checked against an exact oracle:
// the records recoverable from the original image truncated at the fault
// offset. The bar (ISSUE acceptance criteria): torn tails recover exactly
// the committed prefix; mid-log corruption is NEVER silent (strict
// recovery errors, best-effort sets `salvaged`); and every recovered
// history passes the Section 3 correctness checker.
//
// A failing seed replays in isolation with NONSERIAL_FUZZ_SEED=<seed>.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/verify.h"
#include "fuzz_support.h"
#include "sim/parallel_driver.h"
#include "storage/version_store.h"
#include "storage/wal.h"
#include "storage/wal_format.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

// Small segments so even tiny workloads roll over several of them.
constexpr size_t kSegmentBytes = 512;

SimWorkload TinyWorkload(uint64_t seed) {
  DesignWorkloadParams params;
  params.num_txs = 5;
  params.num_entities = 6;
  params.num_conjuncts = 2;
  params.reads_per_tx = 2;
  params.think_time = 0;
  params.arrival_spacing = 0;
  params.precedence_prob = 0.3;
  params.hot_theta = 0.6;
  params.seed = seed;
  return MakeDesignWorkload(params);
}

/// Runs `workload` to completion with `wal` attached; the log afterwards
/// holds the full durable history. With `group_commit` the workers stage
/// frames through the pipelined writer, so the image is built from batched
/// chunk writes instead of per-record appends — recovery must not be able
/// to tell the difference.
void RunLogged(const SimWorkload& workload, WriteAheadLog* wal, uint64_t seed,
               bool group_commit = false) {
  ParallelDriverConfig config;
  config.num_threads = 2;
  config.us_per_tick = 0;
  config.max_restarts = 60;
  config.backoff_us = 1;
  config.poll_us = 50;
  config.max_wall_ms = 20'000;
  config.wal = wal;
  config.wal_group_commit = group_commit;
  ParallelDriver driver(config);
  ParallelRunResult result = driver.Run(workload);
  ASSERT_FALSE(result.watchdog_expired)
      << "seed " << seed << "; " << fuzz::ReproduceHint(seed);
}

std::vector<CorrectExecutionProtocol::TxRecord> ToRecords(
    const SimWorkload& workload, const std::vector<RecoveredTx>& committed) {
  std::vector<CorrectExecutionProtocol::TxRecord> records(workload.txs.size());
  for (const RecoveredTx& t : committed) {
    CorrectExecutionProtocol::TxRecord& r = records[t.tx];
    r.name = t.name.empty() ? workload.txs[t.tx].name : t.name;
    r.input_state = t.input_state;
    r.feeder_txs.insert(t.feeders.begin(), t.feeders.end());
    r.writes = t.writes;
    r.committed = true;
  }
  return records;
}

std::vector<int> TxIds(const std::vector<RecoveredTx>& committed) {
  std::vector<int> ids;
  ids.reserve(committed.size());
  for (const RecoveredTx& t : committed) ids.push_back(t.tx);
  return ids;
}

std::string SegmentMagicBytes() {
  std::string m;
  for (int i = 0; i < 8; ++i) {
    m.push_back(
        static_cast<char>((wal_format::kSegmentMagic >> (8 * i)) & 0xFF));
  }
  return m;
}

/// Byte offsets at which each segment of the image starts.
std::vector<size_t> SegmentBounds(const std::string& image) {
  static const std::string magic = SegmentMagicBytes();
  std::vector<size_t> bounds;
  for (size_t pos = image.find(magic); pos != std::string::npos;
       pos = image.find(magic, pos + 1)) {
    bounds.push_back(pos);
  }
  return bounds;
}

struct Fault {
  std::string kind;
  std::string image;     ///< The damaged durable image.
  size_t reference_cut;  ///< Oracle: recovery must salvage exactly what the
                         ///< ORIGINAL image truncated here recovers.
};

/// Damages `original` one of the three ways media fail. The oracle holds
/// for all of them because recovery never replays past the first
/// undecodable point: whatever decodes before the fault offset is exactly
/// what a clean truncation at that offset would recover.
Fault MakeFault(const std::string& original, uint64_t seed, Rng* rng) {
  Fault fault;
  int kind = static_cast<int>(seed % 3);
  if (kind == 2) {
    std::vector<size_t> bounds = SegmentBounds(original);
    if (bounds.size() >= 2) {
      size_t k = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(bounds.size()) - 1));
      size_t start = bounds[k];
      size_t end = k + 1 < bounds.size() ? bounds[k + 1] : original.size();
      fault.kind = "segment_drop";
      fault.image = original.substr(0, start) + original.substr(end);
      fault.reference_cut = start;
      return fault;
    }
    kind = 1;  // Single-segment image: fall back to a flip.
  }
  if (kind == 1) {
    size_t b = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(original.size()) - 1));
    int bit = static_cast<int>(rng->UniformInt(0, 7));
    fault.kind = "bit_flip";
    fault.image = original;
    fault.image[b] = static_cast<char>(fault.image[b] ^ (1 << bit));
    fault.reference_cut = b;
    return fault;
  }
  size_t cut = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(original.size()) - 1));
  fault.kind = "torn_tail";
  fault.image = original.substr(0, cut);
  fault.reference_cut = cut;
  return fault;
}

TEST(WalCorruptionFuzzTest, DamagedImagesRecoverTheVerifiablePrefix) {
  constexpr uint64_t kSeeds = 210;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed) + "; " +
                 fuzz::ReproduceHint(seed));
    SimWorkload workload = TinyWorkload(seed);
    Predicate constraint = WorkloadConstraint(workload);
    WriteAheadLog wal(workload.initial, kSegmentBytes);
    // Every third seed builds the image through the group-commit pipeline,
    // so faults also land on chunk-written (batched) logs.
    RunLogged(workload, &wal, seed, /*group_commit=*/seed % 3 == 0);
    if (::testing::Test::HasFatalFailure()) return;
    // Every fifth seed checkpoints first, so faults also land on images
    // whose first frame is a checkpoint.
    if (seed % 5 == 0) {
      Status cp = wal.Checkpoint();
      ASSERT_TRUE(cp.ok()) << cp.ToString();
    }
    std::string original = wal.SerializedImage();
    ASSERT_GT(original.size(), wal_format::kSegmentHeaderBytes);

    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    Fault fault = MakeFault(original, seed, &rng);
    SCOPED_TRACE(fault.kind + " at byte " +
                 std::to_string(fault.reference_cut) + " of " +
                 std::to_string(original.size()));

    auto damaged =
        WriteAheadLog::FromImage(fault.image, workload.initial, kSegmentBytes);
    RecoveryResult strict = damaged->Recover();
    RecoveryOptions be_opts;
    be_opts.best_effort = true;
    RecoveryResult best_effort = damaged->Recover(be_opts);
    auto reference_log = WriteAheadLog::FromImage(
        original.substr(0, fault.reference_cut), workload.initial,
        kSegmentBytes);
    RecoveryResult reference = reference_log->Recover();
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

    // Mid-log corruption is never silent: strict recovery errors exactly
    // when valid data survives past the damage; best-effort always
    // succeeds but flags what it salvaged.
    EXPECT_EQ(strict.status.ok(), !strict.corruption_detected)
        << strict.status.ToString();
    EXPECT_EQ(best_effort.corruption_detected, strict.corruption_detected);
    EXPECT_TRUE(best_effort.status.ok()) << best_effort.status.ToString();
    EXPECT_EQ(best_effort.salvaged, best_effort.corruption_detected);
    if (fault.kind == "torn_tail") {
      // A pure byte-prefix cut is a normal crash artifact, never corruption.
      EXPECT_FALSE(strict.corruption_detected);
    }

    // The oracle: best-effort recovery of the damaged image equals clean
    // recovery of the original truncated at the fault.
    EXPECT_EQ(TxIds(best_effort.committed), TxIds(reference.committed));
    EXPECT_EQ(best_effort.store->LatestCommittedSnapshot(),
              reference.store->LatestCommittedSnapshot());

    // And the salvaged history is itself a correct execution.
    Status verdict = VerifyCepHistory(
        workload, ToRecords(workload, best_effort.committed),
        best_effort.store->LatestCommittedSnapshot(), constraint);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  }
}

TEST(WalCorruptionFuzzTest, EveryBytePrefixMatchesRecordPrefixRecovery) {
  // PR 2 established record-granularity prefix recovery; the framed format
  // must refine it: every BYTE prefix of a clean image either recovers the
  // same state as the record prefix it fully contains (a clean torn-tail
  // truncation of the partial record), never reporting corruption. Seeds
  // 31xx build their image under group commit: a batch is one chunk write,
  // but a byte prefix can still end anywhere inside it, so the same
  // invariant must hold over batched logs (a torn batch truncates to the
  // records that fully fit — possibly the whole batch).
  for (uint64_t seed : {3001ull, 3002ull, 3003ull, 3101ull, 3102ull, 3103ull}) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    SCOPED_TRACE("seed " + std::to_string(seed) + "; " +
                 fuzz::ReproduceHint(seed));
    SimWorkload workload = TinyWorkload(seed);
    WriteAheadLog wal(workload.initial, kSegmentBytes);
    RunLogged(workload, &wal, seed, /*group_commit=*/seed >= 3100);
    if (::testing::Test::HasFatalFailure()) return;
    std::string image = wal.SerializedImage();
    std::vector<size_t> record_ends = wal_format::RecordEndOffsets(image);
    ASSERT_EQ(record_ends.size(), wal.size());

    for (size_t cut = 0; cut <= image.size(); ++cut) {
      auto prefix_log = WriteAheadLog::FromImage(
          image.substr(0, cut), workload.initial, kSegmentBytes);
      RecoveryResult rec = prefix_log->Recover();
      // A byte prefix is always a clean crash image: recoverable without
      // best-effort, and never classified as corruption.
      ASSERT_TRUE(rec.status.ok())
          << "cut " << cut << ": " << rec.status.ToString();
      EXPECT_FALSE(rec.corruption_detected) << "cut " << cut;
      // It must recover exactly the records that fully fit in the prefix.
      size_t records_inside = static_cast<size_t>(
          std::upper_bound(record_ends.begin(), record_ends.end(), cut) -
          record_ends.begin());
      RecoveryResult reference = wal.Recover(records_inside);
      EXPECT_EQ(TxIds(rec.committed), TxIds(reference.committed))
          << "cut " << cut << " (" << records_inside << " whole records)";
      EXPECT_EQ(rec.store->LatestCommittedSnapshot(),
                reference.store->LatestCommittedSnapshot())
          << "cut " << cut;
      if (::testing::Test::HasNonfatalFailure()) break;
    }
  }
}

}  // namespace
}  // namespace nonserial
