#include <gtest/gtest.h>

#include <set>

#include "workload/generators.h"
#include "workload/nested_gen.h"
#include "workload/schedule_gen.h"

namespace nonserial {
namespace {

TEST(DesignWorkloadTest, DeterministicFromSeed) {
  DesignWorkloadParams params;
  params.seed = 42;
  SimWorkload a = MakeDesignWorkload(params);
  SimWorkload b = MakeDesignWorkload(params);
  ASSERT_EQ(a.txs.size(), b.txs.size());
  for (size_t i = 0; i < a.txs.size(); ++i) {
    EXPECT_EQ(a.txs[i].steps.size(), b.txs[i].steps.size());
    EXPECT_EQ(a.txs[i].predecessors, b.txs[i].predecessors);
  }
}

TEST(DesignWorkloadTest, StructuralInvariants) {
  DesignWorkloadParams params;
  params.num_txs = 20;
  params.num_entities = 24;
  params.num_conjuncts = 4;
  params.precedence_prob = 0.5;
  params.seed = 9;
  SimWorkload w = MakeDesignWorkload(params);
  ASSERT_EQ(w.txs.size(), 20u);
  EXPECT_EQ(w.initial.size(), 24u);
  EXPECT_EQ(w.objects.size(), 4u);

  for (size_t i = 0; i < w.txs.size(); ++i) {
    const SimTx& tx = w.txs[i];
    std::set<EntityId> read_so_far;
    std::set<EntityId> written;
    std::set<EntityId> input_entities = tx.input.Entities();
    for (const SimStep& step : tx.steps) {
      if (step.kind == SimStep::Kind::kRead) {
        // Every read entity appears in I_t (the model's requirement).
        EXPECT_TRUE(input_entities.contains(step.entity));
        read_so_far.insert(step.entity);
      } else if (step.kind == SimStep::Kind::kWrite) {
        // Write expressions only use previously read entities.
        std::set<EntityId> operands;
        step.write_expr.CollectReads(&operands);
        for (EntityId operand : operands) {
          EXPECT_TRUE(read_so_far.contains(operand));
        }
        // Each entity written at most once per transaction.
        EXPECT_FALSE(written.contains(step.entity));
        written.insert(step.entity);
      }
    }
    // Predecessors point backwards (the partial order is a DAG).
    for (int pred : tx.predecessors) {
      EXPECT_GE(pred, 0);
      EXPECT_LT(pred, static_cast<int>(i));
    }
  }
}

TEST(DesignWorkloadTest, WritesPreserveBounds) {
  // Apply every write expression to boundary inputs: results stay in
  // [0, 100], so transactions always satisfy their output predicates.
  DesignWorkloadParams params;
  params.num_txs = 10;
  params.seed = 13;
  SimWorkload w = MakeDesignWorkload(params);
  for (const SimTx& tx : w.txs) {
    for (const SimStep& step : tx.steps) {
      if (step.kind != SimStep::Kind::kWrite) continue;
      for (Value boundary : {Value{0}, Value{50}, Value{100}}) {
        ValueVector all(w.initial.size(), boundary);
        Value produced = step.write_expr.Eval(all);
        EXPECT_GE(produced, 0);
        EXPECT_LE(produced, 100);
      }
    }
  }
}

TEST(DesignWorkloadTest, ConstraintHoldsInitially) {
  DesignWorkloadParams params;
  params.seed = 17;
  SimWorkload w = MakeDesignWorkload(params);
  EXPECT_TRUE(WorkloadConstraint(w).Eval(w.initial));
}

TEST(OltpWorkloadTest, ShortTransactions) {
  SimWorkload w = MakeOltpWorkload(8, 16, 2, 5);
  EXPECT_EQ(w.txs.size(), 8u);
  for (const SimTx& tx : w.txs) {
    EXPECT_EQ(tx.think_between_ops, 0);
    EXPECT_LE(tx.steps.size(), 4u);
  }
}

TEST(NestedGenTest, StructureInvariants) {
  NestedWorkloadParams params;
  params.num_projects = 3;
  params.members_per_project = 4;
  params.entities_per_project = 5;
  params.member_chain_prob = 0.8;
  params.project_chain_prob = 0.8;
  params.seed = 77;
  NestedWorkload nw = MakeNestedDesignWorkload(params);
  ASSERT_EQ(nw.nested.groups.size(), 3u);
  ASSERT_EQ(nw.workload.txs.size(), 12u);
  ASSERT_EQ(nw.nested.group_of_tx.size(), 12u);
  EXPECT_EQ(nw.workload.initial.size(), 15u);
  for (size_t t = 0; t < nw.workload.txs.size(); ++t) {
    int g = nw.nested.group_of_tx[t];
    // Members read only their project's slice.
    const std::set<EntityId>& slice = nw.workload.objects[g];
    for (EntityId e : nw.workload.txs[t].input.Entities()) {
      EXPECT_TRUE(slice.contains(e));
    }
    // Member predecessors stay within the group.
    for (int pred : nw.workload.txs[t].predecessors) {
      EXPECT_EQ(nw.nested.group_of_tx[pred], g);
    }
  }
  // Group predecessors point backwards.
  for (size_t g = 0; g < nw.nested.groups.size(); ++g) {
    for (int pred : nw.nested.groups[g].predecessors) {
      EXPECT_LT(pred, static_cast<int>(g));
    }
  }
}

TEST(NestedGenTest, DeterministicFromSeed) {
  NestedWorkloadParams params;
  params.seed = 31;
  NestedWorkload a = MakeNestedDesignWorkload(params);
  NestedWorkload b = MakeNestedDesignWorkload(params);
  ASSERT_EQ(a.workload.txs.size(), b.workload.txs.size());
  for (size_t i = 0; i < a.workload.txs.size(); ++i) {
    EXPECT_EQ(a.workload.txs[i].steps.size(), b.workload.txs[i].steps.size());
  }
  EXPECT_EQ(a.nested.group_of_tx, b.nested.group_of_tx);
}

TEST(ScheduleGenTest, RandomProgramsShape) {
  Rng rng(3);
  ScheduleGenParams params;
  params.num_txs = 3;
  params.ops_per_tx = 4;
  params.num_entities = 2;
  auto programs = RandomPrograms(params, &rng);
  ASSERT_EQ(programs.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(programs[t].size(), 4u);
    for (const Op& op : programs[t]) {
      EXPECT_EQ(op.tx, t);
      EXPECT_LT(op.entity, 2);
    }
  }
}

TEST(ScheduleGenTest, InterleavingPreservesProgramOrder) {
  Rng rng(5);
  ScheduleGenParams params;
  params.num_txs = 3;
  params.ops_per_tx = 3;
  auto programs = RandomPrograms(params, &rng);
  Schedule s = RandomInterleaving(programs, params.num_entities, &rng);
  EXPECT_EQ(s.ops().size(), 9u);
  for (int t = 0; t < 3; ++t) {
    std::vector<int> positions = s.OpsOf(t);
    ASSERT_EQ(positions.size(), 3u);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(s.ops()[positions[k]], programs[t][k]);
    }
  }
}

TEST(ScheduleGenTest, ForEachInterleavingCountsMultinomial) {
  // Two programs of lengths 2 and 2: C(4,2) = 6 merges.
  std::vector<std::vector<Op>> programs = {
      {{0, OpKind::kRead, 0}, {0, OpKind::kWrite, 0}},
      {{1, OpKind::kRead, 1}, {1, OpKind::kWrite, 1}}};
  int64_t count = ForEachInterleaving(programs, 2,
                                      [](const Schedule&) { return true; });
  EXPECT_EQ(count, 6);
}

TEST(ScheduleGenTest, ForEachInterleavingStopsEarly) {
  std::vector<std::vector<Op>> programs = {
      {{0, OpKind::kRead, 0}, {0, OpKind::kWrite, 0}},
      {{1, OpKind::kRead, 1}, {1, OpKind::kWrite, 1}}};
  int visited = 0;
  ForEachInterleaving(programs, 2, [&](const Schedule&) {
    ++visited;
    return visited < 2;  // Stop after two.
  });
  EXPECT_EQ(visited, 2);
}

TEST(ScheduleGenTest, PartitionObjectsCoversAllEntities) {
  ObjectSetList objects = PartitionObjects(10, 3);
  std::set<EntityId> all;
  for (const auto& object : objects) all.insert(object.begin(), object.end());
  EXPECT_EQ(all.size(), 10u);
  EXPECT_LE(objects.size(), 3u);
}

TEST(ScheduleGenTest, PartitionSingleObject) {
  ObjectSetList objects = PartitionObjects(5, 1);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].size(), 5u);
}

}  // namespace
}  // namespace nonserial
