#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"

namespace nonserial {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentAddsAllLand) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
}

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 6);
  EXPECT_EQ(h.max(), 3);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramTest, PercentileIsMonotoneAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  int64_t p50 = h.ApproxPercentile(0.5);
  int64_t p99 = h.ApproxPercentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p50, 0);
  // Log-bucketed: answers are within a factor of two of the truth.
  EXPECT_LE(p99, 2048);
}

TEST(HistogramTest, ZeroAndLargeValues) {
  Histogram h;
  h.Record(0);
  h.Record(int64_t{1} << 40);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.max(), int64_t{1} << 40);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(ProtocolMetricsTest, SummaryMentionsActivity) {
  ProtocolMetrics metrics;
  metrics.validations.Add(3);
  metrics.lock_blocks.Add(2);
  metrics.search_nodes.Record(17);
  std::string summary = metrics.Summary();
  EXPECT_NE(summary.find("validation"), std::string::npos);
  EXPECT_NE(summary.find("locks"), std::string::npos);
  metrics.Reset();
  EXPECT_EQ(metrics.validations.value(), 0);
  EXPECT_EQ(metrics.search_nodes.count(), 0);
}

}  // namespace
}  // namespace nonserial
