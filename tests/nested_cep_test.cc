#include <gtest/gtest.h>

#include "protocol/nested_cep.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name, Predicate input,
                  std::vector<int> preds = {},
                  Predicate output = Predicate::True()) {
  TxProfile profile;
  profile.name = name;
  profile.input = std::move(input);
  profile.output = std::move(output);
  profile.predecessors = std::move(preds);
  return profile;
}

NestedGroup Group(const std::string& name, Predicate input,
                  Predicate output = Predicate::True(),
                  std::vector<int> preds = {}) {
  NestedGroup g;
  g.name = name;
  g.input = std::move(input);
  g.output = std::move(output);
  g.predecessors = std::move(preds);
  return g;
}

// Two groups over entities x=0 (group A) and y=1 (group B); two members
// each.
class NestedCepTest : public ::testing::Test {
 protected:
  NestedCepTest() : store_({50, 50}) {
    NestedCepController::Options options;
    options.groups = {Group("A", Range(0, 0, 100)),
                      Group("B", Range(1, 0, 100))};
    options.group_of_tx = {0, 0, 1, 1};
    ctrl_ = std::make_unique<NestedCepController>(&store_,
                                                  std::move(options));
    ctrl_->Register(0, Profile("a0", Range(0, 0, 100)));
    ctrl_->Register(1, Profile("a1", Range(0, 0, 100)));
    ctrl_->Register(2, Profile("b0", Range(1, 0, 100)));
    ctrl_->Register(3, Profile("b1", Range(1, 0, 100)));
  }

  VersionStore store_;
  std::unique_ptr<NestedCepController> ctrl_;
};

TEST_F(NestedCepTest, GroupStartsOnFirstMemberBegin) {
  EXPECT_FALSE(ctrl_->GroupActive(0));
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  EXPECT_TRUE(ctrl_->GroupActive(0));
  EXPECT_FALSE(ctrl_->GroupActive(1));
  EXPECT_EQ(ctrl_->stats().group_starts, 1);
}

TEST_F(NestedCepTest, MembersShareScopeVersions) {
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 0, 60), ReqResult::kGranted);
  ctrl_->WriteDone(0, 0);
  (void)ctrl_->TakeWakeups();
  // a1 validated against the seed; a0's write is visible in-scope only
  // after a1 revalidates or if a1's constraint pulls it in. Read returns
  // a1's assigned version (the seed 50) — multiversion isolation inside
  // the scope.
  Value v = 0;
  ASSERT_EQ(ctrl_->Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
}

TEST_F(NestedCepTest, MemberCommitIsRelativeUntilGroupCommits) {
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 0, 60), ReqResult::kGranted);
  ctrl_->WriteDone(0, 0);
  // First member finishes: blocked until the sibling does.
  EXPECT_EQ(ctrl_->Commit(0), ReqResult::kBlocked);
  // The parent store is untouched — nothing published yet.
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{50, 50}));
  // Second member finishes: the group publishes and commits.
  EXPECT_EQ(ctrl_->Commit(1), ReqResult::kGranted);
  EXPECT_TRUE(ctrl_->GroupCommitted(0));
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{60, 50}));
  // The parked first member is woken and its commit is now durable.
  std::vector<int> wakeups = ctrl_->TakeWakeups();
  EXPECT_TRUE(std::find(wakeups.begin(), wakeups.end(), 0) != wakeups.end());
  EXPECT_EQ(ctrl_->Commit(0), ReqResult::kGranted);
}

TEST_F(NestedCepTest, CrossGroupIsolationUntilPublication) {
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Write(0, 0, 77), ReqResult::kGranted);
  ctrl_->WriteDone(0, 0);
  // Group B starts while A is mid-flight: B's view of x is the initial 50
  // (its scope was seeded before A published anything).
  ASSERT_EQ(ctrl_->Begin(2), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(3), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_->Read(2, 1, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  // B commits without ever seeing A's uncommitted 77.
  EXPECT_EQ(ctrl_->Commit(2), ReqResult::kBlocked);
  EXPECT_EQ(ctrl_->Commit(3), ReqResult::kGranted);
  EXPECT_EQ(store_.LatestCommittedSnapshot()[0], 50);
}

TEST_F(NestedCepTest, GroupOutputPredicateFailureResetsScope) {
  VersionStore store({50});
  NestedCepController::Options options;
  Predicate impossible = Range(0, 200, 300);
  options.groups = {Group("doomed", Range(0, 0, 100), impossible)};
  options.group_of_tx = {0};
  NestedCepController ctrl(&store, std::move(options));
  ctrl.Register(0, Profile("m", Range(0, 0, 100)));
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(0, 0, 60), ReqResult::kGranted);
  ctrl.WriteDone(0, 0);
  // The member's group-commit succeeds but O_G fails at the top: the whole
  // scope resets and the write never becomes durable.
  EXPECT_EQ(ctrl.Commit(0), ReqResult::kAborted);
  EXPECT_EQ(ctrl.stats().group_resets, 1);
  ctrl.Abort(0);
  EXPECT_EQ(store.LatestCommittedSnapshot(), (ValueVector{50}));
}

TEST_F(NestedCepTest, PredecessorGroupWriteInvalidatesStartedGroup) {
  // Group B follows group A at the top level and both use entity x. B
  // starts first (optimistically, reading the initial x); when A writes x,
  // the top-level Figure 4 fires: B is a successor that already read — the
  // whole B scope resets.
  VersionStore store({50});
  NestedCepController::Options options;
  options.groups = {Group("A", Range(0, 0, 100)),
                    Group("B", Range(0, 0, 100), Predicate::True(), {0})};
  options.group_of_tx = {0, 1};
  NestedCepController ctrl(&store, std::move(options));
  ctrl.Register(0, Profile("a", Range(0, 0, 100)));
  ctrl.Register(1, Profile("b", Range(0, 0, 100)));

  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);  // B's scope opens early.
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(0, 0, 80), ReqResult::kGranted);
  ctrl.WriteDone(0, 0);
  // Scope writes are invisible to the top level until publication: B is
  // still fine.
  EXPECT_TRUE(ctrl.TakeForcedAborts().empty());

  // A's single member commits -> the group publishes x=80 at the top,
  // where the Figure 4 re-evaluation fires against successor group B,
  // which already consumed the stale x: the whole B scope resets.
  EXPECT_EQ(ctrl.Commit(0), ReqResult::kGranted);
  std::vector<int> forced = ctrl.TakeForcedAborts();
  ASSERT_EQ(forced, (std::vector<int>{1}));
  EXPECT_EQ(ctrl.stats().group_resets, 1);
  ctrl.Abort(1);
  (void)ctrl.TakeWakeups();
  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 80);
  EXPECT_EQ(ctrl.Commit(1), ReqResult::kGranted);
}

TEST_F(NestedCepTest, InScopeReEvalStillWorks) {
  // The Figure 4 machinery runs inside a scope too: member a1 precedes
  // nobody, but give a0 a member-level predecessor edge to a1.
  VersionStore store({50});
  NestedCepController::Options options;
  options.groups = {Group("A", Range(0, 0, 100))};
  options.group_of_tx = {0, 0};  // Both members in the single group.
  NestedCepController ctrl(&store, std::move(options));
  ctrl.Register(0, Profile("first", Range(0, 0, 100)));
  ctrl.Register(1, Profile("second", Range(0, 0, 100), {0}));

  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl.Read(1, 0, &v), ReqResult::kGranted);  // Reads seed 50.
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(0, 0, 70), ReqResult::kGranted);
  // Member-level partial-order invalidation inside the scope.
  EXPECT_EQ(ctrl.TakeForcedAborts(), (std::vector<int>{1}));
}

TEST_F(NestedCepTest, GroupPredecessorChainsGroupStart) {
  VersionStore store({50});
  NestedCepController::Options options;
  options.groups = {Group("A", Predicate::True()),
                    Group("B", Predicate::True(), Predicate::True(), {0})};
  options.group_of_tx = {0, 1};
  NestedCepController ctrl(&store, std::move(options));
  ctrl.Register(0, Profile("a", Predicate::True()));
  ctrl.Register(1, Profile("b", Predicate::True()));

  // B can begin (optimistic validation), but cannot COMMIT before A.
  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);
  EXPECT_EQ(ctrl.Commit(1), ReqResult::kBlocked);
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl.Commit(0), ReqResult::kGranted);
  std::vector<int> wakeups = ctrl.TakeWakeups();
  EXPECT_TRUE(std::find(wakeups.begin(), wakeups.end(), 1) != wakeups.end());
  EXPECT_EQ(ctrl.Commit(1), ReqResult::kGranted);
}

TEST_F(NestedCepTest, UnsatisfiableGroupInputBlocksStart) {
  VersionStore store({50});
  NestedCepController::Options options;
  options.groups = {Group("picky", Range(0, 90, 100)),
                    Group("writer", Range(0, 0, 100))};
  options.group_of_tx = {0, 1};
  NestedCepController ctrl(&store, std::move(options));
  ctrl.Register(0, Profile("p", Range(0, 90, 100)));
  ctrl.Register(1, Profile("w", Range(0, 0, 100)));
  // No version satisfies x >= 90 yet: the group start blocks at the top
  // validation, parking the member.
  EXPECT_EQ(ctrl.Begin(0), ReqResult::kBlocked);
  // The writer group produces and publishes x = 95.
  ASSERT_EQ(ctrl.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl.Write(1, 0, 95), ReqResult::kGranted);
  ctrl.WriteDone(1, 0);
  EXPECT_EQ(ctrl.Commit(1), ReqResult::kGranted);
  // The picky group is woken and can now start.
  std::vector<int> wakeups = ctrl.TakeWakeups();
  EXPECT_TRUE(std::find(wakeups.begin(), wakeups.end(), 0) != wakeups.end());
  ASSERT_EQ(ctrl.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 95);
  EXPECT_EQ(ctrl.Commit(0), ReqResult::kGranted);
}

TEST_F(NestedCepTest, StatsCountGroupLifecycles) {
  ASSERT_EQ(ctrl_->Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_->Begin(1), ReqResult::kGranted);
  EXPECT_EQ(ctrl_->Commit(0), ReqResult::kBlocked);
  EXPECT_EQ(ctrl_->Commit(1), ReqResult::kGranted);
  EXPECT_EQ(ctrl_->stats().group_commits, 1);
  EXPECT_EQ(ctrl_->stats().group_resets, 0);
}

}  // namespace
}  // namespace nonserial
