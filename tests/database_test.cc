#include <gtest/gtest.h>

#include "core/database.h"

namespace nonserial {
namespace {

// The quickstart scenario: two designers cooperating on a small design.
Database MakeQuickstartDb() {
  Database db;
  EXPECT_TRUE(db.AddEntity("x", 50).ok());
  EXPECT_TRUE(db.AddEntity("y", 50).ok());
  EXPECT_TRUE(db.SetConstraint(
                    "(x >= 0) & (x <= 100) & (y >= 0) & (y <= 100)")
                  .ok());
  return db;
}

TEST(DatabaseTest, EntityRegistration) {
  Database db;
  ASSERT_TRUE(db.AddEntity("x", 1).ok());
  EXPECT_FALSE(db.AddEntity("x", 2).ok());
  EXPECT_EQ(db.catalog().size(), 1);
}

TEST(DatabaseTest, ConstraintParsingAndObjects) {
  Database db = MakeQuickstartDb();
  EXPECT_EQ(db.constraint().clauses().size(), 4u);
  EXPECT_FALSE(db.SetConstraint("zz > 0").ok());
}

TEST(DatabaseTest, ScriptBuildingValidatesNames) {
  Database db = MakeQuickstartDb();
  int t = db.NewTransaction("t");
  EXPECT_TRUE(db.Read(t, "x").ok());
  EXPECT_FALSE(db.Read(t, "nope").ok());
  auto x = db.Var("x");
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(db.Write(t, "x", Expr::Add(*x, Expr::Const(1))).ok());
  EXPECT_FALSE(db.Var("nope").ok());
}

TEST(DatabaseTest, WriteFromUnreadEntityRejected) {
  Database db = MakeQuickstartDb();
  int t = db.NewTransaction("t");
  auto y = db.Var("y");
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(db.Write(t, "x", *y).code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, DerivedSpecificationsMentionTouchedEntities) {
  Database db = MakeQuickstartDb();
  int t = db.NewTransaction("t");
  ASSERT_TRUE(db.Read(t, "x").ok());
  auto workload = db.BuildWorkload();
  ASSERT_TRUE(workload.ok());
  std::set<EntityId> inputs = workload->txs[0].input.Entities();
  EXPECT_TRUE(inputs.contains(0));  // x in N_t.
  EXPECT_FALSE(inputs.contains(1));
}

TEST(DatabaseTest, ExplicitSpecificationsOverrideDerived) {
  Database db = MakeQuickstartDb();
  int t = db.NewTransaction("t");
  ASSERT_TRUE(db.Read(t, "x").ok());
  ASSERT_TRUE(db.SetInput(t, "(x >= 10) & (x <= 90)").ok());
  ASSERT_TRUE(db.SetOutput(t, "x >= 10").ok());
  auto workload = db.BuildWorkload();
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->txs[0].input.clauses().size(), 2u);
  EXPECT_EQ(workload->txs[0].output.clauses().size(), 1u);
}

TEST(DatabaseTest, AfterBuildsPartialOrder) {
  Database db = MakeQuickstartDb();
  int t0 = db.NewTransaction("first");
  int t1 = db.NewTransaction("second");
  EXPECT_TRUE(db.After(t1, t0).ok());
  EXPECT_FALSE(db.After(t1, t1).ok());
  EXPECT_FALSE(db.After(t1, 99).ok());
  auto workload = db.BuildWorkload();
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->txs[1].predecessors, (std::vector<int>{0}));
}

TEST(DatabaseTest, EmptyDatabaseCannotBuild) {
  Database db;
  EXPECT_FALSE(db.BuildWorkload().ok());
}

class DatabaseRunTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DatabaseRunTest, CooperatingTransactionsCommit) {
  Database db = MakeQuickstartDb();
  int t0 = db.NewTransaction("alice", /*arrival=*/0, /*think_time=*/20);
  ASSERT_TRUE(db.Read(t0, "x").ok());
  ASSERT_TRUE(db.Write(t0, "x", Expr::Add(*db.Var("x"), Expr::Const(5))).ok());
  int t1 = db.NewTransaction("bob", /*arrival=*/3, /*think_time=*/20);
  ASSERT_TRUE(db.Read(t1, "y").ok());
  ASSERT_TRUE(db.Write(t1, "y", Expr::Sub(*db.Var("y"), Expr::Const(5))).ok());
  auto report = db.Run(GetParam());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->result.all_committed);
  EXPECT_EQ(report->result.final_state, (ValueVector{55, 45}));
  EXPECT_TRUE(report->verification.ok()) << report->verification;
  EXPECT_FALSE(report->stats_summary.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DatabaseRunTest,
    ::testing::Values(ProtocolKind::kCep, ProtocolKind::kStrict2pl,
                      ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto,
                      ProtocolKind::kPwMvto),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = ProtocolKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DatabaseRunTest, NonSerializableButCorrectUnderCep) {
  // The paper's motivating shape: two long transactions each read the
  // other's entity before the other writes it. A serializable system
  // orders them; CEP lets both use old versions and still commits a
  // correct execution.
  Database db = MakeQuickstartDb();
  int t0 = db.NewTransaction("alice", 0, 50);
  ASSERT_TRUE(db.Read(t0, "x").ok());
  ASSERT_TRUE(db.Read(t0, "y").ok());
  ASSERT_TRUE(db.Write(t0, "x", Expr::Add(*db.Var("y"), Expr::Const(1))).ok());
  int t1 = db.NewTransaction("bob", 1, 50);
  ASSERT_TRUE(db.Read(t1, "x").ok());
  ASSERT_TRUE(db.Read(t1, "y").ok());
  ASSERT_TRUE(db.Write(t1, "y", Expr::Add(*db.Var("x"), Expr::Const(1))).ok());
  auto report = db.Run(ProtocolKind::kCep);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->result.all_committed);
  EXPECT_TRUE(report->verification.ok()) << report->verification;
  // Both read the original values: x = y = 51 — a version-state mix no
  // serial execution produces (serial gives 51 and 52).
  EXPECT_EQ(report->result.final_state, (ValueVector{51, 51}));
}

TEST(DatabaseTest, ProtocolKindNames) {
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kCep), "CEP");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kStrict2pl), "S2PL");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kPredicatewise2pl), "PW-2PL");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kMvto), "MVTO");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kPwMvto), "PW-MVTO");
}

}  // namespace
}  // namespace nonserial
