#include <gtest/gtest.h>

#include "schedule/schedule.h"

namespace nonserial {
namespace {

TEST(ScheduleParseTest, ParsesCompactSteps) {
  auto s = ParseSchedule("R1(x) W1(x) R2(y)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ops().size(), 3u);
  EXPECT_EQ(s->num_txs(), 2);
  EXPECT_EQ(s->num_entities(), 2);
  EXPECT_EQ(s->ops()[0], (Op{0, OpKind::kRead, 0}));
  EXPECT_EQ(s->ops()[1], (Op{0, OpKind::kWrite, 0}));
  EXPECT_EQ(s->ops()[2], (Op{1, OpKind::kRead, 1}));
}

TEST(ScheduleParseTest, MultiDigitTxAndLongNames) {
  auto s = ParseSchedule("R12(alpha) W3(beta_2)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_txs(), 12);
  EXPECT_EQ(s->EntityName(0), "alpha");
  EXPECT_EQ(s->EntityName(1), "beta_2");
}

TEST(ScheduleParseTest, RejectsMalformedSteps) {
  EXPECT_FALSE(ParseSchedule("X1(x)").ok());
  EXPECT_FALSE(ParseSchedule("R1x").ok());
  EXPECT_FALSE(ParseSchedule("R0(x)").ok());   // 1-based tx numbers.
  EXPECT_FALSE(ParseSchedule("R1()").ok());
  EXPECT_FALSE(ParseSchedule("Rx(x)").ok());
}

TEST(ScheduleTest, ToStringRoundTrips) {
  const std::string text = "R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)";
  auto s = ParseSchedule(text);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), text);
}

TEST(ScheduleTest, ActiveTxsAndOpsOf) {
  auto s = ParseSchedule("R1(x) R3(y) W1(x)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ActiveTxs(), (std::set<TxId>{0, 2}));
  EXPECT_EQ(s->OpsOf(0), (std::vector<int>{0, 2}));
  EXPECT_TRUE(s->OpsOf(1).empty());
}

TEST(ScheduleTest, SingleVersionReadsFrom) {
  auto s = ParseSchedule("R1(x) W2(x) R1(x) W1(x) R2(x)");
  ASSERT_TRUE(s.ok());
  std::vector<TxId> rf = s->SingleVersionReadsFrom();
  EXPECT_EQ(rf[0], kInitialTx);  // First read: initial.
  EXPECT_EQ(rf[2], 1);           // After W2: reads t2.
  EXPECT_EQ(rf[4], 0);           // After W1: reads t1.
}

TEST(ScheduleTest, FinalWriters) {
  auto s = ParseSchedule("W1(x) W2(x) W1(y)");
  ASSERT_TRUE(s.ok());
  std::vector<TxId> fw = s->FinalWriters();
  EXPECT_EQ(fw[0], 1);  // x last written by t2.
  EXPECT_EQ(fw[1], 0);  // y last written by t1.
}

TEST(ScheduleTest, FinalWriterInitialWhenNeverWritten) {
  auto s = ParseSchedule("R1(x) R1(y) W1(y)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->FinalWriters()[0], kInitialTx);
}

TEST(ScheduleTest, ProjectEntitiesKeepsOrderAndIds) {
  auto s = ParseSchedule("R1(x) W2(y) W1(x) R2(x)");
  ASSERT_TRUE(s.ok());
  EntityId x = 0;
  Schedule proj = s->ProjectEntities({x});
  EXPECT_EQ(proj.ToString(), "R1(x) W1(x) R2(x)");
  EXPECT_EQ(proj.num_txs(), s->num_txs());
}

TEST(ScheduleTest, SerializeConcatenatesPrograms) {
  auto s = ParseSchedule("R1(x) R2(y) W1(x) W2(y)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Serialize({1, 0}).ToString(), "R2(y) W2(y) R1(x) W1(x)");
}

TEST(ScheduleTest, GridShowsPerTransactionRows) {
  auto s = ParseSchedule("R1(x) W2(y)");
  ASSERT_TRUE(s.ok());
  std::string grid = s->ToGrid();
  EXPECT_NE(grid.find("t1:"), std::string::npos);
  EXPECT_NE(grid.find("t2:"), std::string::npos);
  EXPECT_NE(grid.find("R(x)"), std::string::npos);
  EXPECT_NE(grid.find("W(y)"), std::string::npos);
}

TEST(ScheduleTest, AppendByNameInternsEntities) {
  Schedule s;
  s.AppendRead(0, "x");
  s.AppendWrite(1, "x");
  s.AppendWrite(0, "y");
  EXPECT_EQ(s.num_entities(), 2);
  EXPECT_EQ(s.num_txs(), 2);
  EXPECT_EQ(s.ToString(), "R1(x) W2(x) W1(y)");
}

}  // namespace
}  // namespace nonserial
