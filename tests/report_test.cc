// Tests for the run-report subsystem: the Json writer, the report schema
// (pinned by a golden string — changing the layout must bump
// kReportSchemaVersion), metrics serialization, and the Chrome trace_event
// export of span timelines.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/metrics.h"
#include "common/report.h"
#include "common/span.h"

namespace nonserial {
namespace {

// --- Json writer ---------------------------------------------------------

TEST(JsonTest, ScalarsRender) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, NonFiniteDoublesRenderAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
}

TEST(JsonTest, StringsEscape) {
  EXPECT_EQ(Json("a\"b\\c").Dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json("line\nbreak\ttab").Dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string("\x01")).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, EmptyContainersRenderCompact) {
  EXPECT_EQ(Json::Array().Dump(), "[]");
  EXPECT_EQ(Json::Object().Dump(), "{}");
  EXPECT_EQ(Json::Array().Dump(2), "[]");
  EXPECT_EQ(Json::Object().Dump(2), "{}");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json o = Json::Object();
  o["zulu"] = 1;
  o["alpha"] = 2;
  o["mike"] = 3;
  EXPECT_EQ(o.Dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
  // Re-assigning an existing key updates in place, not re-appends.
  o["alpha"] = 9;
  EXPECT_EQ(o.Dump(), "{\"zulu\":1,\"alpha\":9,\"mike\":3}");
  EXPECT_EQ(o.size(), 3u);
}

TEST(JsonTest, NestedPrettyPrint) {
  Json o = Json::Object();
  o["a"] = 1;
  Json arr = Json::Array();
  arr.Push(true);
  arr.Push("x");
  o["b"] = std::move(arr);
  EXPECT_EQ(o.Dump(2),
            "{\n"
            "  \"a\": 1,\n"
            "  \"b\": [\n"
            "    true,\n"
            "    \"x\"\n"
            "  ]\n"
            "}");
}

// --- Report schema (golden) ----------------------------------------------

TEST(ReportTest, SchemaVersionIsOne) {
  // Bump this expectation together with kReportSchemaVersion whenever the
  // report layout changes incompatibly.
  EXPECT_EQ(kReportSchemaVersion, 1);
}

TEST(ReportTest, MinimalReportGolden) {
  ReportBuilder report("unit");
  // Key order is part of the schema; this golden string pins it.
  EXPECT_EQ(report.Dump(0),
            "{\"schema_version\":1,\"bench\":\"unit\",\"ok\":true,"
            "\"config\":{},\"results\":[]}");
}

TEST(ReportTest, FullReportGolden) {
  ReportBuilder report("unit");
  report.SetOk(false);
  report.config()["threads"] = 4;
  Json row = Json::Object();
  row["name"] = "point0";
  row["ops_per_sec"] = 10.5;
  report.AddResult(std::move(row));
  report.AttachEventTallies({{"CEP", {{"committed", 16}, {"read", 3}}}});

  EXPECT_EQ(report.Dump(0),
            "{\"schema_version\":1,\"bench\":\"unit\",\"ok\":false,"
            "\"config\":{\"threads\":4},"
            "\"results\":[{\"name\":\"point0\",\"ops_per_sec\":10.5}],"
            "\"events\":{\"CEP\":{\"committed\":16,\"read\":3}}}");
}

TEST(ReportTest, MetricsSectionAppearsWhenAttached) {
  ReportBuilder report("unit");
  ProtocolMetrics metrics;
  metrics.lock_grants.Add(3);
  metrics.span_validate.Record(10);
  report.AttachMetrics(metrics);

  std::string dump = report.Dump(0);
  EXPECT_NE(dump.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(dump.find("\"locks\":{\"grants\":3"), std::string::npos);
  EXPECT_NE(dump.find("\"spans\":{\"validate\":{\"count\":1"),
            std::string::npos);
  // Attached metrics come before events in the key order.
  report.AttachEventTallies({{"CEP", {{"committed", 1}}}});
  dump = report.Dump(0);
  EXPECT_LT(dump.find("\"metrics\""), dump.find("\"events\""));
}

TEST(ReportTest, MetricsToJsonIsSelfContained) {
  ProtocolMetrics metrics;
  metrics.po_aborts.Add(2);
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"aborts\""), std::string::npos);
  EXPECT_NE(json.find("\"partial_order\": 2"), std::string::npos);
}

TEST(ReportTest, HistogramJsonShape) {
  ProtocolMetrics metrics;
  for (int i = 1; i <= 100; ++i) metrics.span_execute.Record(i);
  Json j = MetricsJson(metrics);
  std::string dump = j.Dump(0);
  EXPECT_NE(dump.find("\"execute\":{\"count\":100,\"mean\":50.5,"),
            std::string::npos);
  EXPECT_NE(dump.find("\"max\":100"), std::string::npos);
}

// --- Chrome trace export -------------------------------------------------

TEST(ChromeTraceTest, TimelineRendersCompleteEventsAndLaneNames) {
  SpanTimeline timeline;
  timeline.SetLaneName(0, "tx0");
  timeline.Add({/*lane=*/0, /*attempt=*/0, "validate", /*start_us=*/5,
                /*dur_us=*/10, /*ok=*/true});
  timeline.Add({/*lane=*/0, /*attempt=*/1, "execute", /*start_us=*/20,
                /*dur_us=*/7, /*ok=*/false});

  Json doc = ChromeTraceJson(timeline);
  std::string dump = doc.Dump(0);
  // Metadata names the lane's pseudo-thread.
  EXPECT_NE(dump.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(dump.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(dump.find("\"tx0\""), std::string::npos);
  // Phase spans are complete events with timestamps and duration.
  EXPECT_NE(
      dump.find("{\"name\":\"validate\",\"ph\":\"X\",\"ts\":5,\"dur\":10"),
      std::string::npos);
  EXPECT_NE(dump.find("\"args\":{\"attempt\":1,\"ok\":false}"),
            std::string::npos);
  EXPECT_NE(dump.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTimelineStillAValidDocument) {
  SpanTimeline timeline;
  Json doc = ChromeTraceJson(timeline);
  EXPECT_EQ(doc.Dump(0),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

// --- SpanTimeline --------------------------------------------------------

TEST(SpanTimelineTest, RecordsSpansInArrivalOrder) {
  SpanTimeline timeline;
  EXPECT_GE(timeline.ElapsedUs(), 0);
  timeline.Add({1, 0, "validate", 0, 3, true});
  timeline.Add({2, 0, "validate", 1, 4, true});
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.spans()[0].lane, 1);
  EXPECT_EQ(timeline.spans()[1].lane, 2);
  timeline.SetLaneName(1, "alpha");
  EXPECT_EQ(timeline.lane_names().at(1), "alpha");
}

}  // namespace
}  // namespace nonserial
