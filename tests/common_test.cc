#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace nonserial {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not-found: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Deadlock("").code(), StatusCode::kDeadlock);
  EXPECT_EQ(Status::Unsatisfiable("").code(), StatusCode::kUnsatisfiable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  NONSERIAL_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  NONSERIAL_RETURN_IF_ERROR(Status::OK());
  *out = value * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, PropagateAndAssign) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UseMacros(-1, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = rng.Zipf(100, 0.9);
    EXPECT_LT(v, 100u);
    if (v < 10) ++low;
    if (v >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(23);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(low / 10000.0, 0.5, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x", 3, '!'), "x3!");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, SplitAndTrimDropsEmpties) {
  EXPECT_EQ(SplitAndTrim(" a, b ,,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \n "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old_level);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  NONSERIAL_CHECK(true);
  NONSERIAL_CHECK_EQ(1, 1);
  NONSERIAL_CHECK_LT(1, 2);
  NONSERIAL_CHECK_GE(2, 2);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(NONSERIAL_CHECK(false) << "boom", "Check failed");
}

}  // namespace
}  // namespace nonserial
