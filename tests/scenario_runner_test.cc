// Runner semantics: the deterministic step scheduler across all six
// protocols, the engine's controller_factory generalization, expectation
// checking, interleaving enumeration, chaos replay, and the concurrent
// Session-API transport.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "scenario/parser.h"
#include "scenario/protocols.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace nonserial {
namespace scenario {
namespace {

// The hand-verified write-skew scenario (mirrors scenarios/write_skew.spec).
constexpr char kWriteSkew[] = R"spec(
scenario write_skew
class cpc
setup {
  entity x = 20
  entity y = 20
  constraint "(x >= -100) & (y >= -100)"
}
session s1 {
  input  "(x >= -100) & (y >= -100)"
  output "(x >= -100) & (y >= -100)"
  step r1x { read x }
  step r1y { read y }
  step w1y { write y = x + y }
  step c1 { commit }
}
session s2 {
  input  "(x >= -100) & (y >= -100)"
  output "(x >= -100) & (y >= -100)"
  step r2x { read x }
  step r2y { read y }
  step w2x { write x = x + y }
  step c2 { commit }
}
permutation r1x r1y r2x r2y w1y c1 w2x c2
)spec";

ScenarioSpec ParseOrDie(const std::string& text) {
  StatusOr<ScenarioSpec> spec = ParseScenario(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *std::move(spec);
}

TEST(ScenarioRunner, CepAdmitsWriteSkewOutsideSr) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ScenarioRunResult> run =
      RunPermutation(spec, spec.permutations[0].order, "CEP");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->verdicts[0], Verdict::kCommit);
  EXPECT_EQ(run->verdicts[1], Verdict::kCommit);
  EXPECT_EQ(run->final_state, (ValueVector{40, 40}));
  ASSERT_TRUE(run->classes_exact);
  // The paper's split: inside CPC, outside SR (and CSR).
  EXPECT_TRUE(run->classes.cpc);
  EXPECT_FALSE(run->classes.vsr);
  EXPECT_FALSE(run->classes.csr);
  EXPECT_TRUE(run->constraint_ok);
  EXPECT_EQ(run->incremental_cpc, run->classes.cpc);
}

TEST(ScenarioRunner, S2plSerializesTheSamePermutation) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ScenarioRunResult> run =
      RunPermutation(spec, spec.permutations[0].order, "S2PL");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Deferred injection: s2 blocks at r2y until s1 commits, then finishes
  // with fresh values — both commit, serial outcome.
  EXPECT_EQ(run->verdicts[0], Verdict::kCommit);
  EXPECT_EQ(run->verdicts[1], Verdict::kCommit);
  EXPECT_EQ(run->final_state, (ValueVector{60, 40}));
  EXPECT_TRUE(run->classes.csr);
  EXPECT_TRUE(run->classes.vsr);
}

TEST(ScenarioRunner, MvtoAbortsTheLateWriter) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ScenarioRunResult> run =
      RunPermutation(spec, spec.permutations[0].order, "MVTO");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->verdicts[0], Verdict::kAbort);
  EXPECT_EQ(run->verdicts[1], Verdict::kCommit);
  EXPECT_EQ(run->final_state, (ValueVector{40, 20}));
}

TEST(ScenarioRunner, EveryProtocolTerminatesAndAgreesWithIncrementalCpc) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  for (const std::string& protocol : ProtocolNames()) {
    StatusOr<ScenarioRunResult> run =
        RunPermutation(spec, spec.permutations[0].order, protocol);
    ASSERT_TRUE(run.ok()) << protocol;
    EXPECT_EQ(run->verdicts.size(), 2u) << protocol;
    EXPECT_EQ(run->incremental_cpc, run->classes.cpc) << protocol;
    for (Verdict v : run->verdicts) {
      EXPECT_NE(v, Verdict::kBlocked) << protocol;
    }
  }
}

TEST(ScenarioRunner, CheckExpectationReportsMismatches) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ScenarioRunResult> run =
      RunPermutation(spec, spec.permutations[0].order, "CEP");
  ASSERT_TRUE(run.ok());

  Expectation expect;
  expect.protocol = "CEP";
  expect.verdicts = {Verdict::kCommit, Verdict::kCommit};
  expect.classes.push_back({ClassAssertion::Cls::kCpc, true});
  expect.classes.push_back({ClassAssertion::Cls::kSr, false});
  expect.final_state = {{0, 40}, {1, 40}};
  std::vector<std::string> failures;
  EXPECT_TRUE(CheckExpectation(spec, expect, *run, &failures));
  EXPECT_TRUE(failures.empty());

  // Now flip every assertion and expect one failure line per mismatch.
  expect.verdicts[0] = Verdict::kAbort;
  expect.classes[1].expected = true;  // +sr, actually outside SR
  expect.final_state[0].second = 99;
  EXPECT_FALSE(CheckExpectation(spec, expect, *run, &failures));
  EXPECT_EQ(failures.size(), 3u);
}

TEST(ScenarioRunner, FormatExpectationRoundTripsThroughTheParser) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ScenarioRunResult> run =
      RunPermutation(spec, spec.permutations[0].order, "CEP");
  ASSERT_TRUE(run.ok());
  std::string block = FormatExpectation(spec, *run);
  // Splice the printed block into the permutation and re-parse: the
  // --print-expect authoring loop must produce valid DSL.
  std::string text = kWriteSkew;
  std::string perm = "permutation r1x r1y r2x r2y w1y c1 w2x c2";
  text.replace(text.find(perm), perm.size(),
               perm + " {\n  " + block + "\n}");
  ScenarioSpec round = ParseOrDie(text);
  ASSERT_EQ(round.permutations[0].expectations.size(), 1u);
  // And the re-parsed expectation holds against the same run.
  std::vector<std::string> failures;
  EXPECT_TRUE(CheckExpectation(round, round.permutations[0].expectations[0],
                               *run, &failures))
      << (failures.empty() ? "" : failures[0]);
}

TEST(ScenarioRunner, EnumerateInterleavingsPrunesSymmetricTwins) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  bool truncated = false;
  std::vector<std::vector<StepRef>> orders =
      EnumerateInterleavings(spec, 2000, &truncated);
  EXPECT_FALSE(truncated);
  // 8 steps, 4 per session: C(8,4) = 70 raw interleavings; adjacent-
  // transposition pruning must cut that strictly while keeping at least
  // the serial orders.
  EXPECT_LT(orders.size(), 70u);
  EXPECT_GE(orders.size(), 2u);
  // Every enumerated order is a valid permutation (program order held).
  for (const auto& order : orders) {
    ASSERT_EQ(order.size(), 8u);
    std::vector<int> cursor(2, 0);
    for (const StepRef& ref : order) {
      EXPECT_EQ(ref.step, cursor[ref.session]);
      ++cursor[ref.session];
    }
  }
  // The cap reports truncation honestly.
  std::vector<std::vector<StepRef>> capped =
      EnumerateInterleavings(spec, 3, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(ScenarioRunner, EngineHostsEveryProtocolThroughTheFactory) {
  // The engine generalization under test: a non-CEP factory yields a
  // working controller with cep() == nullptr; the default path keeps
  // cep() valid.
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<ControllerFactory> factory = MakeControllerFactory("S2PL", spec);
  ASSERT_TRUE(factory.ok());
  EngineOptions options;
  options.initial = spec.initial;
  options.controller_factory = *std::move(factory);
  Engine engine(std::move(options));
  ScopedEngineShutdown teardown(&engine);
  EXPECT_NE(engine.controller(), nullptr);
  EXPECT_EQ(engine.cep(), nullptr);

  EngineOptions default_options;
  default_options.initial = spec.initial;
  Engine default_engine(std::move(default_options));
  ScopedEngineShutdown default_teardown(&default_engine);
  EXPECT_NE(default_engine.cep(), nullptr);
  EXPECT_EQ(default_engine.controller(),
            static_cast<ConcurrencyController*>(default_engine.cep()));
}

TEST(ScenarioRunner, ChaosSweepHoldsAtEveryCrashPoint) {
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  StatusOr<std::vector<std::string>> failures =
      RunChaosSweep(spec, spec.permutations[0].order);
  ASSERT_TRUE(failures.ok()) << failures.status().ToString();
  EXPECT_TRUE(failures->empty())
      << "first: " << (failures->empty() ? "" : (*failures)[0]);
}

TEST(ScenarioRunner, RunSpecAssertsExpectationsAndBuildsAReportRow) {
  std::string text = kWriteSkew;
  std::string perm = "permutation r1x r1y r2x r2y w1y c1 w2x c2";
  text.replace(text.find(perm), perm.size(),
               perm +
                   " {\n"
                   "  expect \"CEP\" { s1 commit s2 commit classes +cpc -sr"
                   " final x = 40 y = 40 }\n"
                   "  expect \"MVTO\" { s1 abort s2 commit }\n"
                   "}");
  ScenarioSpec spec = ParseOrDie(text);
  StatusOr<SpecResult> result = RunSpec(spec, SuiteOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << (result->failures.empty()
                                    ? ""
                                    : result->failures[0]);
  EXPECT_EQ(result->explicit_runs, 6);  // 1 permutation x 6 protocols
  EXPECT_GT(result->row.size(), 0u);

  // A wrong expectation turns into a failure line, not a crash.
  std::string bad = text;
  bad.replace(bad.find("s1 abort"), std::string("s1 abort").size(),
              "s1 commit");
  ScenarioSpec bad_spec = ParseOrDie(bad);
  StatusOr<SpecResult> bad_result = RunSpec(bad_spec, SuiteOptions{});
  ASSERT_TRUE(bad_result.ok());
  EXPECT_FALSE(bad_result->ok());
  ASSERT_FALSE(bad_result->failures.empty());
  EXPECT_NE(bad_result->failures[0].find("MVTO"), std::string::npos);
}

TEST(ScenarioRunner, DeferredInjectionLeavesDeadlockedSessionsBlocked) {
  // Two sessions that each write the other's entity first under S2PL with
  // upgrade-avoiding planned locks can deadlock; the runner must mark the
  // loser blocked (or aborted by the deadlock detector) and terminate.
  constexpr char kCross[] = R"spec(
scenario cross
setup { entity x = 1 entity y = 1 constraint "(x >= 0) & (y >= 0)" }
session s1 {
  input "(x >= 0) & (y >= 0)" output "(x >= 0) & (y >= 0)"
  step r1x { read x } step r1y { read y }
  step w1y { write y = x } step c1 { commit }
}
session s2 {
  input "(x >= 0) & (y >= 0)" output "(x >= 0) & (y >= 0)"
  step r2y { read y } step r2x { read x }
  step w2x { write x = y } step c2 { commit }
}
permutation r1x r2y r1y r2x w1y w2x c1 c2
)spec";
  ScenarioSpec spec = ParseOrDie(kCross);
  for (const std::string& protocol : ProtocolNames()) {
    StatusOr<ScenarioRunResult> run =
        RunPermutation(spec, spec.permutations[0].order, protocol);
    ASSERT_TRUE(run.ok()) << protocol;
    // Termination is the property under test: every session ended in a
    // definite verdict and the store is a committed-only snapshot.
    EXPECT_EQ(run->verdicts.size(), 2u) << protocol;
    EXPECT_TRUE(run->constraint_ok) << protocol;
  }
}

TEST(ScenarioRunner, ConcurrentSessionsMatchTheProtocolContract) {
  // Transport independence: the same scenario driven through real
  // Engine::OpenSession threads. Scheduling is the OS's, so only
  // protocol-invariant properties are asserted: termination, full verdict
  // vectors, differential CPC agreement, and a constraint-satisfying
  // final state.
  ScenarioSpec spec = ParseOrDie(kWriteSkew);
  for (const std::string& protocol : ProtocolNames()) {
    StatusOr<ScenarioRunResult> run =
        RunConcurrentViaSessions(spec, protocol, /*max_blocked_us=*/500'000);
    ASSERT_TRUE(run.ok()) << protocol << ": " << run.status().ToString();
    EXPECT_EQ(run->verdicts.size(), 2u) << protocol;
    EXPECT_EQ(run->incremental_cpc, run->classes.cpc) << protocol;
    EXPECT_TRUE(run->constraint_ok) << protocol;
  }
}

}  // namespace
}  // namespace scenario
}  // namespace nonserial
