#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "protocol/ks_lock_manager.h"

namespace nonserial {
namespace {

// Figure 3, row by row: Rv/R requests against Rv/R holders are compatible.
TEST(KsLockManagerTest, ReadersAreMutuallyCompatible) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(3, 0, KsLockMode::kR), KsLockOutcome::kGranted);
  EXPECT_TRUE(locks.HoldsRv(1, 0));
  EXPECT_TRUE(locks.HoldsRv(2, 0));
  EXPECT_TRUE(locks.HoldsR(3, 0));
}

// Figure 3: Rv/R against an active W is "false" — the requester blocks.
TEST(KsLockManagerTest, ReadersBlockOnActiveWriter) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kRv), KsLockOutcome::kBlocked);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kR), KsLockOutcome::kBlocked);
  EXPECT_FALSE(locks.HoldsRv(2, 0));
}

// Figure 3: W against W is "true" — concurrent writers each make their own
// version and never block.
TEST(KsLockManagerTest, WritersNeverBlockEachOther) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kGranted);
}

// Figure 3: W against Rv/R is "re-eval" — granted, but readers must be
// re-evaluated.
TEST(KsLockManagerTest, WriteAgainstReadersIsReEval) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kReEval);
  // The readers to re-evaluate.
  EXPECT_EQ(locks.Readers(0), (std::vector<int>{1}));
}

TEST(KsLockManagerTest, OwnLocksDoNotConflict) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  // Own W lock does not block own read upgrade.
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kGranted);
}

TEST(KsLockManagerTest, UpgradeBlockedByForeignWriter) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kReEval);
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kBlocked);
  locks.ReleaseWrite(2, 0);
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kGranted);
}

TEST(KsLockManagerTest, ReleaseWriteIsPerHold) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  locks.Acquire(1, 0, KsLockMode::kW);  // Two write ops in flight.
  locks.ReleaseWrite(1, 0);
  EXPECT_TRUE(locks.HasActiveWriter(0));
  locks.ReleaseWrite(1, 0);
  EXPECT_FALSE(locks.HasActiveWriter(0));
}

TEST(KsLockManagerTest, ReleaseAllClearsEveryMode) {
  KsLockManager locks(2);
  locks.Acquire(1, 0, KsLockMode::kRv);
  locks.UpgradeToRead(1, 0);
  locks.Acquire(1, 1, KsLockMode::kW);
  locks.ReleaseAll(1);
  EXPECT_FALSE(locks.HoldsRv(1, 0));
  EXPECT_FALSE(locks.HoldsR(1, 0));
  EXPECT_FALSE(locks.HasActiveWriter(1));
}

TEST(KsLockManagerTest, HasActiveWriterExcludesSelf) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  EXPECT_TRUE(locks.HasActiveWriter(0));
  EXPECT_FALSE(locks.HasActiveWriter(0, /*other_than=*/1));
}

TEST(KsLockManagerTest, ReadersListsRvAndRHoldersOnce) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kRv);
  locks.UpgradeToRead(1, 0);  // Holds both Rv and R.
  locks.Acquire(2, 0, KsLockMode::kRv);
  EXPECT_EQ(locks.Readers(0), (std::vector<int>{1, 2}));
}

// Regression: a transaction that writes the same entity twice and then
// aborts (ReleaseAll without any ReleaseWrite) must leave zero W holds —
// a stale hold would block every later reader of the entity forever.
TEST(KsLockManagerTest, ReleaseAllClearsStackedWriteHolds) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  locks.Acquire(1, 0, KsLockMode::kW);  // Same entity, second write in flight.
  EXPECT_EQ(locks.WriteHolds(1, 0), 2);
  locks.ReleaseAll(1);  // Abort path: no WriteDone was issued.
  EXPECT_EQ(locks.WriteHolds(1, 0), 0);
  EXPECT_FALSE(locks.HasActiveWriter(0));
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
}

// Regression: interleaving one ReleaseWrite with an abort must not
// underflow or leave a stale hold, and ReleaseAll must only clear the
// aborting transaction's holds.
TEST(KsLockManagerTest, ReleaseAllIsPerTransaction) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  locks.Acquire(1, 0, KsLockMode::kW);
  locks.Acquire(2, 0, KsLockMode::kW);
  locks.ReleaseWrite(1, 0);  // First write completed normally...
  EXPECT_EQ(locks.WriteHolds(1, 0), 1);
  locks.ReleaseAll(1);  // ...then the transaction aborts mid-second-write.
  EXPECT_EQ(locks.WriteHolds(1, 0), 0);
  EXPECT_EQ(locks.WriteHolds(2, 0), 1);  // Unaffected bystander.
  EXPECT_TRUE(locks.HasActiveWriter(0));
  locks.ReleaseWrite(2, 0);
  EXPECT_FALSE(locks.HasActiveWriter(0));
}

TEST(KsLockManagerTest, RepeatedAcquireReleaseCyclesStayBalanced) {
  KsLockManager locks(2);
  for (int round = 0; round < 3; ++round) {
    locks.Acquire(1, 0, KsLockMode::kW);
    locks.Acquire(1, 1, KsLockMode::kW);
    locks.Acquire(1, 0, KsLockMode::kW);
    locks.ReleaseAll(1);
    EXPECT_EQ(locks.WriteHolds(1, 0), 0) << "round " << round;
    EXPECT_EQ(locks.WriteHolds(1, 1), 0) << "round " << round;
  }
}

TEST(KsLockManagerTest, MetricsCountOutcomes) {
  ProtocolMetrics metrics;
  KsLockManager locks(1, &metrics);
  locks.Acquire(1, 0, KsLockMode::kRv);  // Grant.
  locks.Acquire(2, 0, KsLockMode::kW);   // Re-eval (reader present).
  locks.Acquire(3, 0, KsLockMode::kR);   // Blocked (active writer).
  EXPECT_EQ(metrics.lock_grants.value(), 1);
  EXPECT_EQ(metrics.lock_reevals.value(), 1);
  EXPECT_EQ(metrics.lock_blocks.value(), 1);
}

// Concurrency smoke over the sharded table: disjoint transactions hammer
// overlapping entities. (Run under TSan via scripts/ci.sh.)
TEST(KsLockManagerConcurrencyTest, ParallelAcquireRelease) {
  constexpr int kEntities = 16;
  constexpr int kThreads = 4;
  KsLockManager locks(kEntities);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&locks, t] {
      for (int i = 0; i < 200; ++i) {
        EntityId e = (t * 3 + i) % kEntities;
        locks.Acquire(t, e, KsLockMode::kW);
        locks.ReleaseWrite(t, e);
        if (locks.Acquire(t, e, KsLockMode::kRv) ==
            KsLockOutcome::kGranted) {
          locks.Readers(e);
        }
        locks.ReleaseAll(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (EntityId e = 0; e < kEntities; ++e) {
    EXPECT_FALSE(locks.HasActiveWriter(e));
    EXPECT_TRUE(locks.Readers(e).empty());
  }
}

}  // namespace
}  // namespace nonserial
