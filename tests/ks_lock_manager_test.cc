#include <gtest/gtest.h>

#include "protocol/ks_lock_manager.h"

namespace nonserial {
namespace {

// Figure 3, row by row: Rv/R requests against Rv/R holders are compatible.
TEST(KsLockManagerTest, ReadersAreMutuallyCompatible) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(3, 0, KsLockMode::kR), KsLockOutcome::kGranted);
  EXPECT_TRUE(locks.HoldsRv(1, 0));
  EXPECT_TRUE(locks.HoldsRv(2, 0));
  EXPECT_TRUE(locks.HoldsR(3, 0));
}

// Figure 3: Rv/R against an active W is "false" — the requester blocks.
TEST(KsLockManagerTest, ReadersBlockOnActiveWriter) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kRv), KsLockOutcome::kBlocked);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kR), KsLockOutcome::kBlocked);
  EXPECT_FALSE(locks.HoldsRv(2, 0));
}

// Figure 3: W against W is "true" — concurrent writers each make their own
// version and never block.
TEST(KsLockManagerTest, WritersNeverBlockEachOther) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kGranted);
}

// Figure 3: W against Rv/R is "re-eval" — granted, but readers must be
// re-evaluated.
TEST(KsLockManagerTest, WriteAgainstReadersIsReEval) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kReEval);
  // The readers to re-evaluate.
  EXPECT_EQ(locks.Readers(0), (std::vector<int>{1}));
}

TEST(KsLockManagerTest, OwnLocksDoNotConflict) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kW), KsLockOutcome::kGranted);
  // Own W lock does not block own read upgrade.
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kGranted);
}

TEST(KsLockManagerTest, UpgradeBlockedByForeignWriter) {
  KsLockManager locks(1);
  EXPECT_EQ(locks.Acquire(1, 0, KsLockMode::kRv), KsLockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 0, KsLockMode::kW), KsLockOutcome::kReEval);
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kBlocked);
  locks.ReleaseWrite(2, 0);
  EXPECT_EQ(locks.UpgradeToRead(1, 0), KsLockOutcome::kGranted);
}

TEST(KsLockManagerTest, ReleaseWriteIsPerHold) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  locks.Acquire(1, 0, KsLockMode::kW);  // Two write ops in flight.
  locks.ReleaseWrite(1, 0);
  EXPECT_TRUE(locks.HasActiveWriter(0));
  locks.ReleaseWrite(1, 0);
  EXPECT_FALSE(locks.HasActiveWriter(0));
}

TEST(KsLockManagerTest, ReleaseAllClearsEveryMode) {
  KsLockManager locks(2);
  locks.Acquire(1, 0, KsLockMode::kRv);
  locks.UpgradeToRead(1, 0);
  locks.Acquire(1, 1, KsLockMode::kW);
  locks.ReleaseAll(1);
  EXPECT_FALSE(locks.HoldsRv(1, 0));
  EXPECT_FALSE(locks.HoldsR(1, 0));
  EXPECT_FALSE(locks.HasActiveWriter(1));
}

TEST(KsLockManagerTest, HasActiveWriterExcludesSelf) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kW);
  EXPECT_TRUE(locks.HasActiveWriter(0));
  EXPECT_FALSE(locks.HasActiveWriter(0, /*other_than=*/1));
}

TEST(KsLockManagerTest, ReadersListsRvAndRHoldersOnce) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kRv);
  locks.UpgradeToRead(1, 0);  // Holds both Rv and R.
  locks.Acquire(2, 0, KsLockMode::kRv);
  EXPECT_EQ(locks.Readers(0), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nonserial
