// Differential fuzzer for the incremental verification subsystem: every
// incremental/memoized path must be observationally equivalent to its
// from-scratch counterpart.
//
//   1. IncrementalCpcChecker vs IsConflictPredicateCorrect, checked after
//      every prefix of random schedules.
//   2. DeltaRevalidate + EvalCache vs a plain FindSatisfyingAssignment,
//      over randomly perturbed candidate sets — including the
//      invalidation-after-abort pattern, where a write is rolled back and
//      the cache epochs bumped a second time.
//   3. Crash-recovery replays: WAL prefixes re-verified with and without a
//      shared EvalCache must reach the same verdict.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "classes/recognizers.h"
#include "common/random.h"
#include "core/verify.h"
#include "predicate/assignment_search.h"
#include "predicate/eval_cache.h"
#include "schedule/schedule.h"
#include "sim/parallel_driver.h"
#include "storage/wal.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

// ---------------------------------------------------------------------------
// 1. Incremental CPC checker vs the batch recognizer.

Schedule RandomSchedule(Rng& rng, int num_txs, int num_entities, int num_ops) {
  Schedule s;
  for (int e = 0; e < num_entities; ++e) {
    s.InternEntity("e" + std::to_string(e));
  }
  for (int i = 0; i < num_ops; ++i) {
    TxId tx = static_cast<TxId>(rng.UniformInt(0, num_txs - 1));
    OpKind kind = rng.Bernoulli(0.5) ? OpKind::kRead : OpKind::kWrite;
    EntityId entity = static_cast<EntityId>(rng.UniformInt(0, num_entities - 1));
    s.Append(tx, kind, entity);
  }
  return s;
}

ObjectSetList RandomObjects(Rng& rng, int num_entities) {
  ObjectSetList objects;
  int num_objects = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_objects; ++i) {
    std::set<EntityId> object;
    for (EntityId e = 0; e < num_entities; ++e) {
      if (rng.Bernoulli(0.5)) object.insert(e);
    }
    if (object.empty()) object.insert(static_cast<EntityId>(
        rng.UniformInt(0, num_entities - 1)));
    objects.push_back(std::move(object));
  }
  return objects;
}

TEST(IncrementalVerifyFuzzTest, CpcCheckerMatchesBatchRecognizerOnEveryPrefix) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    int num_txs = static_cast<int>(rng.UniformInt(2, 4));
    int num_entities = static_cast<int>(rng.UniformInt(2, 5));
    int num_ops = static_cast<int>(rng.UniformInt(4, 16));
    Schedule schedule = RandomSchedule(rng, num_txs, num_entities, num_ops);
    ObjectSetList objects = RandomObjects(rng, num_entities);

    IncrementalCpcChecker checker(objects);
    Schedule prefix;
    for (int e = 0; e < num_entities; ++e) {
      prefix.InternEntity(schedule.EntityName(e));
    }
    for (const Op& op : schedule.ops()) {
      checker.AddOp(op);
      prefix.Append(op.tx, op.kind, op.entity);
      ASSERT_EQ(checker.IsCpc(), IsConflictPredicateCorrect(prefix, objects))
          << "trial " << trial << " after " << checker.num_ops()
          << " ops of " << schedule.ToString();
    }

    // Reset + refeed reaches the same verdict (the checker is a pure
    // function of the fed prefix and the object decomposition).
    bool final_verdict = checker.IsCpc();
    checker.Reset();
    EXPECT_TRUE(checker.IsCpc());
    for (const Op& op : schedule.ops()) checker.AddOp(op);
    EXPECT_EQ(checker.IsCpc(), final_verdict) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// 2. Delta-revalidation + memoized conjuncts vs from-scratch search.

Predicate RandomChainedPredicate(Rng& rng, int entities) {
  Predicate p;
  for (EntityId e = 0; e < entities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, 100)}));
  }
  int links = static_cast<int>(rng.UniformInt(1, entities));
  for (int i = 0; i < links; ++i) {
    EntityId a = static_cast<EntityId>(rng.UniformInt(0, entities - 1));
    EntityId b = static_cast<EntityId>(rng.UniformInt(0, entities - 1));
    if (a == b) b = (b + 1) % entities;
    p.AddClause(Clause({EntityVsEntity(a, CompareOp::kLe, b),
                        EntityVsConst(a, CompareOp::kLe,
                                      rng.UniformInt(10, 90))}));
  }
  return p;
}

// Checks the incremental answer against from-scratch satisfiability and,
// when an assignment is produced, that it actually satisfies the predicate.
void ExpectDeltaAgrees(const Predicate& predicate,
                       const std::vector<std::vector<Value>>& candidates,
                       const std::optional<std::vector<int>>& incremental,
                       int trial) {
  bool scratch = FindSatisfyingAssignment(predicate, candidates,
                                          SearchMode::kPruned)
                     .has_value();
  ASSERT_EQ(incremental.has_value(), scratch) << "trial " << trial;
  if (incremental.has_value()) {
    ValueVector values(candidates.size());
    for (size_t e = 0; e < candidates.size(); ++e) {
      values[e] = candidates[e][(*incremental)[e]];
    }
    EXPECT_TRUE(predicate.Eval(values)) << "trial " << trial;
  }
}

TEST(IncrementalVerifyFuzzTest, DeltaRevalidateAgreesWithFromScratchSearch) {
  Rng rng(424242);
  int64_t total_delta_solves = 0;
  for (int trial = 0; trial < 200; ++trial) {
    int entities = static_cast<int>(rng.UniformInt(3, 8));
    int versions = static_cast<int>(rng.UniformInt(2, 6));
    Predicate predicate = RandomChainedPredicate(rng, entities);
    std::vector<std::vector<Value>> candidates(entities);
    for (int e = 0; e < entities; ++e) {
      for (int v = 0; v < versions; ++v) {
        // Some out-of-bounds values so unsatisfiable rounds occur too.
        candidates[e].push_back(rng.UniformInt(-20, 120));
      }
    }

    EvalCache cache(entities);
    CachedPredicate cached(predicate, &cache);
    DeltaStats delta;

    std::optional<std::vector<int>> prev =
        FindSatisfyingAssignment(predicate, candidates, SearchMode::kPruned,
                                 nullptr, &cached);
    ExpectDeltaAgrees(predicate, candidates, prev, trial);

    for (int round = 0; round < 8; ++round) {
      // A concurrent writer perturbs one or two entities' candidates.
      std::set<EntityId> changed;
      int writes = static_cast<int>(rng.UniformInt(1, 2));
      std::vector<std::pair<std::pair<int, int>, Value>> undo;
      for (int w = 0; w < writes; ++w) {
        int e = static_cast<int>(rng.UniformInt(0, entities - 1));
        int v = static_cast<int>(rng.UniformInt(0, versions - 1));
        undo.push_back({{e, v}, candidates[e][v]});
        candidates[e][v] = rng.UniformInt(-20, 120);
        cache.BumpEntity(e);
        changed.insert(e);
      }

      std::optional<std::vector<int>> next;
      if (prev.has_value()) {
        next = DeltaRevalidate(predicate, candidates, *prev, changed,
                               SearchMode::kPruned, nullptr, &cached, &delta);
      } else {
        next = FindSatisfyingAssignment(predicate, candidates,
                                        SearchMode::kPruned, nullptr, &cached);
      }
      ExpectDeltaAgrees(predicate, candidates, next, trial);

      // Invalidation-after-abort: every other round the writer aborts — the
      // values roll back and the epochs bump again (matching the engine's
      // Abort path, which re-bumps each written entity after rollback). The
      // delta path must converge back to the pre-write answer.
      if (round % 2 == 1) {
        for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
          candidates[it->first.first][it->first.second] = it->second;
          cache.BumpEntity(it->first.first);
        }
        if (next.has_value()) {
          next = DeltaRevalidate(predicate, candidates, *next, changed,
                                 SearchMode::kPruned, nullptr, &cached,
                                 &delta);
        } else {
          next = FindSatisfyingAssignment(predicate, candidates,
                                          SearchMode::kPruned, nullptr,
                                          &cached);
        }
        ExpectDeltaAgrees(predicate, candidates, next, trial);
      }
      prev = std::move(next);
    }
    total_delta_solves += delta.delta_solves;
  }
  // The incremental path must actually have been exercised, not just have
  // fallen through to full searches.
  EXPECT_GT(total_delta_solves, 0);
}

// ---------------------------------------------------------------------------
// 3. Crash-recovery replays with and without a shared cache.

std::vector<CorrectExecutionProtocol::TxRecord> ToRecords(
    const SimWorkload& workload, const std::vector<RecoveredTx>& committed) {
  std::vector<CorrectExecutionProtocol::TxRecord> records(workload.txs.size());
  for (const RecoveredTx& t : committed) {
    CorrectExecutionProtocol::TxRecord& r = records[t.tx];
    r.name = t.name.empty() ? workload.txs[t.tx].name : t.name;
    r.input_state = t.input_state;
    r.feeder_txs.insert(t.feeders.begin(), t.feeders.end());
    r.writes = t.writes;
    r.committed = true;
  }
  return records;
}

TEST(IncrementalVerifyFuzzTest, RecoveryReplaysAgreeWithAndWithoutCache) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    DesignWorkloadParams params;
    params.num_txs = 5;
    params.num_entities = 6;
    params.num_conjuncts = 2;
    params.reads_per_tx = 2;
    params.think_time = 0;
    params.arrival_spacing = 0;
    params.precedence_prob = 0.3;
    params.hot_theta = 0.6;
    params.seed = seed;
    SimWorkload workload = MakeDesignWorkload(params);

    WriteAheadLog wal(workload.initial);
    ParallelDriverConfig config;
    config.num_threads = 2;
    config.us_per_tick = 0;
    config.max_restarts = 60;
    config.backoff_us = 1;
    config.poll_us = 50;
    config.max_wall_ms = 20'000;
    config.wal = &wal;
    ParallelDriver driver(config);
    ParallelRunResult result = driver.Run(workload);
    ASSERT_FALSE(result.watchdog_expired) << "seed " << seed;

    // One cache shared across every replay of this seed — repeated
    // verification of the same history is exactly the workload the shared
    // cache exists for.
    EvalCache cache(static_cast<int>(workload.initial.size()));
    Predicate constraint = WorkloadConstraint(workload);
    Rng rng(seed * 0x9e3779b9ULL);
    size_t log_len = wal.size();
    for (int k = 0; k < 5; ++k) {
      size_t prefix = k <= 1 ? log_len  // k=0 populates, k=1 replays warm.
                             : static_cast<size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(log_len)));
      RecoveryResult rec = wal.Recover(prefix);
      std::vector<CorrectExecutionProtocol::TxRecord> records =
          ToRecords(workload, rec.committed);
      ValueVector snapshot = rec.store->LatestCommittedSnapshot();
      // Mid-way, age every entry the way ParallelDriver::RunChaos does
      // after a crash cycle swaps in the recovered store; the stale-epoch
      // probe path must still reach the from-scratch verdict.
      if (k == 3) cache.InvalidateAll();
      Status with_cache =
          VerifyCepHistory(workload, records, snapshot, constraint, &cache);
      Status without_cache =
          VerifyCepHistory(workload, records, snapshot, constraint);
      EXPECT_EQ(with_cache.ok(), without_cache.ok())
          << "seed " << seed << " prefix " << prefix
          << ": cached verdict " << with_cache.ToString()
          << " vs from-scratch " << without_cache.ToString();
      EXPECT_TRUE(without_cache.ok())
          << "seed " << seed << " prefix " << prefix << ": "
          << without_cache.ToString();
    }
    // The k=1 replay re-verified the identical full-log history, so the
    // shared cache must have served hits.
    EXPECT_GT(cache.stats().hits, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nonserial
