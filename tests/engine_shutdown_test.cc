// Shutdown-ordering audit for the engine facade: server-initiated teardown
// must be safe at any moment — with sessions parked mid-protocol, with the
// WAL group-commit writer holding a staged batch, and when several owners
// (scope guard, explicit Shutdown, destructor) race for the same teardown.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "engine/engine.h"
#include "storage/wal.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

engine::TxSpec Spec(const std::string& name,
                    Predicate input = Predicate::True()) {
  engine::TxSpec spec;
  spec.name = name;
  spec.input = std::move(input);
  return spec;
}

EngineOptions GroupCommitOptionsFor(WriteAheadLog* wal,
                                    ProtocolMetrics* metrics = nullptr) {
  EngineOptions options;
  options.initial = {50, 50};
  options.protocol.metrics = metrics;
  options.wal = wal;
  options.wal_group_commit = true;
  options.poll_us = 100;
  options.max_poll_us = 1'000;
  return options;
}

TEST(EngineShutdownTest, ShutdownIsIdempotentAcrossOwners) {
  WriteAheadLog wal({50, 50});
  Engine engine(GroupCommitOptionsFor(&wal));
  {
    ScopedEngineShutdown guard(&engine);
    engine.Shutdown();
    engine.Shutdown();
  }
  // Destructor is yet another owner; none of the four teardowns may
  // double-join the writer thread or double-fold the stats.
  engine.Shutdown();
}

TEST(EngineShutdownTest, ConcurrentShutdownOwnersAreSerialized) {
  WriteAheadLog wal({50, 50});
  Engine engine(GroupCommitOptionsFor(&wal));
  std::vector<std::thread> owners;
  for (int i = 0; i < 4; ++i) {
    owners.emplace_back([&engine] { engine.Shutdown(); });
  }
  for (std::thread& t : owners) t.join();
  EXPECT_TRUE(engine.shutting_down());
}

TEST(EngineShutdownTest, BeginRefusedAfterShutdown) {
  Engine engine([] {
    EngineOptions o;
    o.initial = {50, 50};
    return o;
  }());
  std::unique_ptr<Session> session = engine.OpenSession();
  engine.Shutdown();
  EXPECT_EQ(session->Begin(Spec("late")).code(), StatusCode::kAborted);
  EXPECT_FALSE(session->in_transaction());
}

TEST(EngineShutdownTest, ShutdownWakesParkedSession) {
  EngineOptions options;
  options.initial = {50, 50};
  options.poll_us = 1'000;
  options.max_poll_us = 500'000;  // Long polls: the wake must come from
                                  // shutdown, not from poll expiry.
  Engine engine(options);
  std::unique_ptr<Session> session = engine.OpenSession();
  std::atomic<bool> parked{false};
  Status begin_status = Status::OK();
  std::thread blocked([&] {
    parked.store(true);
    // Unsatisfiable input; nobody will ever produce x >= 90.
    begin_status = session->Begin(Spec("reader", Range(0, 90, 100)));
  });
  while (!parked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.Shutdown();
  blocked.join();  // Hangs here if shutdown fails to wake the park.
  EXPECT_EQ(begin_status.code(), StatusCode::kAborted);
  EXPECT_EQ(engine.inflight(), 0);
}

TEST(EngineShutdownTest, MidBatchTeardownDrainsHeldFlushes) {
  ProtocolMetrics metrics;
  WriteAheadLog wal({50, 50});
  Engine engine(GroupCommitOptionsFor(&wal, &metrics));
  // Stall the flush pipeline so commits park in WaitDurable with their
  // batch staged but not yet on the medium — the exact mid-batch state a
  // server teardown can interrupt.
  wal.HoldFlushesForTest(true);
  std::unique_ptr<Session> session = engine.OpenSession();
  ASSERT_TRUE(session->Begin(Spec("w")).ok());
  ASSERT_TRUE(session->Write(0, 77).ok());
  Status commit_status = Status::OK();
  std::atomic<bool> committing{false};
  std::thread committer([&] {
    committing.store(true);
    commit_status = session->Commit();
  });
  while (!committing.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(wal.PipelineDepth(), 0u);  // The batch is really staged.
  {
    // Server-initiated teardown while the batch is held: the stop request
    // makes the writer drain every staged batch (DisableGroupCommit), so
    // the parked commit's ack resolves instead of hanging forever.
    ScopedEngineShutdown guard(&engine);
  }
  committer.join();
  // The drain reached the medium before the writer exited: the commit is
  // durable and its ack succeeded.
  EXPECT_TRUE(commit_status.ok()) << commit_status.ToString();
  EXPECT_EQ(wal.PipelineDepth(), 0u);
  RecoveryResult rec = wal.Recover(RecoveryOptions{});
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_EQ(rec.store->LatestCommittedSnapshot(), (ValueVector{77, 50}));
  EXPECT_EQ(metrics.group_commit_failed_acks.value(), 0);
}

TEST(EngineShutdownTest, TeardownUnderCommitStormLosesNoDurableCommit) {
  // N sessions commit concurrently while the main thread tears the engine
  // down; every commit that returned OK must be reproducible from the log.
  ProtocolMetrics metrics;
  WriteAheadLog wal(ValueVector(4, 0), /*segment_bytes=*/1 << 16);
  EngineOptions options;
  options.initial = ValueVector(4, 0);
  options.protocol.metrics = &metrics;
  options.wal = &wal;
  options.wal_group_commit = true;
  options.poll_us = 100;
  options.max_poll_us = 1'000;
  Engine engine(options);

  constexpr int kSessions = 4;
  std::vector<std::thread> workers;
  std::vector<std::vector<std::pair<EntityId, Value>>> durable(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    workers.emplace_back([&engine, &durable, i] {
      std::unique_ptr<Session> session = engine.OpenSession();
      for (Value round = 1; round <= 64; ++round) {
        if (!session->Begin(Spec("storm")).ok()) break;
        EntityId e = static_cast<EntityId>(i);
        Value v = i * 1'000 + round;
        if (!session->Write(e, v).ok()) break;
        if (session->Commit().ok()) {
          durable[i].push_back({e, v});
        } else {
          break;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.Shutdown();  // Mid-storm: later begins are refused, parked waits
                      // abort, already-acked commits stay durable.
  for (std::thread& t : workers) t.join();

  RecoveryResult rec = wal.Recover(RecoveryOptions{});
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  ValueVector recovered = rec.store->LatestCommittedSnapshot();
  for (int i = 0; i < kSessions; ++i) {
    if (durable[i].empty()) continue;
    // Each session wrote strictly increasing values to its own entity, so
    // the recovered state must carry its last acked commit.
    EXPECT_EQ(recovered[durable[i].back().first], durable[i].back().second)
        << "session " << i << " lost an acked commit";
  }
}

TEST(EngineShutdownTest, SessionDestructorRollbackRacesShutdown) {
  // The gap this closes: a Session destroyed with a transaction still open
  // runs AbortActive (rollback, WAL kRollback record, admission release,
  // retirement offer) on its own thread, and nothing stops the server
  // from calling Engine::Shutdown at that exact moment. Neither side may
  // race the other's state — TSan is the judge here; functionally, every
  // iteration must leave zero in-flight admissions.
  for (int round = 0; round < 8; ++round) {
    ProtocolMetrics metrics;
    WriteAheadLog wal({50, 50});
    EngineOptions options = GroupCommitOptionsFor(&wal, &metrics);
    options.retire_terminated_tx = true;  // Dtor path also offers RetireTx.
    Engine engine(options);

    constexpr int kSessions = 4;
    std::atomic<int> begun{0};
    std::vector<std::thread> workers;
    for (int i = 0; i < kSessions; ++i) {
      workers.emplace_back([&engine, &begun, i] {
        std::unique_ptr<Session> session = engine.OpenSession();
        Status s = session->Begin(Spec("racer"));
        begun.fetch_add(1);
        if (s.ok()) (void)session->Write(static_cast<EntityId>(i % 2), 40 + i);
        // Destructor rollback fires here, concurrently with Shutdown.
      });
    }
    while (begun.load() < kSessions) std::this_thread::yield();
    engine.Shutdown();
    for (std::thread& t : workers) t.join();
    EXPECT_EQ(engine.inflight(), 0);
  }
}

}  // namespace
}  // namespace nonserial
