#include "common/failpoint.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nonserial {
namespace {

TEST(FailpointTest, UnarmedNeverFires) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  EXPECT_FALSE(registry.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(NONSERIAL_FAILPOINT("test.unarmed"));
  }
}

TEST(FailpointTest, AlwaysOnFiresEveryEvaluation) {
  ScopedFailpoint fp("test.always", FailpointSpec{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(NONSERIAL_FAILPOINT("test.always"));
  }
  EXPECT_EQ(FailpointRegistry::Global().fires("test.always"), 10);
  EXPECT_EQ(FailpointRegistry::Global().evaluations("test.always"), 10);
}

TEST(FailpointTest, OtherArmedPointDoesNotFireThisOne) {
  ScopedFailpoint fp("test.other", FailpointSpec{});
  EXPECT_TRUE(FailpointRegistry::Global().armed());
  EXPECT_FALSE(NONSERIAL_FAILPOINT("test.this"));
}

TEST(FailpointTest, SkipFirstDelaysFiring) {
  FailpointSpec spec;
  spec.skip_first = 3;
  ScopedFailpoint fp("test.skip", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(NONSERIAL_FAILPOINT("test.skip")) << "evaluation " << i;
  }
  EXPECT_TRUE(NONSERIAL_FAILPOINT("test.skip"));
  EXPECT_EQ(FailpointRegistry::Global().fires("test.skip"), 1);
}

TEST(FailpointTest, MaxFiresCapsFiring) {
  FailpointSpec spec;
  spec.max_fires = 2;
  ScopedFailpoint fp("test.cap", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (NONSERIAL_FAILPOINT("test.cap")) ++fired;
  }
  EXPECT_EQ(fired, 2);
}

TEST(FailpointTest, ProbabilityIsDeterministicUnderSeed) {
  FailpointSpec spec;
  spec.probability = 0.5;
  auto run = [&] {
    FailpointRegistry::Global().Seed(42);
    ScopedFailpoint fp("test.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(NONSERIAL_FAILPOINT("test.prob"));
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  int count = 0;
  for (bool b : first) count += b ? 1 : 0;
  // Bernoulli(0.5) over 64 draws: far from all-or-nothing.
  EXPECT_GT(count, 8);
  EXPECT_LT(count, 56);
}

TEST(FailpointTest, CountsSurviveDisarm) {
  {
    ScopedFailpoint fp("test.survive", FailpointSpec{});
    EXPECT_TRUE(NONSERIAL_FAILPOINT("test.survive"));
  }
  EXPECT_FALSE(NONSERIAL_FAILPOINT("test.survive"));
  EXPECT_EQ(FailpointRegistry::Global().fires("test.survive"), 1);
}

TEST(FailpointTest, RearmResetsTriggerState) {
  FailpointSpec spec;
  spec.max_fires = 1;
  {
    ScopedFailpoint fp("test.rearm", spec);
    EXPECT_TRUE(NONSERIAL_FAILPOINT("test.rearm"));
    EXPECT_FALSE(NONSERIAL_FAILPOINT("test.rearm"));  // Cap reached.
  }
  {
    // Arming again starts a fresh schedule: counts and caps reset.
    ScopedFailpoint fp("test.rearm", spec);
    EXPECT_TRUE(NONSERIAL_FAILPOINT("test.rearm"));
  }
  EXPECT_EQ(FailpointRegistry::Global().fires("test.rearm"), 1);
  EXPECT_EQ(FailpointRegistry::Global().evaluations("test.rearm"), 1);
}

TEST(FailpointTest, ConcurrentEvaluationIsSafeAndCounted) {
  FailpointSpec spec;
  spec.probability = 0.5;
  ScopedFailpoint fp("test.mt", spec);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      int64_t local = 0;
      for (int j = 0; j < kPerThread; ++j) {
        if (NONSERIAL_FAILPOINT("test.mt")) ++local;
      }
      fired.fetch_add(local);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(FailpointRegistry::Global().evaluations("test.mt"),
            kThreads * kPerThread);
  EXPECT_EQ(FailpointRegistry::Global().fires("test.mt"), fired.load());
  EXPECT_GT(fired.load(), 0);
  EXPECT_LT(fired.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace nonserial
