// Chaos mode acceptance: four worker threads, failpoints armed, forced
// abort storms, and repeated crash-kill + WAL-recovery cycles. The bar
// (ISSUE acceptance criteria): zero hangs, zero leaked waiter-map
// entries, and every recovered history — plus the final one — accepted
// by the Section 3 correctness checker.

#include <gtest/gtest.h>

#include <memory>

#include "common/failpoint.h"
#include "core/verify.h"
#include "sim/parallel_driver.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

SimWorkload ChaosWorkload(uint64_t seed) {
  DesignWorkloadParams params;
  params.num_txs = 12;
  params.num_entities = 10;
  params.num_conjuncts = 2;
  params.reads_per_tx = 3;
  params.think_time = 5;
  params.arrival_spacing = 0;
  params.precedence_prob = 0.25;
  params.hot_theta = 0.6;
  params.seed = seed;
  return MakeDesignWorkload(params);
}

TEST(ChaosTest, CrashRestartCyclesWithFailpointsStayCorrect) {
  SimWorkload workload = ChaosWorkload(21);
  Predicate constraint = WorkloadConstraint(workload);
  ProtocolMetrics metrics;

  ParallelDriverConfig config;
  config.num_threads = 4;
  config.us_per_tick = 20;  // 5-tick thinks = 100µs: crashes land mid-flight.
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 100;
  config.max_wall_ms = 60'000;
  config.protocol.metrics = &metrics;
  config.chaos.enabled = true;
  config.chaos.seed = 77;
  config.chaos.crash_cycles = 5;
  config.chaos.min_cycle_us = 1'000;
  config.chaos.max_cycle_us = 10'000;
  config.chaos.abort_storm_interval_us = 500;
  config.chaos.aborts_per_storm = 2;
  config.chaos.failpoints = {
      {"cep.pre_validate", FailpointSpec{0.05, 0, -1}},
      {"cep.post_install", FailpointSpec{0.05, 0, -1}},
      {"cep.pre_commit", FailpointSpec{0.05, 0, -1}},
      {"ks.lock_acquire", FailpointSpec{0.05, 0, -1}},
      {"driver.lost_wakeup", FailpointSpec{0.10, 0, -1}},
  };

  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ChaosRunResult chaos = driver.RunChaos(workload, &store, &cep);

  // Zero hangs: the final cycle finished inside the watchdog, and with
  // unlimited retries every transaction eventually committed despite the
  // storms and armed failpoints.
  EXPECT_FALSE(chaos.final_result.watchdog_expired);
  EXPECT_TRUE(chaos.final_result.all_committed)
      << chaos.final_result.committed_count << "/" << workload.txs.size()
      << " committed";

  // Five crash-restart cycles ran and each recovered history is a correct
  // execution in its own right.
  ASSERT_EQ(chaos.cycles.size(), 5u);
  EXPECT_EQ(metrics.crash_restarts.value(), 5);
  int prev_recovered = 0;
  for (size_t i = 0; i < chaos.cycles.size(); ++i) {
    const ChaosCycle& cycle = chaos.cycles[i];
    // Durable commits only accumulate across crashes.
    EXPECT_GE(cycle.recovered_committed, prev_recovered) << "cycle " << i;
    prev_recovered = cycle.recovered_committed;
    Status verdict = VerifyCepHistory(workload, cycle.recovered_records,
                                      cycle.recovered_snapshot, constraint);
    EXPECT_TRUE(verdict.ok()) << "cycle " << i << ": " << verdict.ToString();
  }

  // The final engine's history verifies, and its waiter maps drained.
  Status verdict = VerifyCepHistory(workload, *cep, *store, constraint);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(chaos.leaked_waiters, 0u);
  EXPECT_EQ(cep->WaiterFootprint(), 0u);

  // The fault machinery actually engaged.
  EXPECT_GT(chaos.injected_aborts, 0);
  EXPECT_EQ(metrics.injected_aborts.value(), chaos.injected_aborts);
  EXPECT_GT(metrics.recovered_txs.value(), 0);
  // Failpoints disarm on exit.
  EXPECT_FALSE(FailpointRegistry::Global().armed());
}

TEST(ChaosTest, CheckpointCompactionKeepsTheLogBoundedAcrossCycles) {
  // Ten crash-recover cycles with per-cycle checkpoint compaction: the
  // live log must hold at most one cycle's records (the checkpoint
  // absorbs all history), and every recovered state must still verify.
  SimWorkload workload = ChaosWorkload(55);
  Predicate constraint = WorkloadConstraint(workload);
  ProtocolMetrics metrics;
  WriteAheadLog wal(workload.initial);

  ParallelDriverConfig config;
  config.num_threads = 4;
  config.us_per_tick = 20;
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 100;
  config.max_wall_ms = 60'000;
  config.wal = &wal;
  config.protocol.metrics = &metrics;
  config.chaos.enabled = true;
  config.chaos.seed = 91;
  config.chaos.crash_cycles = 10;
  config.chaos.min_cycle_us = 1'000;
  config.chaos.max_cycle_us = 8'000;
  config.chaos.abort_storm_interval_us = 0;  // This test is about the log.

  ParallelDriver driver(config);
  ChaosRunResult chaos = driver.RunChaos(workload);
  EXPECT_FALSE(chaos.final_result.watchdog_expired);
  EXPECT_TRUE(chaos.final_result.all_committed);

  ASSERT_EQ(chaos.cycles.size(), 10u);
  int64_t reclaimed = 0;
  for (size_t i = 0; i < chaos.cycles.size(); ++i) {
    const ChaosCycle& cycle = chaos.cycles[i];
    // Compaction reset the log to a bare checkpoint after every cycle.
    EXPECT_EQ(cycle.post_compaction_records, 0) << "cycle " << i;
    EXPECT_GE(cycle.segments_reclaimed, 1) << "cycle " << i;
    reclaimed += cycle.segments_reclaimed;
    Status verdict = VerifyCepHistory(workload, cycle.recovered_records,
                                      cycle.recovered_snapshot, constraint);
    EXPECT_TRUE(verdict.ok()) << "cycle " << i << ": " << verdict.ToString();
  }
  WalStats stats = wal.stats();
  EXPECT_EQ(stats.checkpoints, 10);
  EXPECT_EQ(stats.compactions, 10);
  EXPECT_EQ(stats.segments_reclaimed, reclaimed);
  EXPECT_EQ(metrics.checkpoint_compactions.value(), 10);
  // Bounded: the live log holds only the final cycle's records, a strict
  // subset of everything ever appended across the eleven runs.
  EXPECT_LT(stats.records, stats.total_records);
  // The surviving image still recovers the full committed outcome.
  RecoveryResult rec = wal.Recover();
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_EQ(static_cast<int>(rec.committed.size()),
            chaos.final_result.committed_count);
}

TEST(ChaosTest, GroupCommitSurvivesCrashCyclesMediaFaultsAndCompaction) {
  // The full PR 5 chaos contract over the PR 6 pipeline: crash-recover
  // cycles with per-cycle compaction and media failpoints, while every
  // frame reaches the medium through the group-commit writer's batched
  // chunk appends. Crashes land with frames in the volatile staging
  // buffer (discarded, never replayed); recovery, salvage, and
  // checkpoint compaction must behave exactly as in sync mode.
  SimWorkload workload = ChaosWorkload(71);
  Predicate constraint = WorkloadConstraint(workload);
  ProtocolMetrics metrics;
  WriteAheadLog wal(workload.initial, /*segment_bytes=*/512);

  ParallelDriverConfig config;
  config.num_threads = 4;
  config.us_per_tick = 20;
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 100;
  config.max_wall_ms = 60'000;
  config.wal = &wal;
  config.wal_group_commit = true;
  config.wal_flush_us = 50;
  config.protocol.metrics = &metrics;
  config.chaos.enabled = true;
  config.chaos.seed = 29;
  config.chaos.crash_cycles = 6;
  config.chaos.min_cycle_us = 1'000;
  config.chaos.max_cycle_us = 8'000;
  config.chaos.abort_storm_interval_us = 0;
  config.chaos.failpoints = {
      {"wal.bit_flip", FailpointSpec{1.0, 5, 1}},
      {"wal.torn_tail", FailpointSpec{1.0, 40, 1}},
  };

  ParallelDriver driver(config);
  ChaosRunResult chaos = driver.RunChaos(workload);
  EXPECT_FALSE(chaos.final_result.watchdog_expired);
  EXPECT_TRUE(chaos.final_result.all_committed);

  ASSERT_EQ(chaos.cycles.size(), 6u);
  for (size_t i = 0; i < chaos.cycles.size(); ++i) {
    const ChaosCycle& cycle = chaos.cycles[i];
    // Compaction still bounds the batched log after every cycle.
    EXPECT_EQ(cycle.post_compaction_records, 0) << "cycle " << i;
    Status verdict = VerifyCepHistory(workload, cycle.recovered_records,
                                      cycle.recovered_snapshot, constraint);
    EXPECT_TRUE(verdict.ok()) << "cycle " << i << ": " << verdict.ToString();
  }
  // The pipeline actually carried the log: batched flushes happened, and
  // the driver folded the counters into the metrics sink.
  EXPECT_GT(metrics.group_commit_batches.value(), 0);
  EXPECT_GT(metrics.group_commit_commits.value(), 0);
  EXPECT_LE(metrics.wal_device_flushes.value(),
            metrics.group_commit_batches.value());
  // The surviving image still recovers after the run. Media faults may
  // have fired during the final cycle too, so the durable committed set
  // can trail the engine's (durability loss is not correctness loss) and
  // the image may need best-effort salvage — but never more than the
  // engine committed, and never a failed recovery.
  RecoveryOptions opts;
  opts.best_effort = true;
  RecoveryResult rec = wal.Recover(opts);
  ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_LE(static_cast<int>(rec.committed.size()),
            chaos.final_result.committed_count);
}

TEST(ChaosTest, MediaFaultsAreSalvagedNeverSilent) {
  // Storage-media failpoints fire while the chaos run logs: a bit flip
  // lands early, a sealed segment vanishes, and a torn write kills the
  // medium mid-cycle. Best-effort recovery (the chaos default) must keep
  // every cycle verifiable and report — never hide — the damage.
  SimWorkload workload = ChaosWorkload(63);
  Predicate constraint = WorkloadConstraint(workload);
  ProtocolMetrics metrics;
  WriteAheadLog wal(workload.initial, /*segment_bytes=*/512);

  ParallelDriverConfig config;
  config.num_threads = 4;
  config.us_per_tick = 20;
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 100;
  config.max_wall_ms = 60'000;
  config.wal = &wal;
  config.protocol.metrics = &metrics;
  config.chaos.enabled = true;
  config.chaos.seed = 17;
  config.chaos.crash_cycles = 6;
  config.chaos.min_cycle_us = 1'000;
  config.chaos.max_cycle_us = 8'000;
  config.chaos.abort_storm_interval_us = 0;
  config.chaos.failpoints = {
      {"wal.bit_flip", FailpointSpec{1.0, 5, 2}},
      {"wal.segment_lost", FailpointSpec{1.0, 1, 1}},
      {"wal.torn_tail", FailpointSpec{1.0, 60, 1}},
  };

  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ChaosRunResult chaos = driver.RunChaos(workload, &store, &cep);

  // Liveness: media faults lose durability, never the engine. The final
  // cycle re-runs whatever the damaged log could not prove committed.
  EXPECT_FALSE(chaos.final_result.watchdog_expired);
  EXPECT_TRUE(chaos.final_result.all_committed);

  // The faults actually engaged...
  WalStats stats = wal.stats();
  EXPECT_GT(stats.bit_flips + stats.lost_segments + stats.torn_writes, 0);
  // ...and recovery reported what it found: every cycle verifies, and the
  // cycles that hit damage carry the salvage/truncation flags.
  bool damage_reported = false;
  for (size_t i = 0; i < chaos.cycles.size(); ++i) {
    const ChaosCycle& cycle = chaos.cycles[i];
    damage_reported |= cycle.corruption_detected || cycle.truncated_tail ||
                       cycle.salvaged;
    Status verdict = VerifyCepHistory(workload, cycle.recovered_records,
                                      cycle.recovered_snapshot, constraint);
    EXPECT_TRUE(verdict.ok()) << "cycle " << i << ": " << verdict.ToString();
  }
  EXPECT_TRUE(damage_reported);

  Status verdict = VerifyCepHistory(workload, *cep, *store, constraint);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_FALSE(FailpointRegistry::Global().armed());
}

TEST(ChaosTest, BoundedWaitAbortsBlockedAttemptsAndStillCompletes) {
  // ks.lock_acquire refuses the first 30 Rv/R acquisitions, so validation
  // parks repeatedly; with a 200µs per-attempt blocked budget the driver
  // must cut those waits short (deadline_aborts), retry, and still finish.
  SimWorkload workload = ChaosWorkload(33);
  ProtocolMetrics metrics;
  FailpointSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 30;
  ScopedFailpoint fp("ks.lock_acquire", spec);

  ParallelDriverConfig config;
  config.num_threads = 2;
  config.us_per_tick = 0;
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 50;
  config.max_blocked_us = 200;
  config.max_wall_ms = 60'000;
  config.protocol.metrics = &metrics;
  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ParallelRunResult result = driver.Run(workload, &store, &cep);

  EXPECT_FALSE(result.watchdog_expired);
  EXPECT_TRUE(result.all_committed);
  EXPECT_GT(metrics.deadline_aborts.value(), 0);
  Status verdict =
      VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload));
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ChaosTest, LostWakeupsCostLatencyNotLiveness) {
  // Drop EVERY wakeup batch: blocked transactions can only proceed via the
  // exponential-backoff re-poll. The run must still complete — a lost
  // wakeup is a latency bug, never a hang. The workload is built by hand
  // so a wakeup is guaranteed: the successor reaches its commit-rule-1
  // wait long before its slow predecessor commits.
  Predicate domain;
  domain.AddClause(Clause({EntityVsConst(0, CompareOp::kGe, 0)}));
  domain.AddClause(Clause({EntityVsConst(0, CompareOp::kLe, 100)}));
  SimWorkload workload;
  workload.initial = {50};
  SimTx slow;
  slow.name = "slow";
  slow.input = domain;
  slow.output = Predicate::True();
  slow.steps = {SimStep::Read(0), SimStep::Think(200)};
  workload.txs.push_back(slow);
  SimTx successor;
  successor.name = "successor";
  successor.input = domain;
  successor.output = Predicate::True();
  successor.predecessors = {0};
  successor.steps = {SimStep::Read(0)};
  workload.txs.push_back(successor);

  ScopedFailpoint fp("driver.lost_wakeup", FailpointSpec{});

  ParallelDriverConfig config;
  config.num_threads = 2;
  config.us_per_tick = 100;  // The 200-tick think = 20ms of predecessor lag.
  config.max_restarts = 500;
  config.backoff_us = 1;
  config.poll_us = 50;
  config.max_poll_us = 2'000;
  config.max_wall_ms = 60'000;
  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ParallelRunResult result = driver.Run(workload, &store, &cep);

  EXPECT_FALSE(result.watchdog_expired);
  EXPECT_TRUE(result.all_committed);
  EXPECT_GT(FailpointRegistry::Global().fires("driver.lost_wakeup"), 0);
  Status verdict = VerifyCepHistory(workload, *cep, *store, domain);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(cep->WaiterFootprint(), 0u);
}

}  // namespace
}  // namespace nonserial
