#include <gtest/gtest.h>

#include "common/random.h"
#include "predicate/formula.h"

namespace nonserial {
namespace {

StatusOr<EntityId> TestResolve(const std::string& name) {
  if (name.size() == 1 && name[0] >= 'a' && name[0] <= 'd') {
    return static_cast<EntityId>(name[0] - 'a');
  }
  return Status::NotFound("unknown " + name);
}

TEST(NegateAtomTest, AllOperatorsComplement) {
  for (Value lhs : {Value{0}, Value{1}, Value{2}}) {
    for (Value rhs : {Value{0}, Value{1}, Value{2}}) {
      for (int op = 0; op < 6; ++op) {
        Atom atom = EntityVsConst(0, static_cast<CompareOp>(op), rhs);
        Atom negated = NegateAtom(atom);
        ValueVector values = {lhs};
        EXPECT_NE(atom.Eval(values), negated.Eval(values))
            << "op " << op << " lhs " << lhs << " rhs " << rhs;
      }
    }
  }
}

TEST(FormulaTest, AtomEval) {
  Formula f = Formula::MakeAtom(EntityVsConst(0, CompareOp::kLt, 5));
  EXPECT_TRUE(f.Eval({4}));
  EXPECT_FALSE(f.Eval({5}));
}

TEST(FormulaTest, AndOrNotEval) {
  Formula a = Formula::MakeAtom(EntityVsConst(0, CompareOp::kGe, 0));
  Formula b = Formula::MakeAtom(EntityVsConst(0, CompareOp::kLe, 10));
  Formula in_range = Formula::And({a, b});
  EXPECT_TRUE(in_range.Eval({5}));
  EXPECT_FALSE(in_range.Eval({11}));
  Formula out_of_range = Formula::Not(in_range);
  EXPECT_TRUE(out_of_range.Eval({11}));
  EXPECT_FALSE(out_of_range.Eval({5}));
  EXPECT_TRUE(Formula::And({}).Eval({}));   // Empty And = true.
  EXPECT_FALSE(Formula::Or({}).Eval({}));   // Empty Or = false.
}

TEST(FormulaTest, CnfOfAtomIsSingleClause) {
  Formula f = Formula::MakeAtom(EntityVsConst(0, CompareOp::kEq, 1));
  Predicate cnf = f.ToCnf();
  ASSERT_EQ(cnf.clauses().size(), 1u);
  EXPECT_EQ(cnf.clauses()[0].atoms().size(), 1u);
}

TEST(FormulaTest, CnfDistributesOrOverAnd) {
  // (a=1 & b=1) | c=1  ->  (a=1 | c=1) & (b=1 | c=1).
  Formula f = Formula::Or(
      {Formula::And({Formula::MakeAtom(EntityVsConst(0, CompareOp::kEq, 1)),
                     Formula::MakeAtom(EntityVsConst(1, CompareOp::kEq, 1))}),
       Formula::MakeAtom(EntityVsConst(2, CompareOp::kEq, 1))});
  Predicate cnf = f.ToCnf();
  EXPECT_EQ(cnf.clauses().size(), 2u);
  for (const Clause& clause : cnf.clauses()) {
    EXPECT_EQ(clause.atoms().size(), 2u);
  }
}

TEST(FormulaTest, NotPushedIntoAtoms) {
  // !(a < 1 | b >= 2) -> (a >= 1) & (b < 2): two unit clauses, no Not.
  Formula f = Formula::Not(
      Formula::Or({Formula::MakeAtom(EntityVsConst(0, CompareOp::kLt, 1)),
                   Formula::MakeAtom(EntityVsConst(1, CompareOp::kGe, 2))}));
  Predicate cnf = f.ToCnf();
  ASSERT_EQ(cnf.clauses().size(), 2u);
  ValueVector ok = {1, 1};
  ValueVector bad = {0, 1};
  EXPECT_TRUE(cnf.Eval(ok));
  EXPECT_FALSE(cnf.Eval(bad));
}

TEST(FormulaTest, RandomFormulasCnfEquivalent) {
  // Property: ToCnf preserves the truth table over a small domain.
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random formula of depth <= 3 over entities {0,1,2} and
    // constants {0,1,2}.
    std::function<Formula(int)> build = [&](int depth) -> Formula {
      if (depth == 0 || rng.Bernoulli(0.4)) {
        EntityId lhs = static_cast<EntityId>(rng.Uniform(3));
        CompareOp op = static_cast<CompareOp>(rng.Uniform(6));
        if (rng.Bernoulli(0.5)) {
          return Formula::MakeAtom(
              EntityVsConst(lhs, op, rng.UniformInt(0, 2)));
        }
        return Formula::MakeAtom(
            EntityVsEntity(lhs, op, static_cast<EntityId>(rng.Uniform(3))));
      }
      switch (rng.Uniform(3)) {
        case 0:
          return Formula::And({build(depth - 1), build(depth - 1)});
        case 1:
          return Formula::Or({build(depth - 1), build(depth - 1)});
        default:
          return Formula::Not(build(depth - 1));
      }
    };
    Formula f = build(3);
    Predicate cnf = f.ToCnf();
    for (Value a = 0; a <= 2; ++a) {
      for (Value b = 0; b <= 2; ++b) {
        for (Value c = 0; c <= 2; ++c) {
          ValueVector values = {a, b, c};
          EXPECT_EQ(f.Eval(values), cnf.Eval(values))
              << f.ToString() << " vs " << cnf.ToString() << " at (" << a
              << "," << b << "," << c << ")";
        }
      }
    }
  }
}

TEST(ParseFormulaTest, PrecedenceBangOverAndOverOr) {
  // !a=1 & b=1 | c=1 parses as ((!(a=1)) & (b=1)) | (c=1).
  auto f = ParseFormula("!a = 1 & b = 1 | c = 1", TestResolve);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Eval({0, 1, 0}));   // !(a=1) & b=1.
  EXPECT_TRUE(f->Eval({1, 0, 1}));   // c=1.
  EXPECT_FALSE(f->Eval({1, 1, 0}));  // a=1 kills the left, c!=1.
}

TEST(ParseFormulaTest, ParenthesesOverride) {
  auto f = ParseFormula("!(a = 1 & b = 1)", TestResolve);
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->Eval({1, 1}));
  EXPECT_TRUE(f->Eval({1, 0}));
}

TEST(ParseFormulaTest, TrueFalseLiterals) {
  EXPECT_TRUE(ParseFormula("true", TestResolve)->Eval({}));
  EXPECT_FALSE(ParseFormula("false", TestResolve)->Eval({}));
  EXPECT_TRUE(ParseFormula("", TestResolve)->Eval({}));
}

TEST(ParseFormulaTest, ErrorsSurface) {
  EXPECT_FALSE(ParseFormula("a <", TestResolve).ok());
  EXPECT_FALSE(ParseFormula("(a < 1", TestResolve).ok());
  EXPECT_FALSE(ParseFormula("zz < 1", TestResolve).ok());
  EXPECT_FALSE(ParseFormula("a < 1 extra", TestResolve).ok());
}

TEST(ParseFormulaTest, ParsedFormulaToCnfUsable) {
  auto f = ParseFormula("!(a > 10) | (b >= 1 & b <= 3)", TestResolve);
  ASSERT_TRUE(f.ok());
  Predicate cnf = f->ToCnf();
  // a <= 10 holds -> true regardless of b.
  EXPECT_TRUE(cnf.Eval({5, 99}));
  // a > 10 but b in [1,3] -> true.
  EXPECT_TRUE(cnf.Eval({11, 2}));
  // a > 10 and b out of range -> false.
  EXPECT_FALSE(cnf.Eval({11, 9}));
}

TEST(FormulaTest, ToStringReadable) {
  Formula f = Formula::Not(
      Formula::And({Formula::MakeAtom(EntityVsConst(0, CompareOp::kLt, 1)),
                    Formula::MakeAtom(EntityVsConst(1, CompareOp::kGe, 2))}));
  std::string s = f.ToString();
  EXPECT_NE(s.find("!"), std::string::npos);
  EXPECT_NE(s.find("&"), std::string::npos);
}

}  // namespace
}  // namespace nonserial
