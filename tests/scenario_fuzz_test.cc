// Fuzz sweep over the scenario parser: random mutations, truncations, and
// splices of valid spec text must never crash the parser — every input
// either parses into a spec that passes validation or returns a clean
// InvalidArgument. Parsed specs are additionally pushed through the
// deterministic runner under CEP to keep the whole front end crash-free.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "scenario/parser.h"
#include "scenario/protocols.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "fuzz_support.h"

namespace nonserial {
namespace scenario {
namespace {

constexpr char kSeedSpecs[][512] = {
    R"spec(scenario a
class cpc
setup { entity x = 1 constraint "x >= 0" }
session s1 {
  input "x >= 0" output "x >= 0"
  step r1 { read x } step w1 { write x = x + 1 } step c1 { commit }
}
permutation r1 w1 c1
)spec",
    R"spec(scenario b
setup { entity x = 2 entity y = 3 constraint "(x >= 0) & (y >= 0)" }
session s1 {
  input "(x >= 0) & (y >= 0)" output "y >= 0"
  step r1 { read x } step w1 { write y = x * 2 } step c1 { commit }
}
session s2 {
  input "y >= 0" output "y >= 0"
  step r2 { read y } step a2 { abort }
}
permutation r1 r2 w1 c1 a2 {
  expect "CEP" { s1 commit s2 abort classes +cpc final y = 4 }
}
all-permutations max-runs 16
)spec",
};

// Characters the mutator splices in: structural punctuation, quotes, and
// keyword fragments are far more likely to hit parser states than raw
// bytes.
constexpr char kAlphabet[] =
    "{}=+-*(),\"# \n\tscenario session step permutation expect classes "
    "final read write commit abort entity constraint input output after "
    "all-permutations max-runs 0123456789 xyq";

std::string Mutate(const std::string& base, std::mt19937_64* rng) {
  std::string text = base;
  std::uniform_int_distribution<int> op_dist(0, 3);
  int edits = 1 + static_cast<int>((*rng)() % 4);
  for (int i = 0; i < edits; ++i) {
    if (text.empty()) break;
    size_t pos = (*rng)() % text.size();
    switch (op_dist(*rng)) {
      case 0:  // truncate
        text = text.substr(0, pos);
        break;
      case 1:  // delete a span
        text.erase(pos, 1 + (*rng)() % 8);
        break;
      case 2:  // overwrite a byte
        text[pos] = kAlphabet[(*rng)() % (sizeof(kAlphabet) - 1)];
        break;
      default: {  // insert a fragment of alphabet
        size_t frag = 1 + (*rng)() % 12;
        std::string insert;
        for (size_t k = 0; k < frag; ++k) {
          insert.push_back(kAlphabet[(*rng)() % (sizeof(kAlphabet) - 1)]);
        }
        text.insert(pos, insert);
        break;
      }
    }
  }
  return text;
}

TEST(ScenarioFuzz, ParserNeverCrashesOnMutations) {
  constexpr uint64_t kSeeds = 400;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    std::mt19937_64 rng(seed);
    const std::string& base =
        kSeedSpecs[seed % (sizeof(kSeedSpecs) / sizeof(kSeedSpecs[0]))];
    std::string text = Mutate(base, &rng);
    StatusOr<ScenarioSpec> spec = ParseScenario(text);
    if (!spec.ok()) {
      // A clean error with a message is the expected failure shape.
      EXPECT_FALSE(spec.status().message().empty())
          << fuzz::ReproduceHint(seed);
      continue;
    }
    // Whatever parsed must re-validate (the parser runs ValidateSpec) and
    // must be drivable without crashing.
    ASSERT_TRUE(ValidateSpec(*spec).ok()) << fuzz::ReproduceHint(seed);
    if (!spec->permutations.empty()) {
      StatusOr<ScenarioRunResult> run =
          RunPermutation(*spec, spec->permutations[0].order, "CEP");
      ASSERT_TRUE(run.ok()) << fuzz::ReproduceHint(seed);
      ASSERT_EQ(run->verdicts.size(), spec->sessions.size())
          << fuzz::ReproduceHint(seed);
    }
  }
}

TEST(ScenarioFuzz, EveryPrefixOfAValidSpecFailsCleanly) {
  const std::string base = kSeedSpecs[1];
  for (size_t cut = 0; cut < base.size(); ++cut) {
    StatusOr<ScenarioSpec> spec = ParseScenario(base.substr(0, cut));
    if (!spec.ok()) {
      EXPECT_FALSE(spec.status().message().empty()) << "cut=" << cut;
    }
  }
  // The full text parses.
  EXPECT_TRUE(ParseScenario(base).ok());
}

TEST(ScenarioFuzz, RunnerSurvivesRandomValidInterleavings) {
  // Drive random (valid) interleavings of seed spec b under every
  // protocol; verdict vectors must always come back full-size and the
  // differential CPC check must agree.
  StatusOr<ScenarioSpec> spec = ParseScenario(kSeedSpecs[1]);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  bool truncated = false;
  std::vector<std::vector<StepRef>> orders =
      EnumerateInterleavings(*spec, 64, &truncated);
  ASSERT_FALSE(orders.empty());
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    std::mt19937_64 rng(seed);
    const std::vector<StepRef>& order = orders[rng() % orders.size()];
    for (const std::string& protocol : ProtocolNames()) {
      StatusOr<ScenarioRunResult> run = RunPermutation(*spec, order, protocol);
      ASSERT_TRUE(run.ok()) << protocol << " " << fuzz::ReproduceHint(seed);
      EXPECT_EQ(run->verdicts.size(), spec->sessions.size())
          << protocol << " " << fuzz::ReproduceHint(seed);
      EXPECT_EQ(run->incremental_cpc, run->classes.cpc)
          << protocol << " " << fuzz::ReproduceHint(seed);
    }
  }
}

}  // namespace
}  // namespace scenario
}  // namespace nonserial
