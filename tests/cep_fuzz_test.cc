// Randomized stress test for the Correct Execution Protocol: drives the
// controller directly with random interleavings, spontaneous aborts, and
// random partial orders, then uses the Section 3 checker (Theorem 2) as the
// correctness oracle on whatever committed.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/verify.h"
#include "protocol/cep.h"

namespace nonserial {
namespace {

constexpr Value kLo = 0;
constexpr Value kHi = 100;

Predicate Bounds(const std::set<EntityId>& entities) {
  Predicate p;
  for (EntityId e : entities) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, kLo)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, kHi)}));
  }
  return p;
}

struct FuzzTx {
  std::vector<SimStep> steps;  // Reads + writes only.
  SimTx as_sim_tx;             // For verification.
};

class CepFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CepFuzzTest, RandomDrivesProduceOnlyCorrectExecutions) {
  Rng rng(GetParam());
  const int kTxs = 8;
  const int kEntities = 5;

  // Build random scripts: distinct read set; each read entity written back
  // with probability 1/2 (clamped constant in range, so O_t holds).
  SimWorkload workload;
  workload.initial.assign(kEntities, 50);
  workload.objects = {{0, 1}, {2, 3, 4}};
  for (int t = 0; t < kTxs; ++t) {
    SimTx tx;
    tx.name = "fuzz" + std::to_string(t);
    std::set<EntityId> reads;
    int want = 1 + static_cast<int>(rng.Uniform(3));
    while (static_cast<int>(reads.size()) < want) {
      reads.insert(static_cast<EntityId>(rng.Uniform(kEntities)));
    }
    std::set<EntityId> writes;
    for (EntityId e : reads) {
      tx.steps.push_back(SimStep::Read(e));
      if (rng.Bernoulli(0.5)) writes.insert(e);
    }
    for (EntityId e : writes) {
      tx.steps.push_back(
          SimStep::Write(e, Expr::Const(rng.UniformInt(kLo, kHi))));
    }
    tx.input = Bounds(reads);
    tx.output = Bounds(writes);
    if (t > 0 && rng.Bernoulli(0.3)) {
      tx.predecessors.push_back(static_cast<int>(rng.Uniform(t)));
    }
    workload.txs.push_back(std::move(tx));
  }

  VersionStore store(workload.initial);
  CorrectExecutionProtocol cep(&store);
  for (int t = 0; t < kTxs; ++t) {
    TxProfile profile;
    profile.name = workload.txs[t].name;
    profile.input = workload.txs[t].input;
    profile.output = workload.txs[t].output;
    profile.predecessors = workload.txs[t].predecessors;
    cep.Register(t, profile);
  }

  // Driver state.
  enum class St { kIdle, kRunning, kBlocked, kCommitted, kDead };
  struct Drive {
    St st = St::kIdle;
    int next = 0;
    int restarts = 0;
  };
  std::vector<Drive> drives(kTxs);
  auto handle_abort = [&](int t) {
    cep.Abort(t);
    drives[t].next = 0;
    if (++drives[t].restarts > 50) {
      drives[t].st = St::kDead;
    } else {
      drives[t].st = St::kIdle;
    }
  };
  auto drain = [&] {
    for (;;) {
      std::vector<int> forced = cep.TakeForcedAborts();
      std::vector<int> wakeups = cep.TakeWakeups();
      if (forced.empty() && wakeups.empty()) return;
      for (int t : forced) {
        if (drives[t].st != St::kCommitted && drives[t].st != St::kDead) {
          handle_abort(t);
        }
      }
      for (int t : wakeups) {
        if (drives[t].st == St::kBlocked) drives[t].st = St::kRunning;
      }
    }
  };

  for (int step = 0; step < 4000; ++step) {
    // Pick a runnable transaction.
    std::vector<int> runnable;
    for (int t = 0; t < kTxs; ++t) {
      if (drives[t].st == St::kIdle || drives[t].st == St::kRunning) {
        runnable.push_back(t);
      }
    }
    if (runnable.empty()) break;
    int t = runnable[rng.Uniform(static_cast<uint32_t>(runnable.size()))];
    Drive& d = drives[t];

    // Occasional spontaneous abort of a running transaction.
    if (d.st == St::kRunning && rng.Bernoulli(0.02)) {
      handle_abort(t);
      drain();
      continue;
    }

    ReqResult r = ReqResult::kGranted;
    if (d.st == St::kIdle) {
      r = cep.Begin(t);
      if (r == ReqResult::kGranted) d.st = St::kRunning;
    } else if (d.next < static_cast<int>(workload.txs[t].steps.size())) {
      const SimStep& s = workload.txs[t].steps[d.next];
      if (s.kind == SimStep::Kind::kRead) {
        Value v = 0;
        r = cep.Read(t, s.entity, &v);
        if (r == ReqResult::kGranted) {
          EXPECT_GE(v, kLo);
          EXPECT_LE(v, kHi);
          ++d.next;
        }
      } else {
        Value v = s.write_expr.Eval(workload.initial);  // Constant exprs.
        r = cep.Write(t, s.entity, v);
        if (r == ReqResult::kGranted) {
          cep.WriteDone(t, s.entity);
          ++d.next;
        }
      }
    } else {
      r = cep.Commit(t);
      if (r == ReqResult::kGranted) d.st = St::kCommitted;
    }
    if (r == ReqResult::kBlocked) d.st = St::kBlocked;
    if (r == ReqResult::kAborted) handle_abort(t);
    drain();
  }

  // Whatever committed must form a correct, parent-based execution.
  Predicate constraint;
  for (EntityId e = 0; e < kEntities; ++e) {
    constraint.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, kLo)}));
    constraint.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, kHi)}));
  }
  Status verification = VerifyCepHistory(workload, cep, store, constraint);
  EXPECT_TRUE(verification.ok()) << "seed " << GetParam() << ": "
                                 << verification;

  // GC safety under fire: collecting with the protocol's pins must leave
  // every active assignment readable (smoke check).
  store.CollectObsolete(cep.PinnedVersions());
  int committed = 0;
  for (const Drive& d : drives) committed += d.st == St::kCommitted;
  EXPECT_GT(committed, 0) << "fuzz run committed nothing (seed "
                          << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CepFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

}  // namespace
}  // namespace nonserial
