#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "protocol/cep.h"
#include "protocol/trace.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name, Predicate input,
                  std::vector<int> preds = {}) {
  TxProfile profile;
  profile.name = name;
  profile.input = std::move(input);
  profile.predecessors = std::move(preds);
  return profile;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : store_({50}), cep_(&store_) {
    cep_.SetObserver(&trace_);
  }

  VersionStore store_;
  CorrectExecutionProtocol cep_;
  CepTraceRecorder trace_;
};

TEST_F(TraceTest, LifecycleEventsInOrder) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(0, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 60), ReqResult::kGranted);
  cep_.WriteDone(0, 0);
  ASSERT_EQ(cep_.Commit(0), ReqResult::kGranted);

  ASSERT_EQ(trace_.events().size(), 4u);
  EXPECT_EQ(trace_.events()[0].kind, CepEvent::Kind::kValidated);
  EXPECT_EQ(trace_.events()[1].kind, CepEvent::Kind::kRead);
  EXPECT_EQ(trace_.events()[1].value, 50);
  EXPECT_EQ(trace_.events()[2].kind, CepEvent::Kind::kWrite);
  EXPECT_EQ(trace_.events()[2].value, 60);
  EXPECT_EQ(trace_.events()[3].kind, CepEvent::Kind::kCommitted);
}

TEST_F(TraceTest, ReassignEventCarriesPeer) {
  cep_.Register(0, Profile("pred", Predicate::True()));
  cep_.Register(1, Profile("succ", Range(0, 0, 100), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 70), ReqResult::kGranted);
  cep_.WriteDone(0, 0);

  std::vector<CepEvent> reassigns =
      trace_.OfKind(CepEvent::Kind::kReAssign);
  ASSERT_EQ(reassigns.size(), 1u);
  EXPECT_EQ(reassigns[0].tx, 1);
  EXPECT_EQ(reassigns[0].other, 0);
  EXPECT_EQ(reassigns[0].entity, 0);
  EXPECT_EQ(trace_.OfKind(CepEvent::Kind::kReEval).size(), 1u);
}

TEST_F(TraceTest, PoAbortEventEmitted) {
  cep_.Register(0, Profile("pred", Predicate::True()));
  cep_.Register(1, Profile("succ", Range(0, 0, 100), {0}));
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(cep_.Read(1, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Write(0, 0, 70), ReqResult::kGranted);

  std::vector<CepEvent> po = trace_.OfKind(CepEvent::Kind::kPoAbort);
  ASSERT_EQ(po.size(), 1u);
  EXPECT_EQ(po[0].tx, 1);
  (void)cep_.TakeForcedAborts();
}

TEST_F(TraceTest, CommitWaitNamesTarget) {
  cep_.Register(0, Profile("a", Predicate::True()));
  cep_.Register(1, Profile("b", Predicate::True(), {0}));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(cep_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(cep_.Commit(1), ReqResult::kBlocked);
  std::vector<CepEvent> waits = trace_.OfKind(CepEvent::Kind::kCommitWait);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].tx, 1);
  EXPECT_EQ(waits[0].other, 0);
}

TEST_F(TraceTest, ValidationWaitOnUnsatisfiable) {
  cep_.Register(0, Profile("picky", Range(0, 90, 100)));
  EXPECT_EQ(cep_.Begin(0), ReqResult::kBlocked);
  EXPECT_EQ(trace_.OfKind(CepEvent::Kind::kValidationWait).size(), 1u);
}

TEST_F(TraceTest, DetachStopsEvents) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  cep_.SetObserver(nullptr);
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  EXPECT_TRUE(trace_.events().empty());
}

TEST_F(TraceTest, RecorderIsThreadSafe) {
  // The locking contract on TraceSink: OnEvent may be called from many
  // engine threads at once. Hammer the recorder directly and check nothing
  // is lost or torn.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::kRead;
        event.protocol = "CEP";
        event.tx = t;
        event.value = i;
        trace_.OnEvent(event);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(trace_.size(), static_cast<size_t>(kThreads * kPerThread));
  auto tally = trace_.Tally();
  EXPECT_EQ(tally["CEP"]["read"], kThreads * kPerThread);
}

TEST_F(TraceTest, RecorderClearAndToString) {
  cep_.Register(0, Profile("t0", Range(0, 0, 100)));
  ASSERT_EQ(cep_.Begin(0), ReqResult::kGranted);
  ASSERT_FALSE(trace_.events().empty());
  std::string text = trace_.events()[0].ToString();
  EXPECT_NE(text.find("validated"), std::string::npos);
  EXPECT_NE(text.find("tx=0"), std::string::npos);
  trace_.Clear();
  EXPECT_TRUE(trace_.events().empty());
}

}  // namespace
}  // namespace nonserial
