#include <gtest/gtest.h>

#include "protocol/mvto.h"

namespace nonserial {
namespace {

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const std::string& name, std::vector<int> preds = {},
                  Predicate output = Predicate::True()) {
  TxProfile profile;
  profile.name = name;
  profile.output = std::move(output);
  profile.predecessors = std::move(preds);
  return profile;
}

class MvtoTest : public ::testing::Test {
 protected:
  MvtoTest() : store_({50, 50}), ctrl_(&store_) {}

  VersionStore store_;
  MvtoController ctrl_;
};

TEST_F(MvtoTest, ReadLatestVisibleVersion) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);
}

TEST_F(MvtoTest, OlderReaderSeesOlderVersion) {
  // t0 begins first (older timestamp), t1 writes and commits; t0 still
  // reads the initial version — the multiversion advantage.
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(1, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Commit(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
}

TEST_F(MvtoTest, LateWriteAborted) {
  ctrl_.Register(0, Profile("old"));
  ctrl_.Register(1, Profile("young"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);  // rts(init) = ts1.
  EXPECT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kAborted);  // ts0 < ts1.
  EXPECT_EQ(ctrl_.stats().late_write_aborts, 1);
}

TEST_F(MvtoTest, ReaderWaitsForUncommittedVersion) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
  EXPECT_GT(ctrl_.stats().commit_waits, 0);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 60);
}

TEST_F(MvtoTest, ReaderProceedsToOlderVersionAfterWriterAborts) {
  ctrl_.Register(0, Profile("writer"));
  ctrl_.Register(1, Profile("reader"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  EXPECT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kBlocked);
  ctrl_.Abort(0);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 50);  // The dead version is gone.
}

TEST_F(MvtoTest, OwnWritesVisible) {
  ctrl_.Register(0, Profile("t0"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 61), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(0, 0, &v), ReqResult::kGranted);
  EXPECT_EQ(v, 61);
}

TEST_F(MvtoTest, BeginChainsOnPredecessors) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1", {0}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kBlocked);
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Commit(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.TakeWakeups(), (std::vector<int>{1}));
  EXPECT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
}

TEST_F(MvtoTest, FailedOutputConditionAborts) {
  ctrl_.Register(0, Profile("t0", {}, Range(0, 200, 300)));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Commit(0), ReqResult::kAborted);
  ctrl_.Abort(0);
  EXPECT_EQ(store_.LatestCommittedSnapshot(), (ValueVector{50, 50}));
}

TEST_F(MvtoTest, RestartGetsFreshTimestamp) {
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 0, &v), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kAborted);
  ctrl_.Abort(0);
  // After restart t0 is the youngest; the same write now succeeds.
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  EXPECT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);
}

TEST_F(MvtoTest, WriteAfterCommittedNewerReadStillChecksReadTs) {
  // Reads of *newer committed* versions do not doom older writers of other
  // entities: independence across entities.
  ctrl_.Register(0, Profile("t0"));
  ctrl_.Register(1, Profile("t1"));
  ASSERT_EQ(ctrl_.Begin(0), ReqResult::kGranted);
  ASSERT_EQ(ctrl_.Begin(1), ReqResult::kGranted);
  Value v = 0;
  ASSERT_EQ(ctrl_.Read(1, 1, &v), ReqResult::kGranted);  // y only.
  EXPECT_EQ(ctrl_.Write(0, 0, 60), ReqResult::kGranted);  // x unaffected.
}

}  // namespace
}  // namespace nonserial
