// Differential fuzzer for the cache-native hot path: the flat-slab version
// store, the columnar candidate arena, and the batched (striped, memoized)
// clause evaluation must be observationally equivalent to the simple
// reference paths that survive alongside them —
//
//   * ForEachVersion vs ChainSnapshot (the copying walk),
//   * ColumnarCandidates vs AllCandidateValues (the nested-vector build),
//   * pruned/indexed batched search (with EvalCache) vs the exhaustive
//     scalar search with no cache.
//
// Each seeded trial drives a random multi-writer history — appends, commits,
// rollbacks (aborts), and CollectObsolete sweeps with pinned refs — and
// cross-checks the three pairs at random points along the way, so the
// equivalences hold across every store shape GC and aborts can produce.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/random.h"
#include "predicate/assignment_search.h"
#include "predicate/eval_cache.h"
#include "storage/version_store.h"
#include "fuzz_support.h"

namespace nonserial {
namespace {

Predicate RandomPredicate(Rng& rng, int entities) {
  Predicate p;
  for (EntityId e = 0; e < entities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, -5)}));
  }
  int links = static_cast<int>(rng.UniformInt(1, entities));
  for (int i = 0; i < links; ++i) {
    EntityId a = static_cast<EntityId>(rng.UniformInt(0, entities - 1));
    EntityId b = static_cast<EntityId>(rng.UniformInt(0, entities - 1));
    if (a == b) b = (b + 1) % entities;
    p.AddClause(Clause({EntityVsEntity(a, CompareOp::kLe, b),
                        EntityVsConst(a, CompareOp::kLe,
                                      rng.UniformInt(5, 60))}));
  }
  return p;
}

// The flat store's lock-free walk must observe exactly what the copying
// snapshot does (on a quiescent store both are exact).
void ExpectChainWalksAgree(const VersionStore& store, uint64_t seed) {
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    std::vector<Version> snapshot = store.ChainSnapshot(e);
    size_t visited = 0;
    store.ForEachVersion(e, [&](const Version& v, int index) {
      ASSERT_LT(static_cast<size_t>(index), snapshot.size())
          << fuzz::ReproduceHint(seed);
      const Version& ref = snapshot[index];
      EXPECT_EQ(v.value, ref.value) << fuzz::ReproduceHint(seed);
      EXPECT_EQ(v.writer, ref.writer) << fuzz::ReproduceHint(seed);
      EXPECT_EQ(v.seq, ref.seq) << fuzz::ReproduceHint(seed);
      EXPECT_EQ(v.committed, ref.committed) << fuzz::ReproduceHint(seed);
      EXPECT_EQ(v.dead, ref.dead) << fuzz::ReproduceHint(seed);
      ++visited;
    });
    EXPECT_EQ(visited, snapshot.size()) << fuzz::ReproduceHint(seed);
  }
}

// One verdict comparison: exhaustive scalar search with no cache (the
// reference) vs the batched pruned and indexed modes over the columnar
// arena, sharing one memo cache across checkpoints — mirroring how the
// protocol engine reuses its cache across validation rescans.
void ExpectSearchPathsAgree(const VersionStore& store,
                            const Predicate& predicate,
                            const CachedPredicate& cached, uint64_t seed) {
  DatabaseState db = store.AsDatabaseState();
  std::vector<std::vector<Value>> legacy = db.AllCandidateValues();
  CandidateBuffer columnar = db.ColumnarCandidates();
  ASSERT_TRUE(columnar == CandidateBuffer::FromLists(legacy))
      << fuzz::ReproduceHint(seed);

  std::optional<std::vector<int>> reference = FindSatisfyingAssignment(
      predicate, legacy, SearchMode::kExhaustive);
  for (SearchMode mode : {SearchMode::kPruned, SearchMode::kIndexed}) {
    std::optional<std::vector<int>> batched = FindSatisfyingAssignment(
        predicate, columnar, mode, nullptr, &cached);
    ASSERT_EQ(batched.has_value(), reference.has_value())
        << "mode " << static_cast<int>(mode) << ", "
        << fuzz::ReproduceHint(seed);
    if (batched.has_value()) {
      ValueVector values(legacy.size());
      for (size_t e = 0; e < legacy.size(); ++e) {
        values[e] = columnar.view(static_cast<EntityId>(e))[(*batched)[e]];
      }
      EXPECT_TRUE(predicate.Eval(values))
          << "mode " << static_cast<int>(mode) << ", "
          << fuzz::ReproduceHint(seed);
      EXPECT_TRUE(db.IsVersionState(values)) << fuzz::ReproduceHint(seed);
    }
  }
}

TEST(HotpathDifferentialFuzzTest, FlatColumnarBatchedPathsMatchReference) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    if (!fuzz::ShouldRunSeed(seed)) continue;
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    int entities = static_cast<int>(rng.UniformInt(2, 6));
    int writers = static_cast<int>(rng.UniformInt(2, 6));
    ValueVector initial(entities);
    for (Value& v : initial) v = rng.UniformInt(0, 40);
    VersionStore store(initial);
    Predicate predicate = RandomPredicate(rng, entities);
    EvalCache cache(entities);
    CachedPredicate cached(predicate, &cache);

    int ops = static_cast<int>(rng.UniformInt(20, 60));
    for (int op = 0; op < ops; ++op) {
      double dice = rng.NextDouble();
      int w = static_cast<int>(rng.UniformInt(0, writers - 1));
      if (dice < 0.55) {
        EntityId e = static_cast<EntityId>(rng.UniformInt(0, entities - 1));
        int idx = store.Append(e, rng.UniformInt(-10, 70), w);
        // The cache watches store mutations exactly like the engine's
        // Write path does.
        cache.BumpEntity(e);
        ASSERT_EQ(store.ChainSize(e), idx + 1) << fuzz::ReproduceHint(seed);
      } else if (dice < 0.75) {
        store.CommitWriter(w);
      } else if (dice < 0.9) {
        // Abort interleaving: roll the writer back and bump every entity,
        // mirroring the engine's Abort path.
        store.RollbackWriter(w);
        for (EntityId e = 0; e < entities; ++e) cache.BumpEntity(e);
      } else {
        // GC interleaving with pinned refs: protect a random committed
        // version per entity; everything else obsolete may go.
        std::vector<VersionRef> pinned;
        for (EntityId e = 0; e < entities; ++e) {
          if (!rng.Bernoulli(0.5)) continue;
          int size = store.ChainSize(e);
          pinned.push_back(
              VersionRef{e, static_cast<int>(rng.UniformInt(0, size - 1))});
        }
        store.CollectObsolete(pinned);
        for (const VersionRef& ref : pinned) {
          EXPECT_EQ(store.At(ref).value, store.Read(ref))
              << fuzz::ReproduceHint(seed);
        }
      }
      // Cross-check at random interior points (≈3 per trial) so commit/
      // abort/GC intermediate shapes are covered, not just the final one.
      if (rng.Bernoulli(3.0 / ops)) {
        ExpectChainWalksAgree(store, seed);
        ExpectSearchPathsAgree(store, predicate, cached, seed);
      }
    }
    store.CollectObsolete({});
    ExpectChainWalksAgree(store, seed);
    ExpectSearchPathsAgree(store, predicate, cached, seed);
  }
}

}  // namespace
}  // namespace nonserial
