# Empty dependencies file for nonserial_graph.
# This may be replaced when dependencies are built.
