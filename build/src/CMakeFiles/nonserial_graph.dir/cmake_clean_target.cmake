file(REMOVE_RECURSE
  "libnonserial_graph.a"
)
