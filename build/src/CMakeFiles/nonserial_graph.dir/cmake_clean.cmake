file(REMOVE_RECURSE
  "CMakeFiles/nonserial_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/nonserial_graph.dir/graph/digraph.cc.o.d"
  "libnonserial_graph.a"
  "libnonserial_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
