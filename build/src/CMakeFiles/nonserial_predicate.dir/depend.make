# Empty dependencies file for nonserial_predicate.
# This may be replaced when dependencies are built.
