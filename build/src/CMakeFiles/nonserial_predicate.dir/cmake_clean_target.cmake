file(REMOVE_RECURSE
  "libnonserial_predicate.a"
)
