
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predicate/assignment_search.cc" "src/CMakeFiles/nonserial_predicate.dir/predicate/assignment_search.cc.o" "gcc" "src/CMakeFiles/nonserial_predicate.dir/predicate/assignment_search.cc.o.d"
  "/root/repo/src/predicate/formula.cc" "src/CMakeFiles/nonserial_predicate.dir/predicate/formula.cc.o" "gcc" "src/CMakeFiles/nonserial_predicate.dir/predicate/formula.cc.o.d"
  "/root/repo/src/predicate/predicate.cc" "src/CMakeFiles/nonserial_predicate.dir/predicate/predicate.cc.o" "gcc" "src/CMakeFiles/nonserial_predicate.dir/predicate/predicate.cc.o.d"
  "/root/repo/src/predicate/sat.cc" "src/CMakeFiles/nonserial_predicate.dir/predicate/sat.cc.o" "gcc" "src/CMakeFiles/nonserial_predicate.dir/predicate/sat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nonserial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
