file(REMOVE_RECURSE
  "CMakeFiles/nonserial_predicate.dir/predicate/assignment_search.cc.o"
  "CMakeFiles/nonserial_predicate.dir/predicate/assignment_search.cc.o.d"
  "CMakeFiles/nonserial_predicate.dir/predicate/formula.cc.o"
  "CMakeFiles/nonserial_predicate.dir/predicate/formula.cc.o.d"
  "CMakeFiles/nonserial_predicate.dir/predicate/predicate.cc.o"
  "CMakeFiles/nonserial_predicate.dir/predicate/predicate.cc.o.d"
  "CMakeFiles/nonserial_predicate.dir/predicate/sat.cc.o"
  "CMakeFiles/nonserial_predicate.dir/predicate/sat.cc.o.d"
  "libnonserial_predicate.a"
  "libnonserial_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
