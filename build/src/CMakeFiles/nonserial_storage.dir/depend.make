# Empty dependencies file for nonserial_storage.
# This may be replaced when dependencies are built.
