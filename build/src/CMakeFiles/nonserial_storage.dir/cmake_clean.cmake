file(REMOVE_RECURSE
  "CMakeFiles/nonserial_storage.dir/storage/version_store.cc.o"
  "CMakeFiles/nonserial_storage.dir/storage/version_store.cc.o.d"
  "libnonserial_storage.a"
  "libnonserial_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
