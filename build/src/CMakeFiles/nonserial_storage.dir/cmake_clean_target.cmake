file(REMOVE_RECURSE
  "libnonserial_storage.a"
)
