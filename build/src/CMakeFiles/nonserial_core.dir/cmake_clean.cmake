file(REMOVE_RECURSE
  "CMakeFiles/nonserial_core.dir/core/database.cc.o"
  "CMakeFiles/nonserial_core.dir/core/database.cc.o.d"
  "CMakeFiles/nonserial_core.dir/core/verify.cc.o"
  "CMakeFiles/nonserial_core.dir/core/verify.cc.o.d"
  "libnonserial_core.a"
  "libnonserial_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
