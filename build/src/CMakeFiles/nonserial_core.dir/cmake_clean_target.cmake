file(REMOVE_RECURSE
  "libnonserial_core.a"
)
