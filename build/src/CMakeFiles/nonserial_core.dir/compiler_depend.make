# Empty compiler generated dependencies file for nonserial_core.
# This may be replaced when dependencies are built.
