file(REMOVE_RECURSE
  "libnonserial_common.a"
)
