file(REMOVE_RECURSE
  "CMakeFiles/nonserial_common.dir/common/logging.cc.o"
  "CMakeFiles/nonserial_common.dir/common/logging.cc.o.d"
  "CMakeFiles/nonserial_common.dir/common/random.cc.o"
  "CMakeFiles/nonserial_common.dir/common/random.cc.o.d"
  "CMakeFiles/nonserial_common.dir/common/status.cc.o"
  "CMakeFiles/nonserial_common.dir/common/status.cc.o.d"
  "CMakeFiles/nonserial_common.dir/common/strings.cc.o"
  "CMakeFiles/nonserial_common.dir/common/strings.cc.o.d"
  "libnonserial_common.a"
  "libnonserial_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
