# Empty compiler generated dependencies file for nonserial_common.
# This may be replaced when dependencies are built.
