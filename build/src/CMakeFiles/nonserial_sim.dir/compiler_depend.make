# Empty compiler generated dependencies file for nonserial_sim.
# This may be replaced when dependencies are built.
