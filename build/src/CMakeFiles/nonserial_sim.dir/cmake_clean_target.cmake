file(REMOVE_RECURSE
  "libnonserial_sim.a"
)
