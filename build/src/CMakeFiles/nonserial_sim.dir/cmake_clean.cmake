file(REMOVE_RECURSE
  "CMakeFiles/nonserial_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/nonserial_sim.dir/sim/simulator.cc.o.d"
  "libnonserial_sim.a"
  "libnonserial_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
