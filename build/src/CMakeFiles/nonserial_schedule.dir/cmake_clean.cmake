file(REMOVE_RECURSE
  "CMakeFiles/nonserial_schedule.dir/schedule/po_program.cc.o"
  "CMakeFiles/nonserial_schedule.dir/schedule/po_program.cc.o.d"
  "CMakeFiles/nonserial_schedule.dir/schedule/schedule.cc.o"
  "CMakeFiles/nonserial_schedule.dir/schedule/schedule.cc.o.d"
  "libnonserial_schedule.a"
  "libnonserial_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
