file(REMOVE_RECURSE
  "libnonserial_schedule.a"
)
