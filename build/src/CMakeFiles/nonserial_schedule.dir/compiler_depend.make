# Empty compiler generated dependencies file for nonserial_schedule.
# This may be replaced when dependencies are built.
