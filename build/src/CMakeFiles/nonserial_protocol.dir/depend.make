# Empty dependencies file for nonserial_protocol.
# This may be replaced when dependencies are built.
