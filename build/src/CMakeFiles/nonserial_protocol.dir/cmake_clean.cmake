file(REMOVE_RECURSE
  "CMakeFiles/nonserial_protocol.dir/protocol/cep.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/cep.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/ks_lock_manager.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/ks_lock_manager.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/mvto.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/mvto.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/nested_cep.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/nested_cep.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/pw_mvto.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/pw_mvto.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/sx_lock_table.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/sx_lock_table.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/trace.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/trace.cc.o.d"
  "CMakeFiles/nonserial_protocol.dir/protocol/two_phase_locking.cc.o"
  "CMakeFiles/nonserial_protocol.dir/protocol/two_phase_locking.cc.o.d"
  "libnonserial_protocol.a"
  "libnonserial_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
