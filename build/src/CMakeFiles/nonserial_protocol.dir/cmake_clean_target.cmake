file(REMOVE_RECURSE
  "libnonserial_protocol.a"
)
