
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/cep.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/cep.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/cep.cc.o.d"
  "/root/repo/src/protocol/ks_lock_manager.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/ks_lock_manager.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/ks_lock_manager.cc.o.d"
  "/root/repo/src/protocol/mvto.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/mvto.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/mvto.cc.o.d"
  "/root/repo/src/protocol/nested_cep.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/nested_cep.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/nested_cep.cc.o.d"
  "/root/repo/src/protocol/pw_mvto.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/pw_mvto.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/pw_mvto.cc.o.d"
  "/root/repo/src/protocol/sx_lock_table.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/sx_lock_table.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/sx_lock_table.cc.o.d"
  "/root/repo/src/protocol/trace.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/trace.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/trace.cc.o.d"
  "/root/repo/src/protocol/two_phase_locking.cc" "src/CMakeFiles/nonserial_protocol.dir/protocol/two_phase_locking.cc.o" "gcc" "src/CMakeFiles/nonserial_protocol.dir/protocol/two_phase_locking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nonserial_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
