file(REMOVE_RECURSE
  "libnonserial_classes.a"
)
