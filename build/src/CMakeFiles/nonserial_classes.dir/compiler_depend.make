# Empty compiler generated dependencies file for nonserial_classes.
# This may be replaced when dependencies are built.
