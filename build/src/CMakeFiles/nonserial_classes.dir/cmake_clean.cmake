file(REMOVE_RECURSE
  "CMakeFiles/nonserial_classes.dir/classes/recognizers.cc.o"
  "CMakeFiles/nonserial_classes.dir/classes/recognizers.cc.o.d"
  "CMakeFiles/nonserial_classes.dir/classes/recoverability.cc.o"
  "CMakeFiles/nonserial_classes.dir/classes/recoverability.cc.o.d"
  "libnonserial_classes.a"
  "libnonserial_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
