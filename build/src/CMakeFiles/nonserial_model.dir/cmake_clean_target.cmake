file(REMOVE_RECURSE
  "libnonserial_model.a"
)
