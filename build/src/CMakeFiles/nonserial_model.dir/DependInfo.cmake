
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/entity.cc" "src/CMakeFiles/nonserial_model.dir/model/entity.cc.o" "gcc" "src/CMakeFiles/nonserial_model.dir/model/entity.cc.o.d"
  "/root/repo/src/model/execution.cc" "src/CMakeFiles/nonserial_model.dir/model/execution.cc.o" "gcc" "src/CMakeFiles/nonserial_model.dir/model/execution.cc.o.d"
  "/root/repo/src/model/state.cc" "src/CMakeFiles/nonserial_model.dir/model/state.cc.o" "gcc" "src/CMakeFiles/nonserial_model.dir/model/state.cc.o.d"
  "/root/repo/src/model/transaction.cc" "src/CMakeFiles/nonserial_model.dir/model/transaction.cc.o" "gcc" "src/CMakeFiles/nonserial_model.dir/model/transaction.cc.o.d"
  "/root/repo/src/model/version_search.cc" "src/CMakeFiles/nonserial_model.dir/model/version_search.cc.o" "gcc" "src/CMakeFiles/nonserial_model.dir/model/version_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nonserial_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
