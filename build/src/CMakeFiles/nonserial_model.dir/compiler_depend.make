# Empty compiler generated dependencies file for nonserial_model.
# This may be replaced when dependencies are built.
