file(REMOVE_RECURSE
  "CMakeFiles/nonserial_model.dir/model/entity.cc.o"
  "CMakeFiles/nonserial_model.dir/model/entity.cc.o.d"
  "CMakeFiles/nonserial_model.dir/model/execution.cc.o"
  "CMakeFiles/nonserial_model.dir/model/execution.cc.o.d"
  "CMakeFiles/nonserial_model.dir/model/state.cc.o"
  "CMakeFiles/nonserial_model.dir/model/state.cc.o.d"
  "CMakeFiles/nonserial_model.dir/model/transaction.cc.o"
  "CMakeFiles/nonserial_model.dir/model/transaction.cc.o.d"
  "CMakeFiles/nonserial_model.dir/model/version_search.cc.o"
  "CMakeFiles/nonserial_model.dir/model/version_search.cc.o.d"
  "libnonserial_model.a"
  "libnonserial_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
