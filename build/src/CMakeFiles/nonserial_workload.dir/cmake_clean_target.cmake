file(REMOVE_RECURSE
  "libnonserial_workload.a"
)
