# Empty compiler generated dependencies file for nonserial_workload.
# This may be replaced when dependencies are built.
