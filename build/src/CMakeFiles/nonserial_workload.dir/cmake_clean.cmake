file(REMOVE_RECURSE
  "CMakeFiles/nonserial_workload.dir/workload/generators.cc.o"
  "CMakeFiles/nonserial_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/nonserial_workload.dir/workload/nested_gen.cc.o"
  "CMakeFiles/nonserial_workload.dir/workload/nested_gen.cc.o.d"
  "CMakeFiles/nonserial_workload.dir/workload/schedule_gen.cc.o"
  "CMakeFiles/nonserial_workload.dir/workload/schedule_gen.cc.o.d"
  "libnonserial_workload.a"
  "libnonserial_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonserial_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
