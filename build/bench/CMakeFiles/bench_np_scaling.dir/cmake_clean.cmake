file(REMOVE_RECURSE
  "CMakeFiles/bench_np_scaling.dir/bench_np_scaling.cc.o"
  "CMakeFiles/bench_np_scaling.dir/bench_np_scaling.cc.o.d"
  "bench_np_scaling"
  "bench_np_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_np_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
