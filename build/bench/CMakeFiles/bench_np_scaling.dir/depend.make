# Empty dependencies file for bench_np_scaling.
# This may be replaced when dependencies are built.
