file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma1_sat.dir/bench_lemma1_sat.cc.o"
  "CMakeFiles/bench_lemma1_sat.dir/bench_lemma1_sat.cc.o.d"
  "bench_lemma1_sat"
  "bench_lemma1_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma1_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
