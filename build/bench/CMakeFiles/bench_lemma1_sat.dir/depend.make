# Empty dependencies file for bench_lemma1_sat.
# This may be replaced when dependencies are built.
