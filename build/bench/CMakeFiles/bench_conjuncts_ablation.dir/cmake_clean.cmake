file(REMOVE_RECURSE
  "CMakeFiles/bench_conjuncts_ablation.dir/bench_conjuncts_ablation.cc.o"
  "CMakeFiles/bench_conjuncts_ablation.dir/bench_conjuncts_ablation.cc.o.d"
  "bench_conjuncts_ablation"
  "bench_conjuncts_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjuncts_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
