# Empty compiler generated dependencies file for bench_conjuncts_ablation.
# This may be replaced when dependencies are built.
