file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_contention.dir/bench_protocol_contention.cc.o"
  "CMakeFiles/bench_protocol_contention.dir/bench_protocol_contention.cc.o.d"
  "bench_protocol_contention"
  "bench_protocol_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
