# Empty dependencies file for bench_protocol_contention.
# This may be replaced when dependencies are built.
