
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_protocol_contention.cc" "bench/CMakeFiles/bench_protocol_contention.dir/bench_protocol_contention.cc.o" "gcc" "bench/CMakeFiles/bench_protocol_contention.dir/bench_protocol_contention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nonserial_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_classes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_predicate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nonserial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
