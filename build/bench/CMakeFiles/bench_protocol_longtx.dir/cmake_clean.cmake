file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_longtx.dir/bench_protocol_longtx.cc.o"
  "CMakeFiles/bench_protocol_longtx.dir/bench_protocol_longtx.cc.o.d"
  "bench_protocol_longtx"
  "bench_protocol_longtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_longtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
