# Empty compiler generated dependencies file for bench_protocol_longtx.
# This may be replaced when dependencies are built.
