# Empty compiler generated dependencies file for bench_emitted_classes.
# This may be replaced when dependencies are built.
