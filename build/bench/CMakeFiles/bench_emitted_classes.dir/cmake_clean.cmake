file(REMOVE_RECURSE
  "CMakeFiles/bench_emitted_classes.dir/bench_emitted_classes.cc.o"
  "CMakeFiles/bench_emitted_classes.dir/bench_emitted_classes.cc.o.d"
  "bench_emitted_classes"
  "bench_emitted_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emitted_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
