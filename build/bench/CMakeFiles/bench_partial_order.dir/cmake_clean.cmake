file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_order.dir/bench_partial_order.cc.o"
  "CMakeFiles/bench_partial_order.dir/bench_partial_order.cc.o.d"
  "bench_partial_order"
  "bench_partial_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
