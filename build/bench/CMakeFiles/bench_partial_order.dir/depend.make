# Empty dependencies file for bench_partial_order.
# This may be replaced when dependencies are built.
