file(REMOVE_RECURSE
  "CMakeFiles/bench_class_containment.dir/bench_class_containment.cc.o"
  "CMakeFiles/bench_class_containment.dir/bench_class_containment.cc.o.d"
  "bench_class_containment"
  "bench_class_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
