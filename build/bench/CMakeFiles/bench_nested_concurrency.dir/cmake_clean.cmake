file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_concurrency.dir/bench_nested_concurrency.cc.o"
  "CMakeFiles/bench_nested_concurrency.dir/bench_nested_concurrency.cc.o.d"
  "bench_nested_concurrency"
  "bench_nested_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
