# Empty compiler generated dependencies file for bench_nested_concurrency.
# This may be replaced when dependencies are built.
