file(REMOVE_RECURSE
  "CMakeFiles/schedule_classifier.dir/schedule_classifier.cpp.o"
  "CMakeFiles/schedule_classifier.dir/schedule_classifier.cpp.o.d"
  "schedule_classifier"
  "schedule_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
