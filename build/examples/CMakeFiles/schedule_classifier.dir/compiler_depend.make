# Empty compiler generated dependencies file for schedule_classifier.
# This may be replaced when dependencies are built.
