# Empty dependencies file for office_workflow.
# This may be replaced when dependencies are built.
