file(REMOVE_RECURSE
  "CMakeFiles/office_workflow.dir/office_workflow.cpp.o"
  "CMakeFiles/office_workflow.dir/office_workflow.cpp.o.d"
  "office_workflow"
  "office_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
