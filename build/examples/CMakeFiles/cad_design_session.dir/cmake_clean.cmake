file(REMOVE_RECURSE
  "CMakeFiles/cad_design_session.dir/cad_design_session.cpp.o"
  "CMakeFiles/cad_design_session.dir/cad_design_session.cpp.o.d"
  "cad_design_session"
  "cad_design_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_design_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
