# Empty compiler generated dependencies file for nested_projects.
# This may be replaced when dependencies are built.
