file(REMOVE_RECURSE
  "CMakeFiles/nested_projects.dir/nested_projects.cpp.o"
  "CMakeFiles/nested_projects.dir/nested_projects.cpp.o.d"
  "nested_projects"
  "nested_projects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_projects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
