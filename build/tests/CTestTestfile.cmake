# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_search_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/execution_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/recognizers_test[1]_include.cmake")
include("/root/repo/build/tests/version_store_test[1]_include.cmake")
include("/root/repo/build/tests/ks_lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/sx_lock_table_test[1]_include.cmake")
include("/root/repo/build/tests/cep_test[1]_include.cmake")
include("/root/repo/build/tests/two_phase_locking_test[1]_include.cmake")
include("/root/repo/build/tests/mvto_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/recoverability_test[1]_include.cmake")
include("/root/repo/build/tests/po_program_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/pw_mvto_test[1]_include.cmake")
include("/root/repo/build/tests/nested_cep_test[1]_include.cmake")
include("/root/repo/build/tests/nested_sim_test[1]_include.cmake")
include("/root/repo/build/tests/cep_fuzz_test[1]_include.cmake")
