# Empty compiler generated dependencies file for recognizers_test.
# This may be replaced when dependencies are built.
