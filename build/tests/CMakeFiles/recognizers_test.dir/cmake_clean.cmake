file(REMOVE_RECURSE
  "CMakeFiles/recognizers_test.dir/recognizers_test.cc.o"
  "CMakeFiles/recognizers_test.dir/recognizers_test.cc.o.d"
  "recognizers_test"
  "recognizers_test.pdb"
  "recognizers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recognizers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
