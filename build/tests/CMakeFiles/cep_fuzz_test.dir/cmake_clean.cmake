file(REMOVE_RECURSE
  "CMakeFiles/cep_fuzz_test.dir/cep_fuzz_test.cc.o"
  "CMakeFiles/cep_fuzz_test.dir/cep_fuzz_test.cc.o.d"
  "cep_fuzz_test"
  "cep_fuzz_test.pdb"
  "cep_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
