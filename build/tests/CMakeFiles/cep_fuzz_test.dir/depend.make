# Empty dependencies file for cep_fuzz_test.
# This may be replaced when dependencies are built.
