file(REMOVE_RECURSE
  "CMakeFiles/sx_lock_table_test.dir/sx_lock_table_test.cc.o"
  "CMakeFiles/sx_lock_table_test.dir/sx_lock_table_test.cc.o.d"
  "sx_lock_table_test"
  "sx_lock_table_test.pdb"
  "sx_lock_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_lock_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
