# Empty dependencies file for sx_lock_table_test.
# This may be replaced when dependencies are built.
