file(REMOVE_RECURSE
  "CMakeFiles/assignment_search_test.dir/assignment_search_test.cc.o"
  "CMakeFiles/assignment_search_test.dir/assignment_search_test.cc.o.d"
  "assignment_search_test"
  "assignment_search_test.pdb"
  "assignment_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
