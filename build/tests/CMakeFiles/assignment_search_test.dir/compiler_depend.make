# Empty compiler generated dependencies file for assignment_search_test.
# This may be replaced when dependencies are built.
