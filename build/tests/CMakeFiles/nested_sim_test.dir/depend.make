# Empty dependencies file for nested_sim_test.
# This may be replaced when dependencies are built.
