file(REMOVE_RECURSE
  "CMakeFiles/nested_sim_test.dir/nested_sim_test.cc.o"
  "CMakeFiles/nested_sim_test.dir/nested_sim_test.cc.o.d"
  "nested_sim_test"
  "nested_sim_test.pdb"
  "nested_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
