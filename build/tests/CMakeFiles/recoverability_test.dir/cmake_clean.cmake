file(REMOVE_RECURSE
  "CMakeFiles/recoverability_test.dir/recoverability_test.cc.o"
  "CMakeFiles/recoverability_test.dir/recoverability_test.cc.o.d"
  "recoverability_test"
  "recoverability_test.pdb"
  "recoverability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
