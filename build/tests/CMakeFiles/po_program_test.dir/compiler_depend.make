# Empty compiler generated dependencies file for po_program_test.
# This may be replaced when dependencies are built.
