file(REMOVE_RECURSE
  "CMakeFiles/po_program_test.dir/po_program_test.cc.o"
  "CMakeFiles/po_program_test.dir/po_program_test.cc.o.d"
  "po_program_test"
  "po_program_test.pdb"
  "po_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/po_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
