# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pw_mvto_test.
