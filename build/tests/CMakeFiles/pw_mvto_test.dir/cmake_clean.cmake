file(REMOVE_RECURSE
  "CMakeFiles/pw_mvto_test.dir/pw_mvto_test.cc.o"
  "CMakeFiles/pw_mvto_test.dir/pw_mvto_test.cc.o.d"
  "pw_mvto_test"
  "pw_mvto_test.pdb"
  "pw_mvto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pw_mvto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
