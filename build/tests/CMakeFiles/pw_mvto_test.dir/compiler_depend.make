# Empty compiler generated dependencies file for pw_mvto_test.
# This may be replaced when dependencies are built.
