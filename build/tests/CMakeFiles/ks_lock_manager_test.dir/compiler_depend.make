# Empty compiler generated dependencies file for ks_lock_manager_test.
# This may be replaced when dependencies are built.
