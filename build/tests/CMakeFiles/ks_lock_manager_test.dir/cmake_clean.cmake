file(REMOVE_RECURSE
  "CMakeFiles/ks_lock_manager_test.dir/ks_lock_manager_test.cc.o"
  "CMakeFiles/ks_lock_manager_test.dir/ks_lock_manager_test.cc.o.d"
  "ks_lock_manager_test"
  "ks_lock_manager_test.pdb"
  "ks_lock_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ks_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
