# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ks_lock_manager_test.
