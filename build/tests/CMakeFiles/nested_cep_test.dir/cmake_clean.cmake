file(REMOVE_RECURSE
  "CMakeFiles/nested_cep_test.dir/nested_cep_test.cc.o"
  "CMakeFiles/nested_cep_test.dir/nested_cep_test.cc.o.d"
  "nested_cep_test"
  "nested_cep_test.pdb"
  "nested_cep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_cep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
