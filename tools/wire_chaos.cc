// wire_chaos: chaos-over-the-wire sweep for the fault-tolerance layer.
//
// For every point in the net.* failpoint catalog (plus an everything-armed
// leg), a batch of seeded runs drives a RetryingClient workload over TCP
// against an Engine + SessionServer with leases, transaction retirement,
// and idempotent commit tokens enabled — while the armed failpoint mangles
// the wire and a mid-run server crash-kill + WAL recovery + restart cycle
// interrupts the conversation. Each run then recovers once more and
// asserts the exactly-once contract:
//
//   - zero lost acked commits   every commit the client saw OK for is in
//                               the recovered committed set (by token);
//   - zero duplicate applies    no token appears on two committed
//                               transactions, and no token's transaction
//                               committed twice;
//   - client-observed aborts    tokens the client saw kAborted for are
//                               absent from the recovered set;
//   - CPC-clean history         the recovered committed history re-passes
//                               the Section 3 correctness check
//                               (VerifyCepHistory, record-level).
//
// A dedicated lease leg also checks that an abandoned connection (client
// goes silent mid-transaction) is reclaimed by the server's lease sweep.
//
//   wire_chaos [--json] [--runs-per-point=N] [--txs-per-run=N] [--seed=N]
//              [--point=NAME]
//
//   --json            emit the machine-readable report (schema: common/
//                     report.h, bench "wire_chaos") on stdout; human
//                     output moves to stderr. CI publishes it as
//                     REPORT_wire_chaos.json.
//   --runs-per-point  seeded runs per catalog point (default 30 — seven
//                     legs make >= 200 runs total).
//   --txs-per-run     transactions the client drives per run (default 12).
//   --seed            base seed; run r of point p uses seed+r (reproduce a
//                     failure by pinning --point and --seed).
//   --point           run only this catalog point (repeatable).
//
// Exit status: 0 iff every run upheld every invariant.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/report.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/verify.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/simulator.h"
#include "storage/wal.h"

namespace nonserial {
namespace {

constexpr int kNumEntities = 4;
constexpr Value kInitialValue = 100;
constexpr Value kValueCeiling = 1'000'000;

/// One catalog leg: which failpoints to arm, at what probability.
struct CatalogPoint {
  std::string name;
  std::vector<std::pair<std::string, FailpointSpec>> armed;
};

std::vector<CatalogPoint> Catalog() {
  auto one = [](const std::string& name, double p) {
    CatalogPoint point;
    point.name = name;
    FailpointSpec spec;
    spec.probability = p;
    point.armed.push_back({name, spec});
    return point;
  };
  std::vector<CatalogPoint> catalog;
  // Dropped frames cost the client a full receive deadline each, so they
  // fire rarer than the cheap faults.
  catalog.push_back(one("net.drop_frame", 0.06));
  catalog.push_back(one("net.delay", 0.5));
  catalog.push_back(one("net.corrupt_frame", 0.12));
  catalog.push_back(one("net.partial_write", 0.12));
  catalog.push_back(one("net.disconnect_before_commit_ack", 0.25));
  catalog.push_back(one("net.disconnect_after_commit_ack", 0.25));
  CatalogPoint all;
  all.name = "net.all";
  for (const char* name :
       {"net.drop_frame", "net.corrupt_frame", "net.partial_write",
        "net.disconnect_before_commit_ack",
        "net.disconnect_after_commit_ack"}) {
    FailpointSpec spec;
    spec.probability = std::strcmp(name, "net.drop_frame") == 0 ? 0.03 : 0.08;
    all.armed.push_back({name, spec});
  }
  catalog.push_back(all);
  return catalog;
}

/// Every-entity range predicate [0, ceiling] — used as I_t, O_t, and the
/// database consistency constraint, so every well-formed write satisfies
/// the spec and verification exercises structure + feeders, not predicate
/// search.
Predicate WidePredicate() {
  Predicate p;
  for (EntityId e = 0; e < kNumEntities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, kValueCeiling)}));
  }
  return p;
}

/// What the client believed happened to one tokenized commit.
enum class AckState { kAcked, kAborted, kUnresolved };

struct TxAttempt {
  uint64_t token = 0;
  AckState ack = AckState::kUnresolved;
  bool begun = false;  ///< Begin succeeded (a commit was attempted).
};

struct RunOutcome {
  bool ok = true;
  std::vector<std::string> failures;
  int acked = 0;
  int aborted = 0;
  int unresolved = 0;
  int resolved_committed = 0;  ///< Unresolved tokens found durable.
  int resolved_aborted = 0;    ///< Unresolved tokens found absent.
  int recovered_committed = 0;
  RetryingClient::Stats client;

  void Fail(std::string what) {
    ok = false;
    failures.push_back(std::move(what));
  }
};

/// Re-registers the recovered committed transactions into the fresh
/// controller (mirroring the parallel driver's restart path) and retires
/// them, so post-restart sessions validate against a bounded live set.
void AdoptRecovered(Engine* engine, const RecoveryResult& rec,
                    const Predicate& wide) {
  CorrectExecutionProtocol* cep = engine->cep();
  if (cep == nullptr) return;
  for (const RecoveredTx& t : rec.committed) {
    TxProfile profile;
    profile.name = t.name;
    profile.input = wide;
    profile.output = wide;
    cep->Register(t.tx, profile);
    CorrectExecutionProtocol::TxRecord record;
    record.name = t.name;
    record.input_state = t.input_state;
    record.feeder_txs.insert(t.feeders.begin(), t.feeders.end());
    record.writes = t.writes;
    record.committed = true;
    cep->RestoreCommitted(t.tx, std::move(record));
  }
  // Independent transactions (no P-edges), so every one is immediately
  // eligible.
  for (const RecoveredTx& t : rec.committed) engine->RetireTx(t.tx);
}

/// One chaos run: one catalog point, one seed, one crash/recover cycle.
RunOutcome RunOnce(const CatalogPoint& point, uint64_t seed, int txs_per_run,
                   ProtocolMetrics* metrics) {
  RunOutcome out;
  const Predicate wide = WidePredicate();
  const ValueVector initial(kNumEntities, kInitialValue);

  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  registry.Seed(seed);

  WriteAheadLog wal(initial);
  EngineOptions engine_options;
  engine_options.initial = initial;
  engine_options.wal = &wal;
  engine_options.retire_terminated_tx = true;
  engine_options.protocol.metrics = metrics;
  engine_options.poll_us = 100;
  engine_options.max_poll_us = 1'000;
  engine_options.max_blocked_us = 50'000;
  auto engine = std::make_unique<Engine>(std::move(engine_options));
  ScopedEngineShutdown engine_guard(engine.get());

  ServerOptions server_options;
  server_options.num_workers = 2;
  server_options.lease_ms = 250;
  auto server =
      std::make_unique<SessionServer>(engine.get(), server_options);
  Status start = server->Start();
  if (!start.ok()) {
    out.Fail(StrCat("server start: ", start.ToString()));
    return out;
  }
  const int port = server->port();

  for (const auto& [name, spec] : point.armed) registry.Arm(name, spec);

  // Client thread: txs_per_run sequential transactions, outcomes recorded
  // locally (read only after join).
  std::vector<TxAttempt> attempts(txs_per_run);
  std::thread client_thread([&]() {
    RetryingClientOptions client_options;
    client_options.port = port;
    client_options.op_deadline_ms = 100;
    client_options.backoff_base_us = 200;
    client_options.backoff_max_us = 20'000;
    client_options.max_attempts = 20;
    client_options.seed = seed * 2654435761u + 1;
    // Replay harness: one client per run with a run-unique seed, so the
    // pure-seed token stream is safe here — and it keeps a failing
    // schedule reproducible from --seed alone.
    client_options.deterministic_tokens = true;
    RetryingClient client(client_options);
    (void)client.StagePredicates(wide, wide);
    for (int i = 0; i < txs_per_run; ++i) {
      TxAttempt& attempt = attempts[i];
      StatusOr<int> begin = client.Begin(StrCat("w", seed, "_", i), {});
      if (!begin.ok()) continue;  // Shed or budget — never reached commit.
      attempt.begun = true;
      EntityId e = static_cast<EntityId>(i % kNumEntities);
      (void)client.Read(e);
      Status write = client.Write(e, kInitialValue + i + 1);
      if (!write.ok()) continue;  // Rolled back before any commit attempt.
      Status commit = client.Commit();
      attempt.token = client.last_commit_token();
      if (commit.ok()) {
        attempt.ack = AckState::kAcked;
      } else if (commit.code() == StatusCode::kAborted) {
        attempt.ack = AckState::kAborted;
      } else {
        // Verdict never learned; the token is recorded, so the final
        // recovery classifies the true outcome. Drop the commit-pending
        // state so the workload can move on to its next transaction.
        attempt.ack = AckState::kUnresolved;
        client.AbandonUnresolvedCommit();
      }
    }
    out.client = client.stats();
  });

  // Crash choreography: let the conversation run a seeded window, then
  // kill the server, recover the engine from the WAL, and restart on the
  // same port. The client rides it out through its retry loop.
  int64_t window_us = 3'000 + (seed * 9176u) % 22'000;
  std::this_thread::sleep_for(std::chrono::microseconds(window_us));
  server->Stop();  // Quiesces every session (workers drain first).
  registry.DisarmAll();
  RecoveryOptions recovery_options;
  RecoveryResult rec = engine->CrashRecover(recovery_options);
  if (!rec.status.ok()) {
    out.Fail(StrCat("mid-run recovery: ", rec.status.ToString()));
  } else {
    AdoptRecovered(engine.get(), rec, wide);
  }
  ServerOptions retry_options = server_options;
  retry_options.port = port;
  for (int i = 0; i < 100; ++i) {
    server = std::make_unique<SessionServer>(engine.get(), retry_options);
    start = server->Start();
    if (start.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!start.ok()) out.Fail(StrCat("server restart: ", start.ToString()));
  for (const auto& [name, spec] : point.armed) registry.Arm(name, spec);

  client_thread.join();
  registry.DisarmAll();
  server->Stop();

  // Final recovery: the durable truth the acked outcomes are checked
  // against.
  RecoveryResult final_rec = engine->CrashRecover(recovery_options);
  if (!final_rec.status.ok()) {
    out.Fail(StrCat("final recovery: ", final_rec.status.ToString()));
    return out;
  }
  out.recovered_committed = static_cast<int>(final_rec.committed.size());

  // Duplicate applies: a token on two committed transactions would mean a
  // resent COMMIT re-executed instead of replaying its verdict.
  std::map<uint64_t, int> committed_tokens;  // token -> tx
  std::map<int, int> committed_ids;          // tx -> occurrences
  for (const RecoveredTx& t : final_rec.committed) {
    if (t.commit_token != 0) {
      auto [it, inserted] = committed_tokens.insert({t.commit_token, t.tx});
      if (!inserted) {
        out.Fail(StrCat("duplicate apply: token ", t.commit_token,
                        " on committed tx ", it->second, " and tx ", t.tx));
      }
    }
    if (++committed_ids[t.tx] > 1) {
      out.Fail(StrCat("duplicate apply: tx ", t.tx, " committed twice"));
    }
  }

  int max_tx = -1;
  for (const RecoveredTx& t : final_rec.committed) max_tx = std::max(max_tx, t.tx);
  for (const TxAttempt& attempt : attempts) {
    if (!attempt.begun || attempt.token == 0) continue;
    bool durable = committed_tokens.count(attempt.token) > 0;
    switch (attempt.ack) {
      case AckState::kAcked:
        ++out.acked;
        if (!durable) {
          out.Fail(StrCat("lost acked commit: token ", attempt.token,
                          " was acked OK but is not in the recovered set"));
        }
        break;
      case AckState::kAborted:
        ++out.aborted;
        if (durable) {
          out.Fail(StrCat("false abort: token ", attempt.token,
                          " was reported aborted but committed durably"));
        }
        break;
      case AckState::kUnresolved:
        // The client gave up before learning the verdict; either fate is
        // legal — classify it for the report.
        ++out.unresolved;
        durable ? ++out.resolved_committed : ++out.resolved_aborted;
        break;
    }
  }

  // CPC re-verification of the recovered history (record-level: exactly
  // what the WAL reconstructs, no live engine needed).
  SimWorkload workload;
  workload.initial = initial;
  workload.txs.resize(max_tx + 1);
  std::vector<CorrectExecutionProtocol::TxRecord> records(max_tx + 1);
  for (const RecoveredTx& t : final_rec.committed) {
    workload.txs[t.tx].name = t.name;
    workload.txs[t.tx].input = wide;
    workload.txs[t.tx].output = wide;
    records[t.tx].name = t.name;
    records[t.tx].input_state = t.input_state;
    records[t.tx].feeder_txs.insert(t.feeders.begin(), t.feeders.end());
    records[t.tx].writes = t.writes;
    records[t.tx].committed = true;
  }
  Status verify = VerifyCepHistory(
      workload, records, final_rec.store->LatestCommittedSnapshot(), wide);
  if (!verify.ok()) {
    out.Fail(StrCat("recovered history not CPC-clean: ", verify.ToString()));
  }
  return out;
}

/// Lease leg: a client that goes silent mid-transaction must be reclaimed
/// by the lease sweep (connection closed, transaction rolled back, slot
/// released) without waiting on process teardown.
RunOutcome RunLeaseLeg(ProtocolMetrics* metrics) {
  RunOutcome out;
  const Predicate wide = WidePredicate();
  const ValueVector initial(kNumEntities, kInitialValue);

  FailpointRegistry::Global().DisarmAll();
  WriteAheadLog wal(initial);
  EngineOptions engine_options;
  engine_options.initial = initial;
  engine_options.wal = &wal;
  engine_options.retire_terminated_tx = true;
  engine_options.protocol.metrics = metrics;
  auto engine = std::make_unique<Engine>(std::move(engine_options));
  ScopedEngineShutdown engine_guard(engine.get());

  ServerOptions server_options;
  server_options.lease_ms = 30;
  SessionServer server(engine.get(), server_options);
  Status start = server.Start();
  if (!start.ok()) {
    out.Fail(StrCat("server start: ", start.ToString()));
    return out;
  }

  int64_t expired_before = metrics->server_lease_expired.value();
  Client abandoned;
  if (!abandoned.Connect("127.0.0.1", server.port()).ok()) {
    out.Fail("lease leg: connect failed");
    return out;
  }
  StatusOr<int> tx =
      abandoned.Begin("abandoned", {}, wide, wide);
  if (!tx.ok()) {
    out.Fail(StrCat("lease leg: begin failed: ", tx.status().ToString()));
    return out;
  }
  // Go silent. The lease sweep must reclaim the connection and roll the
  // transaction back well before this deadline.
  bool reclaimed = false;
  for (int i = 0; i < 200; ++i) {
    if (server.active_connections() == 0 && engine->inflight() == 0) {
      reclaimed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!reclaimed) {
    out.Fail("lease leg: abandoned connection was not reclaimed");
  }
  if (metrics->server_lease_expired.value() <= expired_before) {
    out.Fail("lease leg: server_lease_expired did not advance");
  }
  server.Stop();
  return out;
}

struct Flags {
  bool json = false;
  int runs_per_point = 30;
  int txs_per_run = 12;
  uint64_t seed = 1;
  std::vector<std::string> points;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--runs-per-point=N] [--txs-per-run=N] "
               "[--seed=N] [--point=NAME]...\n",
               argv0);
  return 2;
}

int Run(const Flags& flags) {
  FILE* human = flags.json ? stderr : stdout;
  ProtocolMetrics metrics;
  ReportBuilder report("wire_chaos");

  std::vector<CatalogPoint> catalog = Catalog();
  if (!flags.points.empty()) {
    std::vector<CatalogPoint> selected;
    for (const CatalogPoint& point : catalog) {
      if (std::find(flags.points.begin(), flags.points.end(), point.name) !=
          flags.points.end()) {
        selected.push_back(point);
      }
    }
    if (selected.size() != flags.points.size()) {
      std::fprintf(stderr, "wire_chaos: unknown --point name\n");
      return 2;
    }
    catalog = std::move(selected);
  }

  report.config()["runs_per_point"] = static_cast<int64_t>(flags.runs_per_point);
  report.config()["txs_per_run"] = static_cast<int64_t>(flags.txs_per_run);
  report.config()["seed"] = static_cast<int64_t>(flags.seed);
  report.config()["points"] = Json::Array();
  for (const CatalogPoint& point : catalog) {
    report.config()["points"].Push(point.name);
  }

  bool all_ok = true;
  int total_runs = 0;
  for (const CatalogPoint& point : catalog) {
    Json row = Json::Object();
    row["name"] = point.name;
    int64_t acked = 0, aborted = 0, unresolved = 0;
    int64_t resolved_committed = 0, resolved_aborted = 0;
    int64_t recovered = 0;
    RetryingClient::Stats client_totals;
    std::vector<std::string> failures;
    for (int r = 0; r < flags.runs_per_point; ++r) {
      RunOutcome out =
          RunOnce(point, flags.seed + r, flags.txs_per_run, &metrics);
      ++total_runs;
      acked += out.acked;
      aborted += out.aborted;
      unresolved += out.unresolved;
      resolved_committed += out.resolved_committed;
      resolved_aborted += out.resolved_aborted;
      recovered += out.recovered_committed;
      client_totals.reconnects += out.client.reconnects;
      client_totals.transport_errors += out.client.transport_errors;
      client_totals.backoffs += out.client.backoffs;
      client_totals.commit_resends += out.client.commit_resends;
      client_totals.commit_replays += out.client.commit_replays;
      for (const std::string& failure : out.failures) {
        failures.push_back(StrCat("seed ", flags.seed + r, ": ", failure));
      }
    }
    bool point_ok = failures.empty();
    all_ok = all_ok && point_ok;
    row["runs"] = static_cast<int64_t>(flags.runs_per_point);
    row["ok"] = point_ok;
    row["acked_commits"] = acked;
    row["lost_acked_commits"] = static_cast<int64_t>(0);  // Else ok=false.
    row["aborted"] = aborted;
    row["unresolved"] = unresolved;
    row["resolved_committed"] = resolved_committed;
    row["resolved_aborted"] = resolved_aborted;
    row["recovered_committed"] = recovered;
    Json client = Json::Object();
    client["reconnects"] = client_totals.reconnects;
    client["transport_errors"] = client_totals.transport_errors;
    client["backoffs"] = client_totals.backoffs;
    client["commit_resends"] = client_totals.commit_resends;
    client["commit_replays"] = client_totals.commit_replays;
    row["client"] = std::move(client);
    if (!point_ok) {
      Json failure_rows = Json::Array();
      for (const std::string& failure : failures) failure_rows.Push(failure);
      row["failures"] = std::move(failure_rows);
    }
    std::fprintf(human,
                 "%-36s %3d runs  %4lld acked  %3lld aborted  %3lld "
                 "unresolved  %4lld reconnects  %3lld replays  %s\n",
                 point.name.c_str(), flags.runs_per_point,
                 static_cast<long long>(acked),
                 static_cast<long long>(aborted),
                 static_cast<long long>(unresolved),
                 static_cast<long long>(client_totals.reconnects),
                 static_cast<long long>(client_totals.commit_replays),
                 point_ok ? "PASS" : "FAIL");
    for (const std::string& failure : failures) {
      std::fprintf(human, "  FAIL: %s\n", failure.c_str());
    }
    report.AddResult(std::move(row));
  }

  {
    RunOutcome lease = RunLeaseLeg(&metrics);
    all_ok = all_ok && lease.ok;
    Json row = Json::Object();
    row["name"] = "lease_reclaim";
    row["runs"] = static_cast<int64_t>(1);
    row["ok"] = lease.ok;
    if (!lease.ok) {
      Json failure_rows = Json::Array();
      for (const std::string& failure : lease.failures) {
        failure_rows.Push(failure);
      }
      row["failures"] = std::move(failure_rows);
    }
    std::fprintf(human, "%-36s %3d runs  %s\n", "lease_reclaim", 1,
                 lease.ok ? "PASS" : "FAIL");
    for (const std::string& failure : lease.failures) {
      std::fprintf(human, "  FAIL: %s\n", failure.c_str());
    }
    report.AddResult(std::move(row));
    ++total_runs;
  }

  report.config()["total_runs"] = static_cast<int64_t>(total_runs);
  report.SetOk(all_ok);
  report.AttachMetrics(metrics);
  if (flags.json) std::printf("%s\n", report.Dump().c_str());
  std::fprintf(human, "%d run(s), %s\n", total_runs,
               all_ok ? "all invariants held" : "FAILURES");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  nonserial::Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      flags.json = true;
    } else if (arg.rfind("--runs-per-point=", 0) == 0) {
      flags.runs_per_point = std::atoi(arg.c_str() + 17);
    } else if (arg.rfind("--txs-per-run=", 0) == 0) {
      flags.txs_per_run = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--point=", 0) == 0) {
      flags.points.push_back(arg.substr(8));
    } else {
      return nonserial::Usage(argv[0]);
    }
  }
  if (flags.runs_per_point <= 0 || flags.txs_per_run <= 0) {
    return nonserial::Usage(argv[0]);
  }
  return nonserial::Run(flags);
}
