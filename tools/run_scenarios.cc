// run_scenarios: drives .spec anomaly scenarios against every registered
// protocol and asserts their expect blocks (docs/SCENARIOS.md has the DSL
// reference, scenarios/ the seeded anomaly zoo).
//
//   run_scenarios [flags] <file.spec | directory>...
//
//   --json            emit the machine-readable report (schema: common/
//                     report.h, bench "scenarios") on stdout; human output
//                     moves to stderr. CI publishes it as
//                     REPORT_scenarios.json.
//   --chaos           replay every explicit permutation across crash/
//                     recover cycles (CEP + WAL, every crash point).
//   --seed=N          failpoint-registry seed for the chaos runs (default
//                     1) — pin it to replay a failing schedule exactly.
//   --crash-point=K   restrict the chaos sweep to crash point K (after K
//                     injections) instead of every point — the
//                     reproduce-one-failure knob. Requires --chaos.
//   --protocol=NAME   run only NAME (repeatable). Default: all six.
//   --print-expect    print the observed outcome of every permutation as
//                     an authorable expect block (spec-authoring aid).
//   --verbose         print per-step traces of every explicit run.
//
// Exit status: 0 iff every spec parsed and every assertion held.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/report.h"
#include "common/status.h"
#include "common/strings.h"
#include "scenario/parser.h"
#include "scenario/protocols.h"
#include "scenario/runner.h"

namespace nonserial {
namespace scenario {
namespace {

struct Flags {
  bool json = false;
  bool chaos = false;
  bool print_expect = false;
  bool verbose = false;
  uint64_t seed = 1;
  int crash_point = -1;
  std::vector<std::string> protocols;
  std::vector<std::string> paths;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--chaos] [--seed=N] [--crash-point=K] "
               "[--protocol=NAME]... [--print-expect] [--verbose] "
               "<file.spec | dir>...\n",
               argv0);
  return 2;
}

/// Expands each path argument: directories contribute their *.spec files
/// (sorted), files contribute themselves.
StatusOr<std::vector<std::string>> CollectSpecFiles(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> in_dir;
      for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
        if (entry.path().extension() == ".spec") {
          in_dir.push_back(entry.path().string());
        }
      }
      if (ec) {
        return Status::InvalidArgument(
            StrCat("cannot list directory '", path, "': ", ec.message()));
      }
      std::sort(in_dir.begin(), in_dir.end());
      files.insert(files.end(), in_dir.begin(), in_dir.end());
      continue;
    }
    if (!std::filesystem::is_regular_file(path, ec)) {
      return Status::InvalidArgument(
          StrCat("no such file or directory: '", path, "'"));
    }
    files.push_back(path);
  }
  if (files.empty()) {
    return Status::InvalidArgument("no .spec files found under the given paths");
  }
  return files;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument(StrCat("cannot open '", path, "'"));
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

int Run(const Flags& flags) {
  FILE* human = flags.json ? stderr : stdout;
  StatusOr<std::vector<std::string>> files = CollectSpecFiles(flags.paths);
  if (!files.ok()) {
    std::fprintf(stderr, "run_scenarios: %s\n",
                 files.status().message().c_str());
    return 2;
  }

  ReportBuilder report("scenarios");
  report.config()["protocols"] = Json::Array();
  for (const std::string& protocol :
       flags.protocols.empty() ? ProtocolNames() : flags.protocols) {
    report.config()["protocols"].Push(protocol);
  }
  report.config()["chaos"] = flags.chaos;
  report.config()["specs"] = static_cast<int64_t>(files->size());

  SuiteOptions options;
  options.protocols = flags.protocols;
  options.chaos = flags.chaos;
  options.verbose = flags.verbose;
  options.print_expect = flags.print_expect;
  options.chaos_seed = flags.seed;
  options.chaos_crash_point = flags.crash_point;

  int failed_specs = 0;
  int total_runs = 0;
  for (const std::string& path : *files) {
    StatusOr<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "run_scenarios: %s\n",
                   text.status().message().c_str());
      ++failed_specs;
      continue;
    }
    StatusOr<ScenarioSpec> spec = ParseScenario(*text);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                   spec.status().message().c_str());
      Json row = Json::Object();
      row["name"] = path;
      row["ok"] = false;
      row["parse_error"] = spec.status().message();
      report.AddResult(std::move(row));
      ++failed_specs;
      continue;
    }
    StatusOr<SpecResult> result = RunSpec(*spec, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   result.status().message().c_str());
      ++failed_specs;
      continue;
    }
    total_runs += result->explicit_runs + result->sweep_runs;
    std::fprintf(human, "%-28s %-10s %3d runs%s%s  %s\n",
                 result->name.c_str(),
                 spec->figure2_class.empty() ? "-"
                                             : spec->figure2_class.c_str(),
                 result->explicit_runs + result->sweep_runs,
                 flags.chaos
                     ? StrCat(" ", result->chaos_crash_points, " crashes")
                           .c_str()
                     : "",
                 result->sweep_truncated ? " (sweep truncated)" : "",
                 result->ok() ? "PASS" : "FAIL");
    for (const std::string& line : result->printed) {
      std::fprintf(human, "  %s\n", line.c_str());
    }
    for (const std::string& line : result->failures) {
      std::fprintf(human, "  FAIL: %s\n", line.c_str());
    }
    if (!result->ok()) ++failed_specs;
    report.AddResult(std::move(result->row));
  }

  report.SetOk(failed_specs == 0);
  report.config()["total_runs"] = static_cast<int64_t>(total_runs);
  if (flags.json) std::printf("%s\n", report.Dump().c_str());
  std::fprintf(human, "%zu spec(s), %d run(s), %d failing spec(s)\n",
               files->size(), total_runs, failed_specs);
  return failed_specs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace scenario
}  // namespace nonserial

int main(int argc, char** argv) {
  nonserial::scenario::Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--chaos") {
      flags.chaos = true;
    } else if (arg == "--print-expect") {
      flags.print_expect = true;
    } else if (arg == "--verbose") {
      flags.verbose = true;
    } else if (arg.rfind("--protocol=", 0) == 0) {
      flags.protocols.push_back(arg.substr(std::strlen("--protocol=")));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + std::strlen("--seed="),
                                 nullptr, 10);
    } else if (arg.rfind("--crash-point=", 0) == 0) {
      flags.crash_point = std::atoi(arg.c_str() + std::strlen("--crash-point="));
      if (flags.crash_point < 0) return nonserial::scenario::Usage(argv[0]);
    } else if (arg == "--help" || (!arg.empty() && arg[0] == '-')) {
      return nonserial::scenario::Usage(argv[0]);
    } else {
      flags.paths.push_back(arg);
    }
  }
  if (flags.paths.empty()) return nonserial::scenario::Usage(argv[0]);
  if (flags.crash_point >= 0 && !flags.chaos) {
    std::fprintf(stderr, "run_scenarios: --crash-point requires --chaos\n");
    return 2;
  }
  return nonserial::scenario::Run(flags);
}
