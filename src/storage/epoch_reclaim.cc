#include "storage/epoch_reclaim.h"

#include <functional>
#include <thread>

namespace nonserial {
namespace {

/// Home slot for the calling thread: a fixed per-thread hash, so repeated
/// guards from one thread land on the same (warm) cell.
int HomeSlot(int num_slots) {
  static thread_local const size_t hashed =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return static_cast<int>(hashed % static_cast<size_t>(num_slots));
}

}  // namespace

EpochReclaimer::ReadGuard::ReadGuard(EpochReclaimer* reclaimer)
    : reclaimer_(reclaimer), slot_(HomeSlot(kSlots)) {
  // Claim a free slot (linear probe past occupied ones — another thread
  // hashed here, or a nested guard on this thread).
  uint64_t epoch = reclaimer_->global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    uint64_t expected = 0;
    if (reclaimer_->slots_[slot_].pinned.compare_exchange_strong(
            expected, epoch, std::memory_order_seq_cst)) {
      break;
    }
    slot_ = (slot_ + 1) % kSlots;
  }
  // Re-validate until the announcement is provably visible under the
  // current epoch: if the epoch moved between the load and the store, a
  // concurrent Retire may have scanned the slots before this pin became
  // visible and freed under an about-to-be-loaded pointer. Re-pinning the
  // newest epoch closes the race (see class comment) — any Retire that
  // advances past the re-pinned value scans the slots *after* its own
  // epoch advance, and therefore observes this pin.
  for (;;) {
    uint64_t now = reclaimer_->global_epoch_.load(std::memory_order_seq_cst);
    if (now == epoch) return;
    epoch = now;
    reclaimer_->slots_[slot_].pinned.store(epoch, std::memory_order_seq_cst);
  }
}

EpochReclaimer::ReadGuard::~ReadGuard() {
  reclaimer_->slots_[slot_].pinned.store(0, std::memory_order_seq_cst);
}

uint64_t EpochReclaimer::OldestPin() const {
  uint64_t oldest = ~0ull;
  for (const Slot& slot : slots_) {
    uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < oldest) oldest = pinned;
  }
  return oldest;
}

void EpochReclaimer::Retire(void* object, void (*deleter)(void*)) {
  std::lock_guard<std::mutex> lock(retire_mu_);
  // Tag with the pre-advance epoch: every reader pinned at <= tag may still
  // reach `object`; readers that pin after the advance below cannot (their
  // pointer loads follow their announcement, which follows the unlink).
  uint64_t tag = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.push_back({object, deleter, tag});

  uint64_t oldest = OldestPin();
  size_t kept = 0;
  for (Retired& r : retired_) {
    if (r.tag < oldest) {
      r.deleter(r.object);
      freed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      retired_[kept++] = r;
    }
  }
  retired_.resize(kept);
}

size_t EpochReclaimer::PendingRetired() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

int64_t EpochReclaimer::TotalFreed() const {
  return freed_.load(std::memory_order_relaxed);
}

EpochReclaimer::~EpochReclaimer() {
  // No readers may be active at destruction (the owning store is being
  // destroyed); everything still retired is now free-able.
  for (Retired& r : retired_) r.deleter(r.object);
}

}  // namespace nonserial
