#ifndef NONSERIAL_STORAGE_WAL_FORMAT_H_
#define NONSERIAL_STORAGE_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/wal.h"

namespace nonserial {
namespace wal_format {

/// On-media layout of the write-ahead log. The log is a sequence of
/// segments; a segment is a header followed by frames; a frame is a
/// length-prefixed, CRC-protected record:
///
///   segment header:  magic u64 | seq u64 | flags u8            (17 bytes)
///   frame:           magic u32 | kind u8 | len u32 | crc u32 | payload
///
/// The CRC32 (IEEE 802.3 polynomial) covers kind, len, and the payload, so
/// any single corrupted byte outside the frame magic fails the check; a
/// corrupted magic fails the magic check instead. All integers are
/// little-endian. The segment magic is 8 bytes so a frame payload (which
/// contains arbitrary 64-bit values and CRCs) colliding with a segment
/// boundary during image resync is astronomically unlikely.

inline constexpr uint64_t kSegmentMagic = 0x4747'4553'4C41'574Eull;
inline constexpr uint32_t kFrameMagic = 0x4C41'574Eu;  // "NWAL"
inline constexpr size_t kSegmentHeaderBytes = 8 + 8 + 1;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;
inline constexpr uint8_t kSegmentFlagLost = 0x01;
/// Frame kind byte for a legacy (v1) checkpoint (record kinds use
/// WalRecord::Kind). V1 committed entries carry no commit token; decoding
/// one yields commit_token == 0 for every transaction. Kept decodable so
/// WALs checkpointed by pre-token builds still recover.
inline constexpr uint8_t kCheckpointFrameKind = 0xC5;
/// Frame kind byte for a v2 checkpoint: each committed entry carries its
/// u64 commit token between the tx id and the tx body. The kind byte is
/// the format version — writers emit v2, readers accept both.
inline constexpr uint8_t kCheckpointFrameKindV2 = 0xC6;
/// Upper bound on a sane payload (guards length-field corruption from
/// driving allocations).
inline constexpr uint32_t kMaxPayloadBytes = 1u << 28;

/// CRC32 (reflected, IEEE polynomial 0xEDB88320), seedable for chaining.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t crc = 0);

/// Serializes one record as a frame appended to `*out`.
void AppendRecordFrame(const WalRecord& record, std::string* out);

/// Serializes a checkpoint as a frame appended to `*out`.
void AppendCheckpointFrame(const WalCheckpoint& checkpoint, std::string* out);

/// Serializes a segment header appended to `*out`.
void AppendSegmentHeader(uint64_t seq, bool lost, std::string* out);

enum class FrameStatus : uint8_t {
  kOk,         ///< Frame decoded; `frame_bytes` consumed.
  kTruncated,  ///< The bytes end mid-frame (torn write / byte-prefix cut).
  kCorrupt     ///< Bad magic, CRC mismatch, or malformed payload.
};

struct DecodedFrame {
  FrameStatus status = FrameStatus::kOk;
  size_t frame_bytes = 0;  ///< Total encoded size (header + payload).
  bool is_checkpoint = false;
  WalRecord record;          ///< When !is_checkpoint.
  WalCheckpoint checkpoint;  ///< When is_checkpoint.
};

/// Decodes the frame starting at data[0]. `len` bytes are available.
DecodedFrame DecodeFrame(const char* data, size_t len);

struct SegmentHeader {
  uint64_t seq = 0;
  bool lost = false;
};

/// Decodes a segment header at data[0]; false if truncated or bad magic.
bool DecodeSegmentHeader(const char* data, size_t len, SegmentHeader* out);

/// Image offsets immediately after each *record* frame (checkpoint frames
/// and segment headers are skipped over, not listed). Walks the image with
/// full format knowledge and stops at the first undecodable byte — tests
/// use this to map a corrupted byte offset to the record prefix a
/// defensive recovery must salvage.
std::vector<size_t> RecordEndOffsets(const std::string& image);

}  // namespace wal_format
}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_WAL_FORMAT_H_
