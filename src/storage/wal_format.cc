#include "storage/wal_format.h"

#include <array>
#include <cstring>

namespace nonserial {
namespace wal_format {
namespace {

/// Table-based CRC32, IEEE 802.3 reflected polynomial.
std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// ---- little-endian primitives ---------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI32(int32_t v, std::string* out) { PutU32(static_cast<uint32_t>(v), out); }
void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked little-endian reader. Every Read* returns false once the
/// input is exhausted, so a corrupted length field degrades into a decode
/// failure instead of an out-of-bounds read.
class Reader {
 public:
  Reader(const char* data, size_t len) : data_(data), len_(len) {}

  size_t consumed() const { return pos_; }
  bool exhausted() const { return pos_ == len_; }

  bool ReadU8(uint8_t* v) {
    if (len_ - pos_ < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (len_ - pos_ < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (len_ - pos_ < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t n;
    if (!ReadU32(&n)) return false;
    if (n > len_ - pos_) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

// ---- payload bodies -------------------------------------------------------

/// Shared body of a kTxPayload record and a checkpoint's committed entry:
/// name, input_state, feeders, writes.
void PutTxBody(const std::string& name, const ValueVector& input_state,
               const std::vector<int>& feeders,
               const std::vector<std::pair<EntityId, Value>>& writes,
               std::string* out) {
  PutString(name, out);
  PutU32(static_cast<uint32_t>(input_state.size()), out);
  for (Value v : input_state) PutI64(v, out);
  PutU32(static_cast<uint32_t>(feeders.size()), out);
  for (int f : feeders) PutI32(f, out);
  PutU32(static_cast<uint32_t>(writes.size()), out);
  for (const auto& [e, v] : writes) {
    PutI32(e, out);
    PutI64(v, out);
  }
}

bool ReadTxBody(Reader* in, std::string* name, ValueVector* input_state,
                std::vector<int>* feeders,
                std::vector<std::pair<EntityId, Value>>* writes) {
  if (!in->ReadString(name)) return false;
  uint32_t n;
  if (!in->ReadU32(&n)) return false;
  input_state->clear();
  input_state->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t v;
    if (!in->ReadI64(&v)) return false;
    input_state->push_back(v);
  }
  if (!in->ReadU32(&n)) return false;
  feeders->clear();
  feeders->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t f;
    if (!in->ReadI32(&f)) return false;
    feeders->push_back(f);
  }
  if (!in->ReadU32(&n)) return false;
  writes->clear();
  writes->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t e;
    int64_t v;
    if (!in->ReadI32(&e) || !in->ReadI64(&v)) return false;
    writes->emplace_back(e, v);
  }
  return true;
}

std::string EncodeRecordPayload(const WalRecord& record) {
  std::string payload;
  switch (record.kind) {
    case WalRecord::Kind::kAppend:
      PutI32(record.writer, &payload);
      PutI32(record.entity, &payload);
      PutI64(record.value, &payload);
      break;
    case WalRecord::Kind::kCommit:
    case WalRecord::Kind::kRollback:
      PutI32(record.writer, &payload);
      break;
    case WalRecord::Kind::kTxPayload:
      PutI32(record.writer, &payload);
      PutTxBody(record.name, record.input_state, record.feeders, record.writes,
                &payload);
      break;
    case WalRecord::Kind::kCrash:
      break;
    case WalRecord::Kind::kCommitToken:
      PutI32(record.writer, &payload);
      PutU64(record.token, &payload);
      break;
  }
  return payload;
}

/// Decodes a record payload; the payload must be consumed exactly (trailing
/// bytes mean the frame lies about its contents).
bool DecodeRecordPayload(uint8_t kind, const char* data, size_t len,
                         WalRecord* out) {
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kCommitToken)) return false;
  out->kind = static_cast<WalRecord::Kind>(kind);
  Reader in(data, len);
  switch (out->kind) {
    case WalRecord::Kind::kAppend: {
      int32_t writer, entity;
      int64_t value;
      if (!in.ReadI32(&writer) || !in.ReadI32(&entity) || !in.ReadI64(&value)) {
        return false;
      }
      out->writer = writer;
      out->entity = entity;
      out->value = value;
      break;
    }
    case WalRecord::Kind::kCommit:
    case WalRecord::Kind::kRollback: {
      int32_t writer;
      if (!in.ReadI32(&writer)) return false;
      out->writer = writer;
      break;
    }
    case WalRecord::Kind::kTxPayload: {
      int32_t writer;
      if (!in.ReadI32(&writer)) return false;
      out->writer = writer;
      if (!ReadTxBody(&in, &out->name, &out->input_state, &out->feeders,
                      &out->writes)) {
        return false;
      }
      break;
    }
    case WalRecord::Kind::kCrash:
      break;
    case WalRecord::Kind::kCommitToken: {
      int32_t writer;
      uint64_t token;
      if (!in.ReadI32(&writer) || !in.ReadU64(&token)) return false;
      out->writer = writer;
      out->token = token;
      break;
    }
  }
  return in.exhausted();
}

std::string EncodeCheckpointPayload(const WalCheckpoint& checkpoint) {
  std::string payload;
  PutU32(static_cast<uint32_t>(checkpoint.committed.size()), &payload);
  for (const RecoveredTx& tx : checkpoint.committed) {
    PutI32(tx.tx, &payload);
    PutU64(tx.commit_token, &payload);
    PutTxBody(tx.name, tx.input_state, tx.feeders, tx.writes, &payload);
  }
  PutU32(static_cast<uint32_t>(checkpoint.chains.size()), &payload);
  for (const auto& chain : checkpoint.chains) {
    PutU32(static_cast<uint32_t>(chain.size()), &payload);
    for (const auto& [writer, value] : chain) {
      PutI32(writer, &payload);
      PutI64(value, &payload);
    }
  }
  return payload;
}

/// `with_tokens` selects the layout by checkpoint version: v2 frames carry
/// a u64 commit token per committed entry, legacy (v1) frames do not — a
/// v1 entry decodes with commit_token == 0.
bool DecodeCheckpointPayload(const char* data, size_t len, bool with_tokens,
                             WalCheckpoint* out) {
  Reader in(data, len);
  uint32_t n;
  if (!in.ReadU32(&n)) return false;
  out->committed.clear();
  out->committed.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RecoveredTx tx;
    int32_t id;
    if (!in.ReadI32(&id)) return false;
    tx.tx = id;
    if (with_tokens && !in.ReadU64(&tx.commit_token)) return false;
    if (!ReadTxBody(&in, &tx.name, &tx.input_state, &tx.feeders, &tx.writes)) {
      return false;
    }
    out->committed.push_back(std::move(tx));
  }
  if (!in.ReadU32(&n)) return false;
  out->chains.clear();
  out->chains.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t chain_len;
    if (!in.ReadU32(&chain_len)) return false;
    std::vector<std::pair<int, Value>> chain;
    chain.reserve(chain_len);
    for (uint32_t j = 0; j < chain_len; ++j) {
      int32_t writer;
      int64_t value;
      if (!in.ReadI32(&writer) || !in.ReadI64(&value)) return false;
      chain.emplace_back(writer, value);
    }
    out->chains.push_back(std::move(chain));
  }
  return in.exhausted();
}

/// CRC over kind + len + payload (the integrity-relevant frame content; the
/// magic is covered by its own comparison).
uint32_t FrameCrc(uint8_t kind, const std::string& payload) {
  uint8_t prefix[5];
  prefix[0] = kind;
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) prefix[1 + i] = (len >> (8 * i)) & 0xFF;
  uint32_t crc = Crc32(prefix, sizeof(prefix));
  return Crc32(reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
               crc);
}

void AppendFrame(uint8_t kind, const std::string& payload, std::string* out) {
  PutU32(kFrameMagic, out);
  PutU8(kind, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(FrameCrc(kind, payload), out);
  out->append(payload);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void AppendRecordFrame(const WalRecord& record, std::string* out) {
  AppendFrame(static_cast<uint8_t>(record.kind), EncodeRecordPayload(record),
              out);
}

void AppendCheckpointFrame(const WalCheckpoint& checkpoint, std::string* out) {
  AppendFrame(kCheckpointFrameKindV2, EncodeCheckpointPayload(checkpoint),
              out);
}

void AppendSegmentHeader(uint64_t seq, bool lost, std::string* out) {
  PutU64(kSegmentMagic, out);
  PutU64(seq, out);
  PutU8(lost ? kSegmentFlagLost : 0, out);
}

DecodedFrame DecodeFrame(const char* data, size_t len) {
  DecodedFrame result;
  if (len < kFrameHeaderBytes) {
    result.status = FrameStatus::kTruncated;
    return result;
  }
  Reader header(data, len);
  uint32_t magic, payload_len, crc;
  uint8_t kind;
  header.ReadU32(&magic);
  header.ReadU8(&kind);
  header.ReadU32(&payload_len);
  header.ReadU32(&crc);
  if (magic != kFrameMagic) {
    result.status = FrameStatus::kCorrupt;
    return result;
  }
  if (payload_len > kMaxPayloadBytes) {
    // A length this large is corruption, not truncation: no writer emits it.
    result.status = FrameStatus::kCorrupt;
    return result;
  }
  if (len - kFrameHeaderBytes < payload_len) {
    result.status = FrameStatus::kTruncated;
    return result;
  }
  const char* payload = data + kFrameHeaderBytes;
  std::string payload_copy(payload, payload_len);
  if (FrameCrc(kind, payload_copy) != crc) {
    result.status = FrameStatus::kCorrupt;
    return result;
  }
  result.frame_bytes = kFrameHeaderBytes + payload_len;
  if (kind == kCheckpointFrameKind || kind == kCheckpointFrameKindV2) {
    result.is_checkpoint = true;
    if (!DecodeCheckpointPayload(payload, payload_len,
                                 /*with_tokens=*/kind == kCheckpointFrameKindV2,
                                 &result.checkpoint)) {
      result.status = FrameStatus::kCorrupt;
      return result;
    }
  } else if (!DecodeRecordPayload(kind, payload, payload_len,
                                  &result.record)) {
    result.status = FrameStatus::kCorrupt;
    return result;
  }
  result.status = FrameStatus::kOk;
  return result;
}

bool DecodeSegmentHeader(const char* data, size_t len, SegmentHeader* out) {
  if (len < kSegmentHeaderBytes) return false;
  Reader in(data, len);
  uint64_t magic, seq;
  uint8_t flags;
  in.ReadU64(&magic);
  in.ReadU64(&seq);
  in.ReadU8(&flags);
  if (magic != kSegmentMagic) return false;
  // Unknown flag bits mean the byte is damaged (or from a future format
  // this code cannot interpret) — either way the header is undecodable.
  // Accepting them would let a single-bit flip pass silently.
  if ((flags & ~kSegmentFlagLost) != 0) return false;
  out->seq = seq;
  out->lost = (flags & kSegmentFlagLost) != 0;
  return true;
}

std::vector<size_t> RecordEndOffsets(const std::string& image) {
  std::vector<size_t> offsets;
  size_t pos = 0;
  while (pos < image.size()) {
    SegmentHeader header;
    if (DecodeSegmentHeader(image.data() + pos, image.size() - pos, &header)) {
      pos += kSegmentHeaderBytes;
      continue;
    }
    DecodedFrame frame = DecodeFrame(image.data() + pos, image.size() - pos);
    if (frame.status != FrameStatus::kOk) break;
    pos += frame.frame_bytes;
    if (!frame.is_checkpoint) offsets.push_back(pos);
  }
  return offsets;
}

}  // namespace wal_format
}  // namespace nonserial
