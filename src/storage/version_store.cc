#include "storage/version_store.h"

#include <mutex>
#include <thread>

#include "common/logging.h"
#include "storage/wal.h"

namespace nonserial {

void VersionStore::DeleteSlabRaw(void* slab) {
  delete static_cast<Slab*>(slab);
}

VersionStore::VersionStore(ValueVector initial_values)
    : num_entities_(static_cast<int>(initial_values.size())),
      chains_(new Chain[initial_values.size()]),
      shards_(new Shard[kNumShards]) {
  for (int e = 0; e < num_entities_; ++e) {
    Slab* slab = new Slab(kInitialSlabCapacity);
    Slot& slot = slab->slots[0];
    slot.value = initial_values[e];
    slot.writer = kInitialWriter;
    slot.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    slot.flags.store(Slot::kCommitted, std::memory_order_relaxed);
    chains_[e].slab.store(slab, std::memory_order_release);
    chains_[e].size.store(1, std::memory_order_release);
  }
}

VersionStore::~VersionStore() {
  for (int e = 0; e < num_entities_; ++e) {
    delete chains_[e].slab.load(std::memory_order_relaxed);
  }
}

void VersionStore::BoundsCheck(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
}

Version VersionStore::At(VersionRef ref) const {
  return VersionAt(ref.entity, ref.index);
}

Version VersionStore::VersionAt(EntityId e, int index) const {
  BoundsCheck(e);
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  int n = 0;
  const Slab* slab = LoadChain(e, &n);
  NONSERIAL_CHECK_GE(index, 0);
  NONSERIAL_CHECK_LT(index, n);
  return slab->slots[index].Observe();
}

Value VersionStore::Read(VersionRef ref) const { return At(ref).value; }

int VersionStore::ChainSize(EntityId e) const {
  BoundsCheck(e);
  return chains_[e].size.load(std::memory_order_acquire);
}

std::vector<Version> VersionStore::ChainSnapshot(EntityId e) const {
  std::vector<Version> out;
  ForEachVersion(e, [&out](const Version& v, int) { out.push_back(v); });
  return out;
}

int VersionStore::AppendSlot(EntityId e, Value value, int writer,
                             bool committed) {
  Chain& chain = chains_[e];
  int n = chain.size.load(std::memory_order_relaxed);
  Slab* slab = chain.slab.load(std::memory_order_relaxed);
  if (n == slab->capacity) {
    // Grow by copy-and-publish; the old slab may still be walked by pinned
    // readers, so it is retired, not deleted.
    Slab* bigger = new Slab(slab->capacity * 2);
    for (int i = 0; i < n; ++i) {
      Slot& src = slab->slots[i];
      Slot& dst = bigger->slots[i];
      dst.value = src.value;
      dst.writer = src.writer;
      dst.seq = src.seq;
      dst.flags.store(src.flags.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    chain.slab.store(bigger, std::memory_order_release);
    reclaimer_.Retire(slab, &DeleteSlabRaw);
    slab = bigger;
  }
  Slot& slot = slab->slots[n];
  slot.value = value;
  slot.writer = writer;
  slot.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  slot.flags.store(committed ? Slot::kCommitted : 0,
                   std::memory_order_relaxed);
  // Publishes the slot (and any slab swap above): readers acquire-load size
  // before the slab pointer, so this release store fences every plain write
  // above into their view.
  chain.size.store(n + 1, std::memory_order_release);
  return n;
}

int VersionStore::Append(EntityId e, Value value, int writer) {
  BoundsCheck(e);
  std::unique_lock<std::mutex> lock(ShardOf(e));
  BeginMutation();
  // Logged under the shard lock so the log's per-entity append order equals
  // the chain order recovery will rebuild.
  if (wal_ != nullptr) wal_->LogAppend(e, value, writer);
  int index = AppendSlot(e, value, writer, /*committed=*/false);
  EndMutation();
  return index;
}

int VersionStore::LatestLiveIndexLocked(EntityId e) const {
  int n = 0;
  const Slab* slab = LoadChain(e, &n);
  for (int i = n - 1; i >= 0; --i) {
    if (!slab->slots[i].IsDead()) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no live version";
  return -1;
}

int VersionStore::LatestLiveIndex(EntityId e) const {
  BoundsCheck(e);
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  return LatestLiveIndexLocked(e);
}

int VersionStore::LatestCommittedIndexLocked(EntityId e) const {
  int n = 0;
  const Slab* slab = LoadChain(e, &n);
  for (int i = n - 1; i >= 0; --i) {
    if (slab->slots[i].IsCommittedLive()) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no committed version";
  return -1;
}

int VersionStore::LatestCommittedIndex(EntityId e) const {
  BoundsCheck(e);
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  return LatestCommittedIndexLocked(e);
}

std::optional<int> VersionStore::LatestIndexBy(EntityId e, int writer) const {
  BoundsCheck(e);
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  int n = 0;
  const Slab* slab = LoadChain(e, &n);
  for (int i = n - 1; i >= 0; --i) {
    const Slot& slot = slab->slots[i];
    if (!slot.IsDead() && slot.writer == writer) return i;
  }
  return std::nullopt;
}

WalCommitHandle VersionStore::CommitWriter(int writer) {
  // Write-ahead: the commit record hits the log before any flag flips, so
  // a crash either shows the writer fully committed (redo replays every
  // already-logged append) or not at all. Under group commit the record is
  // only STAGED here; the returned handle resolves at its batch's flush
  // epoch, and the in-memory flags may flip before durability. That is
  // safe for recovery because log order is FIFO: anything that reads this
  // writer's versions and commits logs its own commit record later in the
  // log, so no recovered prefix can keep a dependent while losing this
  // writer (downward closure survives early lock release).
  WalCommitHandle handle;
  if (wal_ != nullptr) handle = wal_->LogCommit(writer);
  // The whole multi-entity flip is ONE mutation bracket: AsDatabaseState
  // observes either all of this writer's versions committed or none.
  BeginMutation();
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::mutex> lock(ShardOf(e));
    int n = 0;
    Slab* slab = LoadChainMut(e, &n);
    for (int i = 0; i < n; ++i) {
      Slot& slot = slab->slots[i];
      if (slot.writer != writer) continue;
      uint8_t f = slot.flags.load(std::memory_order_relaxed);
      if (f & Slot::kDead) continue;
      slot.flags.store(f | Slot::kCommitted, std::memory_order_release);
    }
  }
  EndMutation();
  return handle;
}

void VersionStore::MarkAllCommitted() {
  NONSERIAL_CHECK(wal_ == nullptr)
      << "MarkAllCommitted is a recovery-replay shortcut; it must not be "
         "used on a store that is logging";
  BeginMutation();
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::mutex> lock(ShardOf(e));
    int n = 0;
    Slab* slab = LoadChainMut(e, &n);
    for (int i = 0; i < n; ++i) {
      Slot& slot = slab->slots[i];
      uint8_t f = slot.flags.load(std::memory_order_relaxed);
      if (f & Slot::kDead) continue;
      slot.flags.store(f | Slot::kCommitted, std::memory_order_release);
    }
  }
  EndMutation();
}

void VersionStore::RollbackWriter(int writer) {
  if (wal_ != nullptr) wal_->LogRollback(writer);
  BeginMutation();
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::mutex> lock(ShardOf(e));
    int n = 0;
    Slab* slab = LoadChainMut(e, &n);
    for (int i = 0; i < n; ++i) {
      Slot& slot = slab->slots[i];
      if (slot.writer != writer) continue;
      uint8_t f = slot.flags.load(std::memory_order_relaxed);
      if (f & Slot::kCommitted) continue;
      slot.flags.store(f | Slot::kDead, std::memory_order_release);
    }
  }
  EndMutation();
}

ValueVector VersionStore::LatestCommittedSnapshot() const {
  ValueVector out(num_entities());
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  for (EntityId e = 0; e < num_entities(); ++e) {
    int n = 0;
    const Slab* slab = LoadChain(e, &n);
    out[e] = slab->slots[LatestCommittedIndexLocked(e)].value;
  }
  return out;
}

DatabaseState VersionStore::AsDatabaseState() const {
  // One unique state per committed version depth: the state formed by the
  // committed prefix values. For verification purposes a simpler encoding
  // suffices: the initial state plus, per committed version, the latest
  // snapshot overlaid with that version's value.
  //
  // The scan must be a *coherent cut*. Every mutator brackets its logical
  // mutation (an Append, or a whole multi-entity commit/rollback/GC sweep)
  // in BeginMutation/EndMutation. Optimistic protocol: observe the stamps
  // quiescent (started == done), scan lock-free, then validate nothing
  // started during the scan. A validated scan therefore never contains
  // half of a CommitWriter — the mixed-state bug this replaces.
  auto scan = [this](DatabaseState* db) {
    ValueVector latest(num_entities());
    for (EntityId e = 0; e < num_entities(); ++e) {
      int n = 0;
      const Slab* slab = LoadChain(e, &n);
      latest[e] = slab->slots[LatestCommittedIndexLocked(e)].value;
    }
    db->Add(latest);
    for (EntityId e = 0; e < num_entities(); ++e) {
      int n = 0;
      const Slab* slab = LoadChain(e, &n);
      for (int i = 0; i < n; ++i) {
        if (!slab->slots[i].IsCommittedLive()) continue;
        Value v = slab->slots[i].value;
        if (v == latest[e]) continue;
        ValueVector s = latest;
        s[e] = v;
        db->Add(std::move(s));
      }
    }
  };

  EpochReclaimer::ReadGuard guard(&reclaimer_);
  for (int attempt = 0; attempt < kAsDatabaseStateRetries; ++attempt) {
    int64_t started = mutations_started_.load(std::memory_order_seq_cst);
    int64_t done = mutations_done_.load(std::memory_order_seq_cst);
    if (started != done) {  // A mutation is mid-flight; let it finish.
      std::this_thread::yield();
      continue;
    }
    DatabaseState db(num_entities());
    scan(&db);
    if (mutations_started_.load(std::memory_order_seq_cst) == started) {
      return db;  // Nothing started during the scan: coherent.
    }
  }
  // Fallback under sustained mutation pressure: stall the mutators by
  // holding every shard mutex. All slab/flag writes happen under a shard
  // mutex, so nothing can change mid-scan; the stamp re-check under the
  // locks rules out a logical mutation caught between its BeginMutation
  // and its first (or next) shard acquisition — if one is wedged there,
  // release everything so it can land, and try again.
  for (;;) {
    while (mutations_started_.load(std::memory_order_seq_cst) !=
           mutations_done_.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(kNumShards);
    for (int s = 0; s < kNumShards; ++s) {
      locks.emplace_back(shards_[s].mu);
    }
    int64_t started = mutations_started_.load(std::memory_order_seq_cst);
    int64_t done = mutations_done_.load(std::memory_order_seq_cst);
    if (started == done) {
      DatabaseState db(num_entities());
      scan(&db);
      return db;
    }
    locks.clear();
    std::this_thread::yield();
  }
}

int64_t VersionStore::CollectObsolete(const std::vector<VersionRef>& pinned) {
  std::vector<std::vector<bool>> is_pinned(num_entities());
  for (const VersionRef& ref : pinned) {
    if (ref.entity < 0 || ref.entity >= num_entities() || ref.index < 0) {
      continue;
    }
    std::vector<bool>& flags = is_pinned[ref.entity];
    if (ref.index >= static_cast<int>(flags.size())) {
      flags.resize(ref.index + 1, false);
    }
    flags[ref.index] = true;
  }
  int64_t collected = 0;
  BeginMutation();
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::mutex> lock(ShardOf(e));
    int latest = LatestCommittedIndexLocked(e);
    const std::vector<bool>& flags = is_pinned[e];
    int n = 0;
    Slab* slab = LoadChainMut(e, &n);
    for (int i = 0; i < n; ++i) {
      Slot& slot = slab->slots[i];
      bool pinned_here = i < static_cast<int>(flags.size()) && flags[i];
      if (!slot.IsCommittedLive() || i == latest || pinned_here) continue;
      slot.flags.store(Slot::kCommitted | Slot::kDead,
                       std::memory_order_release);
      ++collected;
    }
  }
  EndMutation();
  return collected;
}

int64_t VersionStore::TotalLiveVersions() const {
  int64_t total = 0;
  EpochReclaimer::ReadGuard guard(&reclaimer_);
  for (EntityId e = 0; e < num_entities(); ++e) {
    int n = 0;
    const Slab* slab = LoadChain(e, &n);
    for (int i = 0; i < n; ++i) {
      if (!slab->slots[i].IsDead()) ++total;
    }
  }
  return total;
}

}  // namespace nonserial
