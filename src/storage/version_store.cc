#include "storage/version_store.h"

#include "common/logging.h"

namespace nonserial {

VersionStore::VersionStore(ValueVector initial_values) {
  chains_.resize(initial_values.size());
  for (size_t e = 0; e < initial_values.size(); ++e) {
    Version v;
    v.value = initial_values[e];
    v.writer = kInitialWriter;
    v.seq = next_seq_++;
    v.committed = true;
    chains_[e].push_back(v);
  }
}

const std::vector<Version>& VersionStore::Chain(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  return chains_[e];
}

int VersionStore::Append(EntityId e, Value value, int writer) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  Version v;
  v.value = value;
  v.writer = writer;
  v.seq = next_seq_++;
  chains_[e].push_back(v);
  return static_cast<int>(chains_[e].size()) - 1;
}

const Version& VersionStore::At(VersionRef ref) const {
  const std::vector<Version>& chain = Chain(ref.entity);
  NONSERIAL_CHECK_GE(ref.index, 0);
  NONSERIAL_CHECK_LT(ref.index, static_cast<int>(chain.size()));
  return chain[ref.index];
}

Value VersionStore::Read(VersionRef ref) const { return At(ref).value; }

int VersionStore::LatestLiveIndex(EntityId e) const {
  const std::vector<Version>& chain = Chain(e);
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no live version";
  return -1;
}

int VersionStore::LatestCommittedIndex(EntityId e) const {
  const std::vector<Version>& chain = Chain(e);
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead && chain[i].committed) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no committed version";
  return -1;
}

std::optional<int> VersionStore::LatestIndexBy(EntityId e, int writer) const {
  const std::vector<Version>& chain = Chain(e);
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead && chain[i].writer == writer) return i;
  }
  return std::nullopt;
}

void VersionStore::CommitWriter(int writer) {
  for (std::vector<Version>& chain : chains_) {
    for (Version& v : chain) {
      if (v.writer == writer && !v.dead) v.committed = true;
    }
  }
}

void VersionStore::RollbackWriter(int writer) {
  for (std::vector<Version>& chain : chains_) {
    for (Version& v : chain) {
      if (v.writer == writer && !v.committed) v.dead = true;
    }
  }
}

ValueVector VersionStore::LatestCommittedSnapshot() const {
  ValueVector out(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    out[e] = chains_[e][LatestCommittedIndex(e)].value;
  }
  return out;
}

DatabaseState VersionStore::AsDatabaseState() const {
  DatabaseState db(num_entities());
  // One unique state per committed version depth: the state formed by the
  // committed prefix values. For verification purposes a simpler encoding
  // suffices: the initial state plus, per committed version, the latest
  // snapshot overlaid with that version's value.
  ValueVector latest = LatestCommittedSnapshot();
  db.Add(latest);
  for (EntityId e = 0; e < num_entities(); ++e) {
    for (const Version& v : chains_[e]) {
      if (v.dead || !v.committed) continue;
      if (v.value == latest[e]) continue;
      ValueVector s = latest;
      s[e] = v.value;
      db.Add(std::move(s));
    }
  }
  return db;
}

int64_t VersionStore::CollectObsolete(
    const std::vector<VersionRef>& pinned) {
  std::vector<std::vector<bool>> is_pinned(chains_.size());
  for (EntityId e = 0; e < num_entities(); ++e) {
    is_pinned[e].assign(chains_[e].size(), false);
  }
  for (const VersionRef& ref : pinned) {
    if (ref.entity >= 0 && ref.entity < num_entities() && ref.index >= 0 &&
        ref.index < static_cast<int>(chains_[ref.entity].size())) {
      is_pinned[ref.entity][ref.index] = true;
    }
  }
  int64_t collected = 0;
  for (EntityId e = 0; e < num_entities(); ++e) {
    int latest = LatestCommittedIndex(e);
    for (int i = 0; i < static_cast<int>(chains_[e].size()); ++i) {
      Version& v = chains_[e][i];
      if (v.dead || !v.committed || i == latest || is_pinned[e][i]) continue;
      v.dead = true;
      ++collected;
    }
  }
  return collected;
}

int64_t VersionStore::TotalLiveVersions() const {
  int64_t total = 0;
  for (const std::vector<Version>& chain : chains_) {
    for (const Version& v : chain) {
      if (!v.dead) ++total;
    }
  }
  return total;
}

}  // namespace nonserial
