#include "storage/version_store.h"

#include <mutex>

#include "common/logging.h"
#include "storage/wal.h"

namespace nonserial {

VersionStore::VersionStore(ValueVector initial_values)
    : shards_(new Shard[kNumShards]) {
  chains_.resize(initial_values.size());
  for (size_t e = 0; e < initial_values.size(); ++e) {
    Version v;
    v.value = initial_values[e];
    v.writer = kInitialWriter;
    v.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    v.committed = true;
    chains_[e].push_back(v);
  }
}

Version VersionStore::At(VersionRef ref) const {
  return VersionAt(ref.entity, ref.index);
}

Version VersionStore::VersionAt(EntityId e, int index) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  NONSERIAL_CHECK_GE(index, 0);
  NONSERIAL_CHECK_LT(index, static_cast<int>(chains_[e].size()));
  return chains_[e][index];
}

Value VersionStore::Read(VersionRef ref) const { return At(ref).value; }

int VersionStore::ChainSize(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  return static_cast<int>(chains_[e].size());
}

std::vector<Version> VersionStore::ChainSnapshot(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  return std::vector<Version>(chains_[e].begin(), chains_[e].end());
}

int VersionStore::Append(EntityId e, Value value, int writer) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  Version v;
  v.value = value;
  v.writer = writer;
  v.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(ShardOf(e));
  // Logged under the shard lock so the log's per-entity append order equals
  // the chain order recovery will rebuild.
  if (wal_ != nullptr) wal_->LogAppend(e, value, writer);
  chains_[e].push_back(v);
  return static_cast<int>(chains_[e].size()) - 1;
}

int VersionStore::LatestLiveIndexLocked(EntityId e) const {
  const std::deque<Version>& chain = chains_[e];
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no live version";
  return -1;
}

int VersionStore::LatestLiveIndex(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  return LatestLiveIndexLocked(e);
}

int VersionStore::LatestCommittedIndexLocked(EntityId e) const {
  const std::deque<Version>& chain = chains_[e];
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead && chain[i].committed) return i;
  }
  NONSERIAL_CHECK(false) << "entity " << e << " has no committed version";
  return -1;
}

int VersionStore::LatestCommittedIndex(EntityId e) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  return LatestCommittedIndexLocked(e);
}

std::optional<int> VersionStore::LatestIndexBy(EntityId e, int writer) const {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::shared_lock<std::shared_mutex> lock(ShardOf(e));
  const std::deque<Version>& chain = chains_[e];
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (!chain[i].dead && chain[i].writer == writer) return i;
  }
  return std::nullopt;
}

WalCommitHandle VersionStore::CommitWriter(int writer) {
  // Write-ahead: the commit record hits the log before any flag flips, so
  // a crash either shows the writer fully committed (redo replays every
  // already-logged append) or not at all. Under group commit the record is
  // only STAGED here; the returned handle resolves at its batch's flush
  // epoch, and the in-memory flags may flip before durability. That is
  // safe for recovery because log order is FIFO: anything that reads this
  // writer's versions and commits logs its own commit record later in the
  // log, so no recovered prefix can keep a dependent while losing this
  // writer (downward closure survives early lock release).
  WalCommitHandle handle;
  if (wal_ != nullptr) handle = wal_->LogCommit(writer);
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::shared_mutex> lock(ShardOf(e));
    for (Version& v : chains_[e]) {
      if (v.writer == writer && !v.dead) v.committed = true;
    }
  }
  return handle;
}

void VersionStore::MarkAllCommitted() {
  NONSERIAL_CHECK(wal_ == nullptr)
      << "MarkAllCommitted is a recovery-replay shortcut; it must not be "
         "used on a store that is logging";
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::shared_mutex> lock(ShardOf(e));
    for (Version& v : chains_[e]) {
      if (!v.dead) v.committed = true;
    }
  }
}

void VersionStore::RollbackWriter(int writer) {
  if (wal_ != nullptr) wal_->LogRollback(writer);
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::shared_mutex> lock(ShardOf(e));
    for (Version& v : chains_[e]) {
      if (v.writer == writer && !v.committed) v.dead = true;
    }
  }
}

ValueVector VersionStore::LatestCommittedSnapshot() const {
  ValueVector out(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::shared_lock<std::shared_mutex> lock(ShardOf(e));
    out[e] = chains_[e][LatestCommittedIndexLocked(e)].value;
  }
  return out;
}

DatabaseState VersionStore::AsDatabaseState() const {
  DatabaseState db(num_entities());
  // One unique state per committed version depth: the state formed by the
  // committed prefix values. For verification purposes a simpler encoding
  // suffices: the initial state plus, per committed version, the latest
  // snapshot overlaid with that version's value.
  ValueVector latest = LatestCommittedSnapshot();
  db.Add(latest);
  for (EntityId e = 0; e < num_entities(); ++e) {
    for (const Version& v : ChainSnapshot(e)) {
      if (v.dead || !v.committed) continue;
      if (v.value == latest[e]) continue;
      ValueVector s = latest;
      s[e] = v.value;
      db.Add(std::move(s));
    }
  }
  return db;
}

int64_t VersionStore::CollectObsolete(
    const std::vector<VersionRef>& pinned) {
  std::vector<std::vector<bool>> is_pinned(chains_.size());
  for (const VersionRef& ref : pinned) {
    if (ref.entity < 0 || ref.entity >= num_entities() || ref.index < 0) {
      continue;
    }
    std::vector<bool>& flags = is_pinned[ref.entity];
    if (ref.index >= static_cast<int>(flags.size())) {
      flags.resize(ref.index + 1, false);
    }
    flags[ref.index] = true;
  }
  int64_t collected = 0;
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::unique_lock<std::shared_mutex> lock(ShardOf(e));
    int latest = LatestCommittedIndexLocked(e);
    const std::vector<bool>& flags = is_pinned[e];
    for (int i = 0; i < static_cast<int>(chains_[e].size()); ++i) {
      Version& v = chains_[e][i];
      bool pinned_here = i < static_cast<int>(flags.size()) && flags[i];
      if (v.dead || !v.committed || i == latest || pinned_here) continue;
      v.dead = true;
      ++collected;
    }
  }
  return collected;
}

int64_t VersionStore::TotalLiveVersions() const {
  int64_t total = 0;
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::shared_lock<std::shared_mutex> lock(ShardOf(e));
    for (const Version& v : chains_[e]) {
      if (!v.dead) ++total;
    }
  }
  return total;
}

}  // namespace nonserial
