#include "storage/wal.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "storage/version_store.h"

namespace nonserial {

void WriteAheadLog::LogAppend(EntityId entity, Value value, int writer) {
  WalRecord record;
  record.kind = WalRecord::Kind::kAppend;
  record.writer = writer;
  record.entity = entity;
  record.value = value;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void WriteAheadLog::LogCommit(int writer) {
  WalRecord record;
  record.kind = WalRecord::Kind::kCommit;
  record.writer = writer;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void WriteAheadLog::LogRollback(int writer) {
  WalRecord record;
  record.kind = WalRecord::Kind::kRollback;
  record.writer = writer;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void WriteAheadLog::LogTxPayload(int writer, std::string name,
                                 ValueVector input_state,
                                 std::vector<int> feeders,
                                 std::vector<std::pair<EntityId, Value>> writes) {
  WalRecord record;
  record.kind = WalRecord::Kind::kTxPayload;
  record.writer = writer;
  record.name = std::move(name);
  record.input_state = std::move(input_state);
  record.feeders = std::move(feeders);
  record.writes = std::move(writes);
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void WriteAheadLog::LogCrashMarker() {
  WalRecord record;
  record.kind = WalRecord::Kind::kCrash;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

size_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<WalRecord> WriteAheadLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

RecoveryResult WriteAheadLog::Recover(size_t prefix_len) const {
  std::vector<WalRecord> log = Snapshot();
  if (prefix_len < log.size()) log.resize(prefix_len);

  // Pass 1 — fate analysis. Each append is pending until its writer's next
  // kCommit (winner) or kRollback (dead); a kCrash marker kills everything
  // still pending at that point, and so does the end of the log (the crash
  // being simulated).
  enum class Fate : uint8_t { kPending, kCommitted, kLost };
  std::vector<Fate> fate(log.size(), Fate::kLost);
  std::map<int, std::vector<size_t>> pending;  ///< writer -> append indices.
  std::vector<int> committed_writers;          ///< In commit order.
  std::map<int, RecoveredTx> payloads;
  /// Durable installs per writer (fallback writes for payload-less users).
  std::map<int, std::vector<std::pair<EntityId, Value>>> committed_appends;
  for (size_t i = 0; i < log.size(); ++i) {
    const WalRecord& record = log[i];
    switch (record.kind) {
      case WalRecord::Kind::kAppend:
        fate[i] = Fate::kPending;
        pending[record.writer].push_back(i);
        break;
      case WalRecord::Kind::kCommit: {
        for (size_t idx : pending[record.writer]) {
          fate[idx] = Fate::kCommitted;
          committed_appends[record.writer].push_back(
              {log[idx].entity, log[idx].value});
        }
        pending[record.writer].clear();
        committed_writers.push_back(record.writer);
        break;
      }
      case WalRecord::Kind::kRollback: {
        for (size_t idx : pending[record.writer]) fate[idx] = Fate::kLost;
        pending[record.writer].clear();
        break;
      }
      case WalRecord::Kind::kTxPayload: {
        RecoveredTx& tx = payloads[record.writer];
        tx.tx = record.writer;
        tx.name = record.name;
        tx.input_state = record.input_state;
        tx.feeders = record.feeders;
        tx.writes = record.writes;
        break;
      }
      case WalRecord::Kind::kCrash: {
        for (auto& [writer, indices] : pending) {
          for (size_t idx : indices) fate[idx] = Fate::kLost;
          indices.clear();
        }
        break;
      }
    }
  }
  for (auto& [writer, indices] : pending) {
    for (size_t idx : indices) fate[idx] = Fate::kLost;
  }

  // Pass 2 — redo. Re-append committed installs in log order (per-entity
  // log order equals original chain order), then flip their commit bits.
  RecoveryResult result;
  result.store = std::make_shared<VersionStore>(initial_);
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind != WalRecord::Kind::kAppend) continue;
    if (fate[i] == Fate::kCommitted) {
      result.store->Append(log[i].entity, log[i].value, log[i].writer);
      ++result.replayed_appends;
    } else {
      ++result.discarded_appends;
    }
  }
  for (int writer : committed_writers) {
    result.store->CommitWriter(writer);
    auto it = payloads.find(writer);
    // The engine logs the payload strictly before the commit marker, so a
    // committed writer always has one; tolerate store-only users (tests
    // driving CommitWriter directly) by synthesizing an empty payload.
    RecoveredTx tx;
    if (it != payloads.end()) {
      tx = it->second;
    } else {
      tx.tx = writer;
      tx.input_state = initial_;
      tx.writes = committed_appends[writer];
    }
    result.committed.push_back(std::move(tx));
  }
  return result;
}

}  // namespace nonserial
