#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <map>
#include <set>

#include "common/failpoint.h"
#include "common/logging.h"
// Header-only use (TraceEvent construction + the virtual OnEvent call):
// keeps the storage library free of link-time protocol dependencies.
#include "protocol/trace.h"
#include "storage/version_store.h"
#include "storage/wal_format.h"

namespace nonserial {
namespace {

using wal_format::DecodedFrame;
using wal_format::DecodeFrame;
using wal_format::FrameStatus;

/// Non-owning view of one segment, so the scan can run over the live
/// segments (Checkpoint, under the log mutex) or over a copied image
/// (Recover, lock-free) with the same code.
struct SegView {
  uint64_t seq = 0;
  const std::string* bytes = nullptr;
  bool lost = false;
};

/// True iff any complete, CRC-valid frame starts at or after `from` — the
/// probe that separates a torn tail (nothing valid follows the damage) from
/// mid-log corruption (valid data survives past it). Resynchronizes on the
/// frame magic, so a single flipped byte cannot hide a later valid frame.
bool AnyValidFrameFrom(const std::string& bytes, size_t from) {
  static const std::string kMagic = [] {
    std::string m;
    for (int i = 0; i < 4; ++i) {
      m.push_back(static_cast<char>((wal_format::kFrameMagic >> (8 * i)) & 0xFF));
    }
    return m;
  }();
  for (size_t pos = bytes.find(kMagic, from); pos != std::string::npos;
       pos = bytes.find(kMagic, pos + 1)) {
    if (DecodeFrame(bytes.data() + pos, bytes.size() - pos).status ==
        FrameStatus::kOk) {
      return true;
    }
  }
  return false;
}

struct ScanResult {
  std::vector<WalRecord> records;  ///< Decoded records before the damage.
  bool has_checkpoint = false;
  WalCheckpoint checkpoint;
  bool bad = false;              ///< Some undecodable point exists.
  bool valid_after_bad = false;  ///< Valid frames survive past the damage.
  bool lost_segment = false;     ///< A whole segment is gone.
  int64_t frames_scanned = 0;
  std::vector<SegmentDiagnostic> diags;
};

/// Walks the segments in order, decoding frames defensively. Records stop
/// accumulating at the first undecodable point; the rest of the image is
/// still probed so the caller can classify the damage (torn tail vs mid-log
/// corruption) and report per-segment diagnostics.
ScanResult ScanSegments(const std::vector<SegView>& segs) {
  ScanResult out;
  bool first_frame = true;
  // A log legitimately starts past seq 0 only after a checkpoint install
  // (ResetSegmentsLocked), which always writes the checkpoint as the first
  // frame. A first segment with a nonzero seq and no leading checkpoint
  // means the log's head was lost — without this check, dropping the first
  // segment(s) would replay a truncated history as if it were complete.
  // (A first frame that is itself damaged needs no flag here: the per-
  // segment scan below finds it at offset 0 and the torn-vs-corrupt
  // classification applies as usual.)
  if (!segs.empty() && segs[0].seq != 0 && !segs[0].lost &&
      !segs[0].bytes->empty()) {
    DecodedFrame f = DecodeFrame(segs[0].bytes->data(), segs[0].bytes->size());
    if (f.status == FrameStatus::kOk && !f.is_checkpoint) {
      SegmentDiagnostic gap;
      gap.seq = 0;
      gap.state = SegmentDiagnostic::State::kLost;
      gap.detail = "log head missing (first surviving segment has seq " +
                   std::to_string(segs[0].seq) + " and no checkpoint)";
      out.diags.push_back(std::move(gap));
      out.bad = true;
      out.lost_segment = true;
    }
  }
  for (size_t si = 0; si < segs.size(); ++si) {
    const SegView& seg = segs[si];
    if (si > 0 && seg.seq != segs[si - 1].seq + 1) {
      SegmentDiagnostic gap;
      gap.seq = segs[si - 1].seq + 1;
      gap.state = SegmentDiagnostic::State::kLost;
      gap.detail = "segment missing (sequence gap)";
      out.diags.push_back(std::move(gap));
      out.bad = true;
      out.lost_segment = true;
    }
    SegmentDiagnostic d;
    d.seq = seg.seq;
    d.bytes = static_cast<int64_t>(seg.bytes->size());
    if (seg.lost) {
      d.state = SegmentDiagnostic::State::kLost;
      d.detail = "segment lost (tombstone)";
      out.diags.push_back(std::move(d));
      out.bad = true;
      out.lost_segment = true;
      continue;
    }
    size_t pos = 0;
    while (pos < seg.bytes->size()) {
      DecodedFrame f = DecodeFrame(seg.bytes->data() + pos,
                                   seg.bytes->size() - pos);
      if (f.status != FrameStatus::kOk) {
        if (out.bad) {
          // Already past the first damage; just probe for survivors.
          if (AnyValidFrameFrom(*seg.bytes, pos + 1)) out.valid_after_bad = true;
        } else {
          out.bad = true;
          d.first_bad_offset = static_cast<int64_t>(pos);
          d.state = f.status == FrameStatus::kTruncated
                        ? SegmentDiagnostic::State::kTornTail
                        : SegmentDiagnostic::State::kCorrupt;
          d.detail = f.status == FrameStatus::kTruncated
                         ? "incomplete frame (torn write)"
                         : "undecodable frame (bad magic, CRC, or payload)";
          if (AnyValidFrameFrom(*seg.bytes, pos + 1)) out.valid_after_bad = true;
        }
        break;
      }
      ++out.frames_scanned;
      if (out.bad) {
        // Valid frame past the damage: mid-log corruption, not a torn tail.
        out.valid_after_bad = true;
      } else if (f.is_checkpoint) {
        if (first_frame) {
          out.has_checkpoint = true;
          out.checkpoint = std::move(f.checkpoint);
        }
        ++d.frames;
      } else {
        out.records.push_back(std::move(f.record));
        ++d.frames;
      }
      first_frame = false;
      pos += f.frame_bytes;
    }
    out.diags.push_back(std::move(d));
  }
  // A torn/bad tail with valid data after it is corruption in disguise —
  // upgrade the diagnostic so the report names what recovery acted on.
  if (out.valid_after_bad || out.lost_segment) {
    for (SegmentDiagnostic& d : out.diags) {
      if (d.state == SegmentDiagnostic::State::kTornTail) {
        d.state = SegmentDiagnostic::State::kCorrupt;
      }
    }
  } else {
    for (SegmentDiagnostic& d : out.diags) {
      if (d.state == SegmentDiagnostic::State::kCorrupt) {
        d.state = SegmentDiagnostic::State::kTornTail;
      }
    }
  }
  return out;
}

/// Fate analysis + redo over an already-decoded record prefix, on top of an
/// optional checkpoint base. This is PR 2's recovery semantics verbatim; the
/// framing layer above only decides which records reach this point.
void ReplayRecords(const std::vector<WalRecord>& log, const ValueVector& initial,
                   const WalCheckpoint* base, RecoveryResult* result) {
  enum class Fate : uint8_t { kPending, kCommitted, kLost };
  std::vector<Fate> fate(log.size(), Fate::kLost);
  std::map<int, std::vector<size_t>> pending;  ///< writer -> append indices.
  std::vector<int> committed_writers;          ///< In commit order.
  std::map<int, RecoveredTx> payloads;
  /// Durable installs per writer (fallback writes for payload-less users).
  std::map<int, std::vector<std::pair<EntityId, Value>>> committed_appends;
  /// Idempotency tokens staged per writer; bound at the writer's kCommit.
  std::map<int, uint64_t> staged_tokens;
  std::map<int, uint64_t> committed_tokens;
  for (size_t i = 0; i < log.size(); ++i) {
    const WalRecord& record = log[i];
    switch (record.kind) {
      case WalRecord::Kind::kAppend:
        fate[i] = Fate::kPending;
        pending[record.writer].push_back(i);
        break;
      case WalRecord::Kind::kCommit: {
        for (size_t idx : pending[record.writer]) {
          fate[idx] = Fate::kCommitted;
          committed_appends[record.writer].push_back(
              {log[idx].entity, log[idx].value});
        }
        pending[record.writer].clear();
        committed_writers.push_back(record.writer);
        auto tok = staged_tokens.find(record.writer);
        if (tok != staged_tokens.end()) {
          committed_tokens[record.writer] = tok->second;
          staged_tokens.erase(tok);
        }
        break;
      }
      case WalRecord::Kind::kRollback: {
        for (size_t idx : pending[record.writer]) fate[idx] = Fate::kLost;
        pending[record.writer].clear();
        staged_tokens.erase(record.writer);
        break;
      }
      case WalRecord::Kind::kTxPayload: {
        RecoveredTx& tx = payloads[record.writer];
        tx.tx = record.writer;
        tx.name = record.name;
        tx.input_state = record.input_state;
        tx.feeders = record.feeders;
        tx.writes = record.writes;
        break;
      }
      case WalRecord::Kind::kCommitToken:
        staged_tokens[record.writer] = record.token;
        break;
      case WalRecord::Kind::kCrash: {
        for (auto& [writer, indices] : pending) {
          for (size_t idx : indices) fate[idx] = Fate::kLost;
          indices.clear();
        }
        // A token staged by a writer that never committed dies with the
        // crash, exactly like its pending appends.
        staged_tokens.clear();
        break;
      }
    }
  }
  for (auto& [writer, indices] : pending) {
    for (size_t idx : indices) fate[idx] = Fate::kLost;
  }

  // Redo: checkpoint base first (already committed state, in original chain
  // order), then committed installs in log order, then one bulk commit —
  // every replayed version is committed by construction, so the O(versions)
  // sweep replaces per-writer CommitWriter scans.
  result->store = std::make_shared<VersionStore>(initial);
  if (base != nullptr) {
    for (size_t e = 0; e < base->chains.size(); ++e) {
      if (e >= initial.size()) break;
      for (const auto& [writer, value] : base->chains[e]) {
        result->store->Append(static_cast<EntityId>(e), value, writer);
      }
    }
    result->committed = base->committed;
  }
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind != WalRecord::Kind::kAppend) continue;
    if (fate[i] == Fate::kCommitted) {
      result->store->Append(log[i].entity, log[i].value, log[i].writer);
      ++result->replayed_appends;
    } else {
      ++result->discarded_appends;
    }
  }
  result->store->MarkAllCommitted();
  for (int writer : committed_writers) {
    auto it = payloads.find(writer);
    // The engine logs the payload strictly before the commit marker, so a
    // committed writer always has one; tolerate store-only users (tests
    // driving CommitWriter directly) by synthesizing an empty payload.
    RecoveredTx tx;
    if (it != payloads.end()) {
      tx = it->second;
    } else {
      tx.tx = writer;
      tx.input_state = initial;
      tx.writes = committed_appends[writer];
    }
    auto tok = committed_tokens.find(writer);
    if (tok != committed_tokens.end()) tx.commit_token = tok->second;
    result->committed.push_back(std::move(tx));
  }
}

WalRecord MakeRecord(WalRecord::Kind kind, int writer) {
  WalRecord record;
  record.kind = kind;
  record.writer = writer;
  return record;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() { StopWriterThread(); }

void WriteAheadLog::LogAppend(EntityId entity, Value value, int writer) {
  WalRecord record = MakeRecord(WalRecord::Kind::kAppend, writer);
  record.entity = entity;
  record.value = value;
  std::string frame;
  wal_format::AppendRecordFrame(record, &frame);
  SubmitFrame(std::move(frame), /*is_record=*/true, /*is_commit=*/false);
}

WalCommitHandle WriteAheadLog::LogCommit(int writer) {
  std::string frame;
  wal_format::AppendRecordFrame(MakeRecord(WalRecord::Kind::kCommit, writer),
                                &frame);
  WalCommitHandle handle;
  handle.state_ =
      SubmitFrame(std::move(frame), /*is_record=*/true, /*is_commit=*/true);
  return handle;
}

void WriteAheadLog::LogRollback(int writer) {
  std::string frame;
  wal_format::AppendRecordFrame(MakeRecord(WalRecord::Kind::kRollback, writer),
                                &frame);
  SubmitFrame(std::move(frame), /*is_record=*/true, /*is_commit=*/false);
}

void WriteAheadLog::LogCommitToken(int writer, uint64_t token) {
  WalRecord record = MakeRecord(WalRecord::Kind::kCommitToken, writer);
  record.token = token;
  std::string frame;
  wal_format::AppendRecordFrame(record, &frame);
  SubmitFrame(std::move(frame), /*is_record=*/true, /*is_commit=*/false);
}

void WriteAheadLog::LogTxPayload(int writer, std::string name,
                                 ValueVector input_state,
                                 std::vector<int> feeders,
                                 std::vector<std::pair<EntityId, Value>> writes) {
  WalRecord record = MakeRecord(WalRecord::Kind::kTxPayload, writer);
  record.name = std::move(name);
  record.input_state = std::move(input_state);
  record.feeders = std::move(feeders);
  record.writes = std::move(writes);
  std::string frame;
  wal_format::AppendRecordFrame(record, &frame);
  SubmitFrame(std::move(frame), /*is_record=*/true, /*is_commit=*/false);
}

void WriteAheadLog::LogCrashMarker() {
  // Quiesce the pipeline first: wait out any in-flight batch, then discard
  // the volatile staging buffer — staged-but-unflushed frames are exactly
  // what a crash loses — failing their commit acks. stage_mu_ stays held
  // across the mu_ section (the one place the two locks nest, and the
  // order that defines the lock hierarchy: stage_mu_ before mu_) so no new
  // frame can slip in between the discard and the marker.
  std::unique_lock<std::mutex> stage_lock(stage_mu_);
  retire_cv_.wait(stage_lock, [this] { return !writer_busy_; });
  int64_t staged_dropped = 0;
  int64_t failed_acks = 0;
  if (!staging_.empty()) {
    for (StagedFrame& frame : staging_) {
      if (frame.ack != nullptr) {
        frame.ack->done = true;
        frame.ack->ok = false;
        ++failed_acks;
      }
    }
    staged_dropped = static_cast<int64_t>(staging_.size());
    retired_seq_ += staging_.size();
    staging_.clear();
    retire_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.group_staged_dropped += staged_dropped;
  stats_.group_commit_failed_acks += failed_acks;
  // Restart replaces the medium: clear the sticky failure and physically
  // drop a torn tail so the marker (and everything after it) extends a
  // clean frame sequence.
  media_failed_ = false;
  RepairTailLocked();
  AppendRecordLocked(MakeRecord(WalRecord::Kind::kCrash, -1));
}

bool WriteAheadLog::WaitDurable(const WalCommitHandle& handle) const {
  const std::shared_ptr<WalCommitHandle::AckState>& state = handle.state_;
  if (state == nullptr) return true;
  std::unique_lock<std::mutex> stage_lock(stage_mu_);
  if (!state->done) {
    ack_stalls_.fetch_add(1, std::memory_order_relaxed);
    retire_cv_.wait(stage_lock, [&state] { return state->done; });
  }
  return state->ok;
}

std::shared_ptr<WalCommitHandle::AckState> WriteAheadLog::SubmitFrame(
    std::string frame, bool is_record, bool is_commit) {
  std::shared_ptr<WalCommitHandle::AckState> ack;
  if (is_commit) ack = std::make_shared<WalCommitHandle::AckState>();
  {
    std::lock_guard<std::mutex> stage_lock(stage_mu_);
    if (group_enabled_) {
      StagedFrame staged;
      staged.bytes = std::move(frame);
      staged.is_record = is_record;
      staged.ack = ack;
      staging_.push_back(std::move(staged));
      ++staged_seq_;
      stage_cv_.notify_one();
      return ack;
    }
  }
  // Sync mode: write through under the log mutex, paying the device flush
  // inline per commit record — the single-global-lock baseline that group
  // commit exists to beat.
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (media_failed_) {
      if (is_record) ++stats_.dropped_records;
    } else {
      ok = AppendFrameLocked(frame, is_record);
      if (ok && is_record) {
        ++stats_.records;
        ++stats_.total_records;
      }
      if (ok && is_commit) DeviceFlushLocked();
    }
  }
  if (ack != nullptr) {
    std::lock_guard<std::mutex> stage_lock(stage_mu_);
    ack->done = true;
    ack->ok = ok;
    retire_cv_.notify_all();
  }
  return ack;
}

void WriteAheadLog::EnableGroupCommit(const GroupCommitOptions& options) {
  std::lock_guard<std::mutex> lifecycle_lock(writer_lifecycle_mu_);
  std::unique_lock<std::mutex> stage_lock(stage_mu_);
  group_options_ = options;
  if (group_enabled_) return;
  if (writer_.joinable()) {
    // A previously stopped writer: it has already cleared group_enabled_
    // on its way out (or is about to), so the join is immediate. Joined
    // outside stage_mu_ — the exiting thread takes that lock last.
    stage_lock.unlock();
    writer_.join();
    stage_lock.lock();
  }
  group_enabled_ = true;
  writer_stop_ = false;
  writer_ = std::thread([this] { WriterLoop(); });
}

void WriteAheadLog::DisableGroupCommit() { StopWriterThread(); }

void WriteAheadLog::StopWriterThread() {
  // Teardown paths converge here from several owners (driver scope exit,
  // engine shutdown, server-initiated teardown, the destructor), and they
  // are NOT guaranteed to serialize with each other — the lifecycle mutex
  // makes concurrent or repeated stops safe (a bare double join would be
  // UB). Loggers may race freely. When EnableGroupCommit was never called
  // (sync-mode runs, driver error paths) there is no thread to join and
  // this is a guarded no-op.
  std::lock_guard<std::mutex> lifecycle_lock(writer_lifecycle_mu_);
  {
    std::lock_guard<std::mutex> stage_lock(stage_mu_);
    if (!group_enabled_) return;
    writer_stop_ = true;
    stage_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  std::lock_guard<std::mutex> stage_lock(stage_mu_);
  writer_stop_ = false;
  flush_hold_ = false;
}

void WriteAheadLog::Flush() {
  std::unique_lock<std::mutex> stage_lock(stage_mu_);
  if (!group_enabled_) return;
  // Note: blocks forever under HoldFlushesForTest(true) — release the hold
  // (or LogCrashMarker) first.
  const uint64_t target = staged_seq_;
  retire_cv_.wait(stage_lock, [this, target] { return retired_seq_ >= target; });
}

bool WriteAheadLog::group_commit_enabled() const {
  std::lock_guard<std::mutex> stage_lock(stage_mu_);
  return group_enabled_;
}

uint64_t WriteAheadLog::PipelineDepth() const {
  std::lock_guard<std::mutex> stage_lock(stage_mu_);
  return staged_seq_ - retired_seq_;
}

void WriteAheadLog::set_flush_us(int64_t us) {
  flush_us_.store(us, std::memory_order_relaxed);
}

void WriteAheadLog::SetObserver(TraceSink* sink) {
  observer_.store(sink, std::memory_order_release);
}

void WriteAheadLog::HoldFlushesForTest(bool hold) {
  std::lock_guard<std::mutex> stage_lock(stage_mu_);
  flush_hold_ = hold;
  if (!hold) stage_cv_.notify_all();
}

void WriteAheadLog::WriterLoop() {
  for (;;) {
    std::vector<StagedFrame> batch;
    {
      std::unique_lock<std::mutex> stage_lock(stage_mu_);
      stage_cv_.wait(stage_lock, [this] {
        return writer_stop_ || (!staging_.empty() && !flush_hold_);
      });
      if (staging_.empty() && writer_stop_) {
        // Flip the mode flag before exiting so no frame can be staged with
        // nobody left to flush it: the next SubmitFrame goes sync.
        group_enabled_ = false;
        return;
      }
      const size_t take =
          std::min(staging_.size(), group_options_.max_batch_frames);
      batch.assign(std::make_move_iterator(staging_.begin()),
                   std::make_move_iterator(staging_.begin() + take));
      staging_.erase(staging_.begin(),
                     staging_.begin() + static_cast<ptrdiff_t>(take));
      writer_busy_ = true;
    }
    // Flushing happens with no lock held but mu_ inside FlushBatch: batch
    // N+1 stages (stage_mu_) while batch N writes (mu_) — the pipeline.
    FlushBatch(std::move(batch));
  }
}

void WriteAheadLog::FlushBatch(std::vector<StagedFrame> batch) {
  // Pack the batch's frames into chunks of at most one segment each, so
  // the whole batch reaches the medium in as few writes as possible while
  // keeping the per-write failpoint semantics (a fault hits a chunk — and
  // may therefore tear or swallow many frames at once).
  struct Chunk {
    std::string bytes;
    std::vector<size_t> record_ends;  ///< Offset just past each record frame.
  };
  std::vector<Chunk> chunks;
  int64_t commits = 0;
  std::vector<std::shared_ptr<WalCommitHandle::AckState>> acks;
  for (StagedFrame& frame : batch) {
    if (frame.ack != nullptr) {
      acks.push_back(std::move(frame.ack));
      ++commits;
    }
    if (chunks.empty() ||
        (!chunks.back().bytes.empty() &&
         chunks.back().bytes.size() + frame.bytes.size() > segment_bytes_)) {
      chunks.emplace_back();
    }
    Chunk& chunk = chunks.back();
    chunk.bytes.append(frame.bytes);
    if (frame.is_record) chunk.record_ends.push_back(chunk.bytes.size());
  }

  // All-or-nothing acks: a media fault on ANY chunk fails every commit ack
  // in the batch — no partial-batch success. Frames that reached the
  // medium before the fault stay in the image (durable but unacked, the
  // standard crash ambiguity); recovery treats them like any other record.
  bool ok = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Chunk& chunk : chunks) {
      if (media_failed_) {
        stats_.dropped_records +=
            static_cast<int64_t>(chunk.record_ends.size());
        ok = false;
        continue;
      }
      if (!AppendChunkLocked(chunk.bytes, chunk.record_ends)) ok = false;
    }
    if (ok) DeviceFlushLocked();
    ++stats_.group_commit_batches;
    stats_.group_commit_frames += static_cast<int64_t>(batch.size());
    stats_.group_commit_commits += commits;
    if (!ok) stats_.group_commit_failed_acks += commits;
  }
  if (TraceSink* sink = observer_.load(std::memory_order_acquire)) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kWalBatchFlush;
    event.protocol = "wal";
    event.tx = ok ? 1 : 0;
    event.other = static_cast<int>(commits);
    event.value = static_cast<Value>(batch.size());
    sink->OnEvent(event);
  }
  RetireFrames(batch.size(), std::move(acks), ok);
}

void WriteAheadLog::RetireFrames(
    size_t n, std::vector<std::shared_ptr<WalCommitHandle::AckState>> acks,
    bool ok) {
  std::lock_guard<std::mutex> stage_lock(stage_mu_);
  for (const std::shared_ptr<WalCommitHandle::AckState>& ack : acks) {
    ack->done = true;
    ack->ok = ok;
  }
  retired_seq_ += n;
  writer_busy_ = false;
  retire_cv_.notify_all();
}

void WriteAheadLog::DeviceFlushLocked() {
  ++stats_.device_flushes;
  const int64_t us = flush_us_.load(std::memory_order_relaxed);
  if (us <= 0) return;
  // Busy-wait: models the storage barrier's latency deterministically —
  // sleep_for would let the scheduler batch "independent" flushes.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

void WriteAheadLog::AppendRecordLocked(const WalRecord& record) {
  if (media_failed_) {
    ++stats_.dropped_records;
    return;
  }
  std::string frame;
  wal_format::AppendRecordFrame(record, &frame);
  if (AppendFrameLocked(frame, /*is_record=*/true)) {
    ++stats_.records;
    ++stats_.total_records;
  }
}

bool WriteAheadLog::AppendFrameLocked(const std::string& frame, bool is_record) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  if (NONSERIAL_FAILPOINT("wal.write_error")) {
    ++stats_.write_errors;
    media_failed_ = true;
    return false;
  }
  if (segments_.empty() || segments_.back().lost ||
      (!segments_.back().bytes.empty() &&
       segments_.back().bytes.size() + frame.size() > segment_bytes_)) {
    SealActiveSegmentLocked();
    Segment fresh;
    fresh.seq = next_segment_seq_++;
    segments_.push_back(std::move(fresh));
  }
  Segment& seg = segments_.back();
  if (NONSERIAL_FAILPOINT("wal.torn_tail")) {
    // A strict nonzero prefix of the frame reaches the medium, then the
    // device dies: the classic torn write.
    size_t keep = 1 + static_cast<size_t>(registry.DrawBits() % (frame.size() - 1));
    seg.bytes.append(frame.data(), keep);
    stats_.bytes += static_cast<int64_t>(keep);
    ++stats_.torn_writes;
    media_failed_ = true;
    return false;
  }
  size_t start = seg.bytes.size();
  seg.bytes.append(frame);
  stats_.bytes += static_cast<int64_t>(frame.size());
  if (is_record) ++seg.frames;
  if (NONSERIAL_FAILPOINT("wal.bit_flip")) {
    // Silent corruption: the write "succeeds" (the writer counts it durable)
    // but one byte of the frame lands wrong. Offset and bit come from the
    // deterministic fault stream.
    uint64_t bits = registry.DrawBits();
    size_t offset = start + static_cast<size_t>(bits % frame.size());
    seg.bytes[offset] ^= static_cast<char>(1u << ((bits >> 32) % 8));
    ++stats_.bit_flips;
  }
  return true;
}

bool WriteAheadLog::AppendChunkLocked(const std::string& chunk,
                                      const std::vector<size_t>& record_ends) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  const int64_t records = static_cast<int64_t>(record_ends.size());
  if (NONSERIAL_FAILPOINT("wal.write_error")) {
    ++stats_.write_errors;
    stats_.dropped_records += records;
    media_failed_ = true;
    return false;
  }
  if (segments_.empty() || segments_.back().lost ||
      (!segments_.back().bytes.empty() &&
       segments_.back().bytes.size() + chunk.size() > segment_bytes_)) {
    SealActiveSegmentLocked();
    Segment fresh;
    fresh.seq = next_segment_seq_++;
    segments_.push_back(std::move(fresh));
  }
  Segment& seg = segments_.back();
  if (NONSERIAL_FAILPOINT("wal.torn_tail")) {
    // A strict nonzero prefix of the chunk reaches the medium, then the
    // device dies — a torn write can now truncate most of a batch. Frames
    // that landed whole in the prefix ARE durable; the partial one is the
    // torn tail recovery truncates.
    const size_t keep =
        1 + static_cast<size_t>(registry.DrawBits() % (chunk.size() - 1));
    seg.bytes.append(chunk.data(), keep);
    stats_.bytes += static_cast<int64_t>(keep);
    int64_t durable = 0;
    for (size_t end : record_ends) {
      if (end <= keep) ++durable;
    }
    seg.frames += durable;
    stats_.records += durable;
    stats_.total_records += durable;
    stats_.dropped_records += records - durable;
    ++stats_.torn_writes;
    media_failed_ = true;
    return false;
  }
  const size_t start = seg.bytes.size();
  seg.bytes.append(chunk);
  stats_.bytes += static_cast<int64_t>(chunk.size());
  seg.frames += records;
  stats_.records += records;
  stats_.total_records += records;
  if (NONSERIAL_FAILPOINT("wal.bit_flip")) {
    // Silent corruption: the chunk "succeeds" (the batch still acks) but
    // one byte lands wrong — recovery's scan is the only detector.
    const uint64_t bits = registry.DrawBits();
    const size_t offset = start + static_cast<size_t>(bits % chunk.size());
    seg.bytes[offset] ^= static_cast<char>(1u << ((bits >> 32) % 8));
    ++stats_.bit_flips;
  }
  return true;
}

void WriteAheadLog::SealActiveSegmentLocked() {
  if (segments_.empty()) return;
  Segment& seg = segments_.back();
  if (seg.lost || seg.bytes.empty()) return;
  if (NONSERIAL_FAILPOINT("wal.segment_lost")) {
    // The sealed segment's data vanishes; the tombstone (seq + lost flag)
    // survives so recovery can tell "never written" from "written and lost".
    stats_.bytes -= static_cast<int64_t>(seg.bytes.size());
    seg.bytes.clear();
    seg.bytes.shrink_to_fit();
    seg.lost = true;
    ++stats_.lost_segments;
  }
}

void WriteAheadLog::RepairTailLocked() {
  while (!segments_.empty()) {
    Segment& seg = segments_.back();
    if (seg.lost) return;  // Tombstones stay for recovery to report.
    size_t pos = 0;
    int64_t records = 0;
    while (pos < seg.bytes.size()) {
      DecodedFrame f = DecodeFrame(seg.bytes.data() + pos, seg.bytes.size() - pos);
      if (f.status != FrameStatus::kOk) break;
      if (!f.is_checkpoint) ++records;
      pos += f.frame_bytes;
    }
    if (pos == seg.bytes.size()) return;  // Clean tail.
    // Mid-segment corruption with valid frames after it is NOT repaired —
    // silently truncating it would absorb corruption; recovery must see and
    // report it.
    if (AnyValidFrameFrom(seg.bytes, pos + 1)) return;
    stats_.bytes -= static_cast<int64_t>(seg.bytes.size() - pos);
    stats_.records -= seg.frames - records;
    seg.bytes.resize(pos);
    seg.frames = records;
    if (seg.bytes.empty() && segments_.size() > 1) {
      segments_.pop_back();
      continue;
    }
    return;
  }
}

size_t WriteAheadLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(stats_.records);
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats s = stats_;
  s.segments = static_cast<int64_t>(segments_.size());
  s.media_failed = media_failed_;
  s.group_commit_stalls = ack_stalls_.load(std::memory_order_relaxed);
  return s;
}

std::vector<WalRecord> WriteAheadLog::Snapshot() const { return TailSince(0); }

std::vector<WalRecord> WriteAheadLog::TailSince(size_t index) const {
  // Copy only the segments that can contain records >= index; whole leading
  // segments are skipped via their record counts without decoding a byte.
  std::vector<std::string> bytes;
  size_t skip_in_first = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t before = 0;
    for (const Segment& seg : segments_) {
      if (seg.lost) {
        before += static_cast<size_t>(seg.frames);
        continue;
      }
      if (bytes.empty() &&
          before + static_cast<size_t>(seg.frames) <= index) {
        before += static_cast<size_t>(seg.frames);
        continue;
      }
      if (bytes.empty()) skip_in_first = index > before ? index - before : 0;
      bytes.push_back(seg.bytes);
    }
  }
  std::vector<WalRecord> out;
  size_t to_skip = skip_in_first;
  for (const std::string& segment : bytes) {
    size_t pos = 0;
    while (pos < segment.size()) {
      DecodedFrame f = DecodeFrame(segment.data() + pos, segment.size() - pos);
      if (f.status != FrameStatus::kOk) return out;  // Defensive stop.
      pos += f.frame_bytes;
      if (f.is_checkpoint) continue;
      if (to_skip > 0) {
        --to_skip;
        continue;
      }
      out.push_back(std::move(f.record));
    }
  }
  return out;
}

std::string WriteAheadLog::SerializedImage() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string image;
  for (const Segment& seg : segments_) {
    wal_format::AppendSegmentHeader(seg.seq, seg.lost, &image);
    if (!seg.lost) image.append(seg.bytes);
  }
  return image;
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::FromImage(
    const std::string& image, ValueVector initial, size_t segment_bytes) {
  auto wal = std::make_unique<WriteAheadLog>(std::move(initial), segment_bytes);
  static const std::string kMagic = [] {
    std::string m;
    for (int i = 0; i < 8; ++i) {
      m.push_back(
          static_cast<char>((wal_format::kSegmentMagic >> (8 * i)) & 0xFF));
    }
    return m;
  }();
  std::vector<size_t> bounds;
  for (size_t pos = image.find(kMagic); pos != std::string::npos;
       pos = image.find(kMagic, pos + 1)) {
    bounds.push_back(pos);
  }
  auto add_garbage = [&wal](std::string chunk) {
    // Bytes outside any decodable segment structure (header cut mid-way, or
    // a header destroyed by corruption): keep them as-is so recovery sees
    // and classifies the damage instead of it disappearing in the parse.
    if (!wal->segments_.empty()) {
      wal->segments_.back().bytes.append(chunk);
    } else if (!chunk.empty()) {
      Segment seg;
      seg.seq = 0;
      seg.bytes = std::move(chunk);
      wal->segments_.push_back(std::move(seg));
    }
  };
  if (bounds.empty()) {
    add_garbage(image);
  } else {
    if (bounds[0] > 0) add_garbage(image.substr(0, bounds[0]));
    for (size_t i = 0; i < bounds.size(); ++i) {
      size_t b = bounds[i];
      wal_format::SegmentHeader header;
      if (!wal_format::DecodeSegmentHeader(image.data() + b, image.size() - b,
                                           &header)) {
        add_garbage(image.substr(b));  // Truncated header at the tail.
        break;
      }
      size_t end = i + 1 < bounds.size() ? bounds[i + 1] : image.size();
      Segment seg;
      seg.seq = header.seq;
      seg.lost = header.lost;
      if (!seg.lost) {
        seg.bytes = image.substr(b + wal_format::kSegmentHeaderBytes,
                                 end - b - wal_format::kSegmentHeaderBytes);
      }
      wal->segments_.push_back(std::move(seg));
    }
  }
  // Rebuild counters from what actually decodes (the image may be damaged).
  for (Segment& seg : wal->segments_) {
    wal->next_segment_seq_ = std::max(wal->next_segment_seq_, seg.seq + 1);
    wal->stats_.bytes += static_cast<int64_t>(seg.bytes.size());
    size_t pos = 0;
    while (pos < seg.bytes.size()) {
      DecodedFrame f = DecodeFrame(seg.bytes.data() + pos, seg.bytes.size() - pos);
      if (f.status != FrameStatus::kOk) break;
      if (!f.is_checkpoint) ++seg.frames;
      pos += f.frame_bytes;
    }
    wal->stats_.records += seg.frames;
    wal->stats_.total_records += seg.frames;
  }
  return wal;
}

RecoveryResult WriteAheadLog::Recover(size_t prefix_len) const {
  RecoveryOptions options;
  options.prefix_records = prefix_len;
  return Recover(options);
}

RecoveryResult WriteAheadLog::Recover(const RecoveryOptions& options) const {
  auto start = std::chrono::steady_clock::now();
  // Copy the image under the lock, scan and replay outside it.
  std::vector<Segment> owned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    owned = segments_;
  }
  std::vector<SegView> views;
  views.reserve(owned.size());
  for (const Segment& seg : owned) {
    views.push_back({seg.seq, &seg.bytes, seg.lost});
  }
  ScanResult scan = ScanSegments(views);

  RecoveryResult result;
  result.frames_scanned = scan.frames_scanned;
  result.checkpoint_restored = scan.has_checkpoint;
  result.corruption_detected = scan.valid_after_bad || scan.lost_segment;
  if (scan.bad && !result.corruption_detected) {
    result.truncated_tail = true;
    result.frames_truncated = 1;  // The one incomplete/garbled tail frame.
  }
  result.segments = std::move(scan.diags);

  std::vector<WalRecord> log = std::move(scan.records);
  result.image_records = static_cast<int64_t>(log.size());
  if (options.prefix_records < log.size()) log.resize(options.prefix_records);
  result.replayed_records = static_cast<int64_t>(log.size());
  ReplayRecords(log, initial_, scan.has_checkpoint ? &scan.checkpoint : nullptr,
                &result);

  if (result.corruption_detected) {
    if (options.best_effort) {
      result.salvaged = true;
      result.frames_salvaged = static_cast<int64_t>(log.size());
    } else {
      result.status = Status::Internal(
          "mid-log corruption: valid data exists past an undecodable point "
          "(or a segment is lost); only the prefix before the damage was "
          "replayed — see RecoveryResult::segments, or recover with "
          "best_effort to salvage");
    }
  }
  result.recovery_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  return result;
}

Status WriteAheadLog::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (media_failed_) {
    return Status::FailedPrecondition(
        "checkpoint refused: the medium has a sticky write failure");
  }
  std::vector<SegView> views;
  views.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    views.push_back({seg.seq, &seg.bytes, seg.lost});
  }
  ScanResult scan = ScanSegments(views);
  if (scan.bad || scan.lost_segment) {
    // Checkpointing a damaged log would launder the corruption into a
    // "clean" checkpoint; refuse and leave the image for Recover to report.
    return Status::Internal("checkpoint refused: log image is damaged");
  }

  RecoveryResult replayed;
  ReplayRecords(scan.records, initial_,
                scan.has_checkpoint ? &scan.checkpoint : nullptr, &replayed);

  WalCheckpoint checkpoint;
  checkpoint.committed = std::move(replayed.committed);
  checkpoint.chains.resize(initial_.size());
  for (size_t e = 0; e < initial_.size(); ++e) {
    replayed.store->ForEachVersion(
        static_cast<EntityId>(e), [&](const Version& v, int) {
          if (v.writer == kInitialWriter || v.dead || !v.committed) return;
          checkpoint.chains[e].emplace_back(v.writer, v.value);
        });
  }

  // Carry forward what the checkpoint cannot absorb: appends still pending
  // at the end of the log, and the latest payload of each writer that has
  // not yet resolved (its commit may land after the checkpoint). Commit /
  // rollback / crash markers are consumed by the analysis above.
  std::map<int, std::vector<size_t>> pending;
  std::map<int, size_t> payload_at;
  std::map<int, size_t> token_at;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const WalRecord& r = scan.records[i];
    switch (r.kind) {
      case WalRecord::Kind::kAppend:
        pending[r.writer].push_back(i);
        break;
      case WalRecord::Kind::kCommit:
      case WalRecord::Kind::kRollback:
        pending[r.writer].clear();
        payload_at.erase(r.writer);
        token_at.erase(r.writer);
        break;
      case WalRecord::Kind::kTxPayload:
        payload_at[r.writer] = i;
        break;
      case WalRecord::Kind::kCommitToken:
        token_at[r.writer] = i;
        break;
      case WalRecord::Kind::kCrash:
        pending.clear();
        payload_at.clear();
        token_at.clear();
        break;
    }
  }
  std::set<size_t> carry;
  for (const auto& [writer, indices] : pending) {
    carry.insert(indices.begin(), indices.end());
  }
  for (const auto& [writer, index] : payload_at) carry.insert(index);
  for (const auto& [writer, index] : token_at) carry.insert(index);

  std::string frames;
  wal_format::AppendCheckpointFrame(checkpoint, &frames);
  for (size_t index : carry) {
    wal_format::AppendRecordFrame(scan.records[index], &frames);
  }
  ResetSegmentsLocked(std::move(frames), static_cast<int64_t>(carry.size()));
  return Status::OK();
}

int64_t WriteAheadLog::CompactTo(const RecoveryResult& recovered) {
  WalCheckpoint checkpoint;
  checkpoint.committed = recovered.committed;
  checkpoint.chains.resize(initial_.size());
  if (recovered.store != nullptr) {
    for (size_t e = 0; e < initial_.size(); ++e) {
      recovered.store->ForEachVersion(
          static_cast<EntityId>(e), [&](const Version& v, int) {
            if (v.writer == kInitialWriter || v.dead || !v.committed) return;
            checkpoint.chains[e].emplace_back(v.writer, v.value);
          });
    }
  }
  std::string frames;
  wal_format::AppendCheckpointFrame(checkpoint, &frames);
  std::lock_guard<std::mutex> lock(mu_);
  int64_t reclaimed = static_cast<int64_t>(segments_.size());

  // Consistent view: `recovered` describes the image as it was when the
  // recovery pass scanned it, but commits may have landed since (a live
  // committer racing the compaction). Re-scan the live image UNDER the
  // lock and split it at the recovery's boundaries, so nothing the
  // checkpoint doesn't absorb is compacted away.
  std::vector<SegView> views;
  views.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    views.push_back({seg.seq, &seg.bytes, seg.lost});
  }
  ScanResult scan = ScanSegments(views);
  const size_t replayed = std::min(
      scan.records.size(),
      static_cast<size_t>(std::max<int64_t>(recovered.replayed_records, 0)));
  const size_t image = std::min(
      scan.records.size(),
      static_cast<size_t>(std::max<int64_t>(recovered.image_records,
                                            recovered.replayed_records)));
  const bool damaged = scan.bad || scan.lost_segment;

  // Stage 1 — tentative carry. (a) The records the recovery pass never saw
  // (they landed after its scan), verbatim. (b) For each writer with such
  // a suffix record, its appends still pending and payload still
  // unresolved at the end of the replayed prefix: a suffix kCommit must
  // commit the writer's FULL write set, not just the appends that happened
  // to land post-scan. Writers with no suffix record keep the PR 5
  // contract — their in-flight work dies with the compacted history (the
  // recovered state is the new durable truth). A damaged image drops the
  // carry entirely: the suffix past the damage is discarded with the
  // history, and its pending writers belong to an epoch the damage ended.
  // Records in [replayed, image) were deliberately cut by the crash-point
  // simulation and stay cut.
  std::vector<WalRecord> tentative;
  if (!damaged) {
    std::set<int> suffix_writers;
    for (size_t i = image; i < scan.records.size(); ++i) {
      if (scan.records[i].kind != WalRecord::Kind::kCrash) {
        suffix_writers.insert(scan.records[i].writer);
      }
    }
    std::map<int, std::vector<size_t>> pending;
    std::map<int, size_t> payload_at;
    std::map<int, size_t> token_at;
    for (size_t i = 0; i < replayed; ++i) {
      const WalRecord& r = scan.records[i];
      switch (r.kind) {
        case WalRecord::Kind::kAppend:
          pending[r.writer].push_back(i);
          break;
        case WalRecord::Kind::kCommit:
        case WalRecord::Kind::kRollback:
          pending[r.writer].clear();
          payload_at.erase(r.writer);
          token_at.erase(r.writer);
          break;
        case WalRecord::Kind::kTxPayload:
          payload_at[r.writer] = i;
          break;
        case WalRecord::Kind::kCommitToken:
          token_at[r.writer] = i;
          break;
        case WalRecord::Kind::kCrash:
          pending.clear();
          payload_at.clear();
          token_at.clear();
          break;
      }
    }
    std::set<size_t> carry;
    for (const auto& [writer, indices] : pending) {
      if (!suffix_writers.contains(writer)) continue;
      carry.insert(indices.begin(), indices.end());
    }
    for (const auto& [writer, index] : payload_at) {
      if (suffix_writers.contains(writer)) carry.insert(index);
    }
    for (const auto& [writer, index] : token_at) {
      if (suffix_writers.contains(writer)) carry.insert(index);
    }
    for (size_t index : carry) tentative.push_back(scan.records[index]);
    for (size_t i = image; i < scan.records.size(); ++i) {
      tentative.push_back(scan.records[i]);
    }
  }

  // Stage 2 — dead-record elimination. A suffix kCommit needs its writer's
  // carried appends/payload; but appends killed by a rollback or crash
  // marker within the carried sequence are dead forever, and once they are
  // dropped the kRollback/kCrash records fence nothing and drop too (this
  // is what keeps a post-crash compaction at zero records instead of
  // carrying `pending appends + the crash marker that kills them`).
  std::vector<bool> keep(tentative.size(), true);
  {
    std::map<int, std::vector<size_t>> pending;
    std::map<int, size_t> payload_at;
    std::map<int, size_t> token_at;
    for (size_t i = 0; i < tentative.size(); ++i) {
      const WalRecord& r = tentative[i];
      switch (r.kind) {
        case WalRecord::Kind::kAppend:
          pending[r.writer].push_back(i);
          break;
        case WalRecord::Kind::kCommit:
          // Commits always stay: their effect is not in the checkpoint.
          pending[r.writer].clear();
          payload_at.erase(r.writer);
          token_at.erase(r.writer);
          break;
        case WalRecord::Kind::kRollback: {
          for (size_t idx : pending[r.writer]) keep[idx] = false;
          pending[r.writer].clear();
          auto it = payload_at.find(r.writer);
          if (it != payload_at.end()) {
            keep[it->second] = false;
            payload_at.erase(it);
          }
          auto tok = token_at.find(r.writer);
          if (tok != token_at.end()) {
            keep[tok->second] = false;
            token_at.erase(tok);
          }
          keep[i] = false;
          break;
        }
        case WalRecord::Kind::kTxPayload: {
          auto it = payload_at.find(r.writer);
          if (it != payload_at.end()) keep[it->second] = false;  // Superseded.
          payload_at[r.writer] = i;
          break;
        }
        case WalRecord::Kind::kCommitToken: {
          auto it = token_at.find(r.writer);
          if (it != token_at.end()) keep[it->second] = false;  // Superseded.
          token_at[r.writer] = i;
          break;
        }
        case WalRecord::Kind::kCrash: {
          for (auto& [writer, indices] : pending) {
            for (size_t idx : indices) keep[idx] = false;
            indices.clear();
          }
          for (auto& [writer, index] : payload_at) keep[index] = false;
          payload_at.clear();
          for (auto& [writer, index] : token_at) keep[index] = false;
          token_at.clear();
          keep[i] = false;
          break;
        }
      }
    }
  }
  int64_t carried = 0;
  for (size_t i = 0; i < tentative.size(); ++i) {
    if (!keep[i]) continue;
    wal_format::AppendRecordFrame(tentative[i], &frames);
    ++carried;
  }

  // The recovered state is the new durable truth; a crash-recovery compaction
  // also stands in for the medium swap a restart performs.
  media_failed_ = false;
  ResetSegmentsLocked(std::move(frames), carried);
  return reclaimed;
}

void WriteAheadLog::ResetSegmentsLocked(std::string frames,
                                        int64_t record_count) {
  int64_t reclaimed = static_cast<int64_t>(segments_.size());
  segments_.clear();
  Segment seg;
  seg.seq = next_segment_seq_++;
  seg.frames = record_count;
  seg.bytes = std::move(frames);
  stats_.bytes = static_cast<int64_t>(seg.bytes.size());
  stats_.records = record_count;
  segments_.push_back(std::move(seg));
  ++stats_.checkpoints;
  ++stats_.compactions;
  stats_.segments_reclaimed += reclaimed;
}

}  // namespace nonserial
