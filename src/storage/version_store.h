#ifndef NONSERIAL_STORAGE_VERSION_STORE_H_
#define NONSERIAL_STORAGE_VERSION_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "predicate/value.h"

namespace nonserial {

/// Writer id for the initial version of every entity (the paper's pseudo-
/// transaction t_0).
constexpr int kInitialWriter = -1;

/// One retained version of an entity. Versions are never physically removed
/// (the history of every data item is preserved — Section 2.4); rollback
/// marks a version dead instead so outstanding references stay valid.
struct Version {
  Value value = 0;
  int writer = kInitialWriter;  ///< Runtime transaction id that created it.
  int64_t seq = 0;              ///< Global creation sequence number.
  bool committed = false;       ///< Writer has committed.
  bool dead = false;            ///< Rolled back; invisible to new requests.
};

/// A reference to a specific version: entity plus index in its chain.
struct VersionRef {
  EntityId entity = kInvalidEntity;
  int index = -1;

  bool valid() const { return entity != kInvalidEntity && index >= 0; }
  bool operator==(const VersionRef& other) const = default;
};

/// Multiversion storage: one append-only version chain per entity. This is
/// the concrete realization of the model's database state S (a set of
/// unique states): every prefix of committed versions corresponds to the
/// unique state a serial history would have produced, and mix-and-match
/// reads across chains realize version states.
class VersionStore {
 public:
  /// Creates the store with one committed initial version per entity,
  /// authored by kInitialWriter.
  explicit VersionStore(ValueVector initial_values);

  int num_entities() const { return static_cast<int>(chains_.size()); }

  const std::vector<Version>& Chain(EntityId e) const;

  /// Appends a new (uncommitted, live) version; returns its index.
  int Append(EntityId e, Value value, int writer);

  const Version& At(VersionRef ref) const;
  Value Read(VersionRef ref) const;

  /// Index of the latest live version of `e` (committed or not).
  int LatestLiveIndex(EntityId e) const;

  /// Index of the latest committed live version of `e`.
  int LatestCommittedIndex(EntityId e) const;

  /// Latest live version of `e` authored by `writer`, if any.
  std::optional<int> LatestIndexBy(EntityId e, int writer) const;

  /// Marks all live versions authored by `writer` committed.
  void CommitWriter(int writer);

  /// Marks all uncommitted versions authored by `writer` dead (rollback).
  void RollbackWriter(int writer);

  /// Latest committed value per entity — the conventional notion of "the
  /// current database".
  ValueVector LatestCommittedSnapshot() const;

  /// The model-layer database state: one unique state per global sequence
  /// point of committed versions. For verification we expose the simpler
  /// set: all committed values per entity (mix-and-match candidates).
  DatabaseState AsDatabaseState() const;

  /// Total number of live versions across all chains.
  int64_t TotalLiveVersions() const;

  /// Garbage collection: marks dead every *committed* version that is
  /// neither the latest committed version of its entity nor pinned.
  /// Uncommitted versions are never collected (their writers are alive).
  /// `pinned` lists version references still assigned to active
  /// transactions (the protocol's X assignments); indices stay stable, so
  /// outstanding references to collected versions keep resolving — they
  /// are just no longer handed out. Returns the number collected.
  int64_t CollectObsolete(const std::vector<VersionRef>& pinned);

 private:
  std::vector<std::vector<Version>> chains_;
  int64_t next_seq_ = 0;
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_VERSION_STORE_H_
