#ifndef NONSERIAL_STORAGE_VERSION_STORE_H_
#define NONSERIAL_STORAGE_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "predicate/value.h"
#include "storage/wal.h"  // WalCommitHandle (returned by value).

namespace nonserial {

/// Writer id for the initial version of every entity (the paper's pseudo-
/// transaction t_0).
constexpr int kInitialWriter = -1;

/// One retained version of an entity. Versions are never physically removed
/// (the history of every data item is preserved — Section 2.4); rollback
/// marks a version dead instead so outstanding references stay valid.
struct Version {
  Value value = 0;
  int writer = kInitialWriter;  ///< Runtime transaction id that created it.
  int64_t seq = 0;              ///< Global creation sequence number.
  bool committed = false;       ///< Writer has committed.
  bool dead = false;            ///< Rolled back; invisible to new requests.
};

/// A reference to a specific version: entity plus index in its chain.
struct VersionRef {
  EntityId entity = kInvalidEntity;
  int index = -1;

  bool valid() const { return entity != kInvalidEntity && index >= 0; }
  bool operator==(const VersionRef& other) const = default;
};

/// Multiversion storage: one append-only version chain per entity. This is
/// the concrete realization of the model's database state S (a set of
/// unique states): every prefix of committed versions corresponds to the
/// unique state a serial history would have produced, and mix-and-match
/// reads across chains realize version states.
///
/// Thread safety: every method is safe to call concurrently. Chains live in
/// deques (appends never move existing versions) behind one reader-writer
/// lock per shard of entities; the global creation sequence is a single
/// atomic. Append/Commit/Rollback take the exclusive side, reads take the
/// shared side, so readers of different shards — and concurrent readers of
/// the same shard — never contend on storage. Multi-entity operations
/// (CommitWriter, snapshots, GC) lock shard-by-shard: each entity's chain is
/// observed atomically, the cross-entity combination is not — callers that
/// need a cross-entity atomic cut (the protocol engine) serialize those
/// calls themselves.
class VersionStore {
 public:
  /// Creates the store with one committed initial version per entity,
  /// authored by kInitialWriter.
  explicit VersionStore(ValueVector initial_values);

  /// Attaches a write-ahead log: from now on every Append / CommitWriter /
  /// RollbackWriter is logged before the mutation becomes visible, so a
  /// crash image (any log prefix) replays to a consistent committed state.
  /// Not owned; pass nullptr to detach. The initial versions are NOT
  /// logged — the log's own initial() vector covers them (recovery replays
  /// on top of it).
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() const { return wal_; }

  int num_entities() const { return static_cast<int>(chains_.size()); }

  /// Copy of one version (copy, not reference: the slot's committed/dead
  /// flags may change concurrently; the copy is an atomic observation).
  Version At(VersionRef ref) const;
  Version VersionAt(EntityId e, int index) const;
  Value Read(VersionRef ref) const;

  /// Number of versions ever appended to `e` (live or dead). Monotonic;
  /// used by the protocol's optimistic validation as a cheap change stamp.
  int ChainSize(EntityId e) const;

  /// Consistent copy of the whole chain of `e` (tests and diagnostics).
  std::vector<Version> ChainSnapshot(EntityId e) const;

  /// Appends a new (uncommitted, live) version; returns its index.
  int Append(EntityId e, Value value, int writer);

  /// Index of the latest live version of `e` (committed or not).
  int LatestLiveIndex(EntityId e) const;

  /// Index of the latest committed live version of `e`.
  int LatestCommittedIndex(EntityId e) const;

  /// Latest live version of `e` authored by `writer`, if any.
  std::optional<int> LatestIndexBy(EntityId e, int writer) const;

  /// Marks all live versions authored by `writer` committed. Returns the
  /// WAL's durability handle for the commit record (null when no WAL is
  /// attached): the caller decides where to WaitDurable — outside any
  /// engine lock, so concurrent commits can share one group-commit flush.
  WalCommitHandle CommitWriter(int writer);

  /// Recovery-only bulk commit: marks every live version committed without
  /// logging. Replay appends only versions whose fate analysis already
  /// proved them committed, so one O(versions) sweep replaces the
  /// O(writers × entities × chain) per-writer CommitWriter loop that made
  /// long-log recovery quadratic. Never call on a store with a WAL
  /// attached.
  void MarkAllCommitted();

  /// Marks all uncommitted versions authored by `writer` dead (rollback).
  void RollbackWriter(int writer);

  /// Latest committed value per entity — the conventional notion of "the
  /// current database".
  ValueVector LatestCommittedSnapshot() const;

  /// The model-layer database state: one unique state per global sequence
  /// point of committed versions. For verification we expose the simpler
  /// set: all committed values per entity (mix-and-match candidates).
  DatabaseState AsDatabaseState() const;

  /// Total number of live versions across all chains.
  int64_t TotalLiveVersions() const;

  /// Garbage collection: marks dead every *committed* version that is
  /// neither the latest committed version of its entity nor pinned.
  /// Uncommitted versions are never collected (their writers are alive).
  /// `pinned` lists version references still assigned to active
  /// transactions (the protocol's X assignments); indices stay stable, so
  /// outstanding references to collected versions keep resolving — they
  /// are just no longer handed out. Returns the number collected.
  int64_t CollectObsolete(const std::vector<VersionRef>& pinned);

 private:
  // 16 shards cover the repo's workloads (tens of entities) without making
  // the all-shard operations crawl; entity e maps to shard e & kShardMask.
  static constexpr int kNumShards = 16;
  static constexpr int kShardMask = kNumShards - 1;

  std::shared_mutex& ShardOf(EntityId e) const {
    return shards_[e & kShardMask].mu;
  }

  // Callers must hold ShardOf(e) (either side for reads).
  int LatestLiveIndexLocked(EntityId e) const;
  int LatestCommittedIndexLocked(EntityId e) const;

  struct Shard {
    mutable std::shared_mutex mu;
  };

  std::vector<std::deque<Version>> chains_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<int64_t> next_seq_{0};
  WriteAheadLog* wal_ = nullptr;
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_VERSION_STORE_H_
