#ifndef NONSERIAL_STORAGE_VERSION_STORE_H_
#define NONSERIAL_STORAGE_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "predicate/value.h"
#include "storage/epoch_reclaim.h"
#include "storage/wal.h"  // WalCommitHandle (returned by value).

namespace nonserial {

/// Writer id for the initial version of every entity (the paper's pseudo-
/// transaction t_0).
constexpr int kInitialWriter = -1;

/// One retained version of an entity, as observed at a point in time.
/// Versions are never physically removed (the history of every data item is
/// preserved — Section 2.4); rollback marks a version dead instead so
/// outstanding references stay valid.
struct Version {
  Value value = 0;
  int writer = kInitialWriter;  ///< Runtime transaction id that created it.
  int64_t seq = 0;              ///< Global creation sequence number.
  bool committed = false;       ///< Writer has committed.
  bool dead = false;            ///< Rolled back; invisible to new requests.
};

/// A reference to a specific version: entity plus index in its chain.
struct VersionRef {
  EntityId entity = kInvalidEntity;
  int index = -1;

  bool valid() const { return entity != kInvalidEntity && index >= 0; }
  bool operator==(const VersionRef& other) const = default;
};

/// Multiversion storage: one append-only version chain per entity. This is
/// the concrete realization of the model's database state S (a set of
/// unique states): every prefix of committed versions corresponds to the
/// unique state a serial history would have produced, and mix-and-match
/// reads across chains realize version states.
///
/// **Memory layout (cache-native hot path).** Each chain is a contiguous
/// slab of version slots — value/writer/seq are plain fields frozen at
/// append time, the committed/dead flags are one atomic byte per slot. A
/// full slab is replaced by a doubled copy published through an atomic
/// pointer; the old slab is retired to an epoch-based reclaimer
/// (storage/epoch_reclaim.h) and freed once no reader can still hold it.
/// Version indices are stable across growth (slot i is slot i in every
/// later slab), so VersionRefs stay valid forever, exactly as before.
///
/// Thread safety: every method is safe to call concurrently. *Reads are
/// lock-free*: they pin a reclamation epoch, load the slab pointer and the
/// published size with acquire ordering, and walk contiguous memory —
/// no shared_mutex, no contention with other readers or with writers of
/// other entities. Mutations (Append/Commit/Rollback/GC) serialize on one
/// plain mutex per shard of entities. Per-version flag flips are atomic,
/// so a reader's copy of a version is an atomic observation; the
/// cross-entity combination of independent reads is not a consistent cut —
/// except for AsDatabaseState, which validates a store-wide mutation stamp
/// and retries, so the DatabaseState it hands to verification can never
/// contain a half-applied commit (a "mixed state" no serial prefix
/// produced).
class VersionStore {
 public:
  /// Creates the store with one committed initial version per entity,
  /// authored by kInitialWriter.
  explicit VersionStore(ValueVector initial_values);
  ~VersionStore();

  /// Attaches a write-ahead log: from now on every Append / CommitWriter /
  /// RollbackWriter is logged before the mutation becomes visible, so a
  /// crash image (any log prefix) replays to a consistent committed state.
  /// Not owned; pass nullptr to detach. The initial versions are NOT
  /// logged — the log's own initial() vector covers them (recovery replays
  /// on top of it).
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() const { return wal_; }

  int num_entities() const { return num_entities_; }

  /// Copy of one version (copy, not reference: the slot's committed/dead
  /// flags may change concurrently; the copy is an atomic observation).
  Version At(VersionRef ref) const;
  Version VersionAt(EntityId e, int index) const;
  Value Read(VersionRef ref) const;

  /// Number of versions ever appended to `e` (live or dead). Monotonic;
  /// used by the protocol's optimistic validation as a cheap change stamp.
  int ChainSize(EntityId e) const;

  /// Consistent copy of the whole chain of `e` (tests and diagnostics).
  /// Hot loops use ForEachVersion instead — it walks the slab in place.
  std::vector<Version> ChainSnapshot(EntityId e) const;

  /// Allocation-free chain walk: invokes `fn(const Version&, int index)`
  /// for every version of `e` present when the walk pinned the chain, in
  /// index order. The Version reference is a stack copy (atomic per-slot
  /// observation); the underlying slab is epoch-protected for the whole
  /// walk, so the visit is safe against concurrent growth and GC.
  template <typename Fn>
  void ForEachVersion(EntityId e, Fn&& fn) const {
    BoundsCheck(e);
    EpochReclaimer::ReadGuard guard(&reclaimer_);
    const Chain& chain = chains_[e];
    int n = chain.size.load(std::memory_order_acquire);
    const Slab* slab = chain.slab.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      fn(slab->slots[i].Observe(), i);
    }
  }

  /// Appends a new (uncommitted, live) version; returns its index.
  int Append(EntityId e, Value value, int writer);

  /// Index of the latest live version of `e` (committed or not).
  int LatestLiveIndex(EntityId e) const;

  /// Index of the latest committed live version of `e`.
  int LatestCommittedIndex(EntityId e) const;

  /// Latest live version of `e` authored by `writer`, if any.
  std::optional<int> LatestIndexBy(EntityId e, int writer) const;

  /// Marks all live versions authored by `writer` committed. Returns the
  /// WAL's durability handle for the commit record (null when no WAL is
  /// attached): the caller decides where to WaitDurable — outside any
  /// engine lock, so concurrent commits can share one group-commit flush.
  WalCommitHandle CommitWriter(int writer);

  /// Recovery-only bulk commit: marks every live version committed without
  /// logging. Replay appends only versions whose fate analysis already
  /// proved them committed, so one O(versions) sweep replaces the
  /// O(writers × entities × chain) per-writer CommitWriter loop that made
  /// long-log recovery quadratic. Never call on a store with a WAL
  /// attached.
  void MarkAllCommitted();

  /// Marks all uncommitted versions authored by `writer` dead (rollback).
  void RollbackWriter(int writer);

  /// Latest committed value per entity — the conventional notion of "the
  /// current database". Per-entity reads are individually atomic; the
  /// cross-entity combination is a racy cut (see AsDatabaseState for the
  /// validated one).
  ValueVector LatestCommittedSnapshot() const;

  /// The model-layer database state: one unique state per global sequence
  /// point of committed versions. For verification we expose the simpler
  /// set: all committed values per entity (mix-and-match candidates).
  ///
  /// The returned state is a *coherent cut*: the scan validates the
  /// store-wide mutation stamp (no mutation in flight, none landed during
  /// the scan) and retries on interference, falling back to stalling the
  /// mutators via the shard mutexes after kAsDatabaseStateRetries attempts.
  /// A concurrent CommitWriter is therefore observed either fully or not
  /// at all — never as a mixed state no serial prefix produced.
  DatabaseState AsDatabaseState() const;

  /// Total number of live versions across all chains.
  int64_t TotalLiveVersions() const;

  /// Garbage collection: marks dead every *committed* version that is
  /// neither the latest committed version of its entity nor pinned.
  /// Uncommitted versions are never collected (their writers are alive).
  /// `pinned` lists version references still assigned to active
  /// transactions (the protocol's X assignments); indices stay stable, so
  /// outstanding references to collected versions keep resolving — they
  /// are just no longer handed out. Returns the number collected.
  int64_t CollectObsolete(const std::vector<VersionRef>& pinned);

  /// Reclamation diagnostics: slabs retired by growth but not yet freed.
  size_t PendingRetiredSlabs() const { return reclaimer_.PendingRetired(); }

 private:
  /// One version slot inside a slab. The identity fields are frozen by the
  /// publishing size store; the flags byte mutates atomically in place.
  struct Slot {
    Value value = 0;
    int writer = kInitialWriter;
    int64_t seq = 0;
    std::atomic<uint8_t> flags{0};  ///< Bit 0: committed, bit 1: dead.

    static constexpr uint8_t kCommitted = 1;
    static constexpr uint8_t kDead = 2;

    Version Observe() const {
      uint8_t f = flags.load(std::memory_order_relaxed);
      Version v;
      v.value = value;
      v.writer = writer;
      v.seq = seq;
      v.committed = (f & kCommitted) != 0;
      v.dead = (f & kDead) != 0;
      return v;
    }
    bool IsDead() const {
      return (flags.load(std::memory_order_relaxed) & kDead) != 0;
    }
    bool IsCommittedLive() const {
      return flags.load(std::memory_order_relaxed) == kCommitted;
    }
  };

  /// A contiguous version slab. Grown by copy-and-publish; old slabs go to
  /// the epoch reclaimer.
  struct Slab {
    explicit Slab(int cap) : capacity(cap), slots(new Slot[cap]) {}
    int capacity;
    std::unique_ptr<Slot[]> slots;
  };

  /// One per-entity chain: the published slab and the published length.
  /// Readers load size before slab (both acquire) — the size publication
  /// release-orders every earlier slot write and slab swap, so the loaded
  /// slab always has capacity >= the loaded size.
  struct Chain {
    std::atomic<Slab*> slab{nullptr};
    std::atomic<int> size{0};
  };

  // 16 shards cover the repo's workloads (tens of entities) without making
  // the all-shard operations crawl; entity e maps to shard e & kShardMask.
  static constexpr int kNumShards = 16;
  static constexpr int kShardMask = kNumShards - 1;
  static constexpr int kInitialSlabCapacity = 8;
  /// Optimistic stamp-validated scans before AsDatabaseState falls back to
  /// locking out the mutators.
  static constexpr int kAsDatabaseStateRetries = 64;

  std::mutex& ShardOf(EntityId e) const { return shards_[e & kShardMask].mu; }

  void BoundsCheck(EntityId e) const;

  /// Loads the published (size, slab) pair for `e` in the safe order.
  /// Caller must hold a ReadGuard (or a shard mutex for mutators).
  const Slab* LoadChain(EntityId e, int* size) const {
    const Chain& chain = chains_[e];
    *size = chain.size.load(std::memory_order_acquire);
    return chain.slab.load(std::memory_order_acquire);
  }

  /// Mutation-stamp bookkeeping for coherent cuts: every mutator brackets
  /// its writes with Begin/EndMutation; AsDatabaseState treats the whole
  /// bracket as atomic.
  void BeginMutation() {
    mutations_started_.fetch_add(1, std::memory_order_seq_cst);
  }
  void EndMutation() {
    mutations_done_.fetch_add(1, std::memory_order_seq_cst);
  }

  // Callers must hold ShardOf(e) or a ReadGuard.
  int LatestLiveIndexLocked(EntityId e) const;
  int LatestCommittedIndexLocked(EntityId e) const;

  /// Appends one slot under ShardOf(e), growing (and retiring) the slab if
  /// full. Returns the new index.
  int AppendSlot(EntityId e, Value value, int writer, bool committed);

  /// Mutable chain access for flag flips; caller must hold ShardOf(e).
  Slab* LoadChainMut(EntityId e, int* size) {
    Chain& chain = chains_[e];
    *size = chain.size.load(std::memory_order_relaxed);
    return chain.slab.load(std::memory_order_relaxed);
  }

  /// Type-erased deleter handed to the epoch reclaimer (Slab is private).
  static void DeleteSlabRaw(void* slab);

  struct Shard {
    mutable std::mutex mu;
  };

  int num_entities_ = 0;
  std::unique_ptr<Chain[]> chains_;
  std::unique_ptr<Shard[]> shards_;
  mutable EpochReclaimer reclaimer_;
  std::atomic<int64_t> next_seq_{0};
  /// Coherent-cut stamps: a scan observed with started == done (and done
  /// unchanged across it) saw no mutation partially applied.
  std::atomic<int64_t> mutations_started_{0};
  std::atomic<int64_t> mutations_done_{0};
  WriteAheadLog* wal_ = nullptr;
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_VERSION_STORE_H_
