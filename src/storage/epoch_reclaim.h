#ifndef NONSERIAL_STORAGE_EPOCH_RECLAIM_H_
#define NONSERIAL_STORAGE_EPOCH_RECLAIM_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace nonserial {

/// Epoch-based read-side reclamation for the lock-free storage read path
/// (see DESIGN.md, "cache-native evaluation").
///
/// The flat version chains publish their slabs through atomic pointers;
/// growing a chain installs a larger slab and *retires* the old one. A
/// retired slab cannot be freed while a reader that loaded the old pointer
/// is still walking it — instead of a reader-writer lock, readers announce
/// themselves in an epoch slot for the duration of the access:
///
///   EpochReclaimer::ReadGuard guard(&reclaimer);   // pin current epoch
///   ... load slab pointer, read slots ...          // no locks, no CAS loops
///                                                  // on the data itself
///
/// Writers retire with `Retire(ptr, deleter)`, which tags the object with
/// the current global epoch, advances the epoch, and frees every retired
/// object whose tag is older than the oldest pinned epoch. The guarantee:
///
///   * A reader whose pinned epoch is <= an object's retire tag may still
///     hold a pointer to it (the unlink raced its pointer load), so the
///     object stays allocated.
///   * A reader that pinned an epoch strictly greater than the tag
///     announced itself after the epoch advanced past the unlink, so its
///     pointer loads (which follow the announcement) can only observe the
///     replacement slab. Freeing the object is then safe.
///
/// The announcement protocol re-validates the global epoch after the slot
/// store (the classic read-prop race: load epoch, sleep, announce a stale
/// pin after the writer already scanned the slots). Slots are fixed
/// cache-line-padded cells probed from a thread-id hash, so guards from
/// different threads do not contend on one line; a full slot array (more
/// concurrent readers than kSlots) degrades to spinning, never to unsafety.
///
/// Distinct from EvalCache epochs: those invalidate *memoized predicate
/// results* when an entity's version set changes; these epochs bound the
/// lifetime of *retired memory*. The two never interact (DESIGN.md §4f).
class EpochReclaimer {
 public:
  EpochReclaimer() = default;
  ~EpochReclaimer();

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// RAII epoch pin. Cheap enough for per-read use: one uncontended CAS to
  /// claim a slot plus a validation load on entry, one store on exit.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochReclaimer* reclaimer);
    ~ReadGuard();

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    EpochReclaimer* reclaimer_;
    int slot_;
  };

  /// Retires `object`: tags it with the current epoch, advances the epoch,
  /// and frees every retired object proven unreachable (tag older than the
  /// oldest pinned epoch). `deleter` is invoked exactly once, possibly
  /// inside this call, possibly from a later Retire, at latest from the
  /// destructor. Thread-safe against concurrent guards and retires.
  void Retire(void* object, void (*deleter)(void*));

  /// Number of retired-but-not-yet-freed objects (tests/diagnostics).
  size_t PendingRetired() const;

  /// Total objects freed so far (tests/diagnostics).
  int64_t TotalFreed() const;

 private:
  // 128 padded slots: comfortably above the repo's worker counts, so guard
  // acquisition virtually never probes past its home slot.
  static constexpr int kSlots = 128;

  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the epoch the occupying reader pinned.
    std::atomic<uint64_t> pinned{0};
  };

  struct Retired {
    void* object;
    void (*deleter)(void*);
    uint64_t tag;
  };

  /// Oldest epoch pinned by any active reader, or ~0 when none are active.
  uint64_t OldestPin() const;

  // Epochs start at 1 so a pinned value of 0 can mean "slot free".
  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kSlots];

  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;  // Guarded by retire_mu_.
  std::atomic<int64_t> freed_{0};
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_EPOCH_RECLAIM_H_
