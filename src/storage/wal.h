#ifndef NONSERIAL_STORAGE_WAL_H_
#define NONSERIAL_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "predicate/value.h"

namespace nonserial {

class TraceSink;
class VersionStore;

/// One redo-log record. The log is logical-redo: it captures version
/// installs (appends), writer terminations (commit / rollback), the
/// logical commit payload the verifier needs, and crash markers written by
/// recovery itself (every append pending at a crash marker is a loser).
struct WalRecord {
  enum class Kind : uint8_t {
    kAppend,     ///< Writer installed a new version of `entity`.
    kCommit,     ///< Writer committed: its pending appends are durable.
    kRollback,   ///< Writer rolled back: its pending appends are dead.
    kTxPayload,  ///< Logical commit record (verification payload); always
                 ///< logged immediately before the writer's kCommit.
    kCrash,      ///< Recovery marker: everything pending before it is lost.
    kCommitToken ///< Client idempotency token for the writer's commit;
                 ///< logged immediately before kTxPayload, durable iff the
                 ///< commit itself is (exactly-once across reconnects).
  };

  Kind kind = Kind::kAppend;
  int writer = -1;
  EntityId entity = kInvalidEntity;  ///< kAppend only.
  Value value = 0;                   ///< kAppend only.
  uint64_t token = 0;                ///< kCommitToken only.

  // kTxPayload only — mirrors CorrectExecutionProtocol::TxRecord.
  std::string name;
  ValueVector input_state;
  std::vector<int> feeders;
  std::vector<std::pair<EntityId, Value>> writes;
};

/// A committed transaction reconstructed from the log (its kTxPayload).
struct RecoveredTx {
  int tx = -1;
  std::string name;
  ValueVector input_state;
  std::vector<int> feeders;
  std::vector<std::pair<EntityId, Value>> writes;
  /// Client idempotency token (kCommitToken record), 0 if none was logged.
  uint64_t commit_token = 0;
};

/// The state a checkpoint frame captures: the committed transactions (in
/// commit order, payloads included so recovery can still hand the verifier
/// the full history) plus the committed portion of every version chain (in
/// chain order, initial versions excluded), so a store rebuilt from the
/// checkpoint is indistinguishable from one rebuilt by full replay.
struct WalCheckpoint {
  std::vector<RecoveredTx> committed;
  /// chains[e] = committed live versions of entity e beyond the initial
  /// one, as (writer, value), in chain (= original log) order.
  std::vector<std::vector<std::pair<int, Value>>> chains;
};

/// Health verdict for one scanned segment of the durable image.
struct SegmentDiagnostic {
  enum class State : uint8_t {
    kOk,        ///< Every frame decoded.
    kTornTail,  ///< Trailing frame incomplete/corrupt, nothing valid after
                ///< it anywhere — truncated as a normal crash artifact.
    kCorrupt,   ///< Undecodable frame with valid data after it (bit flip /
                ///< destroyed boundary): mid-log corruption.
    kLost       ///< Whole segment missing (tombstone or sequence gap).
  };

  uint64_t seq = 0;
  int64_t frames = 0;  ///< Frames successfully decoded in this segment.
  int64_t bytes = 0;
  State state = State::kOk;
  int64_t first_bad_offset = -1;  ///< Offset into the segment, when bad.
  std::string detail;
};

/// Knobs for one recovery pass.
struct RecoveryOptions {
  /// Replay only the first `prefix_records` decodable records (crash-point
  /// simulation). The checkpoint base, when present, is always applied.
  size_t prefix_records = std::numeric_limits<size_t>::max();
  /// Mid-log corruption policy: false (strict) reports an error Status and
  /// replays nothing past the corruption; true salvages the longest
  /// verifiable committed prefix and reports ok with `salvaged` set.
  bool best_effort = false;
};

/// Outcome of a recovery pass.
struct RecoveryResult {
  std::shared_ptr<VersionStore> store;  ///< Committed installs only.
  std::vector<RecoveredTx> committed;   ///< In log (= commit) order.
  int64_t replayed_appends = 0;
  int64_t discarded_appends = 0;  ///< In-flight at the crash point.

  /// Record frames decodable in the image this pass scanned (before any
  /// prefix_records truncation). CompactTo uses it as the consistent-view
  /// boundary: records appended after this point were not part of the
  /// recovered state and must be carried forward, not compacted away.
  int64_t image_records = 0;
  /// Records actually consumed by the replay (= image_records unless
  /// prefix_records cut the log shorter). Records between this and
  /// image_records were deliberately dropped by the crash-point simulation
  /// and stay dropped on compaction.
  int64_t replayed_records = 0;

  /// Not-ok iff mid-log corruption was found and best_effort was off. The
  /// store/committed fields then still hold the salvageable prefix so the
  /// caller can inspect what a best-effort pass would return.
  Status status;
  bool checkpoint_restored = false;  ///< A checkpoint frame seeded the store.
  bool truncated_tail = false;       ///< Torn/bad-CRC tail dropped (normal).
  bool corruption_detected = false;  ///< Mid-log corruption or lost segment.
  bool salvaged = false;             ///< Best-effort kept the valid prefix.
  int64_t frames_scanned = 0;
  int64_t frames_truncated = 0;  ///< Frames dropped at the torn tail.
  int64_t frames_salvaged = 0;   ///< Records replayed despite corruption.
  int64_t recovery_micros = 0;   ///< Wall clock of the scan + redo.
  std::vector<SegmentDiagnostic> segments;
};

/// Cheap point-in-time counters (no record copying — see Snapshot()).
struct WalStats {
  int64_t records = 0;     ///< Record frames since the last checkpoint.
  int64_t bytes = 0;       ///< Live bytes across all segments.
  int64_t segments = 0;    ///< Live segments (lost tombstones included).
  int64_t checkpoints = 0;           ///< Lifetime checkpoint installs.
  int64_t compactions = 0;           ///< Lifetime compaction events.
  int64_t segments_reclaimed = 0;    ///< Lifetime segments dropped.
  int64_t total_records = 0;         ///< Lifetime records appended.
  // Media faults injected so far (see the wal.* failpoints).
  int64_t write_errors = 0;
  int64_t torn_writes = 0;
  int64_t bit_flips = 0;
  int64_t lost_segments = 0;
  int64_t dropped_records = 0;  ///< Appends swallowed by a failed medium.
  bool media_failed = false;    ///< Sticky write failure until restart.
  // Commit-path pipeline (see EnableGroupCommit / set_flush_us).
  int64_t device_flushes = 0;           ///< Simulated device-flush ops paid:
                                        ///< one per commit (sync) or one per
                                        ///< batch (group commit).
  int64_t group_commit_batches = 0;     ///< Batches flushed by the writer.
  int64_t group_commit_frames = 0;      ///< Frames flushed via batches.
  int64_t group_commit_commits = 0;     ///< Commit records flushed via
                                        ///< batches (acks resolved).
  int64_t group_commit_stalls = 0;      ///< Commit acks that had to block
                                        ///< on a flush epoch.
  int64_t group_commit_failed_acks = 0; ///< Acks failed: media fault in the
                                        ///< batch or a crash discarded it.
  int64_t group_staged_dropped = 0;     ///< Staged frames lost to a crash
                                        ///< restart (volatile buffer).
};

/// Durability acknowledgment for one commit record. Obtained from
/// LogCommit (via VersionStore::CommitWriter); redeem it with
/// WriteAheadLog::WaitDurable *after* releasing any engine-level lock, so
/// concurrent committers can share one batch flush. A default-constructed
/// handle is resolved-ok (no WAL / no durability to wait for).
class WalCommitHandle {
 public:
  WalCommitHandle() = default;
  explicit operator bool() const { return state_ != nullptr; }

 private:
  friend class WriteAheadLog;
  struct AckState {
    bool done = false;
    bool ok = false;
  };
  std::shared_ptr<AckState> state_;
};

/// Knobs for the pipelined group-commit writer (EnableGroupCommit).
struct GroupCommitOptions {
  /// Upper bound on frames drained into one batch; a deeper backlog rolls
  /// into the next batch (which begins flushing immediately — the
  /// pipeline, not the cap, bounds latency).
  size_t max_batch_frames = 256;
};

/// Write-ahead redo log for VersionStore. The store logs every Append /
/// CommitWriter / RollbackWriter before the mutation becomes visible (see
/// VersionStore::SetWal), and the protocol engine logs the logical commit
/// payload just before the commit marker, so any prefix of the log is a
/// consistent crash image: a transaction is durable iff its kCommit record
/// made it into the prefix.
///
/// The durable medium is simulated in memory, but with the full framing a
/// real device would need: records serialize into length-prefixed,
/// CRC32-checked frames that accumulate into fixed-size segments (see
/// storage/wal_format.h). A checkpoint captures the committed state in one
/// frame and lets every earlier segment be reclaimed, so the log stays
/// bounded under sustained crash/recovery churn. Storage-media faults are
/// injectable through failpoints evaluated on the append path:
///
///   wal.torn_tail     frame written partially; medium fails sticky
///   wal.bit_flip      one byte of the just-written frame flipped
///   wal.segment_lost  sealed segment dropped (tombstone kept)
///   wal.write_error   frame not written at all; medium fails sticky
///
/// A sticky failure swallows every later append until LogCrashMarker()
/// (the restart point) repairs the tail and replaces the medium.
///
/// Commit durability has two modes. In the default sync mode every
/// LogCommit writes its frame and pays one simulated device flush
/// (set_flush_us) inline, under the log mutex — the single-global-lock
/// baseline. EnableGroupCommit starts a dedicated writer thread: loggers
/// stage frames into a volatile buffer and LogCommit returns a
/// WalCommitHandle immediately; the writer drains the staging buffer in
/// FIFO batches, appends each batch to the durable image as one write,
/// pays ONE device flush for the whole batch, and then resolves every
/// commit ack staged in it. Batch N+1 stages while batch N flushes (the
/// pipeline). Acks are all-or-nothing per batch: a media fault anywhere
/// in a batch fails every commit ack in it, and a crash (LogCrashMarker)
/// discards the volatile staging buffer, failing its acks — frames that
/// reached the medium but were never acked are the standard crash
/// ambiguity and recovery treats them like any other durable record.
///
/// Recover() scans the image defensively: a torn or bad-CRC tail is
/// truncated and recovery proceeds from the last valid record (normal
/// crash semantics); mid-log corruption — a bad frame or lost segment with
/// valid data after it — is reported via RecoveryResult::status with
/// per-segment diagnostics, and optionally salvaged (best_effort) by
/// keeping the longest verifiable committed prefix.
///
/// Thread safety: all methods are safe to call concurrently.
class WriteAheadLog {
 public:
  static constexpr size_t kWholeLog = std::numeric_limits<size_t>::max();
  /// Default segment size. Small enough that chaos-length runs roll over
  /// several segments (exercising seal and segment-lost paths), large
  /// enough that framing overhead stays negligible.
  static constexpr size_t kDefaultSegmentBytes = 4096;

  explicit WriteAheadLog(ValueVector initial,
                         size_t segment_bytes = kDefaultSegmentBytes)
      : initial_(std::move(initial)), segment_bytes_(segment_bytes) {}

  ~WriteAheadLog();

  /// Rebuilds a log object from a serialized image (crash-image fuzzing:
  /// any byte-prefix or corruption of an image is a legal input; Recover()
  /// classifies the damage). The image is split on segment headers.
  static std::unique_ptr<WriteAheadLog> FromImage(
      const std::string& image, ValueVector initial,
      size_t segment_bytes = kDefaultSegmentBytes);

  void LogAppend(EntityId entity, Value value, int writer);
  /// Logs the writer's commit record. The returned handle resolves when
  /// the record is durable: immediately in sync mode (the flush is paid
  /// inline), or at the staging batch's flush epoch under group commit.
  /// Callers that need durability must WaitDurable(handle) — after
  /// dropping any engine lock, so other committers can join the batch.
  WalCommitHandle LogCommit(int writer);
  void LogRollback(int writer);
  /// Logs the client idempotency token for the writer's upcoming commit.
  /// Logged (by the engine) immediately before LogTxPayload, so the token
  /// is durable exactly when the commit is: a crash before the kCommit
  /// frame leaves the transaction uncommitted and the token unbound.
  void LogCommitToken(int writer, uint64_t token);
  void LogTxPayload(int writer, std::string name, ValueVector input_state,
                    std::vector<int> feeders,
                    std::vector<std::pair<EntityId, Value>> writes);
  /// Appended by recovery before the restarted engine writes new records:
  /// marks every earlier pending append as lost, so a writer id re-running
  /// after the crash cannot resurrect its pre-crash in-flight versions.
  /// Restart also replaces the failed medium: a sticky write failure is
  /// cleared and a torn tail is physically truncated before the marker is
  /// written (real recovery repairs the tail before resuming logging).
  void LogCrashMarker();

  /// Blocks until `handle`'s commit record is durable. Returns false if
  /// the ack failed (media fault in its batch, or a crash discarded the
  /// staged frame). A null handle returns true.
  bool WaitDurable(const WalCommitHandle& handle) const;

  /// Starts the pipelined group-commit writer thread. Idempotent; safe to
  /// call before workers start logging.
  void EnableGroupCommit(const GroupCommitOptions& options = {});
  /// Flushes outstanding staged frames and stops the writer thread;
  /// subsequent commits are sync again. Idempotent.
  void DisableGroupCommit();
  /// Blocks until every frame staged before the call is flushed (or
  /// failed). No-op in sync mode.
  void Flush();
  bool group_commit_enabled() const;

  /// Frames staged for the group-commit writer but not yet flushed (or
  /// failed) — the pipeline backlog. Admission control sheds new
  /// transactions when this falls behind (see engine/engine.h). Always 0
  /// in sync mode.
  uint64_t PipelineDepth() const;

  /// Simulated device-flush latency charged per durable commit: once per
  /// commit record in sync mode, once per batch under group commit. The
  /// busy-wait models a storage barrier; 0 (default) disables it.
  void set_flush_us(int64_t us);

  /// Attaches a trace sink; the writer emits a kWalBatchFlush event per
  /// batch (frames, commits, stall count, flush epoch). Pass nullptr to
  /// detach. The sink must outlive the log or the next SetObserver call.
  void SetObserver(TraceSink* sink);

  /// Test seam: while held, the writer thread stages batches but parks
  /// before flushing them — a crash now lands between batch-stage and
  /// batch-flush. Releasing resumes normal flushing.
  void HoldFlushesForTest(bool hold);

  /// Record count since the last checkpoint. O(1).
  size_t size() const;

  /// Cheap counters — callers that only need sizes/health must use this
  /// (or size()/TailSince) instead of paying Snapshot()'s full decode.
  WalStats stats() const;

  /// Decodes and returns all records (checkpoint frames excluded). Full
  /// decode of the image — diagnostics and tests only; prefer stats() or
  /// TailSince() in measured paths.
  std::vector<WalRecord> Snapshot() const;

  /// Decodes and returns only the records from `index` on — the tail a
  /// caller that already saw the first `index` records needs.
  std::vector<WalRecord> TailSince(size_t index) const;

  const ValueVector& initial() const { return initial_; }

  /// Serializes the durable image (segment headers + frames; a lost
  /// segment contributes its tombstone header only).
  std::string SerializedImage() const;

  /// Replays the log into a fresh store: the checkpoint base (if any) is
  /// applied, then the first `prefix_len` records (default: all) are
  /// replayed — committed installs re-appended in log order and committed;
  /// in-flight and rolled-back installs discarded. The returned store has
  /// no WAL attached (attach with SetWal to resume logging into this same
  /// log). Equivalent to Recover(RecoveryOptions{prefix_len, false}).
  RecoveryResult Recover(size_t prefix_len = kWholeLog) const;
  RecoveryResult Recover(const RecoveryOptions& options) const;

  /// Live checkpoint + compaction: captures the current committed state in
  /// a checkpoint frame, carries the records of still-pending writers
  /// forward, and reclaims everything else. Fails (and changes nothing) if
  /// the image is corrupt — checkpointing must never launder corruption
  /// into a "clean" log.
  Status Checkpoint();

  /// Post-recovery compaction: replaces the whole log with a checkpoint of
  /// `recovered` (the state some Recover() call of THIS log returned).
  /// Used by the chaos driver after each crash cycle: the recovered state
  /// is the new durable truth, and any corrupt or unreplayed suffix is
  /// discarded with the history. Returns the number of segments reclaimed.
  int64_t CompactTo(const RecoveryResult& recovered);

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string bytes;   ///< Frames only (header lives in seq/lost).
    int64_t frames = 0;  ///< Record frames fully written (checkpoint excluded).
    bool lost = false;
  };

  /// One frame parked in the volatile staging buffer awaiting its batch.
  struct StagedFrame {
    std::string bytes;
    bool is_record = false;
    /// Set on commit frames: the ack the batch flush resolves.
    std::shared_ptr<WalCommitHandle::AckState> ack;
  };

  void AppendRecordLocked(const WalRecord& record);
  /// Appends `frame` bytes to the active segment, sealing and rolling over
  /// as needed. Returns false if the medium swallowed the write.
  bool AppendFrameLocked(const std::string& frame, bool is_record);
  /// Batch variant: one media write for a chunk of concatenated frames
  /// (`record_ends` marks the offset past each record frame, so a torn
  /// write can count which frames landed whole). Returns false on a media
  /// fault — the caller fails the whole batch's acks.
  bool AppendChunkLocked(const std::string& chunk,
                         const std::vector<size_t>& record_ends);
  void SealActiveSegmentLocked();
  /// Drops a torn/corrupt tail region that has no valid frames after it.
  void RepairTailLocked();
  /// Replaces all segments with one fresh segment holding `frames`.
  void ResetSegmentsLocked(std::string frames, int64_t record_count);
  /// Busy-waits flush_us_ (the simulated storage barrier) and counts it.
  void DeviceFlushLocked();
  /// Routes an encoded frame to the staging buffer (group mode) or the
  /// durable image (sync mode). Returns the ack for commit frames.
  std::shared_ptr<WalCommitHandle::AckState> SubmitFrame(std::string frame,
                                                         bool is_record,
                                                         bool is_commit);
  /// Dedicated writer: drains staging_ in FIFO batches and flushes each.
  void WriterLoop();
  /// Appends one batch to the image under mu_, pays one device flush, and
  /// resolves (or fails, all-or-nothing) every ack in it.
  void FlushBatch(std::vector<StagedFrame> batch);
  /// Resolves `acks` with `ok` and publishes flushed_seq_ += n.
  void RetireFrames(size_t n,
                    std::vector<std::shared_ptr<WalCommitHandle::AckState>> acks,
                    bool ok);
  void StopWriterThread();

  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  ValueVector initial_;
  size_t segment_bytes_;
  uint64_t next_segment_seq_ = 0;
  bool media_failed_ = false;
  WalStats stats_;

  // --- group-commit pipeline ---------------------------------------------
  // Lock order: stage_mu_ before mu_ (only LogCrashMarker holds both; the
  // writer thread takes them strictly one at a time).
  /// Serializes writer-thread lifecycle transitions (enable / disable /
  /// destructor) so concurrent teardown owners cannot double-join the
  /// writer. Ordering: writer_lifecycle_mu_ before stage_mu_; never held
  /// while flushing.
  std::mutex writer_lifecycle_mu_;
  mutable std::mutex stage_mu_;
  std::condition_variable stage_cv_;          ///< Wakes the writer thread.
  mutable std::condition_variable retire_cv_; ///< Wakes ack/Flush waiters.
  std::vector<StagedFrame> staging_;
  GroupCommitOptions group_options_;
  bool group_enabled_ = false;
  bool writer_stop_ = false;
  bool writer_busy_ = false;  ///< A batch is out of staging_, not yet retired.
  bool flush_hold_ = false;   ///< HoldFlushesForTest: park before flushing.
  uint64_t staged_seq_ = 0;   ///< Frames ever staged.
  uint64_t retired_seq_ = 0;  ///< Frames ever flushed or failed.
  std::thread writer_;
  std::atomic<int64_t> flush_us_{0};
  std::atomic<TraceSink*> observer_{nullptr};
  mutable std::atomic<int64_t> ack_stalls_{0};  ///< WaitDurable blocks seen.
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_WAL_H_
