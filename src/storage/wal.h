#ifndef NONSERIAL_STORAGE_WAL_H_
#define NONSERIAL_STORAGE_WAL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "model/state.h"
#include "predicate/value.h"

namespace nonserial {

class VersionStore;

/// One redo-log record. The log is logical-redo: it captures version
/// installs (appends), writer terminations (commit / rollback), the
/// logical commit payload the verifier needs, and crash markers written by
/// recovery itself (every append pending at a crash marker is a loser).
struct WalRecord {
  enum class Kind : uint8_t {
    kAppend,     ///< Writer installed a new version of `entity`.
    kCommit,     ///< Writer committed: its pending appends are durable.
    kRollback,   ///< Writer rolled back: its pending appends are dead.
    kTxPayload,  ///< Logical commit record (verification payload); always
                 ///< logged immediately before the writer's kCommit.
    kCrash       ///< Recovery marker: everything pending before it is lost.
  };

  Kind kind = Kind::kAppend;
  int writer = -1;
  EntityId entity = kInvalidEntity;  ///< kAppend only.
  Value value = 0;                   ///< kAppend only.

  // kTxPayload only — mirrors CorrectExecutionProtocol::TxRecord.
  std::string name;
  ValueVector input_state;
  std::vector<int> feeders;
  std::vector<std::pair<EntityId, Value>> writes;
};

/// A committed transaction reconstructed from the log (its kTxPayload).
struct RecoveredTx {
  int tx = -1;
  std::string name;
  ValueVector input_state;
  std::vector<int> feeders;
  std::vector<std::pair<EntityId, Value>> writes;
};

/// Outcome of a recovery pass.
struct RecoveryResult {
  std::shared_ptr<VersionStore> store;  ///< Committed installs only.
  std::vector<RecoveredTx> committed;   ///< In log (= commit) order.
  int64_t replayed_appends = 0;
  int64_t discarded_appends = 0;  ///< In-flight at the crash point.
};

/// Write-ahead redo log for VersionStore. The store logs every Append /
/// CommitWriter / RollbackWriter before the mutation becomes visible (see
/// VersionStore::SetWal), and the protocol engine logs the logical commit
/// payload just before the commit marker, so any prefix of the log is a
/// consistent crash image: a transaction is durable iff its kCommit record
/// made it into the prefix.
///
/// The log is held in memory (the simulated durable medium); a "crash"
/// discards the store and engine and rebuilds both from the log. Append
/// order per entity equals chain order (the store logs under its shard
/// lock), so replay reproduces chain indices of committed versions.
///
/// Thread safety: all methods are safe to call concurrently; Recover
/// snapshots the record vector under the same mutex.
class WriteAheadLog {
 public:
  static constexpr size_t kWholeLog = std::numeric_limits<size_t>::max();

  explicit WriteAheadLog(ValueVector initial) : initial_(std::move(initial)) {}

  void LogAppend(EntityId entity, Value value, int writer);
  void LogCommit(int writer);
  void LogRollback(int writer);
  void LogTxPayload(int writer, std::string name, ValueVector input_state,
                    std::vector<int> feeders,
                    std::vector<std::pair<EntityId, Value>> writes);
  /// Appended by recovery before the restarted engine writes new records:
  /// marks every earlier pending append as lost, so a writer id re-running
  /// after the crash cannot resurrect its pre-crash in-flight versions.
  void LogCrashMarker();

  size_t size() const;
  std::vector<WalRecord> Snapshot() const;
  const ValueVector& initial() const { return initial_; }

  /// Replays the first `prefix_len` records (default: whole log) into a
  /// fresh store: committed installs are re-appended in log order and
  /// committed; in-flight and rolled-back installs are discarded. The
  /// returned store has no WAL attached (attach with SetWal to resume
  /// logging into this same log).
  RecoveryResult Recover(size_t prefix_len = kWholeLog) const;

 private:
  mutable std::mutex mu_;
  std::vector<WalRecord> records_;
  ValueVector initial_;
};

}  // namespace nonserial

#endif  // NONSERIAL_STORAGE_WAL_H_
