#include "sim/simulator.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

SimStep SimStep::Read(EntityId e) {
  SimStep s;
  s.kind = Kind::kRead;
  s.entity = e;
  return s;
}

SimStep SimStep::Write(EntityId e, Expr expr) {
  SimStep s;
  s.kind = Kind::kWrite;
  s.entity = e;
  s.write_expr = std::move(expr);
  return s;
}

SimStep SimStep::Think(SimTime duration) {
  SimStep s;
  s.kind = Kind::kThink;
  s.duration = duration;
  return s;
}

std::vector<std::vector<std::pair<bool, EntityId>>> PlannedOpsOf(
    const SimWorkload& workload) {
  std::vector<std::vector<std::pair<bool, EntityId>>> out;
  out.reserve(workload.txs.size());
  for (const SimTx& tx : workload.txs) {
    std::vector<std::pair<bool, EntityId>> ops;
    for (const SimStep& step : tx.steps) {
      if (step.kind == SimStep::Kind::kRead) {
        ops.push_back({false, step.entity});
      } else if (step.kind == SimStep::Kind::kWrite) {
        ops.push_back({true, step.entity});
      }
    }
    out.push_back(std::move(ops));
  }
  return out;
}

namespace {

/// The per-run engine. Owns the event queue and per-transaction runtime
/// state; the controller and version store are shared with the caller.
class Runner {
 public:
  Runner(const SimWorkload& workload, const SimConfig& config,
         VersionStore* store, ConcurrencyController* controller)
      : workload_(workload),
        config_(config),
        store_(store),
        controller_(controller) {
    runtimes_.resize(workload.txs.size());
    result_.tx.resize(workload.txs.size());
  }

  SimResult Run() {
    // Register everything up front: the protocol needs to know the sibling
    // set and the partial order during validation.
    for (size_t i = 0; i < workload_.txs.size(); ++i) {
      const SimTx& tx = workload_.txs[i];
      TxProfile profile;
      profile.name = tx.name;
      profile.input = tx.input;
      profile.output = tx.output;
      profile.predecessors = tx.predecessors;
      controller_->Register(static_cast<int>(i), profile);
      runtimes_[i].local.assign(workload_.initial.size(), 0);
      runtimes_[i].known.assign(workload_.initial.size(), false);
    }
    for (size_t i = 0; i < workload_.txs.size(); ++i) {
      int tx = static_cast<int>(i);
      Schedule(workload_.txs[i].arrival, [this, tx] { TryBegin(tx, 0); });
    }

    while (!events_.empty()) {
      Event event = events_.top();
      events_.pop();
      NONSERIAL_CHECK_GE(event.time, now_);
      now_ = event.time;
      if (now_ > config_.max_time) break;
      event.fn();
      DrainSignals();
    }

    result_.history = BuildHistory();
    result_.final_state = store_->LatestCommittedSnapshot();
    result_.all_committed = true;
    for (size_t i = 0; i < runtimes_.size(); ++i) {
      TxOutcome& outcome = result_.tx[i];
      result_.total_aborts += outcome.aborts;
      result_.total_blocked += outcome.blocked_time;
      result_.total_wasted_ops += outcome.wasted_ops;
      if (outcome.committed) {
        ++result_.committed_count;
        result_.makespan = std::max(result_.makespan, outcome.commit_time);
      } else {
        result_.all_committed = false;
      }
    }
    return std::move(result_);
  }

 private:
  /// Assembles the classical-schedule view: operations of committed
  /// attempts in grant order, with commit positions and a strict commit
  /// sequence.
  EmittedHistory BuildHistory() const {
    EmittedHistory out;
    // Final committed attempt per transaction.
    std::vector<int> committed_gen(runtimes_.size(), -1);
    for (const HistoryEvent& event : history_log_) {
      if (event.is_commit) committed_gen[event.tx] = event.gen;
    }
    for (EntityId e = 0;
         e < static_cast<EntityId>(workload_.initial.size()); ++e) {
      out.schedule.InternEntity(StrCat("x", e));
    }
    out.commits.position.assign(workload_.txs.size(), 0);
    out.commits.sequence.assign(workload_.txs.size(),
                                static_cast<int>(workload_.txs.size()));
    int ops_so_far = 0;
    int commit_seq = 0;
    for (const HistoryEvent& event : history_log_) {
      if (committed_gen[event.tx] != event.gen) continue;  // Aborted work.
      if (event.is_commit) {
        out.commits.position[event.tx] = ops_so_far;
        out.commits.sequence[event.tx] = commit_seq++;
        out.committed.push_back(event.tx);
      } else {
        out.schedule.Append(event.tx, event.kind, event.entity);
        ++ops_so_far;
      }
    }
    // Uncommitted transactions contribute no ops; park their commit points
    // at the end so the shape stays valid.
    for (size_t tx = 0; tx < workload_.txs.size(); ++tx) {
      if (committed_gen[tx] < 0) out.commits.position[tx] = ops_so_far;
    }
    return out;
  }

  struct Event {
    SimTime time;
    int64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  enum class St {
    kPending,    ///< Not yet begun (awaiting arrival or restart).
    kRunning,    ///< Executing steps.
    kBlocked,    ///< Parked; resumes via controller wakeup.
    kCommitted,
    kGivenUp
  };

  enum class Retry { kBegin, kStep, kCommit };

  struct TxRuntime {
    St st = St::kPending;
    Retry retry = Retry::kBegin;
    int next_step = 0;
    int attempt = 0;
    int restarts = 0;
    int ops_this_attempt = 0;
    SimTime blocked_since = -1;
    // Phase boundaries of the current attempt, in simulated ticks (-1 =
    // phase not entered yet). Feed the SimConfig::metrics span histograms.
    SimTime attempt_start = -1;
    SimTime exec_start = -1;
    SimTime commit_start = -1;
    SimTime commit_blocked = 0;
    ValueVector local;
    std::vector<bool> known;
  };

  void Schedule(SimTime time, std::function<void()> fn) {
    events_.push(Event{std::max(time, now_), next_seq_++, std::move(fn)});
  }

  void TryBegin(int tx, int gen) {
    TxRuntime& rt = runtimes_[tx];
    // Only one Begin per attempt: stale events (superseded by an abort) and
    // duplicate wakeups are dropped.
    if (rt.attempt != gen || rt.st != St::kPending) return;
    if (rt.attempt_start < 0) rt.attempt_start = now_;
    switch (controller_->Begin(tx)) {
      case ReqResult::kGranted: {
        rt.st = St::kRunning;
        if (result_.tx[tx].begin_time < 0) result_.tx[tx].begin_time = now_;
        if (config_.metrics != nullptr) {
          config_.metrics->span_validate.Record(now_ - rt.attempt_start);
        }
        rt.exec_start = now_;
        int gen = rt.attempt;
        Schedule(now_, [this, tx, gen] { Advance(tx, gen); });
        break;
      }
      case ReqResult::kBlocked:
        Block(tx, Retry::kBegin);
        break;
      case ReqResult::kAborted:
        HandleAbort(tx);
        break;
    }
  }

  void Advance(int tx, int gen) {
    TxRuntime& rt = runtimes_[tx];
    if (rt.attempt != gen || rt.st != St::kRunning) return;
    const SimTx& script = workload_.txs[tx];
    if (rt.next_step >= static_cast<int>(script.steps.size())) {
      TryCommit(tx);
      return;
    }
    const SimStep& step = script.steps[rt.next_step];
    switch (step.kind) {
      case SimStep::Kind::kThink: {
        ++rt.next_step;
        Schedule(now_ + step.duration, [this, tx, gen] { Advance(tx, gen); });
        return;
      }
      case SimStep::Kind::kRead: {
        Value value = 0;
        switch (controller_->Read(tx, step.entity, &value)) {
          case ReqResult::kGranted: {
            rt.local[step.entity] = value;
            rt.known[step.entity] = true;
            ++rt.ops_this_attempt;
            ++rt.next_step;
            history_log_.push_back(
                {false, tx, OpKind::kRead, step.entity, gen});
            Schedule(now_ + config_.read_duration + script.think_between_ops,
                     [this, tx, gen] { Advance(tx, gen); });
            return;
          }
          case ReqResult::kBlocked:
            Block(tx, Retry::kStep);
            return;
          case ReqResult::kAborted:
            HandleAbort(tx);
            return;
        }
        return;
      }
      case SimStep::Kind::kWrite: {
        std::set<EntityId> operands;
        step.write_expr.CollectReads(&operands);
        for (EntityId operand : operands) {
          NONSERIAL_CHECK(rt.known[operand])
              << "transaction '" << script.name << "' writes entity "
              << step.entity << " from entity " << operand
              << " it has not read";
        }
        Value value = step.write_expr.Eval(rt.local);
        switch (controller_->Write(tx, step.entity, value)) {
          case ReqResult::kGranted: {
            rt.local[step.entity] = value;
            rt.known[step.entity] = true;
            ++rt.ops_this_attempt;
            ++rt.next_step;
            history_log_.push_back(
                {false, tx, OpKind::kWrite, step.entity, gen});
            EntityId entity = step.entity;
            Schedule(now_ + config_.write_duration, [this, tx, gen, entity] {
              TxRuntime& inner = runtimes_[tx];
              if (inner.attempt != gen) return;  // Attempt was aborted.
              controller_->WriteDone(tx, entity);
            });
            Schedule(now_ + config_.write_duration +
                         script.think_between_ops,
                     [this, tx, gen] { Advance(tx, gen); });
            return;
          }
          case ReqResult::kBlocked:
            Block(tx, Retry::kStep);
            return;
          case ReqResult::kAborted:
            HandleAbort(tx);
            return;
        }
        return;
      }
    }
  }

  void TryCommit(int tx) {
    TxRuntime& rt = runtimes_[tx];
    if (rt.commit_start < 0) {
      rt.commit_start = now_;
      if (config_.metrics != nullptr && rt.exec_start >= 0) {
        config_.metrics->span_execute.Record(now_ - rt.exec_start);
      }
    }
    switch (controller_->Commit(tx)) {
      case ReqResult::kGranted: {
        rt.st = St::kCommitted;
        result_.tx[tx].committed = true;
        result_.tx[tx].commit_time = now_;
        if (config_.metrics != nullptr) {
          config_.metrics->span_terminate.Record(now_ - rt.commit_start);
          config_.metrics->span_commit_wait.Record(rt.commit_blocked);
        }
        history_log_.push_back(
            {true, tx, OpKind::kRead, kInvalidEntity, rt.attempt});
        break;
      }
      case ReqResult::kBlocked:
        Block(tx, Retry::kCommit);
        break;
      case ReqResult::kAborted:
        HandleAbort(tx);
        break;
    }
  }

  void Block(int tx, Retry retry) {
    TxRuntime& rt = runtimes_[tx];
    rt.st = St::kBlocked;
    rt.retry = retry;
    rt.blocked_since = now_;
  }

  void OnWake(int tx) {
    TxRuntime& rt = runtimes_[tx];
    if (rt.st != St::kBlocked) return;
    if (rt.retry == Retry::kCommit) {
      rt.commit_blocked += now_ - rt.blocked_since;
    }
    result_.tx[tx].blocked_time += now_ - rt.blocked_since;
    rt.st = St::kRunning;
    int gen = rt.attempt;
    switch (rt.retry) {
      case Retry::kBegin:
        rt.st = St::kPending;
        Schedule(now_, [this, tx, gen] { TryBegin(tx, gen); });
        break;
      case Retry::kStep:
        Schedule(now_, [this, tx, gen] { Advance(tx, gen); });
        break;
      case Retry::kCommit:
        Schedule(now_, [this, tx, gen] {
          TxRuntime& inner = runtimes_[tx];
          if (inner.attempt != gen || inner.st != St::kRunning) return;
          TryCommit(tx);
        });
        break;
    }
  }

  void HandleAbort(int tx) {
    TxRuntime& rt = runtimes_[tx];
    if (rt.st == St::kCommitted || rt.st == St::kGivenUp) return;
    TxOutcome& outcome = result_.tx[tx];
    if (rt.st == St::kBlocked) {
      outcome.blocked_time += now_ - rt.blocked_since;
    }
    ++outcome.aborts;
    outcome.wasted_ops += rt.ops_this_attempt;
    controller_->Abort(tx);
    ++rt.attempt;
    ++rt.restarts;
    rt.next_step = 0;
    rt.ops_this_attempt = 0;
    rt.attempt_start = -1;
    rt.exec_start = -1;
    rt.commit_start = -1;
    rt.commit_blocked = 0;
    rt.known.assign(rt.known.size(), false);
    if (rt.restarts > config_.max_restarts) {
      rt.st = St::kGivenUp;
      return;
    }
    rt.st = St::kPending;
    // Deterministic per-transaction jitter plus linear growth: repeated
    // mutual aborts (e.g. MVTO read/write livelock between long
    // transactions) desynchronize and thin out until someone finishes.
    SimTime jitter = 1 + ((tx * 7 + rt.restarts * 13) % 8);
    SimTime growth = std::min(1 + rt.restarts, 128);
    int gen = rt.attempt;
    Schedule(now_ + config_.restart_backoff * jitter * growth,
             [this, tx, gen] { TryBegin(tx, gen); });
  }

  void DrainSignals() {
    for (;;) {
      std::vector<int> forced = controller_->TakeForcedAborts();
      std::vector<int> wakeups = controller_->TakeWakeups();
      if (forced.empty() && wakeups.empty()) return;
      for (int tx : forced) HandleAbort(tx);
      for (int tx : wakeups) OnWake(tx);
    }
  }

  struct HistoryEvent {
    bool is_commit = false;
    int tx = 0;
    OpKind kind = OpKind::kRead;
    EntityId entity = kInvalidEntity;
    int gen = 0;
  };

  const SimWorkload& workload_;
  const SimConfig& config_;
  VersionStore* store_;
  ConcurrencyController* controller_;
  std::vector<HistoryEvent> history_log_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  int64_t next_seq_ = 0;
  SimTime now_ = 0;
  std::vector<TxRuntime> runtimes_;
  SimResult result_;
};

}  // namespace

SimResult Simulator::Run(
    const SimWorkload& workload, const ControllerFactory& factory,
    std::shared_ptr<VersionStore>* store_out,
    std::shared_ptr<ConcurrencyController>* controller_out) const {
  auto store = std::make_shared<VersionStore>(workload.initial);
  std::shared_ptr<ConcurrencyController> controller =
      factory(store.get(), workload);
  Runner runner(workload, config_, store.get(), controller.get());
  SimResult result = runner.Run();
  if (store_out != nullptr) *store_out = store;
  if (controller_out != nullptr) *controller_out = controller;
  return result;
}

}  // namespace nonserial
