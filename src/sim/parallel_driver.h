#ifndef NONSERIAL_SIM_PARALLEL_DRIVER_H_
#define NONSERIAL_SIM_PARALLEL_DRIVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "protocol/cep.h"
#include "sim/simulator.h"
#include "storage/version_store.h"

namespace nonserial {

/// Configuration of the multi-worker driver. Simulated think/operation
/// ticks become *real* sleeps of `us_per_tick` microseconds each — the
/// paper's environment is human-paced CAD clients, so concurrency pays off
/// by overlapping client latency, and the driver reproduces exactly that
/// (it is not a CPU-parallelism benchmark).
struct ParallelDriverConfig {
  int num_threads = 4;
  /// Real microseconds per simulated tick (think times, op durations).
  int64_t us_per_tick = 1;
  /// Ticks charged per granted read / per write before WriteDone.
  SimTime read_duration = 0;
  SimTime write_duration = 0;
  /// Give-up threshold per transaction.
  int max_restarts = 1000;
  /// Base backoff before an aborted attempt retries (real microseconds).
  int64_t backoff_us = 100;
  /// Blocked transactions re-poll the controller after this long even
  /// without a wakeup signal (guards against lost wakeups).
  int64_t poll_us = 500;
  /// Watchdog: the run gives up after this much wall time.
  int64_t max_wall_ms = 60'000;
  /// Options forwarded to the protocol engine (search mode, metrics sink).
  CorrectExecutionProtocol::Options protocol;
};

struct ParallelTxOutcome {
  int aborts = 0;
  int64_t blocked_micros = 0;  ///< Wall time spent parked on kBlocked.
  bool committed = false;
  bool gave_up = false;  ///< Restart budget or watchdog exhausted.
};

struct ParallelRunResult {
  std::vector<ParallelTxOutcome> tx;
  int committed_count = 0;
  int64_t total_aborts = 0;
  bool all_committed = false;
  bool watchdog_expired = false;
  int64_t wall_micros = 0;

  double CommitsPerSecond() const {
    return wall_micros == 0 ? 0.0
                            : 1e6 * static_cast<double>(committed_count) /
                                  static_cast<double>(wall_micros);
  }
};

/// Multi-worker driver: `num_threads` client threads drive the workload's
/// transactions through ONE CorrectExecutionProtocol instance over one
/// VersionStore — the concurrent counterpart of the single-threaded
/// discrete-event Simulator (which remains the deterministic fallback).
///
/// Threads claim transactions from a shared queue in index order and run
/// each claimed transaction to commit (or its restart budget). Blocking
/// outcomes park the owning thread on a condition variable; protocol
/// signals (wakeups, forced aborts) are drained after every controller
/// call, by whichever thread made it, and routed to per-transaction flags.
/// A parked thread also re-polls every `poll_us` so a lost wakeup can only
/// cost latency, never liveness.
///
/// Requirement: a transaction's P-predecessors must have smaller indices
/// (the generators guarantee this), so commit-rule-1 waits always point at
/// transactions some thread has already claimed.
class ParallelDriver {
 public:
  explicit ParallelDriver(ParallelDriverConfig config = ParallelDriverConfig())
      : config_(config) {}

  /// Runs the workload and returns outcome metrics. The store and engine
  /// survive the call through `store_out` / `cep_out` (e.g. for
  /// VerifyCepHistory over the records).
  ParallelRunResult Run(
      const SimWorkload& workload,
      std::shared_ptr<VersionStore>* store_out = nullptr,
      std::shared_ptr<CorrectExecutionProtocol>* cep_out = nullptr) const;

 private:
  ParallelDriverConfig config_;
};

}  // namespace nonserial

#endif  // NONSERIAL_SIM_PARALLEL_DRIVER_H_
