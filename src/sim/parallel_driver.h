#ifndef NONSERIAL_SIM_PARALLEL_DRIVER_H_
#define NONSERIAL_SIM_PARALLEL_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/span.h"
#include "engine/engine.h"
#include "protocol/cep.h"
#include "sim/simulator.h"
#include "storage/version_store.h"
#include "storage/wal.h"

namespace nonserial {

/// Chaos-mode knobs: crash-restart cycles, forced-abort storms, and the
/// failpoint schedule armed for the run. A chaos run alternates "run the
/// workload for a random window" with "crash-kill the engine and recover
/// the store from the write-ahead log", finishing with one uninterrupted
/// cycle; every recovered history is exposed for re-verification.
struct ChaosConfig {
  bool enabled = false;
  uint64_t seed = 1;
  /// Crash-kill + recover cycles before the final (uninterrupted) run.
  int crash_cycles = 5;
  /// The crash timer for each interrupted cycle is drawn uniformly from
  /// [min_cycle_us, max_cycle_us] of wall time.
  int64_t min_cycle_us = 2'000;
  int64_t max_cycle_us = 20'000;
  /// Forced-abort storm: every interval, `aborts_per_storm` random
  /// transactions get InjectAbort'ed. 0 disables storms.
  int64_t abort_storm_interval_us = 1'000;
  int aborts_per_storm = 2;
  /// Failpoints armed for the duration of the chaos run (disarmed after).
  std::vector<std::pair<std::string, FailpointSpec>> failpoints;
  /// After each crash recovery, compact the log to a checkpoint of the
  /// recovered state (CompactTo), so the live log stays bounded across
  /// cycles. Off reproduces PR 2's ever-growing-log behavior.
  bool checkpoint_each_cycle = true;
  /// Recover with best-effort salvage: mid-log corruption (injected media
  /// faults) keeps the longest verifiable committed prefix instead of
  /// failing the run. With this off, a corrupt image CHECK-fails loudly.
  bool best_effort_recovery = true;
};

/// Configuration of the multi-worker driver. Simulated think/operation
/// ticks become *real* sleeps of `us_per_tick` microseconds each — the
/// paper's environment is human-paced CAD clients, so concurrency pays off
/// by overlapping client latency, and the driver reproduces exactly that
/// (it is not a CPU-parallelism benchmark).
struct ParallelDriverConfig {
  int num_threads = 4;
  /// Real microseconds per simulated tick (think times, op durations).
  int64_t us_per_tick = 1;
  /// Ticks charged per granted read / per write before WriteDone.
  SimTime read_duration = 0;
  SimTime write_duration = 0;
  /// Give-up threshold per transaction.
  int max_restarts = 1000;
  /// Base backoff before an aborted attempt retries (real microseconds).
  int64_t backoff_us = 100;
  /// Blocked transactions re-poll the controller after this long even
  /// without a wakeup signal (guards against lost wakeups). The poll
  /// interval doubles per fruitless wait up to max_poll_us, so a long wait
  /// costs exponentially fewer spurious re-polls.
  int64_t poll_us = 500;
  int64_t max_poll_us = 8'000;
  /// Bounded waiting: a single attempt may spend at most this long parked
  /// on kBlocked before the driver aborts it and retries from scratch
  /// (deadline-based abort, counted in metrics as deadline_aborts).
  /// 0 = unbounded (the watchdog still applies).
  int64_t max_blocked_us = 0;
  /// Watchdog: the run gives up after this much wall time.
  int64_t max_wall_ms = 60'000;
  /// Write-ahead log to attach to the run's store (crash-recovery tests).
  /// Not owned; its initial() must match the workload's initial state.
  WriteAheadLog* wal = nullptr;
  /// Run the WAL in group-commit mode: workers stage frames for the log's
  /// pipelined writer thread instead of serializing per record behind the
  /// log mutex; commit acks resolve at batch flush epochs. The driver
  /// enables the pipeline before workers start, drains it (Flush) after
  /// they join, and folds the group_commit_* counters into the metrics
  /// sink. Ignored when `wal` is null.
  bool wal_group_commit = false;
  GroupCommitOptions wal_group_options;
  /// Simulated device-flush latency forwarded to the WAL (set_flush_us):
  /// sync mode pays it per commit record, group mode once per batch. This
  /// is the cost model that makes the durable-throughput comparison
  /// honest; 0 keeps flushes free.
  int64_t wal_flush_us = 0;
  /// Options forwarded to the protocol engine (search mode, metrics sink).
  CorrectExecutionProtocol::Options protocol;
  /// Per-transaction phase spans in wall-clock µs on a shared timeline
  /// (Chrome trace export, see common/report.h). The timeline's epoch is
  /// its construction time, so one timeline can span all cycles of a chaos
  /// run. Not owned; null disables span recording. With protocol.metrics
  /// set, completed phases also feed its span_* histograms.
  SpanTimeline* timeline = nullptr;
  /// Trace sink attached (SetObserver) to the engine of every cycle before
  /// workers start. Not owned; must be thread-safe (see protocol/trace.h).
  TraceSink* observer = nullptr;
  /// Fault-injection mode (RunChaos only; plain Run ignores it).
  ChaosConfig chaos;
};

struct ParallelTxOutcome {
  int aborts = 0;
  int64_t blocked_micros = 0;  ///< Wall time spent parked on kBlocked.
  bool committed = false;
  bool gave_up = false;  ///< Restart budget or watchdog exhausted.
};

struct ParallelRunResult {
  std::vector<ParallelTxOutcome> tx;
  int committed_count = 0;
  int64_t total_aborts = 0;
  bool all_committed = false;
  bool watchdog_expired = false;
  int64_t wall_micros = 0;

  double CommitsPerSecond() const {
    return wall_micros == 0 ? 0.0
                            : 1e6 * static_cast<double>(committed_count) /
                                  static_cast<double>(wall_micros);
  }
};

/// One crash-recover cycle of a chaos run: what the write-ahead log
/// reconstructed after the kill. `recovered_records` (indexed by tx id)
/// plus `recovered_snapshot` feed the record-level VerifyCepHistory — the
/// acceptance bar is that every cycle's surviving committed prefix is a
/// correct execution.
struct ChaosCycle {
  int64_t wal_records = 0;          ///< Log length at the crash point.
  int64_t wal_bytes = 0;            ///< Durable image bytes at the crash.
  int recovered_committed = 0;      ///< Transactions durably committed.
  int64_t replayed_appends = 0;
  int64_t discarded_appends = 0;    ///< In-flight versions lost to the kill.
  std::vector<CorrectExecutionProtocol::TxRecord> recovered_records;
  ValueVector recovered_snapshot;   ///< Latest committed state after redo.
  // Framed-log recovery diagnostics (see RecoveryResult).
  int64_t frames_scanned = 0;
  int64_t frames_truncated = 0;
  int64_t frames_salvaged = 0;
  bool truncated_tail = false;
  bool corruption_detected = false;
  bool salvaged = false;
  int64_t recovery_micros = 0;
  int64_t segments_reclaimed = 0;       ///< By this cycle's compaction.
  int64_t post_compaction_records = 0;  ///< Log length after compaction
                                        ///< (0 proves the log is bounded).
};

struct ChaosRunResult {
  std::vector<ChaosCycle> cycles;      ///< One per crash-restart.
  ParallelRunResult final_result;      ///< The uninterrupted last cycle.
  size_t leaked_waiters = 0;           ///< Engine waiter-map entries at end.
  int64_t injected_aborts = 0;         ///< Storm + failpoint forced aborts.
};

/// Multi-worker driver: `num_threads` client threads drive the workload's
/// transactions through ONE CorrectExecutionProtocol instance over one
/// VersionStore — the concurrent counterpart of the single-threaded
/// discrete-event Simulator (which remains the deterministic fallback).
///
/// Threads claim transactions from a shared queue in index order and run
/// each claimed transaction to commit (or its restart budget). Blocking
/// outcomes park the owning thread on a condition variable; protocol
/// signals (wakeups, forced aborts) are drained after every controller
/// call, by whichever thread made it, and routed to per-transaction flags.
/// A parked thread also re-polls with exponential backoff so a lost wakeup
/// can only cost latency, never liveness.
///
/// Requirement: a transaction's P-predecessors must have smaller indices
/// (the generators guarantee this), so commit-rule-1 waits always point at
/// transactions some thread has already claimed.
class ParallelDriver {
 public:
  explicit ParallelDriver(ParallelDriverConfig config = ParallelDriverConfig())
      : config_(config) {}

  /// Runs the workload against a caller-owned Engine — the driver is one
  /// client of the engine facade, sharing its controller, store, WAL
  /// pipeline, and signal hub with any concurrently open sessions (the
  /// engine's transaction-id floor is raised past the workload so session
  /// ids cannot collide with workload indices). The engine's store must
  /// have been built from the same initial state as the workload. The
  /// engine is NOT shut down; the caller owns its lifecycle.
  ParallelRunResult Run(const SimWorkload& workload, Engine* engine) const;

  /// Convenience form: assembles a private Engine from this config (store,
  /// WAL wiring, eval cache), runs the workload, shuts the engine down, and
  /// hands the store/controller out through `store_out` / `cep_out` (e.g.
  /// for VerifyCepHistory over the records).
  ParallelRunResult Run(
      const SimWorkload& workload,
      std::shared_ptr<VersionStore>* store_out = nullptr,
      std::shared_ptr<CorrectExecutionProtocol>* cep_out = nullptr) const;

  /// Chaos mode against a caller-owned Engine (which must have a WAL):
  /// config.chaos.crash_cycles crash-kill/recover cycles (each ended by
  /// abandoning the workers mid-flight and rebuilding store + controller
  /// from the write-ahead log via Engine::CrashRecover), then one
  /// uninterrupted cycle that runs the remaining transactions to
  /// completion. Forced-abort storms and the configured failpoints run
  /// throughout. The caller re-verifies each ChaosCycle's recovered
  /// records and the final history.
  ChaosRunResult RunChaos(const SimWorkload& workload, Engine* engine) const;

  /// Convenience form: assembles a private Engine (owning a WAL when the
  /// config does not provide one), runs chaos mode, and shuts it down.
  ChaosRunResult RunChaos(
      const SimWorkload& workload,
      std::shared_ptr<VersionStore>* store_out = nullptr,
      std::shared_ptr<CorrectExecutionProtocol>* cep_out = nullptr) const;

 private:
  /// Engine assembly shared by the convenience overloads: the one mapping
  /// from driver config to EngineOptions (this used to be duplicated setup
  /// code inside Run / RunChaos / the chaos tests).
  EngineOptions MakeEngineOptions(const SimWorkload& workload,
                                  WriteAheadLog* wal) const;

  ParallelDriverConfig config_;
};

}  // namespace nonserial

#endif  // NONSERIAL_SIM_PARALLEL_DRIVER_H_
