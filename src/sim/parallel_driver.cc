#include "sim/parallel_driver.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "common/logging.h"

namespace nonserial {
namespace {

using Clock = std::chrono::steady_clock;

/// Routes protocol signals to per-transaction flags. Whichever thread
/// makes a controller call drains the engine's signal sets afterwards and
/// publishes them here; parked owners wait on the condition variable.
struct SignalHub {
  explicit SignalHub(int num_txs)
      : woken(num_txs, 0), forced(num_txs, 0) {}

  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> woken;
  std::vector<char> forced;
  bool stop = false;
};

class Driver {
 public:
  Driver(const SimWorkload& workload, const ParallelDriverConfig& config,
         VersionStore* store, CorrectExecutionProtocol* cep)
      : workload_(workload),
        config_(config),
        store_(store),
        cep_(cep),
        hub_(static_cast<int>(workload.txs.size())) {
    result_.tx.resize(workload.txs.size());
  }

  ParallelRunResult Run() {
    for (size_t i = 0; i < workload_.txs.size(); ++i) {
      const SimTx& tx = workload_.txs[i];
      for (int pred : tx.predecessors) {
        NONSERIAL_CHECK_LT(pred, static_cast<int>(i))
            << "parallel driver requires predecessors to precede their "
               "successors in index order";
      }
      TxProfile profile;
      profile.name = tx.name;
      profile.input = tx.input;
      profile.output = tx.output;
      profile.predecessors = tx.predecessors;
      cep_->Register(static_cast<int>(i), profile);
    }
    Clock::time_point start = Clock::now();
    deadline_ = start + std::chrono::milliseconds(config_.max_wall_ms);

    int threads = std::max(1, config_.num_threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
    for (std::thread& worker : workers) worker.join();

    result_.wall_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - start)
                              .count();
    result_.watchdog_expired = Expired();
    result_.all_committed = true;
    for (const ParallelTxOutcome& outcome : result_.tx) {
      result_.total_aborts += outcome.aborts;
      if (outcome.committed) {
        ++result_.committed_count;
      } else {
        result_.all_committed = false;
      }
    }
    return std::move(result_);
  }

 private:
  bool Expired() const { return Clock::now() >= deadline_; }

  void SleepTicks(SimTime ticks) const {
    int64_t us = ticks * config_.us_per_tick;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  /// Publishes pending engine signals. Called after every controller call.
  void Drain() {
    std::vector<int> forced = cep_->TakeForcedAborts();
    std::vector<int> woken = cep_->TakeWakeups();
    if (forced.empty() && woken.empty()) return;
    {
      std::lock_guard<std::mutex> lock(hub_.mu);
      for (int tx : forced) hub_.forced[tx] = 1;
      for (int tx : woken) hub_.woken[tx] = 1;
    }
    hub_.cv.notify_all();
  }

  bool ForcedPending(int tx) {
    std::lock_guard<std::mutex> lock(hub_.mu);
    return hub_.forced[tx] != 0;
  }

  void ClearSignals(int tx) {
    std::lock_guard<std::mutex> lock(hub_.mu);
    hub_.woken[tx] = 0;
    hub_.forced[tx] = 0;
  }

  /// Parks until a wakeup or forced abort arrives for `tx` (or the poll
  /// interval elapses — blocked requests are safe to re-issue). Returns
  /// true iff a forced abort is pending.
  bool AwaitSignal(int tx, ParallelTxOutcome* outcome) {
    Clock::time_point parked = Clock::now();
    bool forced;
    {
      std::unique_lock<std::mutex> lock(hub_.mu);
      hub_.cv.wait_for(lock, std::chrono::microseconds(config_.poll_us),
                       [&] {
                         return hub_.woken[tx] != 0 || hub_.forced[tx] != 0 ||
                                hub_.stop;
                       });
      hub_.woken[tx] = 0;
      forced = hub_.forced[tx] != 0;
    }
    int64_t blocked = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - parked)
                          .count();
    outcome->blocked_micros += blocked;
    if (config_.protocol.metrics != nullptr) {
      config_.protocol.metrics->wait_micros.Record(blocked);
    }
    return forced;
  }

  void WorkerLoop() {
    for (;;) {
      int tx = next_tx_.fetch_add(1, std::memory_order_relaxed);
      if (tx >= static_cast<int>(workload_.txs.size())) return;
      RunTx(tx);
    }
  }

  void RunTx(int tx) {
    const SimTx& script = workload_.txs[tx];
    ParallelTxOutcome outcome;
    ValueVector local(workload_.initial.size(), 0);
    std::vector<bool> known(workload_.initial.size(), false);
    int restarts = 0;

    while (!outcome.committed && !outcome.gave_up) {
      if (Expired()) {
        outcome.gave_up = true;
        break;
      }
      ClearSignals(tx);
      known.assign(known.size(), false);
      bool aborted = false;

      // Validation phase.
      for (;;) {
        ReqResult r = cep_->Begin(tx);
        Drain();
        if (r == ReqResult::kGranted) break;
        if (r == ReqResult::kAborted || AwaitSignal(tx, &outcome) ||
            Expired()) {
          aborted = true;
          break;
        }
      }

      // Execution phase.
      if (!aborted) {
        for (const SimStep& step : script.steps) {
          if (ForcedPending(tx) || Expired()) {
            aborted = true;
            break;
          }
          if (step.kind == SimStep::Kind::kThink) {
            SleepTicks(step.duration);
            continue;
          }
          if (step.kind == SimStep::Kind::kRead) {
            for (;;) {
              Value value = 0;
              ReqResult r = cep_->Read(tx, step.entity, &value);
              Drain();
              if (r == ReqResult::kGranted) {
                local[step.entity] = value;
                known[step.entity] = true;
                break;
              }
              if (r == ReqResult::kAborted || AwaitSignal(tx, &outcome) ||
                  Expired()) {
                aborted = true;
                break;
              }
            }
            if (aborted) break;
            SleepTicks(config_.read_duration + script.think_between_ops);
            continue;
          }
          // Write: never blocks (Figure 3). The W hold spans the simulated
          // write duration; a forced abort arriving meanwhile skips
          // WriteDone — Abort's ReleaseAll drops the hold.
          std::set<EntityId> operands;
          step.write_expr.CollectReads(&operands);
          for (EntityId operand : operands) {
            NONSERIAL_CHECK(known[operand])
                << "transaction '" << script.name << "' writes entity "
                << step.entity << " from entity " << operand
                << " it has not read";
          }
          Value value = step.write_expr.Eval(local);
          ReqResult r = cep_->Write(tx, step.entity, value);
          Drain();
          if (r == ReqResult::kAborted) {
            aborted = true;
            break;
          }
          local[step.entity] = value;
          known[step.entity] = true;
          SleepTicks(config_.write_duration);
          if (ForcedPending(tx)) {
            aborted = true;
            break;
          }
          cep_->WriteDone(tx, step.entity);
          Drain();
          SleepTicks(script.think_between_ops);
        }
      }

      // Termination phase.
      if (!aborted) {
        for (;;) {
          ReqResult r = cep_->Commit(tx);
          Drain();
          if (r == ReqResult::kGranted) {
            outcome.committed = true;
            break;
          }
          if (r == ReqResult::kAborted || AwaitSignal(tx, &outcome) ||
              Expired()) {
            aborted = true;
            break;
          }
        }
      }

      if (outcome.committed) break;
      cep_->Abort(tx);
      Drain();
      ++outcome.aborts;
      ++restarts;
      if (restarts > config_.max_restarts) {
        outcome.gave_up = true;
        break;
      }
      // Same deterministic desynchronizing backoff as the simulator.
      int64_t jitter = 1 + ((tx * 7 + restarts * 13) % 8);
      int64_t growth = std::min<int64_t>(1 + restarts, 64);
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.backoff_us * jitter * growth));
    }

    std::lock_guard<std::mutex> lock(result_mu_);
    result_.tx[tx] = outcome;
  }

  const SimWorkload& workload_;
  const ParallelDriverConfig& config_;
  VersionStore* store_;
  CorrectExecutionProtocol* cep_;

  SignalHub hub_;
  std::atomic<int> next_tx_{0};
  Clock::time_point deadline_;
  std::mutex result_mu_;
  ParallelRunResult result_;
};

}  // namespace

ParallelRunResult ParallelDriver::Run(
    const SimWorkload& workload,
    std::shared_ptr<VersionStore>* store_out,
    std::shared_ptr<CorrectExecutionProtocol>* cep_out) const {
  auto store = std::make_shared<VersionStore>(workload.initial);
  auto cep =
      std::make_shared<CorrectExecutionProtocol>(store.get(), config_.protocol);
  Driver driver(workload, config_, store.get(), cep.get());
  ParallelRunResult result = driver.Run();
  if (store_out != nullptr) *store_out = store;
  if (cep_out != nullptr) *cep_out = cep;
  return result;
}

}  // namespace nonserial
