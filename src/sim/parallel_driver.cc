#include "sim/parallel_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"

namespace nonserial {
namespace {

using Clock = std::chrono::steady_clock;

class Driver {
 public:
  /// `restored` (may be null): per-tx records recovered from a WAL; entries
  /// with committed == true are re-adopted via RestoreCommitted instead of
  /// re-run. `crash_after_us` >= 0 arms a crash-kill timer: once it fires,
  /// workers abandon their transactions *without* aborting or rolling back
  /// (kill semantics — only the write-ahead log survives).
  Driver(const SimWorkload& workload, const ParallelDriverConfig& config,
         Engine* engine,
         const std::vector<CorrectExecutionProtocol::TxRecord>* restored,
         int64_t crash_after_us, uint64_t storm_seed)
      : workload_(workload),
        config_(config),
        engine_(engine),
        cep_(engine->cep()),
        restored_(restored),
        crash_after_us_(crash_after_us),
        storm_rng_(storm_seed) {
    result_.tx.resize(workload.txs.size());
  }

  ParallelRunResult Run() {
    int num_txs = static_cast<int>(workload_.txs.size());
    // Workload transactions are addressed by index; fence the engine's
    // session id allocator past them and size the shared signal hub.
    engine_->ReserveTxIdFloor(num_txs);
    engine_->EnsureTxSlots(num_txs);
    for (size_t i = 0; i < workload_.txs.size(); ++i) {
      const SimTx& tx = workload_.txs[i];
      for (int pred : tx.predecessors) {
        NONSERIAL_CHECK_LT(pred, static_cast<int>(i))
            << "parallel driver requires predecessors to precede their "
               "successors in index order";
      }
      TxProfile profile;
      profile.name = tx.name;
      profile.input = tx.input;
      profile.output = tx.output;
      profile.predecessors = tx.predecessors;
      cep_->Register(static_cast<int>(i), profile);
    }
    if (restored_ != nullptr) {
      for (size_t i = 0; i < restored_->size(); ++i) {
        if ((*restored_)[i].committed) {
          cep_->RestoreCommitted(static_cast<int>(i), (*restored_)[i]);
        }
      }
    }
    Clock::time_point start = Clock::now();
    deadline_ = start + std::chrono::milliseconds(config_.max_wall_ms);
    crash_armed_ = crash_after_us_ >= 0;
    if (crash_armed_) {
      crash_at_ = start + std::chrono::microseconds(crash_after_us_);
    }

    int threads = std::max(1, config_.num_threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
    std::thread storm;
    if (config_.chaos.enabled && config_.chaos.abort_storm_interval_us > 0) {
      storm = std::thread([this] { StormLoop(); });
    }
    for (std::thread& worker : workers) worker.join();
    done_.store(true, std::memory_order_release);
    if (storm.joinable()) storm.join();

    result_.wall_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - start)
                              .count();
    result_.watchdog_expired = Expired();
    result_.all_committed = true;
    for (const ParallelTxOutcome& outcome : result_.tx) {
      result_.total_aborts += outcome.aborts;
      if (outcome.committed) {
        ++result_.committed_count;
      } else {
        result_.all_committed = false;
      }
    }
    return std::move(result_);
  }

 private:
  bool Expired() const { return Clock::now() >= deadline_; }
  bool Crashed() const { return crash_armed_ && Clock::now() >= crash_at_; }
  /// Workers stop making progress on expiry (give up) or crash (abandon).
  bool Halted() const { return Expired() || Crashed(); }

  void SleepTicks(SimTime ticks) const {
    int64_t us = ticks * config_.us_per_tick;
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

  /// Parks on the engine's shared signal hub until a wakeup or forced
  /// abort arrives for `tx` (or the current poll interval elapses —
  /// blocked requests are safe to re-issue). Each fruitless wait doubles
  /// `*poll_us` up to max_poll_us: exponential backoff keeps spurious
  /// re-polls cheap while still bounding the damage of a lost wakeup.
  /// Returns true iff a forced abort is pending.
  bool AwaitSignal(int tx, ParallelTxOutcome* outcome, int64_t* poll_us,
                   int64_t* attempt_blocked_us) {
    int64_t blocked = 0;
    bool forced = engine_->AwaitSignal(tx, *poll_us, &blocked);
    *poll_us = std::min(*poll_us * 2,
                        std::max(config_.max_poll_us, config_.poll_us));
    outcome->blocked_micros += blocked;
    *attempt_blocked_us += blocked;
    return forced;
  }

  void WorkerLoop() {
    for (;;) {
      if (Crashed()) return;
      int tx = next_tx_.fetch_add(1, std::memory_order_relaxed);
      if (tx >= static_cast<int>(workload_.txs.size())) return;
      RunTx(tx);
    }
  }

  /// Forced-abort storm: periodically dooms random in-flight transactions
  /// through the engine's fault-injection entry point. The engine treats an
  /// injected abort exactly like a Figure 4 invalidation, so the owning
  /// workers recover through their ordinary abort/restart path.
  void StormLoop() {
    int num_txs = static_cast<int>(workload_.txs.size());
    while (!done_.load(std::memory_order_acquire) && !Halted()) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.chaos.abort_storm_interval_us));
      for (int i = 0; i < config_.chaos.aborts_per_storm; ++i) {
        cep_->InjectAbort(
            static_cast<int>(storm_rng_.Uniform(num_txs)));
      }
      engine_->DrainSignals();
    }
  }

  void RunTx(int tx) {
    const SimTx& script = workload_.txs[tx];
    ParallelTxOutcome outcome;
    SpanTimeline* timeline = config_.timeline;
    ProtocolMetrics* metrics = config_.protocol.metrics;
    if (timeline != nullptr) {
      timeline->SetLaneName(
          tx, script.name.empty() ? StrCat("tx", tx) : script.name);
    }
    // Recovered from the write-ahead log in a previous crash cycle: the
    // store already holds its committed versions and the engine adopted its
    // record in RestoreCommitted — nothing to execute.
    if (restored_ != nullptr && (*restored_)[tx].committed) {
      outcome.committed = true;
      std::lock_guard<std::mutex> lock(result_mu_);
      result_.tx[tx] = outcome;
      return;
    }
    ValueVector local(workload_.initial.size(), 0);
    std::vector<bool> known(workload_.initial.size(), false);
    int restarts = 0;

    while (!outcome.committed && !outcome.gave_up) {
      if (Halted()) {
        outcome.gave_up = true;
        break;
      }
      engine_->ClearSignals(tx);
      known.assign(known.size(), false);
      bool aborted = false;
      int64_t poll_us = std::max<int64_t>(1, config_.poll_us);
      int64_t attempt_blocked_us = 0;

      // Phase-span bookkeeping: close_phase stamps the span ending now and
      // re-arms the mark for the next phase. Completed phases additionally
      // feed the metrics span histograms; failed ones only appear on the
      // timeline (ok=false), where aborted work is the interesting part.
      Clock::time_point phase_mark = Clock::now();
      int64_t phase_offset_us =
          timeline == nullptr ? 0 : timeline->ElapsedUs();
      auto close_phase = [&](const char* phase, bool ok, Histogram* hist) {
        int64_t dur_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - phase_mark)
                .count();
        if (ok && hist != nullptr) hist->Record(dur_us);
        if (timeline != nullptr) {
          timeline->Add({tx, restarts, phase, phase_offset_us, dur_us, ok});
        }
        phase_mark = Clock::now();
        phase_offset_us = timeline == nullptr ? 0 : timeline->ElapsedUs();
      };

      // Shared blocked-wait policy for the three blocking calls: park with
      // backoff, then abort the attempt on forced abort, halt, or (bounded
      // waiting) a blown per-attempt blocked-time budget.
      auto wait_or_abort = [&]() -> bool {
        if (AwaitSignal(tx, &outcome, &poll_us, &attempt_blocked_us)) {
          return true;
        }
        if (Halted()) return true;
        if (config_.max_blocked_us > 0 &&
            attempt_blocked_us > config_.max_blocked_us) {
          if (config_.protocol.metrics != nullptr) {
            config_.protocol.metrics->deadline_aborts.Add();
          }
          return true;
        }
        return false;
      };

      // Validation phase.
      for (;;) {
        ReqResult r = cep_->Begin(tx);
        engine_->DrainSignals();
        if (r == ReqResult::kGranted) break;
        if (r == ReqResult::kAborted || wait_or_abort()) {
          aborted = true;
          break;
        }
      }
      close_phase("validate", !aborted,
                  metrics == nullptr ? nullptr : &metrics->span_validate);

      // Execution phase.
      if (!aborted) {
        for (const SimStep& step : script.steps) {
          if (engine_->ForcedPending(tx) || Halted()) {
            aborted = true;
            break;
          }
          if (step.kind == SimStep::Kind::kThink) {
            SleepTicks(step.duration);
            continue;
          }
          if (step.kind == SimStep::Kind::kRead) {
            for (;;) {
              Value value = 0;
              ReqResult r = cep_->Read(tx, step.entity, &value);
              engine_->DrainSignals();
              if (r == ReqResult::kGranted) {
                local[step.entity] = value;
                known[step.entity] = true;
                break;
              }
              if (r == ReqResult::kAborted || wait_or_abort()) {
                aborted = true;
                break;
              }
            }
            if (aborted) break;
            SleepTicks(config_.read_duration + script.think_between_ops);
            continue;
          }
          // Write: never blocks (Figure 3). The W hold spans the simulated
          // write duration; a forced abort arriving meanwhile skips
          // WriteDone — Abort's ReleaseAll drops the hold.
          std::set<EntityId> operands;
          step.write_expr.CollectReads(&operands);
          for (EntityId operand : operands) {
            NONSERIAL_CHECK(known[operand])
                << "transaction '" << script.name << "' writes entity "
                << step.entity << " from entity " << operand
                << " it has not read";
          }
          Value value = step.write_expr.Eval(local);
          ReqResult r = cep_->Write(tx, step.entity, value);
          engine_->DrainSignals();
          if (r == ReqResult::kAborted) {
            aborted = true;
            break;
          }
          local[step.entity] = value;
          known[step.entity] = true;
          SleepTicks(config_.write_duration);
          if (engine_->ForcedPending(tx)) {
            aborted = true;
            break;
          }
          cep_->WriteDone(tx, step.entity);
          engine_->DrainSignals();
          SleepTicks(script.think_between_ops);
        }
        close_phase("execute", !aborted,
                    metrics == nullptr ? nullptr : &metrics->span_execute);
      }

      // Termination phase.
      if (!aborted) {
        int64_t blocked_before_commit_us = attempt_blocked_us;
        for (;;) {
          ReqResult r = cep_->Commit(tx);
          engine_->DrainSignals();
          if (r == ReqResult::kGranted) {
            outcome.committed = true;
            break;
          }
          if (r == ReqResult::kAborted || wait_or_abort()) {
            aborted = true;
            break;
          }
        }
        close_phase("terminate", outcome.committed,
                    metrics == nullptr ? nullptr : &metrics->span_terminate);
        if (outcome.committed && metrics != nullptr) {
          metrics->span_commit_wait.Record(attempt_blocked_us -
                                           blocked_before_commit_us);
        }
      }

      if (outcome.committed) break;
      // Crash-kill semantics: an abandoned attempt does NOT abort — no
      // rollback records reach the log, exactly as if the process died.
      // Recovery must discard the in-flight versions on its own.
      if (Crashed()) {
        outcome.gave_up = true;
        break;
      }
      cep_->Abort(tx);
      engine_->DrainSignals();
      ++outcome.aborts;
      ++restarts;
      if (restarts > config_.max_restarts) {
        outcome.gave_up = true;
        break;
      }
      // Same deterministic desynchronizing backoff as the simulator.
      int64_t jitter = 1 + ((tx * 7 + restarts * 13) % 8);
      int64_t growth = std::min<int64_t>(1 + restarts, 64);
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.backoff_us * jitter * growth));
    }

    std::lock_guard<std::mutex> lock(result_mu_);
    result_.tx[tx] = outcome;
  }

  const SimWorkload& workload_;
  const ParallelDriverConfig& config_;
  Engine* engine_;
  CorrectExecutionProtocol* cep_;  ///< engine_->cep(), stable for this cycle.
  const std::vector<CorrectExecutionProtocol::TxRecord>* restored_;
  int64_t crash_after_us_;
  Rng storm_rng_;

  std::atomic<int> next_tx_{0};
  std::atomic<bool> done_{false};
  Clock::time_point deadline_;
  Clock::time_point crash_at_;
  bool crash_armed_ = false;
  std::mutex result_mu_;
  ParallelRunResult result_;
};

}  // namespace

EngineOptions ParallelDriver::MakeEngineOptions(const SimWorkload& workload,
                                                WriteAheadLog* wal) const {
  EngineOptions options;
  options.initial = workload.initial;
  options.protocol = config_.protocol;
  options.wal = wal;
  options.wal_group_commit = config_.wal_group_commit;
  options.wal_group_options = config_.wal_group_options;
  options.wal_flush_us = config_.wal_flush_us;
  options.observer = config_.observer;
  options.poll_us = config_.poll_us;
  options.max_poll_us = config_.max_poll_us;
  options.max_blocked_us = config_.max_blocked_us;
  return options;
}

ParallelRunResult ParallelDriver::Run(const SimWorkload& workload,
                                      Engine* engine) const {
  NONSERIAL_CHECK_EQ(engine->store()->num_entities(),
                     static_cast<int>(workload.initial.size()))
      << "engine store does not match the workload's entity count";
  Driver driver(workload, config_, engine,
                /*restored=*/nullptr, /*crash_after_us=*/-1,
                /*storm_seed=*/config_.chaos.seed);
  return driver.Run();
}

ParallelRunResult ParallelDriver::Run(
    const SimWorkload& workload,
    std::shared_ptr<VersionStore>* store_out,
    std::shared_ptr<CorrectExecutionProtocol>* cep_out) const {
  Engine engine(MakeEngineOptions(workload, config_.wal));
  ParallelRunResult result = Run(workload, &engine);
  engine.Shutdown();
  if (store_out != nullptr) *store_out = engine.store_ref();
  if (cep_out != nullptr) *cep_out = engine.cep_ref();
  return result;
}

ChaosRunResult ParallelDriver::RunChaos(const SimWorkload& workload,
                                        Engine* engine) const {
  const ChaosConfig& chaos = config_.chaos;
  NONSERIAL_CHECK(chaos.enabled) << "RunChaos needs config.chaos.enabled";
  NONSERIAL_CHECK(engine->wal() != nullptr)
      << "chaos mode needs an engine with a write-ahead log (the log is the "
         "only state that survives a crash)";
  WriteAheadLog* wal = engine->wal();
  FailpointRegistry& registry = FailpointRegistry::Global();
  registry.Seed(chaos.seed);
  for (const auto& [name, spec] : chaos.failpoints) registry.Arm(name, spec);
  Rng rng(chaos.seed ^ 0x9e3779b97f4a7c15ULL);

  ChaosRunResult out;
  std::vector<CorrectExecutionProtocol::TxRecord> restored(
      workload.txs.size());
  for (int cycle = 0; cycle <= chaos.crash_cycles; ++cycle) {
    const bool final_cycle = cycle == chaos.crash_cycles;
    int64_t crash_after_us =
        final_cycle ? -1
                    : rng.UniformInt(chaos.min_cycle_us, chaos.max_cycle_us);
    Driver driver(workload, config_, engine, &restored, crash_after_us,
                  chaos.seed + static_cast<uint64_t>(cycle));
    ParallelRunResult result = driver.Run();
    out.injected_aborts += engine->cep()->stats().injected_aborts;
    if (final_cycle) {
      out.final_result = std::move(result);
      break;
    }

    // Crash: engine internals vanish mid-flight; Engine::CrashRecover
    // rebuilds store + controller from the log (and fences it with the
    // crash marker so pre-crash in-flight appends cannot resurrect).
    ChaosCycle c;
    WalStats pre_stats = wal->stats();
    c.wal_records = pre_stats.records;
    c.wal_bytes = pre_stats.bytes;
    RecoveryOptions recovery_options;
    recovery_options.best_effort = chaos.best_effort_recovery;
    RecoveryResult rec = engine->CrashRecover(recovery_options);
    // Corruption is never silently absorbed: best-effort mode reports it
    // (cycle flags + trace + metrics) and salvages; strict mode stops the
    // run on the spot.
    NONSERIAL_CHECK(rec.status.ok())
        << "chaos cycle " << cycle
        << " recovery failed: " << rec.status.ToString();
    c.recovered_committed = static_cast<int>(rec.committed.size());
    c.replayed_appends = rec.replayed_appends;
    c.discarded_appends = rec.discarded_appends;
    c.frames_scanned = rec.frames_scanned;
    c.frames_truncated = rec.frames_truncated;
    c.frames_salvaged = rec.frames_salvaged;
    c.truncated_tail = rec.truncated_tail;
    c.corruption_detected = rec.corruption_detected;
    c.salvaged = rec.salvaged;
    c.recovery_micros = rec.recovery_micros;
    if (config_.observer != nullptr && rec.corruption_detected) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kCorruptionDetected;
      event.tx = cycle;
      event.value = rec.frames_salvaged;
      event.protocol = "wal";
      config_.observer->OnEvent(event);
    }
    // Rebuild the restored set from scratch: with best-effort salvage the
    // durable committed set is exactly what THIS recovery returned —
    // accumulating across cycles could resurrect transactions whose records
    // a later media fault destroyed.
    std::vector<CorrectExecutionProtocol::TxRecord> next_restored(
        workload.txs.size());
    int newly_recovered = 0;
    for (const RecoveredTx& t : rec.committed) {
      NONSERIAL_CHECK_LT(t.tx, static_cast<int>(restored.size()));
      if (!restored[t.tx].committed) ++newly_recovered;
      CorrectExecutionProtocol::TxRecord record;
      record.name = t.name;
      record.input_state = t.input_state;
      record.feeder_txs.insert(t.feeders.begin(), t.feeders.end());
      record.writes = t.writes;
      record.committed = true;
      next_restored[t.tx] = std::move(record);
    }
    restored = std::move(next_restored);
    // Checkpoint compaction: the recovered state becomes one checkpoint
    // frame and every earlier segment is reclaimed — the log stays bounded
    // no matter how many crash cycles the run sustains.
    if (chaos.checkpoint_each_cycle) {
      c.segments_reclaimed = wal->CompactTo(rec);
      c.post_compaction_records = static_cast<int64_t>(wal->size());
      if (config_.protocol.metrics != nullptr) {
        config_.protocol.metrics->checkpoint_compactions.Add();
      }
      if (config_.observer != nullptr) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::kCheckpoint;
        event.tx = cycle;
        event.value = static_cast<Value>(rec.committed.size());
        event.protocol = "wal";
        config_.observer->OnEvent(event);
        event.kind = TraceEvent::Kind::kCompaction;
        event.value = static_cast<Value>(c.segments_reclaimed);
        config_.observer->OnEvent(event);
      }
    } else {
      c.post_compaction_records = static_cast<int64_t>(wal->size());
    }
    if (config_.protocol.metrics != nullptr) {
      ProtocolMetrics* m = config_.protocol.metrics;
      m->crash_restarts.Add();
      m->recovered_txs.Add(newly_recovered);
      m->recovery_frames_scanned.Add(rec.frames_scanned);
      m->recovery_frames_truncated.Add(rec.frames_truncated);
      m->recovery_frames_salvaged.Add(rec.frames_salvaged);
      m->recovery_micros.Record(rec.recovery_micros);
    }
    c.recovered_records = restored;
    c.recovered_snapshot = rec.store->LatestCommittedSnapshot();
    out.cycles.push_back(std::move(c));
  }
  out.leaked_waiters = engine->cep()->WaiterFootprint();
  for (const auto& [name, spec] : chaos.failpoints) registry.Disarm(name);
  return out;
}

ChaosRunResult ParallelDriver::RunChaos(
    const SimWorkload& workload,
    std::shared_ptr<VersionStore>* store_out,
    std::shared_ptr<CorrectExecutionProtocol>* cep_out) const {
  // The log is the only state that survives a crash. An external log
  // (config.wal) lets tests inspect or truncate it; otherwise one is owned
  // here for the duration of the run.
  WriteAheadLog owned_wal(workload.initial);
  WriteAheadLog* wal = config_.wal != nullptr ? config_.wal : &owned_wal;
  Engine engine(MakeEngineOptions(workload, wal));
  ChaosRunResult out = RunChaos(workload, &engine);
  engine.Shutdown();
  if (store_out != nullptr) *store_out = engine.store_ref();
  if (cep_out != nullptr) *cep_out = engine.cep_ref();
  return out;
}

}  // namespace nonserial
