#ifndef NONSERIAL_SIM_SIMULATOR_H_
#define NONSERIAL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "classes/recoverability.h"
#include "common/metrics.h"
#include "model/transaction.h"
#include "predicate/predicate.h"
#include "protocol/controller.h"
#include "schedule/schedule.h"
#include "storage/version_store.h"

namespace nonserial {

/// Simulated time, in abstract ticks. Long-duration transactions have large
/// think times between operations (modeling humans at CAD workstations);
/// short OLTP transactions have none.
using SimTime = int64_t;

/// One step of a transaction script.
struct SimStep {
  enum class Kind : uint8_t { kRead, kWrite, kThink };

  Kind kind = Kind::kRead;
  EntityId entity = kInvalidEntity;  ///< kRead / kWrite.
  Expr write_expr;                   ///< kWrite: value as f(previous reads).
  SimTime duration = 0;              ///< kThink.

  static SimStep Read(EntityId e);
  static SimStep Write(EntityId e, Expr expr);
  static SimStep Think(SimTime duration);
};

/// A transaction as the simulator drives it: specification, program, and
/// workload-level placement (arrival time, partial-order predecessors).
struct SimTx {
  std::string name;
  Predicate input;   ///< I_t; must mention every entity the script reads.
  Predicate output;  ///< O_t; checked by the controller at commit.
  std::vector<SimStep> steps;
  SimTime arrival = 0;
  std::vector<int> predecessors;   ///< Indices of P-predecessor transactions.
  SimTime think_between_ops = 0;   ///< Human latency after every operation.
};

/// A complete workload: initial database, transactions, and the consistency
/// constraint's objects (used by predicate-wise protocols and by the
/// class-membership analysis of emitted histories).
struct SimWorkload {
  ValueVector initial;
  std::vector<SimTx> txs;
  ObjectSetList objects;
};

struct SimConfig {
  SimTime read_duration = 1;
  SimTime write_duration = 1;
  SimTime restart_backoff = 25;   ///< Delay before an aborted attempt retries.
  int max_restarts = 10000;       ///< Give-up threshold per transaction.
  SimTime max_time = 500'000'000; ///< Watchdog against livelock.
  /// Optional sink for per-phase spans (span_validate / span_execute /
  /// span_commit_wait / span_terminate), in simulated ticks. Only phases of
  /// committed attempts are recorded. Not owned.
  ProtocolMetrics* metrics = nullptr;
};

/// Per-transaction outcome metrics.
struct TxOutcome {
  int aborts = 0;
  SimTime blocked_time = 0;
  SimTime begin_time = -1;
  SimTime commit_time = -1;
  int64_t wasted_ops = 0;  ///< Operations performed in aborted attempts.
  bool committed = false;
};

/// The classical-schedule view of a run: the granted read/write operations
/// of every *committed* attempt, in grant order, plus commit points. This
/// bridges the protocol experiments (Section 5) back to the correctness
/// classes (Section 4): an emitted history can be classified against
/// CSR/SR/MVCSR/CPC and the recovery hierarchy directly.
struct EmittedHistory {
  Schedule schedule;
  CommitPoints commits;
  std::vector<TxId> committed;  ///< Transactions included.
};

/// Aggregate result of one simulation run.
struct SimResult {
  SimTime makespan = 0;
  std::vector<TxOutcome> tx;
  int64_t total_aborts = 0;
  SimTime total_blocked = 0;
  int64_t total_wasted_ops = 0;
  int committed_count = 0;
  bool all_committed = false;
  ValueVector final_state;
  EmittedHistory history;

  double MeanBlocked() const {
    return tx.empty() ? 0.0
                      : static_cast<double>(total_blocked) /
                            static_cast<double>(tx.size());
  }
  /// Committed transactions per 1000 ticks of makespan.
  double Throughput() const {
    return makespan == 0 ? 0.0
                         : 1000.0 * static_cast<double>(committed_count) /
                               static_cast<double>(makespan);
  }
};

/// Builds a controller over a freshly initialized version store. The
/// factory also receives the workload (predicate-wise 2PL needs the
/// constraint objects and planned ops).
using ControllerFactory = std::function<std::unique_ptr<ConcurrencyController>(
    VersionStore*, const SimWorkload&)>;

/// Single-threaded discrete-event simulator driving a set of transaction
/// scripts through a pluggable concurrency controller. This is the
/// substitute for the paper's human-paced CAD environment: waiting, aborted
/// work, and admitted interleavings — the quantities the paper argues about
/// — are measured in simulated time.
class Simulator {
 public:
  explicit Simulator(SimConfig config = SimConfig()) : config_(config) {}

  /// Runs the workload to completion (or watchdog expiry) and returns the
  /// metrics. The version store used during the run is exposed through
  /// `store_out` when non-null (it outlives the call via shared ownership).
  SimResult Run(const SimWorkload& workload, const ControllerFactory& factory,
                std::shared_ptr<VersionStore>* store_out = nullptr,
                std::shared_ptr<ConcurrencyController>* controller_out =
                    nullptr) const;

 private:
  SimConfig config_;
};

/// Builds per-transaction planned-op lists (for predicate-wise 2PL).
std::vector<std::vector<std::pair<bool, EntityId>>> PlannedOpsOf(
    const SimWorkload& workload);

}  // namespace nonserial

#endif  // NONSERIAL_SIM_SIMULATOR_H_
