#include "graph/incremental_digraph.h"

#include <algorithm>

#include "common/logging.h"

namespace nonserial {

void IncrementalDigraph::EnsureNodes(int n) {
  for (int node = num_nodes(); node < n; ++node) {
    out_.emplace_back();
    in_.emplace_back();
    order_.push_back(node);  // New nodes go last in the order.
    marked_.push_back(0);
  }
}

bool IncrementalDigraph::HasEdge(int from, int to) const {
  if (from < 0 || from >= num_nodes()) return false;
  const std::vector<int>& out = out_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

bool IncrementalDigraph::AddEdge(int from, int to) {
  NONSERIAL_CHECK_GE(from, 0);
  NONSERIAL_CHECK_GE(to, 0);
  EnsureNodes(std::max(from, to) + 1);
  if (HasEdge(from, to)) return !cyclic_;
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_edges_;
  ++stats_.edges_added;
  if (cyclic_) return false;  // Latched; order no longer maintained.
  if (from == to) {
    cyclic_ = true;
    return false;
  }
  return Insert(from, to);
}

bool IncrementalDigraph::Insert(int from, int to) {
  // Pearce–Kelly: if the new edge respects the order, nothing to do.
  if (order_[from] < order_[to]) {
    ++stats_.cheap_inserts;
    return true;
  }
  ++stats_.reorders;
  // Affected region: nodes with order index in [order_[to], order_[from]].
  // Forward-reachable-from-`to` within the region must move after
  // backward-reaching-`from` within the region; finding `from` forward from
  // `to` means the new edge closes a cycle.
  std::vector<int> forward, backward;
  bool acyclic = ForwardSearch(to, order_[from], from, &forward);
  if (!acyclic) {
    for (int node : forward) marked_[node] = 0;
    cyclic_ = true;
    return false;
  }
  BackwardSearch(from, order_[to], &backward);
  Reorder(&forward, &backward);
  return true;
}

bool IncrementalDigraph::ForwardSearch(int node, int ceiling, int target,
                                       std::vector<int>* visited) {
  marked_[node] = 1;
  visited->push_back(node);
  ++stats_.region_nodes;
  for (int next : out_[node]) {
    if (next == target) return false;  // Cycle closed.
    if (marked_[next] || order_[next] > ceiling) continue;
    if (!ForwardSearch(next, ceiling, target, visited)) return false;
  }
  return true;
}

void IncrementalDigraph::BackwardSearch(int node, int floor,
                                        std::vector<int>* visited) {
  marked_[node] = 1;
  visited->push_back(node);
  ++stats_.region_nodes;
  for (int prev : in_[node]) {
    if (marked_[prev] || order_[prev] < floor) continue;
    BackwardSearch(prev, floor, visited);
  }
}

void IncrementalDigraph::Reorder(std::vector<int>* forward,
                                 std::vector<int>* backward) {
  // Sort both regions by current order, pool their order indices, and
  // reassign: backward-region nodes first, then forward-region nodes. Only
  // indices inside the region move; the rest of the order is untouched.
  auto by_order = [this](int a, int b) { return order_[a] < order_[b]; };
  std::sort(forward->begin(), forward->end(), by_order);
  std::sort(backward->begin(), backward->end(), by_order);

  std::vector<int> pool;
  pool.reserve(forward->size() + backward->size());
  for (int node : *backward) pool.push_back(order_[node]);
  for (int node : *forward) pool.push_back(order_[node]);
  std::sort(pool.begin(), pool.end());

  size_t slot = 0;
  for (int node : *backward) {
    order_[node] = pool[slot++];
    marked_[node] = 0;
  }
  for (int node : *forward) {
    order_[node] = pool[slot++];
    marked_[node] = 0;
  }
}

}  // namespace nonserial
