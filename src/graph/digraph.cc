#include "graph/digraph.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace nonserial {

void Digraph::EnsureNodes(int n) {
  if (n > num_nodes()) adjacency_.resize(n);
}

void Digraph::AddEdge(int from, int to) {
  NONSERIAL_CHECK_GE(from, 0);
  NONSERIAL_CHECK_GE(to, 0);
  EnsureNodes(std::max(from, to) + 1);
  std::vector<int>& out = adjacency_[from];
  if (std::find(out.begin(), out.end(), to) == out.end()) {
    out.push_back(to);
    ++num_edges_;
  }
}

bool Digraph::HasEdge(int from, int to) const {
  if (from < 0 || from >= num_nodes()) return false;
  const std::vector<int>& out = adjacency_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

// DFS that records a cycle in `cycle` when found. Returns true on cycle.
bool DfsCycle(const std::vector<std::vector<int>>& adj, int node,
              std::vector<Color>* color, std::vector<int>* stack,
              std::vector<int>* cycle) {
  (*color)[node] = Color::kGray;
  stack->push_back(node);
  for (int next : adj[node]) {
    if ((*color)[next] == Color::kGray) {
      // Found a back edge; extract the cycle from the stack.
      auto it = std::find(stack->begin(), stack->end(), next);
      cycle->assign(it, stack->end());
      return true;
    }
    if ((*color)[next] == Color::kWhite &&
        DfsCycle(adj, next, color, stack, cycle)) {
      return true;
    }
  }
  stack->pop_back();
  (*color)[node] = Color::kBlack;
  return false;
}

}  // namespace

std::vector<int> Digraph::FindCycle() const {
  std::vector<Color> color(num_nodes(), Color::kWhite);
  std::vector<int> stack;
  std::vector<int> cycle;
  for (int i = 0; i < num_nodes(); ++i) {
    if (color[i] == Color::kWhite &&
        DfsCycle(adjacency_, i, &color, &stack, &cycle)) {
      return cycle;
    }
  }
  return {};
}

bool Digraph::HasCycle() const { return !FindCycle().empty(); }

std::optional<std::vector<int>> Digraph::TopologicalOrder() const {
  std::vector<int> indegree(num_nodes(), 0);
  for (int i = 0; i < num_nodes(); ++i) {
    for (int j : adjacency_[i]) ++indegree[j];
  }
  std::vector<int> queue;
  for (int i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) queue.push_back(i);
  }
  std::vector<int> order;
  order.reserve(num_nodes());
  for (size_t head = 0; head < queue.size(); ++head) {
    int node = queue[head];
    order.push_back(node);
    for (int next : adjacency_[node]) {
      if (--indegree[next] == 0) queue.push_back(next);
    }
  }
  if (static_cast<int>(order.size()) != num_nodes()) return std::nullopt;
  return order;
}

bool Digraph::Reaches(int from, int to) const {
  if (from < 0 || from >= num_nodes()) return false;
  if (from == to) return true;
  std::vector<bool> seen(num_nodes(), false);
  std::vector<int> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    for (int next : adjacency_[node]) {
      if (next == to) return true;
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

std::vector<std::vector<bool>> Digraph::TransitiveClosure() const {
  int n = num_nodes();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  // BFS from every node; fine for the graph sizes we handle (transactions,
  // not tuples).
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack = {s};
    std::vector<bool> seen(n, false);
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      for (int next : adjacency_[node]) {
        if (!seen[next]) {
          seen[next] = true;
          closure[s][next] = true;
          stack.push_back(next);
        }
      }
    }
  }
  return closure;
}

namespace {

struct TarjanState {
  const std::vector<std::vector<int>>* adj;
  std::vector<int> index, lowlink, component;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  int next_index = 0;
  int num_components = 0;

  void Visit(int v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : (*adj)[v]) {
      if (index[w] < 0) {
        Visit(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      for (;;) {
        int w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        component[w] = num_components;
        if (w == v) break;
      }
      ++num_components;
    }
  }
};

}  // namespace

std::vector<int> Digraph::StronglyConnectedComponents(
    int* num_components) const {
  TarjanState state;
  state.adj = &adjacency_;
  state.index.assign(num_nodes(), -1);
  state.lowlink.assign(num_nodes(), 0);
  state.component.assign(num_nodes(), -1);
  state.on_stack.assign(num_nodes(), false);
  for (int i = 0; i < num_nodes(); ++i) {
    if (state.index[i] < 0) state.Visit(i);
  }
  if (num_components != nullptr) *num_components = state.num_components;
  return state.component;
}

std::string Digraph::ToString() const {
  std::ostringstream os;
  os << "Digraph(" << num_nodes() << " nodes):";
  for (int i = 0; i < num_nodes(); ++i) {
    for (int j : adjacency_[i]) os << " " << i << "->" << j;
  }
  return os.str();
}

std::string Digraph::ToDot(
    const std::function<std::string(int)>& name_of) const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (int i = 0; i < num_nodes(); ++i) {
    os << "  n" << i << " [label=\""
       << (name_of ? name_of(i) : std::to_string(i)) << "\"];\n";
  }
  for (int i = 0; i < num_nodes(); ++i) {
    for (int j : adjacency_[i]) {
      os << "  n" << i << " -> n" << j << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

bool ForEachPermutation(
    int n, const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  do {
    if (fn(perm)) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace nonserial
