#ifndef NONSERIAL_GRAPH_INCREMENTAL_DIGRAPH_H_
#define NONSERIAL_GRAPH_INCREMENTAL_DIGRAPH_H_

#include <cstdint>
#include <vector>

namespace nonserial {

/// A directed graph over dense node ids that maintains acyclicity
/// *incrementally* as edges are added (Pearce–Kelly dynamic topological
/// ordering).
///
/// The from-scratch recognizers rebuild a Digraph and run a full DFS per
/// check — O(V + E) every time, even when one edge arrived since the last
/// check. This class instead keeps a topological order of the nodes and
/// repairs it on each insertion by visiting only the **affected region**:
/// the nodes whose order index lies between the edge's endpoints. Edges
/// that respect the current order (the common case for read-before-write
/// graphs, where readers precede later writers) cost O(1); a cycle is
/// discovered the moment the closing edge arrives, while scanning only that
/// region rather than the whole graph.
///
/// Once a cycle has been introduced the graph latches into the cyclic
/// state: edges are still recorded, but order maintenance stops (the
/// recognizers only need the boolean, and edges are never removed, so
/// cyclicity is monotone).
///
/// Not thread-safe; callers serialize access (the CPC checker feeds it from
/// one thread, or under the engine lock).
class IncrementalDigraph {
 public:
  /// Region-size accounting for the incremental maintenance, used by tests
  /// and benches to show the affected region stays small.
  struct Stats {
    int64_t edges_added = 0;     ///< Distinct edges recorded.
    int64_t reorders = 0;        ///< Insertions that repaired the order.
    int64_t region_nodes = 0;    ///< Nodes visited across all repairs.
    int64_t cheap_inserts = 0;   ///< Insertions that kept the order as-is.
  };

  IncrementalDigraph() = default;
  explicit IncrementalDigraph(int num_nodes) { EnsureNodes(num_nodes); }

  /// Number of nodes currently tracked.
  int num_nodes() const { return static_cast<int>(out_.size()); }

  /// Number of distinct edges recorded.
  int num_edges() const { return num_edges_; }

  /// Grows the node set to at least `n` nodes (new nodes append to the
  /// topological order).
  void EnsureNodes(int n);

  /// Adds edge from -> to (idempotent; nodes grow on demand). Returns true
  /// iff the graph is still acyclic afterwards. Once false, every later
  /// call returns false (cyclicity is monotone — edges are never removed).
  bool AddEdge(int from, int to);

  /// True iff the edge has been recorded.
  bool HasEdge(int from, int to) const;

  /// True iff some inserted edge closed a directed cycle (self-loops
  /// included).
  bool HasCycle() const { return cyclic_; }

  /// The current topological order index of `node` (meaningful only while
  /// acyclic). Every edge u -> v satisfies OrderIndex(u) < OrderIndex(v).
  int OrderIndex(int node) const { return order_[node]; }

  /// Counters for the incremental maintenance so far.
  const Stats& stats() const { return stats_; }

 private:
  bool Insert(int from, int to);
  /// DFS forward from `node` over nodes with order index <= `ceiling`;
  /// returns false when `target` is reached (a cycle closed).
  bool ForwardSearch(int node, int ceiling, int target,
                     std::vector<int>* visited);
  void BackwardSearch(int node, int floor, std::vector<int>* visited);
  void Reorder(std::vector<int>* forward, std::vector<int>* backward);

  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::vector<int> order_;     ///< node -> topological index.
  std::vector<char> marked_;   ///< Scratch for the region searches.
  int num_edges_ = 0;
  bool cyclic_ = false;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_GRAPH_INCREMENTAL_DIGRAPH_H_
