#ifndef NONSERIAL_GRAPH_DIGRAPH_H_
#define NONSERIAL_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace nonserial {

/// A simple directed graph over dense node ids [0, num_nodes). Used for
/// conflict graphs, partial orders, waits-for graphs, and the per-conjunct
/// read-before-write graphs of the CPC recognizer.
///
/// Parallel edges are collapsed; self-loops are representable (and count as
/// cycles).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes) : adjacency_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Grows the node set to at least `n` nodes.
  void EnsureNodes(int n);

  /// Adds edge from -> to (idempotent). Nodes are grown on demand.
  void AddEdge(int from, int to);

  bool HasEdge(int from, int to) const;

  const std::vector<int>& OutEdges(int node) const {
    return adjacency_[node];
  }

  /// True iff the graph contains a directed cycle (including self-loops).
  bool HasCycle() const;

  /// Returns a topological order, or nullopt if the graph is cyclic.
  std::optional<std::vector<int>> TopologicalOrder() const;

  /// Returns nodes of one directed cycle (in order), or empty if acyclic.
  std::vector<int> FindCycle() const;

  /// Reachability: true iff there is a directed path from `from` to `to`
  /// (a node reaches itself trivially).
  bool Reaches(int from, int to) const;

  /// Transitive closure as a boolean matrix; closure[i][j] is true iff
  /// j is reachable from i by a non-empty path.
  std::vector<std::vector<bool>> TransitiveClosure() const;

  /// Strongly connected components (Tarjan). Returns, for each node, its
  /// component id; ids are in reverse topological order of the condensation.
  std::vector<int> StronglyConnectedComponents(int* num_components) const;

  /// Human-readable edge list for diagnostics.
  std::string ToString() const;

  /// Graphviz DOT rendering; `name_of` labels nodes (defaults to indices).
  std::string ToDot(
      const std::function<std::string(int)>& name_of = nullptr) const;

 private:
  std::vector<std::vector<int>> adjacency_;
  int num_edges_ = 0;
};

/// Calls `fn(perm)` for every permutation of {0..n-1}; stops early and
/// returns true as soon as `fn` returns true (found). Returns false if no
/// permutation was accepted. Used by the exponential exact recognizers
/// (view serializability, MVSR, PC) on small inputs.
bool ForEachPermutation(int n, const std::function<bool(const std::vector<int>&)>& fn);

}  // namespace nonserial

#endif  // NONSERIAL_GRAPH_DIGRAPH_H_
