#include "predicate/formula.h"

#include <cctype>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

Atom NegateAtom(const Atom& atom) {
  Atom out = atom;
  switch (atom.op) {
    case CompareOp::kEq:
      out.op = CompareOp::kNe;
      break;
    case CompareOp::kNe:
      out.op = CompareOp::kEq;
      break;
    case CompareOp::kLt:
      out.op = CompareOp::kGe;
      break;
    case CompareOp::kLe:
      out.op = CompareOp::kGt;
      break;
    case CompareOp::kGt:
      out.op = CompareOp::kLe;
      break;
    case CompareOp::kGe:
      out.op = CompareOp::kLt;
      break;
  }
  return out;
}

Formula Formula::MakeAtom(Atom atom) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->atom = std::move(atom);
  return Formula(node);
}

Formula Formula::And(std::vector<Formula> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  for (Formula& child : children) node->children.push_back(child.node_);
  return Formula(node);
}

Formula Formula::Or(std::vector<Formula> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  for (Formula& child : children) node->children.push_back(child.node_);
  return Formula(node);
}

Formula Formula::Not(Formula child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->children.push_back(child.node_);
  return Formula(node);
}

bool Formula::Eval(const ValueVector& values) const {
  // Small explicit recursion over the node graph.
  struct Evaluator {
    const ValueVector& values;
    bool Visit(const NodePtr& node) const {
      switch (node->kind) {
        case Kind::kAtom:
          return node->atom.Eval(values);
        case Kind::kAnd:
          for (const NodePtr& child : node->children) {
            if (!Visit(child)) return false;
          }
          return true;
        case Kind::kOr:
          for (const NodePtr& child : node->children) {
            if (Visit(child)) return true;
          }
          return false;
        case Kind::kNot:
          return !Visit(node->children[0]);
      }
      return false;
    }
  };
  return Evaluator{values}.Visit(node_);
}

Formula::NodePtr Formula::ToNnf(const NodePtr& node, bool negated) {
  auto out = std::make_shared<Node>();
  switch (node->kind) {
    case Kind::kAtom:
      out->kind = Kind::kAtom;
      out->atom = negated ? NegateAtom(node->atom) : node->atom;
      return out;
    case Kind::kNot:
      return ToNnf(node->children[0], !negated);
    case Kind::kAnd:
    case Kind::kOr: {
      bool is_and = (node->kind == Kind::kAnd) != negated;  // De Morgan.
      out->kind = is_and ? Kind::kAnd : Kind::kOr;
      for (const NodePtr& child : node->children) {
        out->children.push_back(ToNnf(child, negated));
      }
      return out;
    }
  }
  return out;
}

std::vector<Clause> Formula::NnfToClauses(const NodePtr& node) {
  switch (node->kind) {
    case Kind::kAtom:
      return {Clause({node->atom})};
    case Kind::kAnd: {
      std::vector<Clause> out;
      for (const NodePtr& child : node->children) {
        std::vector<Clause> sub = NnfToClauses(child);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case Kind::kOr: {
      // Distribute: clauses(c1 | c2 | …) = cross-union of the children's
      // clause sets. Or() of nothing is `false`: one empty clause.
      std::vector<Clause> acc = {Clause()};
      for (const NodePtr& child : node->children) {
        std::vector<Clause> sub = NnfToClauses(child);
        std::vector<Clause> next;
        next.reserve(acc.size() * sub.size());
        for (const Clause& a : acc) {
          for (const Clause& b : sub) {
            std::vector<Atom> atoms = a.atoms();
            atoms.insert(atoms.end(), b.atoms().begin(), b.atoms().end());
            next.push_back(Clause(std::move(atoms)));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case Kind::kNot:
      NONSERIAL_CHECK(false) << "negation survived NNF conversion";
      return {};
  }
  return {};
}

Predicate Formula::ToCnf() const {
  NodePtr nnf = ToNnf(node_, /*negated=*/false);
  return Predicate(NnfToClauses(nnf));
}

std::string Formula::ToString(
    const std::function<std::string(EntityId)>& name_of) const {
  struct Printer {
    const std::function<std::string(EntityId)>& name_of;
    std::string Visit(const NodePtr& node) const {
      switch (node->kind) {
        case Kind::kAtom: {
          auto term = [&](const Term& t) {
            return t.is_entity ? name_of(t.entity)
                               : std::to_string(t.constant);
          };
          return StrCat(term(node->atom.lhs), " ",
                        CompareOpName(node->atom.op), " ",
                        term(node->atom.rhs));
        }
        case Kind::kAnd:
        case Kind::kOr: {
          if (node->children.empty()) {
            return node->kind == Kind::kAnd ? "true" : "false";
          }
          std::string sep = node->kind == Kind::kAnd ? " & " : " | ";
          std::string out = "(";
          for (size_t i = 0; i < node->children.size(); ++i) {
            if (i > 0) out += sep;
            out += Visit(node->children[i]);
          }
          return out + ")";
        }
        case Kind::kNot:
          return StrCat("!", Visit(node->children[0]));
      }
      return "?";
    }
  };
  return Printer{name_of}.Visit(node_);
}

std::string Formula::ToString() const {
  return ToString([](EntityId e) { return StrCat("e", e); });
}

namespace {

/// Recursive-descent parser for the full boolean grammar.
class FormulaParser {
 public:
  FormulaParser(
      const std::string& text,
      const std::function<StatusOr<EntityId>(const std::string&)>& resolve)
      : text_(text), resolve_(resolve) {}

  StatusOr<Formula> Parse() {
    auto f = ParseOr();
    if (!f.ok()) return f;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing input at offset ", pos_, " in formula"));
    }
    return f;
  }

 private:
  StatusOr<Formula> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<Formula> parts = {std::move(lhs).value()};
    while (Consume('|')) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      parts.push_back(std::move(rhs).value());
    }
    return parts.size() == 1 ? std::move(parts[0])
                             : Formula::Or(std::move(parts));
  }

  StatusOr<Formula> ParseAnd() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    std::vector<Formula> parts = {std::move(lhs).value()};
    while (Consume('&')) {
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      parts.push_back(std::move(rhs).value());
    }
    return parts.size() == 1 ? std::move(parts[0])
                             : Formula::And(std::move(parts));
  }

  StatusOr<Formula> ParseFactor() {
    SkipSpace();
    if (Consume('!')) {
      auto inner = ParseFactor();
      if (!inner.ok()) return inner;
      return Formula::Not(std::move(inner).value());
    }
    // A '(' may open a sub-formula; distinguish from the start of nothing.
    size_t saved = pos_;
    if (Consume('(')) {
      auto inner = ParseOr();
      if (inner.ok() && Consume(')')) return inner;
      pos_ = saved;  // Not a sub-formula (or malformed): fall through.
      if (!inner.ok()) return inner.status();
      return Status::InvalidArgument(StrCat("expected ')' at offset ", pos_));
    }
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    return Formula::MakeAtom(std::move(atom).value());
  }

  StatusOr<Atom> ParseAtom() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    auto op = ParseOp();
    if (!op.ok()) return op.status();
    auto rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    return nonserial::MakeAtom(lhs.value(), op.value(), rhs.value());
  }

  StatusOr<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of formula");
    }
    char c = text_[pos_];
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_++;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      int64_t value = 0;
      if (!ParseInt64(text_.substr(start, pos_ - start), &value)) {
        return Status::InvalidArgument(StrCat("bad integer at ", start));
      }
      return Term::Constant(value);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      auto id = resolve_(text_.substr(start, pos_ - start));
      if (!id.ok()) return id.status();
      return Term::Entity(id.value());
    }
    return Status::InvalidArgument(
        StrCat("unexpected character '", c, "' at offset ", pos_));
  }

  StatusOr<CompareOp> ParseOp() {
    SkipSpace();
    auto take2 = [&](char a, char b,
                     CompareOp op) -> std::optional<CompareOp> {
      if (pos_ + 1 < text_.size() && text_[pos_] == a &&
          text_[pos_ + 1] == b) {
        pos_ += 2;
        return op;
      }
      return std::nullopt;
    };
    if (auto op = take2('!', '=', CompareOp::kNe)) return *op;
    if (auto op = take2('<', '=', CompareOp::kLe)) return *op;
    if (auto op = take2('>', '=', CompareOp::kGe)) return *op;
    if (Consume('=')) return CompareOp::kEq;
    if (Consume('<')) return CompareOp::kLt;
    if (Consume('>')) return CompareOp::kGt;
    return Status::InvalidArgument(
        StrCat("expected comparison operator at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  const std::function<StatusOr<EntityId>(const std::string&)>& resolve_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Formula> ParseFormula(
    const std::string& text,
    const std::function<StatusOr<EntityId>(const std::string&)>& resolve) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty() || stripped == "true") {
    return Formula::And({});
  }
  if (stripped == "false") {
    return Formula::Or({});
  }
  FormulaParser parser(text, resolve);
  return parser.Parse();
}

}  // namespace nonserial
