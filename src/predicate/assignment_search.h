#ifndef NONSERIAL_PREDICATE_ASSIGNMENT_SEARCH_H_
#define NONSERIAL_PREDICATE_ASSIGNMENT_SEARCH_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "predicate/candidate_buffer.h"
#include "predicate/eval_cache.h"
#include "predicate/predicate.h"
#include "predicate/value.h"

namespace nonserial {

/// Strategy for the version-selection search. Section 5.1 of the paper notes
/// that exhaustive search over version combinations is exponential and
/// recommends "a heuristic based scheme"; we provide both so that the
/// validation-cost experiment (E8) can quantify the difference.
enum class SearchMode {
  kExhaustive,  ///< Plain cartesian-product scan with leaf evaluation.
  kPruned,      ///< MRV-ordered backtracking with batched clause pruning:
                ///< at each depth, every clause decided by the pending
                ///< assignment is evaluated over the entity's whole
                ///< candidate stripe at once (predicate/batch_eval.h).
  kIndexed      ///< kPruned after index-style candidate filtering: unit
                ///< clauses (single-atom, entity-vs-constant) are applied
                ///< to each entity's candidate list up front — the paper's
                ///< "treat the version selection process as a query …
                ///< typical database optimizations, like indices".
};

/// Counters reported by the search.
struct SearchStats {
  int64_t nodes_visited = 0;   ///< Assignments (partial or full) explored.
  int64_t evaluations = 0;     ///< Clause evaluations (batched ones count
                               ///< once per candidate in the stripe).
};

/// The core of the paper's transaction-validation phase: given, for each
/// entity, the list of candidate values (one per allowable version), find a
/// choice of one candidate per entity such that `predicate` holds.
///
/// `candidates[e]` views the values of the allowable versions of entity e;
/// every entity mentioned by the predicate must have at least one candidate.
/// Entities not mentioned by the predicate keep choice 0.
///
/// Returns the per-entity choice indices (into `candidates[e]`), or nullopt
/// if no combination satisfies the predicate. Deciding this is NP-complete
/// in general (Lemma 1 of the paper).
///
/// This view-based overload is the zero-copy core; the vector<vector> and
/// CandidateBuffer overloads below adapt to it without copying values. The
/// viewed storage must stay alive and unchanged for the duration of the
/// call.
std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate, const std::vector<CandidateView>& candidates,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr);

/// Legacy nested-vector shape (adapts each inner vector to a view).
std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr);

/// Columnar candidate arena (the validation hot path's native shape).
std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate, const CandidateBuffer& candidates,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr);

/// Counters reported by DeltaRevalidate.
struct DeltaStats {
  int64_t delta_solves = 0;     ///< Rounds solved under the pins.
  int64_t delta_fallbacks = 0;  ///< Rounds that re-ran the full search.
};

/// Delta-revalidation: re-solves `predicate` over `candidates` given the
/// previous satisfying choice `prev_choice` and the set of entities whose
/// candidate lists `changed` since that choice was found.
///
/// Unchanged entities are pinned to their previously chosen value, which
/// collapses the search space to the changed entities' candidates — the
/// incremental counterpart of a CEP validation rescan, where a concurrent
/// write typically touches one entity of the input constraint. The pinned
/// problem is expressed as one-element views into the original candidate
/// storage, so a delta round allocates no value copies at all. If the
/// pinned problem is unsatisfiable the full search runs from scratch
/// (counted in `delta_stats->delta_fallbacks`), so the result is found/
/// not-found equivalent to FindSatisfyingAssignment over `candidates`.
///
/// `prev_choice` entries of changed entities are ignored; an out-of-range
/// previous index demotes its entity to changed. `cached` (optional)
/// memoizes conjunct evaluations across rounds via its EvalCache.
std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate, const std::vector<CandidateView>& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr, DeltaStats* delta_stats = nullptr);

/// Legacy nested-vector shape.
std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr, DeltaStats* delta_stats = nullptr);

/// Columnar candidate arena.
std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate, const CandidateBuffer& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr,
    const CachedPredicate* cached = nullptr, DeltaStats* delta_stats = nullptr);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_ASSIGNMENT_SEARCH_H_
