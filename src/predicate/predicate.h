#ifndef NONSERIAL_PREDICATE_PREDICATE_H_
#define NONSERIAL_PREDICATE_PREDICATE_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/value.h"

namespace nonserial {

/// One side of an atom: either a reference to an entity or a constant.
struct Term {
  bool is_entity = false;
  EntityId entity = kInvalidEntity;
  Value constant = 0;

  static Term Entity(EntityId e) {
    Term t;
    t.is_entity = true;
    t.entity = e;
    return t;
  }
  static Term Constant(Value v) {
    Term t;
    t.constant = v;
    return t;
  }

  Value Resolve(const ValueVector& values) const {
    return is_entity ? values[entity] : constant;
  }

  bool operator==(const Term& other) const;
};

/// An atom `x θ y` where x, y are entities or constants and θ is one of the
/// six comparison operators (paper, Section 3.1).
struct Atom {
  Term lhs;
  CompareOp op = CompareOp::kEq;
  Term rhs;

  bool Eval(const ValueVector& values) const {
    return EvalCompare(lhs.Resolve(values), op, rhs.Resolve(values));
  }

  /// Adds the entities mentioned by this atom to `out`.
  void CollectEntities(std::set<EntityId>* out) const;

  bool operator==(const Atom& other) const;
};

/// A disjunctive clause: an OR of atoms.
class Clause {
 public:
  Clause() = default;
  explicit Clause(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  const std::vector<Atom>& atoms() const { return atoms_; }
  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }
  bool empty() const { return atoms_.empty(); }

  /// True iff some atom holds. The empty clause is false (standard CNF
  /// convention).
  bool Eval(const ValueVector& values) const;

  /// The *object* of this clause in the paper's terminology: the set of
  /// entities mentioned by its atoms.
  std::set<EntityId> Object() const;

 private:
  std::vector<Atom> atoms_;
};

/// The objects of a database consistency constraint: one entity set per
/// conjunct (paper, Section 3.1). The predicate-wise correctness classes and
/// predicate-wise 2PL serialize each object independently.
using ObjectSetList = std::vector<std::set<EntityId>>;

/// A predicate in conjunctive normal form: an AND of disjunctive clauses.
/// The empty predicate is `true`.
///
/// Predicates serve as database consistency constraints and as transaction
/// input/output conditions (specifications). The per-clause entity sets are
/// the "objects" that drive the predicate-wise correctness classes (PWSR,
/// PWCSR, PC, CPC).
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Clause> clauses)
      : clauses_(std::move(clauses)) {}

  /// The constant-true predicate (no clauses).
  static Predicate True() { return Predicate(); }

  const std::vector<Clause>& clauses() const { return clauses_; }
  void AddClause(Clause clause) { clauses_.push_back(std::move(clause)); }
  bool IsTrue() const { return clauses_.empty(); }

  /// Evaluates the predicate over a complete value assignment.
  bool Eval(const ValueVector& values) const;

  /// All entities mentioned anywhere in the predicate (the paper's input
  /// set N_t when the predicate is a transaction's input condition).
  std::set<EntityId> Entities() const;

  /// The objects of the predicate: one entity set per clause, deduplicated.
  /// (Paper: "the set of all objects in a predicate".)
  std::vector<std::set<EntityId>> Objects() const;

  /// Conjunction of two predicates (clause union).
  static Predicate And(const Predicate& a, const Predicate& b);

  /// Render with entity names supplied by `name_of`, e.g.
  /// "(x < y | z = 0) & (w >= 3)".
  std::string ToString(
      const std::function<std::string(EntityId)>& name_of) const;

  /// Render with default names e<id>.
  std::string ToString() const;

 private:
  std::vector<Clause> clauses_;
};

/// Convenience atom constructors.
Atom MakeAtom(Term lhs, CompareOp op, Term rhs);
Atom EntityVsConst(EntityId e, CompareOp op, Value c);
Atom EntityVsEntity(EntityId a, CompareOp op, EntityId b);

/// Parses a predicate from text. Grammar (whitespace-insensitive):
///
///   predicate := clause ('&' clause)*
///   clause    := '(' atom ('|' atom)* ')' | atom
///   atom      := term op term
///   op        := '=' | '!=' | '<=' | '>=' | '<' | '>'
///   term      := identifier | integer
///
/// Identifiers are resolved to EntityIds via `resolve`; unknown identifiers
/// yield InvalidArgument.
StatusOr<Predicate> ParsePredicate(
    const std::string& text,
    const std::function<StatusOr<EntityId>(const std::string&)>& resolve);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_PREDICATE_H_
