#ifndef NONSERIAL_PREDICATE_BATCH_EVAL_H_
#define NONSERIAL_PREDICATE_BATCH_EVAL_H_

#include <cstdint>

#include "predicate/predicate.h"
#include "predicate/value.h"

namespace nonserial {

/// \file
/// Batch (stripe) predicate evaluation — the cache-native miss path.
///
/// The assignment search spends its time answering one question shape: "for
/// which candidate values v of entity e does clause C hold, given the other
/// entities' current values?" The scalar path answers it one candidate at a
/// time through Atom::Eval (a Resolve + switch per atom per candidate). The
/// batch path answers it for a whole contiguous candidate stripe at once:
/// the comparison operator is hoisted OUT of the candidate loop, so each
/// atom contributes one tight `out[i] |= (stripe[i] OP rhs)` loop over
/// contiguous memory that the compiler auto-vectorizes (SIMD-width compare
/// batches), and atoms not mentioning the striped entity collapse to one
/// scalar evaluation for the entire stripe.
///
/// The same file hosts the batched FNV fingerprint used by EvalCache's
/// stripe probes: mixing is sequential per candidate, but the prefix over
/// entities ordered before the striped one is shared, and the per-candidate
/// tail (stripe value + suffix values) is a fixed-trip-count loop the
/// compiler unrolls. These helpers are the single source of truth for the
/// cache's hash constants — EvalClause and EvalClauseStripe MUST produce
/// identical keys for identical (clause, values), or stripe probes would
/// miss entries the scalar path inserted.

namespace fnv {

constexpr uint64_t kOffset = 1469598103934665603ull;
constexpr uint64_t kPrime = 1099511628211ull;

/// Mixes the 8 bytes of `v` into `h`, little-end first (classic FNV-1a).
inline uint64_t Mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kPrime;
  }
  return h;
}

/// Final avalanche (splitmix64) so shard selection uses well-mixed bits.
inline uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace fnv

/// out[i] |= (lhs[i] op rhs) for i in [0, n). The op switch is outside the
/// loop; each case is a branch-free compare loop over contiguous values.
void OrCompareStripeScalar(const Value* lhs, CompareOp op, Value rhs,
                           int32_t n, uint8_t* out);

/// out[i] |= (lhs op rhs[i]) for i in [0, n).
void OrCompareScalarStripe(Value lhs, CompareOp op, const Value* rhs,
                           int32_t n, uint8_t* out);

/// Evaluates `clause` once per candidate: out[i] = clause value with
/// values[striped_entity] replaced by stripe[i] (all other entities read
/// from `values`). `out` must hold n bytes; results are 0/1, overwritten.
/// Atoms are classified once: atoms not mentioning the striped entity are
/// evaluated once as scalars (a true one short-circuits the whole stripe);
/// atoms mentioning it become vector compare loops.
void EvalClauseOverStripe(const Clause& clause, const ValueVector& values,
                          EntityId striped_entity, const Value* stripe,
                          int32_t n, uint8_t* out);

/// Batched clause fingerprints for the eval cache, one per candidate.
///
/// The scalar fingerprint is FNV over the clause's entity values in
/// ascending entity order. Here `prefix` is the mix of all entity values
/// ordered BEFORE the striped entity (precomputed once per stripe),
/// `suffix_values[0..suffix_count)` the values ordered after it. Then
///   out[i] = Mix(...Mix(Mix(prefix, stripe[i]), suffix_values[0])...).
void FingerprintStripe(uint64_t prefix, const Value* stripe, int32_t n,
                       const Value* suffix_values, int32_t suffix_count,
                       uint64_t* out);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_BATCH_EVAL_H_
