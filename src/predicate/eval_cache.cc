#include "predicate/eval_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "predicate/batch_eval.h"

namespace nonserial {
namespace {

uint64_t HashTerm(uint64_t h, const Term& term) {
  h = fnv::Mix(h, term.is_entity ? 1 : 0);
  h = fnv::Mix(h, term.is_entity ? static_cast<uint64_t>(term.entity)
                                 : static_cast<uint64_t>(term.constant));
  return h;
}

}  // namespace

uint64_t CachedPredicate::HashClause(const Clause& clause) {
  uint64_t h = fnv::kOffset;
  for (const Atom& atom : clause.atoms()) {
    h = HashTerm(h, atom.lhs);
    h = fnv::Mix(h, static_cast<uint64_t>(atom.op));
    h = HashTerm(h, atom.rhs);
  }
  return h;
}

EvalCache::EvalCache(int num_entities) : shards_(new Shard[kNumShards]) {
  EnsureEntities(std::max(num_entities, 0));
}

EvalCache::~EvalCache() = default;

void EvalCache::EnsureEntities(int n) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  EpochTable* current = epoch_table_.load(std::memory_order_relaxed);
  if (current != nullptr && n <= current->size) return;
  // Grow geometrically so the retained outgoing tables stay O(log n).
  int grown_size = n;
  if (current != nullptr) grown_size = std::max(grown_size, current->size * 2);
  auto grown = std::make_unique<EpochTable>(grown_size);
  if (current != nullptr) {
    for (int e = 0; e < current->size; ++e) {
      grown->epochs[e].store(
          current->epochs[e].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  // Publish, keeping the outgoing table alive: a concurrent EpochSum that
  // loaded the old pointer may still be reading it. A BumpEntity that
  // lands on the old table after the copy above is lost — benign, because
  // entries are value-fingerprint-keyed (see header).
  epoch_table_.store(grown.get(), std::memory_order_release);
  tables_.push_back(std::move(grown));
}

uint64_t EvalCache::EpochSum(const std::vector<EntityId>& entities) const {
  const EpochTable* table = epoch_table_.load(std::memory_order_acquire);
  uint64_t sum = global_epoch_.load(std::memory_order_relaxed);
  for (EntityId e : entities) {
    if (e >= 0 && e < table->size) {
      sum += table->epochs[e].load(std::memory_order_relaxed);
    }
  }
  return sum;
}

uint64_t EvalCache::SlotKey(uint64_t clause_hash, uint64_t fingerprint) {
  uint64_t key = fnv::Avalanche(clause_hash ^ (fingerprint * fnv::kPrime));
  return key == 0 ? 1 : key;
}

size_t EvalCache::ShardIndex(uint64_t clause_hash) {
  return fnv::Avalanche(clause_hash) % kNumShards;
}

const EvalCache::Entry* EvalCache::ProbeLocked(const Shard& shard,
                                               uint64_t key) const {
  if (shard.slots.empty()) return nullptr;
  const size_t mask = shard.slots.size() - 1;
  for (size_t i = key & mask;; i = (i + 1) & mask) {
    const Entry& slot = shard.slots[i];
    if (slot.key == key) return &slot;
    if (slot.key == 0) return nullptr;
  }
}

void EvalCache::ReserveLocked(Shard& shard, size_t n) {
  if (shard.slots.empty()) shard.slots.resize(kInitialShardSlots);
  while ((shard.count + n) * 10 >= shard.slots.size() * 7) {
    std::vector<Entry> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Entry{});
    const size_t mask = shard.slots.size() - 1;
    for (const Entry& e : old) {
      if (e.key == 0) continue;
      size_t i = e.key & mask;
      while (shard.slots[i].key != 0) i = (i + 1) & mask;
      shard.slots[i] = e;
    }
  }
}

void EvalCache::InsertLocked(Shard& shard, uint64_t key, const Entry& entry) {
  // Places an entry into a table known to have a free run for it (no bound
  // or growth checks); overwrites an existing slot with the same key.
  // Returns true if a new slot was occupied.
  auto place = [](std::vector<Entry>& slots, const Entry& e) {
    const size_t mask = slots.size() - 1;
    for (size_t i = e.key & mask;; i = (i + 1) & mask) {
      if (slots[i].key == e.key) {
        slots[i] = e;
        return false;
      }
      if (slots[i].key == 0) {
        slots[i] = e;
        return true;
      }
    }
  };
  if (shard.slots.empty()) shard.slots.resize(kInitialShardSlots);
  if (shard.count >= kMaxShardEntries) {
    // Bound reached: drop the shard wholesale (simple and rare; entries
    // re-insert on their next evaluation).
    invalidations_.fetch_add(static_cast<int64_t>(shard.count),
                             std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->cache_invalidations.Add(static_cast<int64_t>(shard.count));
    }
    std::fill(shard.slots.begin(), shard.slots.end(), Entry{});
    shard.count = 0;
  } else if ((shard.count + 1) * 10 >= shard.slots.size() * 7) {
    // 70% load: double and rehash (linear probing degrades past that).
    std::vector<Entry> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Entry{});
    for (const Entry& e : old) {
      if (e.key != 0) place(shard.slots, e);
    }
  }
  Entry to_place = entry;
  to_place.key = key;
  if (place(shard.slots, to_place)) ++shard.count;
}

bool EvalCache::EvalClause(uint64_t clause_hash, const Clause& clause,
                           const std::vector<EntityId>& entities,
                           const ValueVector& values) {
  uint64_t fingerprint = fnv::kOffset;
  for (EntityId e : entities) {
    fingerprint = fnv::Mix(fingerprint, static_cast<uint64_t>(values[e]));
  }
  uint64_t epoch_sum = EpochSum(entities);
  uint64_t key = SlotKey(clause_hash, fingerprint);
  Shard& shard = shards_[ShardIndex(clause_hash)];

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const Entry* entry = ProbeLocked(shard, key);
    if (entry != nullptr && entry->clause_hash == clause_hash &&
        entry->fingerprint == fingerprint) {
      if (entry->epoch_sum == epoch_sum) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->cache_hits.Add();
        return entry->result;
      }
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->cache_invalidations.Add();
    }
  }

  bool result = clause.Eval(values);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->cache_misses.Add();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    InsertLocked(shard, key,
                 Entry{/*key=*/0, clause_hash, fingerprint, epoch_sum,
                       result});
  }
  return result;
}

void EvalCache::EvalClauseStripe(uint64_t clause_hash, const Clause& clause,
                                 const std::vector<EntityId>& entities,
                                 const ValueVector& values,
                                 EntityId striped_entity, const Value* stripe,
                                 int32_t n, uint8_t* out) {
  if (n <= 0) return;
  // Fingerprint split around the striped entity: the prefix over the
  // entities ordered before it is shared by every candidate; the suffix
  // values are mixed per candidate after the stripe value.
  uint64_t prefix = fnv::kOffset;
  // Per-call scratch; thread_local so the hot path allocates only on the
  // first stripes a thread evaluates, then reuses capacity.
  thread_local std::vector<Value> suffix;
  suffix.clear();
  bool past_striped = false;
  for (EntityId e : entities) {
    if (e == striped_entity) {
      past_striped = true;
      continue;
    }
    if (past_striped) {
      suffix.push_back(values[e]);
    } else {
      prefix = fnv::Mix(prefix, static_cast<uint64_t>(values[e]));
    }
  }
  if (!past_striped) {
    // The striped entity is not in the clause's object: the clause value is
    // independent of the candidate. One scalar memoized evaluation covers
    // the whole stripe.
    uint8_t r = EvalClause(clause_hash, clause, entities, values) ? 1 : 0;
    for (int32_t i = 0; i < n; ++i) out[i] = r;
    return;
  }

  thread_local std::vector<uint64_t> fingerprints;
  thread_local std::vector<uint64_t> keys;
  thread_local std::vector<uint8_t> evaluated;
  fingerprints.resize(n);
  keys.resize(n);
  FingerprintStripe(prefix, stripe, n, suffix.data(),
                    static_cast<int32_t>(suffix.size()),
                    fingerprints.data());
  for (int32_t i = 0; i < n; ++i) {
    keys[i] = SlotKey(clause_hash, fingerprints[i]);
  }
  uint64_t epoch_sum = EpochSum(entities);

  // Speculative miss sweep: ONE vectorized evaluation pass over the whole
  // contiguous stripe (predicate/batch_eval.h). At ~1 ns/candidate it is
  // cheaper than tracking which candidates hit, and it lets the table pass
  // below resolve every candidate — hit, stale, or miss — in a single
  // locked walk.
  evaluated.resize(n);
  EvalClauseOverStripe(clause, values, striped_entity, stripe, n,
                       evaluated.data());

  // Single table pass. Sharding is by clause, so the whole stripe lives in
  // one shard: one lock per stripe, and the slot walks prefetch ahead over
  // the stripe's key sequence. The table is pre-grown for n inserts, so a
  // walk that ends at an empty slot can insert right there — probe and
  // insert share one traversal.
  int64_t hits = 0;
  int64_t stale = 0;
  Shard& shard = shards_[ShardIndex(clause_hash)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count >= kMaxShardEntries) {
      // Bound reached: drop the shard wholesale (simple and rare; entries
      // re-insert on their next evaluation).
      invalidations_.fetch_add(static_cast<int64_t>(shard.count),
                               std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->cache_invalidations.Add(static_cast<int64_t>(shard.count));
      }
      std::fill(shard.slots.begin(), shard.slots.end(), Entry{});
      shard.count = 0;
    }
    ReserveLocked(shard, static_cast<size_t>(n));
    const size_t mask = shard.slots.size() - 1;
    for (int32_t i = 0; i < n; ++i) {
      if (i + 8 < n) {
        __builtin_prefetch(&shard.slots[keys[i + 8] & mask]);
      }
      size_t si = keys[i] & mask;
      while (shard.slots[si].key != 0 && shard.slots[si].key != keys[i]) {
        si = (si + 1) & mask;
      }
      Entry& slot = shard.slots[si];
      if (slot.key == keys[i] && slot.clause_hash == clause_hash &&
          slot.fingerprint == fingerprints[i]) {
        if (slot.epoch_sum == epoch_sum) {
          out[i] = slot.result ? 1 : 0;
          ++hits;
          continue;
        }
        ++stale;  // Falls through: refresh the slot in place.
      }
      if (slot.key == 0) ++shard.count;
      slot = Entry{keys[i], clause_hash, fingerprints[i], epoch_sum,
                   evaluated[i] != 0};
      out[i] = evaluated[i];
    }
  }

  if (hits > 0) {
    hits_.fetch_add(hits, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->cache_hits.Add(hits);
  }
  if (stale > 0) {
    invalidations_.fetch_add(stale, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->cache_invalidations.Add(stale);
  }
  int64_t missed = n - hits;
  if (missed > 0) {
    misses_.fetch_add(missed, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->cache_misses.Add(missed);
  }
}

void EvalCache::BumpEntity(EntityId e) {
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  const EpochTable* table = epoch_table_.load(std::memory_order_acquire);
  if (e >= 0 && e < table->size) {
    table->epochs[e].fetch_add(1, std::memory_order_relaxed);
  } else {
    // Unknown id: be conservative and age out everything.
    global_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EvalCache::InvalidateAll() {
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  global_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void EvalCache::Clear() {
  for (int s = 0; s < kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    std::fill(shards_[s].slots.begin(), shards_[s].slots.end(), Entry{});
    shards_[s].count = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  epoch_bumps_.store(0, std::memory_order_relaxed);
}

EvalCache::Stats EvalCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  return out;
}

double EvalCache::HitRate() const {
  Stats s = stats();
  int64_t probes = s.hits + s.misses;
  return probes == 0 ? 0.0
                     : static_cast<double>(s.hits) /
                           static_cast<double>(probes);
}

size_t EvalCache::size() const {
  size_t total = 0;
  for (int s = 0; s < kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].count;
  }
  return total;
}

CachedPredicate::CachedPredicate(const Predicate& predicate, EvalCache* cache)
    : cache_(cache) {
  NONSERIAL_CHECK(cache != nullptr);
  const std::vector<Clause>& clauses = predicate.clauses();
  clause_hashes_.reserve(clauses.size());
  clause_entities_.reserve(clauses.size());
  int max_entity = -1;
  for (const Clause& clause : clauses) {
    clause_hashes_.push_back(HashClause(clause));
    std::set<EntityId> object = clause.Object();
    clause_entities_.emplace_back(object.begin(), object.end());
    if (!object.empty()) max_entity = std::max(max_entity, *object.rbegin());
  }
  cache_->EnsureEntities(max_entity + 1);
}

bool CachedPredicate::EvalClause(const Predicate& predicate, int index,
                                 const ValueVector& values) const {
  NONSERIAL_CHECK_GE(index, 0);
  NONSERIAL_CHECK_LT(index, num_clauses());
  return cache_->EvalClause(clause_hashes_[index],
                            predicate.clauses()[index],
                            clause_entities_[index], values);
}

void CachedPredicate::EvalClauseStripe(const Predicate& predicate, int index,
                                       const ValueVector& values,
                                       EntityId striped_entity,
                                       const Value* stripe, int32_t n,
                                       uint8_t* out) const {
  NONSERIAL_CHECK_GE(index, 0);
  NONSERIAL_CHECK_LT(index, num_clauses());
  cache_->EvalClauseStripe(clause_hashes_[index], predicate.clauses()[index],
                           clause_entities_[index], values, striped_entity,
                           stripe, n, out);
}

bool CachedPredicate::Eval(const Predicate& predicate,
                           const ValueVector& values) const {
  NONSERIAL_CHECK_EQ(static_cast<int>(predicate.clauses().size()),
                     num_clauses())
      << "CachedPredicate bound to a structurally different predicate";
  for (int c = 0; c < num_clauses(); ++c) {
    if (!EvalClause(predicate, c, values)) return false;
  }
  return true;
}

}  // namespace nonserial
