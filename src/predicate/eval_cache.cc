#include "predicate/eval_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace nonserial {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashTerm(uint64_t h, const Term& term) {
  h = FnvMix(h, term.is_entity ? 1 : 0);
  h = FnvMix(h, term.is_entity ? static_cast<uint64_t>(term.entity)
                               : static_cast<uint64_t>(term.constant));
  return h;
}

/// Final avalanche (splitmix64) so shard selection uses well-mixed bits.
uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t CachedPredicate::HashClause(const Clause& clause) {
  uint64_t h = kFnvOffset;
  for (const Atom& atom : clause.atoms()) {
    h = HashTerm(h, atom.lhs);
    h = FnvMix(h, static_cast<uint64_t>(atom.op));
    h = HashTerm(h, atom.rhs);
  }
  return h;
}

EvalCache::EvalCache(int num_entities) : shards_(new Shard[kNumShards]) {
  EnsureEntities(num_entities);
}

EvalCache::~EvalCache() = default;

void EvalCache::EnsureEntities(int n) {
  if (n <= num_entities_) return;
  std::unique_ptr<std::atomic<uint64_t>[]> grown(
      new std::atomic<uint64_t>[n]);
  for (int e = 0; e < n; ++e) {
    grown[e].store(e < num_entities_
                       ? entity_epochs_[e].load(std::memory_order_relaxed)
                       : 0,
                   std::memory_order_relaxed);
  }
  entity_epochs_ = std::move(grown);
  num_entities_ = n;
}

uint64_t EvalCache::EpochSum(const std::vector<EntityId>& entities) const {
  uint64_t sum = global_epoch_.load(std::memory_order_relaxed);
  for (EntityId e : entities) {
    if (e >= 0 && e < num_entities_) {
      sum += entity_epochs_[e].load(std::memory_order_relaxed);
    }
  }
  return sum;
}

bool EvalCache::EvalClause(uint64_t clause_hash, const Clause& clause,
                           const std::vector<EntityId>& entities,
                           const ValueVector& values) {
  uint64_t fingerprint = kFnvOffset;
  for (EntityId e : entities) {
    fingerprint = FnvMix(fingerprint, static_cast<uint64_t>(values[e]));
  }
  uint64_t epoch_sum = EpochSum(entities);
  uint64_t key = Avalanche(clause_hash ^ (fingerprint * kFnvPrime));
  Shard& shard = shards_[key % kNumShards];

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      const Entry& entry = it->second;
      if (entry.clause_hash == clause_hash &&
          entry.fingerprint == fingerprint) {
        if (entry.epoch_sum == epoch_sum) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          if (metrics_ != nullptr) metrics_->cache_hits.Add();
          return entry.result;
        }
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->cache_invalidations.Add();
      }
    }
  }

  bool result = clause.Eval(values);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->cache_misses.Add();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.table.size() >= kMaxShardEntries) {
      invalidations_.fetch_add(
          static_cast<int64_t>(shard.table.size()),
          std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->cache_invalidations.Add(
            static_cast<int64_t>(shard.table.size()));
      }
      shard.table.clear();
    }
    shard.table[key] = Entry{clause_hash, fingerprint, epoch_sum, result};
  }
  return result;
}

void EvalCache::BumpEntity(EntityId e) {
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  if (e >= 0 && e < num_entities_) {
    entity_epochs_[e].fetch_add(1, std::memory_order_relaxed);
  } else {
    // Unknown id: be conservative and age out everything.
    global_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EvalCache::InvalidateAll() {
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  global_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void EvalCache::Clear() {
  for (int s = 0; s < kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    shards_[s].table.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  epoch_bumps_.store(0, std::memory_order_relaxed);
}

EvalCache::Stats EvalCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  return out;
}

double EvalCache::HitRate() const {
  Stats s = stats();
  int64_t probes = s.hits + s.misses;
  return probes == 0 ? 0.0
                     : static_cast<double>(s.hits) /
                           static_cast<double>(probes);
}

size_t EvalCache::size() const {
  size_t total = 0;
  for (int s = 0; s < kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].table.size();
  }
  return total;
}

CachedPredicate::CachedPredicate(const Predicate& predicate, EvalCache* cache)
    : cache_(cache) {
  NONSERIAL_CHECK(cache != nullptr);
  const std::vector<Clause>& clauses = predicate.clauses();
  clause_hashes_.reserve(clauses.size());
  clause_entities_.reserve(clauses.size());
  int max_entity = -1;
  for (const Clause& clause : clauses) {
    clause_hashes_.push_back(HashClause(clause));
    std::set<EntityId> object = clause.Object();
    clause_entities_.emplace_back(object.begin(), object.end());
    if (!object.empty()) max_entity = std::max(max_entity, *object.rbegin());
  }
  cache_->EnsureEntities(max_entity + 1);
}

bool CachedPredicate::EvalClause(const Predicate& predicate, int index,
                                 const ValueVector& values) const {
  NONSERIAL_CHECK_GE(index, 0);
  NONSERIAL_CHECK_LT(index, num_clauses());
  return cache_->EvalClause(clause_hashes_[index],
                            predicate.clauses()[index],
                            clause_entities_[index], values);
}

bool CachedPredicate::Eval(const Predicate& predicate,
                           const ValueVector& values) const {
  NONSERIAL_CHECK_EQ(static_cast<int>(predicate.clauses().size()),
                     num_clauses())
      << "CachedPredicate bound to a structurally different predicate";
  for (int c = 0; c < num_clauses(); ++c) {
    if (!EvalClause(predicate, c, values)) return false;
  }
  return true;
}

}  // namespace nonserial
