#include "predicate/predicate.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/strings.h"

namespace nonserial {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool Term::operator==(const Term& other) const {
  if (is_entity != other.is_entity) return false;
  return is_entity ? entity == other.entity : constant == other.constant;
}

void Atom::CollectEntities(std::set<EntityId>* out) const {
  if (lhs.is_entity) out->insert(lhs.entity);
  if (rhs.is_entity) out->insert(rhs.entity);
}

bool Atom::operator==(const Atom& other) const {
  return lhs == other.lhs && op == other.op && rhs == other.rhs;
}

bool Clause::Eval(const ValueVector& values) const {
  for (const Atom& atom : atoms_) {
    if (atom.Eval(values)) return true;
  }
  return false;
}

std::set<EntityId> Clause::Object() const {
  std::set<EntityId> out;
  for (const Atom& atom : atoms_) atom.CollectEntities(&out);
  return out;
}

bool Predicate::Eval(const ValueVector& values) const {
  for (const Clause& clause : clauses_) {
    if (!clause.Eval(values)) return false;
  }
  return true;
}

std::set<EntityId> Predicate::Entities() const {
  std::set<EntityId> out;
  for (const Clause& clause : clauses_) {
    std::set<EntityId> obj = clause.Object();
    out.insert(obj.begin(), obj.end());
  }
  return out;
}

std::vector<std::set<EntityId>> Predicate::Objects() const {
  std::vector<std::set<EntityId>> out;
  for (const Clause& clause : clauses_) {
    std::set<EntityId> obj = clause.Object();
    if (obj.empty()) continue;
    if (std::find(out.begin(), out.end(), obj) == out.end()) {
      out.push_back(std::move(obj));
    }
  }
  return out;
}

Predicate Predicate::And(const Predicate& a, const Predicate& b) {
  std::vector<Clause> clauses = a.clauses();
  clauses.insert(clauses.end(), b.clauses().begin(), b.clauses().end());
  return Predicate(std::move(clauses));
}

namespace {

std::string TermToString(const Term& term,
                         const std::function<std::string(EntityId)>& name_of) {
  if (term.is_entity) return name_of(term.entity);
  return std::to_string(term.constant);
}

}  // namespace

std::string Predicate::ToString(
    const std::function<std::string(EntityId)>& name_of) const {
  if (clauses_.empty()) return "true";
  std::ostringstream os;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) os << " & ";
    os << "(";
    const std::vector<Atom>& atoms = clauses_[i].atoms();
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j > 0) os << " | ";
      os << TermToString(atoms[j].lhs, name_of) << " "
         << CompareOpName(atoms[j].op) << " "
         << TermToString(atoms[j].rhs, name_of);
    }
    os << ")";
  }
  return os.str();
}

std::string Predicate::ToString() const {
  return ToString([](EntityId e) { return StrCat("e", e); });
}

Atom MakeAtom(Term lhs, CompareOp op, Term rhs) {
  Atom atom;
  atom.lhs = lhs;
  atom.op = op;
  atom.rhs = rhs;
  return atom;
}

Atom EntityVsConst(EntityId e, CompareOp op, Value c) {
  return MakeAtom(Term::Entity(e), op, Term::Constant(c));
}

Atom EntityVsEntity(EntityId a, CompareOp op, EntityId b) {
  return MakeAtom(Term::Entity(a), op, Term::Entity(b));
}

namespace {

/// Minimal recursive-descent parser for the predicate grammar.
class Parser {
 public:
  Parser(const std::string& text,
         const std::function<StatusOr<EntityId>(const std::string&)>& resolve)
      : text_(text), resolve_(resolve) {}

  StatusOr<Predicate> Parse() {
    Predicate predicate;
    for (;;) {
      auto clause = ParseClause();
      if (!clause.ok()) return clause.status();
      predicate.AddClause(std::move(clause).value());
      SkipSpace();
      if (!Consume('&')) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing input at offset ", pos_, " in predicate: ", text_));
    }
    return predicate;
  }

 private:
  StatusOr<Clause> ParseClause() {
    SkipSpace();
    bool parenthesized = Consume('(');
    Clause clause;
    for (;;) {
      auto atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      clause.AddAtom(std::move(atom).value());
      SkipSpace();
      if (!Consume('|')) break;
    }
    if (parenthesized && !Consume(')')) {
      return Status::InvalidArgument(StrCat("expected ')' at offset ", pos_));
    }
    return clause;
  }

  StatusOr<Atom> ParseAtom() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    auto op = ParseOp();
    if (!op.ok()) return op.status();
    auto rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    return MakeAtom(lhs.value(), op.value(), rhs.value());
  }

  StatusOr<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of predicate");
    }
    char c = text_[pos_];
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_++;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      int64_t value = 0;
      if (!ParseInt64(text_.substr(start, pos_ - start), &value)) {
        return Status::InvalidArgument(
            StrCat("bad integer at offset ", start));
      }
      return Term::Constant(value);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      auto id = resolve_(text_.substr(start, pos_ - start));
      if (!id.ok()) return id.status();
      return Term::Entity(id.value());
    }
    return Status::InvalidArgument(
        StrCat("unexpected character '", c, "' at offset ", pos_));
  }

  StatusOr<CompareOp> ParseOp() {
    SkipSpace();
    auto take2 = [&](const char* s, CompareOp op) -> std::optional<CompareOp> {
      if (pos_ + 1 < text_.size() && text_[pos_] == s[0] &&
          text_[pos_ + 1] == s[1]) {
        pos_ += 2;
        return op;
      }
      return std::nullopt;
    };
    if (auto op = take2("!=", CompareOp::kNe)) return *op;
    if (auto op = take2("<=", CompareOp::kLe)) return *op;
    if (auto op = take2(">=", CompareOp::kGe)) return *op;
    if (Consume('=')) return CompareOp::kEq;
    if (Consume('<')) return CompareOp::kLt;
    if (Consume('>')) return CompareOp::kGt;
    return Status::InvalidArgument(
        StrCat("expected comparison operator at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  const std::function<StatusOr<EntityId>(const std::string&)>& resolve_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Predicate> ParsePredicate(
    const std::string& text,
    const std::function<StatusOr<EntityId>(const std::string&)>& resolve) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty() || stripped == "true") return Predicate::True();
  Parser parser(text, resolve);
  return parser.Parse();
}

}  // namespace nonserial
