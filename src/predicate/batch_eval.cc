#include "predicate/batch_eval.h"

#include <cstring>

namespace nonserial {

void OrCompareStripeScalar(const Value* lhs, CompareOp op, Value rhs,
                           int32_t n, uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] == rhs);
      break;
    case CompareOp::kNe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] != rhs);
      break;
    case CompareOp::kLt:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] < rhs);
      break;
    case CompareOp::kLe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] <= rhs);
      break;
    case CompareOp::kGt:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] > rhs);
      break;
    case CompareOp::kGe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs[i] >= rhs);
      break;
  }
}

void OrCompareScalarStripe(Value lhs, CompareOp op, const Value* rhs,
                           int32_t n, uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs == rhs[i]);
      break;
    case CompareOp::kNe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs != rhs[i]);
      break;
    case CompareOp::kLt:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs < rhs[i]);
      break;
    case CompareOp::kLe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs <= rhs[i]);
      break;
    case CompareOp::kGt:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs > rhs[i]);
      break;
    case CompareOp::kGe:
      for (int32_t i = 0; i < n; ++i) out[i] |= (lhs >= rhs[i]);
      break;
  }
}

void EvalClauseOverStripe(const Clause& clause, const ValueVector& values,
                          EntityId striped_entity, const Value* stripe,
                          int32_t n, uint8_t* out) {
  std::memset(out, 0, static_cast<size_t>(n));
  for (const Atom& atom : clause.atoms()) {
    bool lhs_striped = atom.lhs.is_entity && atom.lhs.entity == striped_entity;
    bool rhs_striped = atom.rhs.is_entity && atom.rhs.entity == striped_entity;
    if (!lhs_striped && !rhs_striped) {
      // Constant for the whole stripe: one scalar evaluation. A true atom
      // satisfies the disjunction for every candidate — done.
      if (EvalCompare(atom.lhs.Resolve(values), atom.op,
                      atom.rhs.Resolve(values))) {
        std::memset(out, 1, static_cast<size_t>(n));
        return;
      }
      continue;
    }
    if (lhs_striped && rhs_striped) {
      // e op e: constant truth value per op, identical for every candidate.
      // Evaluate with any value (x op x).
      if (EvalCompare(0, atom.op, 0)) {
        std::memset(out, 1, static_cast<size_t>(n));
        return;
      }
      continue;
    }
    if (lhs_striped) {
      OrCompareStripeScalar(stripe, atom.op, atom.rhs.Resolve(values), n, out);
    } else {
      OrCompareScalarStripe(atom.lhs.Resolve(values), atom.op, stripe, n, out);
    }
  }
}

void FingerprintStripe(uint64_t prefix, const Value* stripe, int32_t n,
                       const Value* suffix_values, int32_t suffix_count,
                       uint64_t* out) {
  for (int32_t i = 0; i < n; ++i) {
    uint64_t h = fnv::Mix(prefix, static_cast<uint64_t>(stripe[i]));
    for (int32_t s = 0; s < suffix_count; ++s) {
      h = fnv::Mix(h, static_cast<uint64_t>(suffix_values[s]));
    }
    out[i] = h;
  }
}

}  // namespace nonserial
