#include "predicate/assignment_search.h"

#include <algorithm>

#include "common/logging.h"

namespace nonserial {
namespace {

/// Shared search context. Works over the entities that the predicate
/// mentions ("constrained" entities); all others keep candidate 0.
struct SearchContext {
  const Predicate* predicate;
  const std::vector<std::vector<Value>>* candidates;
  SearchStats* stats;

  std::vector<EntityId> constrained;        // Search variable order.
  std::vector<int> position_of;             // entity -> index in constrained.
  std::vector<int> choice;                  // entity -> candidate index.
  std::vector<bool> assigned;               // entity -> assigned?
  ValueVector values;                       // entity -> current value.
  // clauses_of[e]: indices of clauses mentioning entity e.
  std::vector<std::vector<int>> clauses_of;

  bool AtomDefinitelyFalse(const Atom& atom) const {
    if (atom.lhs.is_entity && !assigned[atom.lhs.entity]) return false;
    if (atom.rhs.is_entity && !assigned[atom.rhs.entity]) return false;
    return !atom.Eval(values);
  }

  /// True iff the clause can still be satisfied given the partial
  /// assignment (some atom true or undetermined).
  bool ClauseViable(const Clause& clause) {
    ++stats->evaluations;
    for (const Atom& atom : clause.atoms()) {
      if (!AtomDefinitelyFalse(atom)) return true;
    }
    return false;
  }
};

bool PrunedSearch(SearchContext* ctx, size_t depth) {
  ++ctx->stats->nodes_visited;
  if (depth == ctx->constrained.size()) return true;
  EntityId entity = ctx->constrained[depth];
  const std::vector<Value>& options = (*ctx->candidates)[entity];
  for (size_t i = 0; i < options.size(); ++i) {
    ctx->choice[entity] = static_cast<int>(i);
    ctx->values[entity] = options[i];
    ctx->assigned[entity] = true;
    bool viable = true;
    for (int clause_index : ctx->clauses_of[entity]) {
      if (!ctx->ClauseViable(ctx->predicate->clauses()[clause_index])) {
        viable = false;
        break;
      }
    }
    if (viable && PrunedSearch(ctx, depth + 1)) return true;
  }
  ctx->assigned[entity] = false;
  return false;
}

bool ExhaustiveSearch(SearchContext* ctx, size_t depth) {
  if (depth == ctx->constrained.size()) {
    ++ctx->stats->nodes_visited;
    ++ctx->stats->evaluations;
    return ctx->predicate->Eval(ctx->values);
  }
  EntityId entity = ctx->constrained[depth];
  const std::vector<Value>& options = (*ctx->candidates)[entity];
  for (size_t i = 0; i < options.size(); ++i) {
    ctx->choice[entity] = static_cast<int>(i);
    ctx->values[entity] = options[i];
    if (ExhaustiveSearch(ctx, depth + 1)) return true;
  }
  return false;
}

}  // namespace

namespace {

/// Index-style pre-filter: for every unit clause `e θ c`, drop candidates
/// of `e` that fail the comparison. Returns per-entity surviving candidate
/// *indices* into the original lists (nullopt when some constrained entity
/// is left without candidates — the predicate is unsatisfiable).
std::optional<std::vector<std::vector<int>>> IndexFilter(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates) {
  int n = static_cast<int>(candidates.size());
  std::vector<std::vector<int>> surviving(n);
  for (int e = 0; e < n; ++e) {
    surviving[e].resize(candidates[e].size());
    for (size_t i = 0; i < candidates[e].size(); ++i) {
      surviving[e][i] = static_cast<int>(i);
    }
  }
  for (const Clause& clause : predicate.clauses()) {
    const std::vector<Atom>& atoms = clause.atoms();
    if (atoms.size() != 1) continue;
    const Atom& atom = atoms[0];
    // Normalize to entity-vs-constant.
    EntityId entity = kInvalidEntity;
    bool entity_on_left = true;
    if (atom.lhs.is_entity && !atom.rhs.is_entity) {
      entity = atom.lhs.entity;
    } else if (!atom.lhs.is_entity && atom.rhs.is_entity) {
      entity = atom.rhs.entity;
      entity_on_left = false;
    } else {
      continue;
    }
    if (entity < 0 || entity >= n) return std::nullopt;
    std::vector<int> kept;
    for (int index : surviving[entity]) {
      Value v = candidates[entity][index];
      bool holds = entity_on_left
                       ? EvalCompare(v, atom.op, atom.rhs.constant)
                       : EvalCompare(atom.lhs.constant, atom.op, v);
      if (holds) kept.push_back(index);
    }
    if (kept.empty()) return std::nullopt;
    surviving[entity] = std::move(kept);
  }
  return surviving;
}

}  // namespace

std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates, SearchMode mode,
    SearchStats* stats) {
  if (mode == SearchMode::kIndexed) {
    // Filter candidate lists through the unit-clause "indices", run the
    // pruned search on the reduced lists, then map choices back.
    std::optional<std::vector<std::vector<int>>> surviving =
        IndexFilter(predicate, candidates);
    if (!surviving.has_value()) return std::nullopt;
    std::vector<std::vector<Value>> reduced(candidates.size());
    for (size_t e = 0; e < candidates.size(); ++e) {
      for (int index : (*surviving)[e]) {
        reduced[e].push_back(candidates[e][index]);
      }
    }
    std::optional<std::vector<int>> choice = FindSatisfyingAssignment(
        predicate, reduced, SearchMode::kPruned, stats);
    if (!choice.has_value()) return std::nullopt;
    for (size_t e = 0; e < candidates.size(); ++e) {
      (*choice)[e] = (*surviving)[e][(*choice)[e]];
    }
    return choice;
  }

  SearchStats local_stats;
  SearchContext ctx;
  ctx.predicate = &predicate;
  ctx.candidates = &candidates;
  ctx.stats = stats != nullptr ? stats : &local_stats;

  int num_entities = static_cast<int>(candidates.size());
  ctx.choice.assign(num_entities, 0);
  ctx.assigned.assign(num_entities, false);
  ctx.values.assign(num_entities, 0);
  // Unconstrained entities (and constrained ones, before assignment) default
  // to their first candidate where one exists.
  for (int e = 0; e < num_entities; ++e) {
    if (!candidates[e].empty()) ctx.values[e] = candidates[e][0];
  }

  std::set<EntityId> mentioned = predicate.Entities();
  for (EntityId e : mentioned) {
    if (e < 0 || e >= num_entities) {
      return std::nullopt;  // Predicate mentions an unknown entity.
    }
    if (candidates[e].empty()) return std::nullopt;  // No version available.
    ctx.constrained.push_back(e);
  }
  // MRV static ordering: fewest candidates first (ties by id for
  // determinism).
  std::sort(ctx.constrained.begin(), ctx.constrained.end(),
            [&](EntityId a, EntityId b) {
              size_t ca = candidates[a].size(), cb = candidates[b].size();
              if (ca != cb) return ca < cb;
              return a < b;
            });

  ctx.clauses_of.assign(num_entities, {});
  const std::vector<Clause>& clauses = predicate.clauses();
  for (size_t c = 0; c < clauses.size(); ++c) {
    for (EntityId e : clauses[c].Object()) {
      ctx.clauses_of[e].push_back(static_cast<int>(c));
    }
  }

  bool found = mode == SearchMode::kPruned ? PrunedSearch(&ctx, 0)
                                           : ExhaustiveSearch(&ctx, 0);
  if (!found) return std::nullopt;
  // Re-resolve values from choices and double-check the full predicate.
  for (EntityId e : ctx.constrained) {
    ctx.values[e] = candidates[e][ctx.choice[e]];
  }
  NONSERIAL_CHECK(predicate.Eval(ctx.values));
  return ctx.choice;
}

}  // namespace nonserial
