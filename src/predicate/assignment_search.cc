#include "predicate/assignment_search.h"

#include <algorithm>

#include "common/logging.h"
#include "predicate/batch_eval.h"

namespace nonserial {
namespace {

/// Shared search context. Works over the entities that the predicate
/// mentions ("constrained" entities); all others keep candidate 0.
struct SearchContext {
  const Predicate* predicate;
  const std::vector<CandidateView>* candidates;
  SearchStats* stats;
  const CachedPredicate* cached = nullptr;  // Optional conjunct memoization.

  std::vector<EntityId> constrained;        // Search variable order.
  std::vector<int> choice;                  // entity -> candidate index.
  std::vector<bool> assigned;               // entity -> assigned?
  ValueVector values;                       // entity -> current value.
  // clauses_of[e]: indices of clauses mentioning entity e.
  std::vector<std::vector<int>> clauses_of;
  // clause_entities[c]: entities mentioned by clause c (ascending), for
  // detecting clauses decided by the entity being assigned.
  std::vector<std::vector<EntityId>> clause_entities;
  // Per-depth scratch for the batched pruning masks (sized once, reused
  // across the whole search — no per-node allocation).
  std::vector<std::vector<uint8_t>> depth_mask;
  std::vector<std::vector<uint8_t>> depth_scratch;
};

/// Batched pruning at one node of the search tree: every clause over
/// `entity` whose OTHER entities are already assigned becomes fully
/// determined the moment `entity` receives a value — so instead of
/// re-walking its atoms once per candidate, it is evaluated over the whole
/// contiguous candidate stripe in one pass (auto-vectorized compares; see
/// predicate/batch_eval.h), through the eval cache when one is attached.
/// Clauses with an unassigned other entity can never prune here (some atom
/// is undetermined, so the disjunction stays viable) and are skipped
/// entirely. The result is a per-candidate viability mask.
bool PrunedSearch(SearchContext* ctx, size_t depth) {
  ++ctx->stats->nodes_visited;
  if (depth == ctx->constrained.size()) return true;
  EntityId entity = ctx->constrained[depth];
  const CandidateView& options = (*ctx->candidates)[entity];
  int32_t n = options.size();

  std::vector<uint8_t>& mask = ctx->depth_mask[depth];
  std::vector<uint8_t>& scratch = ctx->depth_scratch[depth];
  mask.assign(n, 1);
  for (int clause_index : ctx->clauses_of[entity]) {
    bool decided = true;
    for (EntityId e : ctx->clause_entities[clause_index]) {
      if (e != entity && !ctx->assigned[e]) {
        decided = false;
        break;
      }
    }
    if (!decided) continue;
    ctx->stats->evaluations += n;
    const Clause& clause = ctx->predicate->clauses()[clause_index];
    if (ctx->cached != nullptr) {
      ctx->cached->EvalClauseStripe(*ctx->predicate, clause_index,
                                    ctx->values, entity, options.data, n,
                                    scratch.data());
    } else {
      EvalClauseOverStripe(clause, ctx->values, entity, options.data, n,
                           scratch.data());
    }
    for (int32_t i = 0; i < n; ++i) mask[i] &= scratch[i];
  }

  ctx->assigned[entity] = true;
  for (int32_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    ctx->choice[entity] = i;
    ctx->values[entity] = options[i];
    if (PrunedSearch(ctx, depth + 1)) return true;
  }
  ctx->assigned[entity] = false;
  return false;
}

bool ExhaustiveSearch(SearchContext* ctx, size_t depth) {
  if (depth == ctx->constrained.size()) {
    ++ctx->stats->nodes_visited;
    ++ctx->stats->evaluations;
    if (ctx->cached != nullptr) {
      return ctx->cached->Eval(*ctx->predicate, ctx->values);
    }
    return ctx->predicate->Eval(ctx->values);
  }
  EntityId entity = ctx->constrained[depth];
  const CandidateView& options = (*ctx->candidates)[entity];
  for (int32_t i = 0; i < options.size(); ++i) {
    ctx->choice[entity] = i;
    ctx->values[entity] = options[i];
    if (ExhaustiveSearch(ctx, depth + 1)) return true;
  }
  return false;
}

/// Index-style pre-filter: for every unit clause `e θ c`, drop candidates
/// of `e` that fail the comparison. Returns per-entity surviving candidate
/// *indices* into the original lists (nullopt when some constrained entity
/// is left without candidates — the predicate is unsatisfiable).
std::optional<std::vector<std::vector<int>>> IndexFilter(
    const Predicate& predicate, const std::vector<CandidateView>& candidates) {
  int n = static_cast<int>(candidates.size());
  std::vector<std::vector<int>> surviving(n);
  for (int e = 0; e < n; ++e) {
    surviving[e].resize(candidates[e].size());
    for (int32_t i = 0; i < candidates[e].size(); ++i) {
      surviving[e][i] = i;
    }
  }
  for (const Clause& clause : predicate.clauses()) {
    const std::vector<Atom>& atoms = clause.atoms();
    if (atoms.size() != 1) continue;
    const Atom& atom = atoms[0];
    // Normalize to entity-vs-constant.
    EntityId entity = kInvalidEntity;
    bool entity_on_left = true;
    if (atom.lhs.is_entity && !atom.rhs.is_entity) {
      entity = atom.lhs.entity;
    } else if (!atom.lhs.is_entity && atom.rhs.is_entity) {
      entity = atom.rhs.entity;
      entity_on_left = false;
    } else {
      continue;
    }
    if (entity < 0 || entity >= n) return std::nullopt;
    std::vector<int> kept;
    for (int index : surviving[entity]) {
      Value v = candidates[entity][index];
      bool holds = entity_on_left
                       ? EvalCompare(v, atom.op, atom.rhs.constant)
                       : EvalCompare(atom.lhs.constant, atom.op, v);
      if (holds) kept.push_back(index);
    }
    if (kept.empty()) return std::nullopt;
    surviving[entity] = std::move(kept);
  }
  return surviving;
}

}  // namespace

std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate, const std::vector<CandidateView>& candidates,
    SearchMode mode, SearchStats* stats, const CachedPredicate* cached) {
  if (mode == SearchMode::kIndexed) {
    // Filter candidate lists through the unit-clause "indices", run the
    // pruned search on the reduced lists, then map choices back. The
    // reduced lists are rebuilt contiguous (a CandidateBuffer) so the
    // batched pruning still sees dense stripes.
    std::optional<std::vector<std::vector<int>>> surviving =
        IndexFilter(predicate, candidates);
    if (!surviving.has_value()) return std::nullopt;
    CandidateBuffer reduced;
    for (size_t e = 0; e < candidates.size(); ++e) {
      for (int index : (*surviving)[e]) {
        reduced.Push(candidates[e][index]);
      }
      reduced.FinishEntity();
    }
    std::optional<std::vector<int>> choice = FindSatisfyingAssignment(
        predicate, reduced, SearchMode::kPruned, stats, cached);
    if (!choice.has_value()) return std::nullopt;
    for (size_t e = 0; e < candidates.size(); ++e) {
      (*choice)[e] = (*surviving)[e][(*choice)[e]];
    }
    return choice;
  }

  SearchStats local_stats;
  SearchContext ctx;
  ctx.predicate = &predicate;
  ctx.candidates = &candidates;
  ctx.stats = stats != nullptr ? stats : &local_stats;
  ctx.cached = cached;

  int num_entities = static_cast<int>(candidates.size());
  ctx.choice.assign(num_entities, 0);
  ctx.assigned.assign(num_entities, false);
  ctx.values.assign(num_entities, 0);
  // Unconstrained entities (and constrained ones, before assignment) default
  // to their first candidate where one exists.
  for (int e = 0; e < num_entities; ++e) {
    if (!candidates[e].empty()) ctx.values[e] = candidates[e][0];
  }

  std::set<EntityId> mentioned = predicate.Entities();
  for (EntityId e : mentioned) {
    if (e < 0 || e >= num_entities) {
      return std::nullopt;  // Predicate mentions an unknown entity.
    }
    if (candidates[e].empty()) return std::nullopt;  // No version available.
    ctx.constrained.push_back(e);
  }
  // MRV static ordering: fewest candidates first (ties by id for
  // determinism).
  std::sort(ctx.constrained.begin(), ctx.constrained.end(),
            [&](EntityId a, EntityId b) {
              int32_t ca = candidates[a].size(), cb = candidates[b].size();
              if (ca != cb) return ca < cb;
              return a < b;
            });

  ctx.clauses_of.assign(num_entities, {});
  const std::vector<Clause>& clauses = predicate.clauses();
  ctx.clause_entities.resize(clauses.size());
  for (size_t c = 0; c < clauses.size(); ++c) {
    std::set<EntityId> object = clauses[c].Object();
    ctx.clause_entities[c].assign(object.begin(), object.end());
    for (EntityId e : object) {
      ctx.clauses_of[e].push_back(static_cast<int>(c));
    }
  }

  if (mode == SearchMode::kPruned) {
    // Per-depth mask buffers, sized to each depth's stripe once up front.
    ctx.depth_mask.resize(ctx.constrained.size());
    ctx.depth_scratch.resize(ctx.constrained.size());
    for (size_t d = 0; d < ctx.constrained.size(); ++d) {
      size_t width = candidates[ctx.constrained[d]].size();
      ctx.depth_mask[d].reserve(width);
      ctx.depth_scratch[d].resize(width);
    }
  }

  bool found = mode == SearchMode::kPruned ? PrunedSearch(&ctx, 0)
                                           : ExhaustiveSearch(&ctx, 0);
  if (!found) return std::nullopt;
  // Re-resolve values from choices and double-check the full predicate.
  for (EntityId e : ctx.constrained) {
    ctx.values[e] = candidates[e][ctx.choice[e]];
  }
  NONSERIAL_CHECK(predicate.Eval(ctx.values));
  return ctx.choice;
}

std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates, SearchMode mode,
    SearchStats* stats, const CachedPredicate* cached) {
  return FindSatisfyingAssignment(predicate, ViewsOfLists(candidates), mode,
                                  stats, cached);
}

std::optional<std::vector<int>> FindSatisfyingAssignment(
    const Predicate& predicate, const CandidateBuffer& candidates,
    SearchMode mode, SearchStats* stats, const CachedPredicate* cached) {
  return FindSatisfyingAssignment(predicate, candidates.Views(), mode, stats,
                                  cached);
}

std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate, const std::vector<CandidateView>& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode, SearchStats* stats, const CachedPredicate* cached,
    DeltaStats* delta_stats) {
  DeltaStats local_delta;
  if (delta_stats == nullptr) delta_stats = &local_delta;

  int num_entities = static_cast<int>(candidates.size());
  bool pins_usable = prev_choice.size() == candidates.size();
  std::vector<bool> pinned;
  std::vector<CandidateView> reduced;
  if (pins_usable) {
    pinned.assign(num_entities, false);
    reduced.resize(num_entities);
    for (int e = 0; e < num_entities; ++e) {
      int prev = prev_choice[e];
      bool pin = !changed.contains(e) && prev >= 0 &&
                 prev < candidates[e].size();
      if (pin) {
        // Unchanged entity: its candidate list is as it was when
        // prev_choice was found, so the single previously chosen value is
        // enough — a one-element view into the original storage; the
        // search space collapses to the changed entities with zero copies.
        pinned[e] = true;
        reduced[e] = CandidateView{candidates[e].data + prev, 1};
      } else {
        reduced[e] = candidates[e];
      }
    }
  }

  if (pins_usable) {
    std::optional<std::vector<int>> choice =
        FindSatisfyingAssignment(predicate, reduced, mode, stats, cached);
    if (choice.has_value()) {
      ++delta_stats->delta_solves;
      for (int e = 0; e < num_entities; ++e) {
        if (pinned[e]) (*choice)[e] = prev_choice[e];
      }
      return choice;
    }
  }

  // The pinned problem was unsatisfiable (or the pins were unusable):
  // re-solve from scratch so the overall answer matches the from-scratch
  // search — pinning only ever narrows the space, never the answer.
  ++delta_stats->delta_fallbacks;
  return FindSatisfyingAssignment(predicate, candidates, mode, stats, cached);
}

std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate,
    const std::vector<std::vector<Value>>& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode, SearchStats* stats, const CachedPredicate* cached,
    DeltaStats* delta_stats) {
  return DeltaRevalidate(predicate, ViewsOfLists(candidates), prev_choice,
                         changed, mode, stats, cached, delta_stats);
}

std::optional<std::vector<int>> DeltaRevalidate(
    const Predicate& predicate, const CandidateBuffer& candidates,
    const std::vector<int>& prev_choice, const std::set<EntityId>& changed,
    SearchMode mode, SearchStats* stats, const CachedPredicate* cached,
    DeltaStats* delta_stats) {
  return DeltaRevalidate(predicate, candidates.Views(), prev_choice, changed,
                         mode, stats, cached, delta_stats);
}

}  // namespace nonserial
