#ifndef NONSERIAL_PREDICATE_FORMULA_H_
#define NONSERIAL_PREDICATE_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"

namespace nonserial {

/// An arbitrary boolean combination of comparison atoms — the general form
/// in which users state consistency constraints. The paper's model works
/// over conjunctive normal form and notes that "it is easy to show that all
/// predicates can be expressed in conjunctive normal form"; ToCnf() makes
/// that constructive.
///
/// Negation never survives conversion: the atom language is closed under
/// complement (¬(x < y) ≡ x ≥ y), so NNF pushes ¬ into the atoms and the
/// distribution step produces plain clauses.
class Formula {
 public:
  /// Leaf: a comparison atom.
  static Formula MakeAtom(Atom atom);
  /// Conjunction; And of zero children is `true`.
  static Formula And(std::vector<Formula> children);
  /// Disjunction; Or of zero children is `false`.
  static Formula Or(std::vector<Formula> children);
  /// Negation.
  static Formula Not(Formula child);

  /// Evaluates under a complete assignment.
  bool Eval(const ValueVector& values) const;

  /// Converts to an equivalent CNF predicate (negation-normal form followed
  /// by distribution of Or over And). Worst-case exponential in formula
  /// size, as CNF conversion without auxiliary variables must be; intended
  /// for the hand-written constraints of this domain.
  Predicate ToCnf() const;

  std::string ToString(
      const std::function<std::string(EntityId)>& name_of) const;
  std::string ToString() const;

 private:
  enum class Kind : uint8_t { kAtom, kAnd, kOr, kNot };

  struct Node;
  using NodePtr = std::shared_ptr<const Node>;
  struct Node {
    Kind kind = Kind::kAtom;
    Atom atom;
    std::vector<NodePtr> children;
  };

  explicit Formula(NodePtr node) : node_(std::move(node)) {}

  static NodePtr ToNnf(const NodePtr& node, bool negated);
  /// Converts an NNF node into clause sets (a conjunction of clauses).
  static std::vector<Clause> NnfToClauses(const NodePtr& node);

  NodePtr node_;
};

/// Complements an atom: ¬(x θ y) as the opposite comparison.
Atom NegateAtom(const Atom& atom);

/// Parses a full boolean formula. Grammar (precedence: ! > & > |):
///
///   formula := term ('|' term)*
///   term    := factor ('&' factor)*
///   factor  := '!' factor | '(' formula ')' | atom
///   atom    := operand op operand          (as in ParsePredicate)
///
StatusOr<Formula> ParseFormula(
    const std::string& text,
    const std::function<StatusOr<EntityId>(const std::string&)>& resolve);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_FORMULA_H_
