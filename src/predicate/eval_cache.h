#ifndef NONSERIAL_PREDICATE_EVAL_CACHE_H_
#define NONSERIAL_PREDICATE_EVAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "predicate/predicate.h"

namespace nonserial {

/// \file
/// Memoized conjunct evaluation — the incremental half of the validation
/// fast path (see docs/ARCHITECTURE.md, "incremental verification").
///
/// A CNF predicate is an AND of conjuncts (clauses); each conjunct mentions
/// a small entity set (its *object*, in the paper's terminology). During a
/// validation rescan, the assignment search re-evaluates the same conjuncts
/// over mostly unchanged version values, and the formal verifier re-checks
/// the same input/output specifications after every crash-recovery cycle.
/// EvalCache memoizes those evaluations so repeated validation is a hash
/// probe instead of an atom walk.

/// Thread-safe memo of conjunct (clause) evaluations.
///
/// **Key.** An entry is keyed by the pair
/// (structural hash of the clause, fingerprint of the values of the
/// clause's entities). Because a clause's truth value is a pure function of
/// those values, a fingerprint match makes the cached result sound no
/// matter how the version store evolved in between — epochs (below) are a
/// freshness discipline, not a correctness requirement. The differential
/// fuzzer (tests/incremental_verify_fuzz_test.cc) re-checks this claim
/// against from-scratch evaluation on every run.
///
/// **Epoch invalidation.** Each entity carries an epoch counter; installing
/// or rolling back a version of entity `e` bumps `e`'s epoch (the protocol
/// engine calls BumpEntity from Write and Abort). An entry records the sum
/// of its entities' epochs at insertion time; a later probe whose current
/// epoch sum differs treats the entry as stale, recomputes, and counts an
/// invalidation. This keeps the cache from serving results across store
/// generations (e.g. across a crash-recovery replay) and gives the metrics
/// layer a precise invalidation signal.
///
/// **Concurrency.** The table is sharded *by clause* (well-mixed bits of
/// the clause's structural hash); each shard owns a mutex and a bounded
/// open-addressed slot array (overflowing shards are dropped wholesale and
/// counted as invalidations). Clause sharding means a whole candidate
/// stripe lives in one shard — EvalClauseStripe takes one lock per stripe
/// and walks one contiguous table — at the cost of serializing concurrent
/// evaluations of the *same* clause (different clauses still spread across
/// shards). Entity epochs are relaxed atomics. Any number of threads may
/// evaluate concurrently — the CEP engine probes the cache from its
/// *unlocked* optimistic-search window, and the verifier probes it from
/// the shared thread pool.
class EvalCache {
 public:
  /// Counter snapshot; see stats().
  struct Stats {
    int64_t hits = 0;           ///< Probes answered from the table.
    int64_t misses = 0;         ///< Probes that evaluated and inserted.
    int64_t invalidations = 0;  ///< Stale entries replaced (epoch mismatch)
                                ///< plus entries dropped by shard overflow.
    int64_t epoch_bumps = 0;    ///< BumpEntity / InvalidateAll calls.
  };

  /// Constructs a cache sized for `num_entities` dense entity ids (the
  /// epoch table grows on demand via EnsureEntities).
  explicit EvalCache(int num_entities = 0);
  ~EvalCache();

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Grows the epoch table to cover entity ids [0, n). Safe under
  /// concurrent use: the table is published through an atomic pointer
  /// (growth serializes on an internal mutex; retired tables stay alive
  /// for the cache's lifetime, so concurrent EpochSum probes never read
  /// freed memory). A BumpEntity racing the growth copy may land on the
  /// outgoing table and be lost — benign, because cache keys are
  /// value-fingerprint-sound; epochs are a freshness discipline, not a
  /// correctness requirement (see the class comment).
  void EnsureEntities(int n);

  /// Evaluates one clause over `values`, memoized.
  ///
  /// `clause_hash` must be the structural hash of `clause` (see
  /// CachedPredicate, which precomputes it) and `entities` the clause's
  /// entity set in ascending order; `values` must cover every id in
  /// `entities`.
  bool EvalClause(uint64_t clause_hash, const Clause& clause,
                  const std::vector<EntityId>& entities,
                  const ValueVector& values);

  /// Batch (stripe) variant of EvalClause: evaluates `clause` once per
  /// candidate value of `striped_entity` — out[i] is the clause's value
  /// with values[striped_entity] replaced by stripe[i], every other entity
  /// read from `values`. Produces exactly the keys EvalClause would (so
  /// stripe probes hit entries the scalar path inserted and vice versa),
  /// but fingerprints are batched, the shard lock is taken ONCE for the
  /// whole stripe (sharding is by clause), the miss evaluations collapse
  /// into one auto-vectorized pass over the contiguous stripe
  /// (predicate/batch_eval.h), and each candidate resolves — hit, stale,
  /// or insert — in a single prefetched slot walk. No per-candidate
  /// allocation.
  void EvalClauseStripe(uint64_t clause_hash, const Clause& clause,
                        const std::vector<EntityId>& entities,
                        const ValueVector& values, EntityId striped_entity,
                        const Value* stripe, int32_t n, uint8_t* out);

  /// Epoch invalidation hook: a version of `e` was installed or rolled
  /// back. Entries over `e` become stale (they are replaced on their next
  /// probe). Ids beyond the epoch table invalidate the whole cache instead.
  void BumpEntity(EntityId e);

  /// Invalidates every entry at once (bumps the global epoch). Used when a
  /// whole store generation is discarded, e.g. on crash recovery.
  void InvalidateAll();

  /// Drops all entries and counters (test hygiene; not thread-safe).
  void Clear();

  /// Snapshot of the hit/miss/invalidation counters.
  Stats stats() const;

  /// The fraction of probes answered from the table, in [0, 1].
  double HitRate() const;

  /// Number of live entries across all shards (approximate under
  /// concurrent use).
  size_t size() const;

  /// Mirrors future hits/misses/invalidations into `metrics`
  /// (cache_hits / cache_misses / cache_invalidations). Not owned; pass
  /// nullptr to detach. Set before concurrent use.
  void SetMetrics(ProtocolMetrics* metrics) { metrics_ = metrics; }

 private:
  /// One open-addressed slot. key == 0 means empty (probe keys are
  /// avalanche-mixed and remapped away from 0, see SlotKey). clause_hash /
  /// fingerprint guard against 64-bit key collisions.
  struct Entry {
    uint64_t key = 0;
    uint64_t clause_hash = 0;
    uint64_t fingerprint = 0;
    uint64_t epoch_sum = 0;
    bool result = false;
  };

  /// A cache shard: a flat, power-of-two, linear-probed slot array. Entries
  /// are never individually deleted (staleness is detected by epoch_sum and
  /// overwritten in place; overflow clears the shard wholesale), so probing
  /// needs no tombstones — a run ends at the first empty slot. Flat slots
  /// replace the former unordered_map: no per-insert allocation on the miss
  /// path, and a probe touches one cache line instead of chasing buckets.
  struct Shard {
    std::mutex mu;
    std::vector<Entry> slots;  ///< Power-of-two size; grown by rehash.
    size_t count = 0;          ///< Occupied slots.
  };

  static constexpr int kNumShards = 16;
  /// Per-shard entry bound; an overflowing shard is cleared wholesale.
  static constexpr size_t kMaxShardEntries = 1 << 16;
  /// First slot-array size for a shard (on its first insert).
  static constexpr size_t kInitialShardSlots = 256;

  /// Immutable-size epoch array published through epoch_table_. Growth
  /// installs a larger copy; outgoing tables are kept alive in tables_
  /// (geometric growth bounds them to O(log entities)), so lock-free
  /// EpochSum/BumpEntity probes racing a growth never touch freed memory.
  struct EpochTable {
    explicit EpochTable(int n) : size(n), epochs(new std::atomic<uint64_t>[n]) {
      for (int i = 0; i < n; ++i) {
        epochs[i].store(0, std::memory_order_relaxed);
      }
    }
    const int size;
    std::unique_ptr<std::atomic<uint64_t>[]> epochs;
  };

  uint64_t EpochSum(const std::vector<EntityId>& entities) const;

  /// The slot key for (clause_hash, fingerprint): avalanche-mixed, with 0
  /// remapped so it never collides with the empty-slot sentinel.
  static uint64_t SlotKey(uint64_t clause_hash, uint64_t fingerprint);

  /// The shard holding every entry of the clause with this structural hash
  /// (sharding is by clause; see the class comment).
  static size_t ShardIndex(uint64_t clause_hash);

  /// Finds the entry with `key`, or nullptr. Caller holds shard.mu.
  const Entry* ProbeLocked(const Shard& shard, uint64_t key) const;

  /// Grows the slot array until `n` more inserts stay under 70% load, so a
  /// subsequent batch of walks never rehashes mid-stripe (and a walk ending
  /// at an empty slot may insert right there). Caller holds shard.mu.
  void ReserveLocked(Shard& shard, size_t n);

  /// Inserts or overwrites (key -> entry), growing the slot array at 70%
  /// load and clearing the shard wholesale at the entry bound (dropped
  /// entries count as invalidations). Caller holds shard.mu.
  void InsertLocked(Shard& shard, uint64_t key, const Entry& entry);

  std::unique_ptr<Shard[]> shards_;
  /// All epoch tables ever created (last = live); guarded by grow_mu_.
  std::vector<std::unique_ptr<EpochTable>> tables_;
  std::mutex grow_mu_;
  std::atomic<EpochTable*> epoch_table_{nullptr};
  std::atomic<uint64_t> global_epoch_{0};

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> invalidations_{0};
  mutable std::atomic<int64_t> epoch_bumps_{0};

  ProtocolMetrics* metrics_ = nullptr;
};

/// Immutable per-predicate companion for EvalCache: the precomputed
/// structural hash and sorted entity list of every clause.
///
/// Construction walks the predicate once; evaluation then binds the *live*
/// predicate (which must be structurally identical to the one given at
/// construction — same clauses in the same order) so callers that move
/// their predicates around, as the protocol engine's per-transaction state
/// does, never hold a dangling pointer.
class CachedPredicate {
 public:
  /// Precomputes clause hashes/entity lists for `predicate` and binds the
  /// cache. `cache` is not owned and must outlive this object.
  CachedPredicate(const Predicate& predicate, EvalCache* cache);

  /// Memoized evaluation of clause `index` of `predicate` (which must be
  /// structurally identical to the construction-time predicate).
  bool EvalClause(const Predicate& predicate, int index,
                  const ValueVector& values) const;

  /// Batch variant: memoized evaluation of clause `index` for every
  /// candidate in the contiguous stripe (see EvalCache::EvalClauseStripe).
  void EvalClauseStripe(const Predicate& predicate, int index,
                        const ValueVector& values, EntityId striped_entity,
                        const Value* stripe, int32_t n, uint8_t* out) const;

  /// Entity set of clause `index`, ascending (precomputed at construction).
  const std::vector<EntityId>& ClauseEntities(int index) const {
    return clause_entities_[index];
  }

  /// Memoized evaluation of the whole predicate (AND of its clauses).
  bool Eval(const Predicate& predicate, const ValueVector& values) const;

  /// The bound cache (never null).
  EvalCache* cache() const { return cache_; }

  /// Number of clauses captured at construction.
  int num_clauses() const { return static_cast<int>(clause_hashes_.size()); }

  /// Structural 64-bit hash of one clause — stable across copies and moves
  /// of the predicate, so cache entries survive engine restarts.
  static uint64_t HashClause(const Clause& clause);

 private:
  EvalCache* cache_;
  std::vector<uint64_t> clause_hashes_;
  std::vector<std::vector<EntityId>> clause_entities_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_EVAL_CACHE_H_
