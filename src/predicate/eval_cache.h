#ifndef NONSERIAL_PREDICATE_EVAL_CACHE_H_
#define NONSERIAL_PREDICATE_EVAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "predicate/predicate.h"

namespace nonserial {

/// \file
/// Memoized conjunct evaluation — the incremental half of the validation
/// fast path (see docs/ARCHITECTURE.md, "incremental verification").
///
/// A CNF predicate is an AND of conjuncts (clauses); each conjunct mentions
/// a small entity set (its *object*, in the paper's terminology). During a
/// validation rescan, the assignment search re-evaluates the same conjuncts
/// over mostly unchanged version values, and the formal verifier re-checks
/// the same input/output specifications after every crash-recovery cycle.
/// EvalCache memoizes those evaluations so repeated validation is a hash
/// probe instead of an atom walk.

/// Thread-safe memo of conjunct (clause) evaluations.
///
/// **Key.** An entry is keyed by the pair
/// (structural hash of the clause, fingerprint of the values of the
/// clause's entities). Because a clause's truth value is a pure function of
/// those values, a fingerprint match makes the cached result sound no
/// matter how the version store evolved in between — epochs (below) are a
/// freshness discipline, not a correctness requirement. The differential
/// fuzzer (tests/incremental_verify_fuzz_test.cc) re-checks this claim
/// against from-scratch evaluation on every run.
///
/// **Epoch invalidation.** Each entity carries an epoch counter; installing
/// or rolling back a version of entity `e` bumps `e`'s epoch (the protocol
/// engine calls BumpEntity from Write and Abort). An entry records the sum
/// of its entities' epochs at insertion time; a later probe whose current
/// epoch sum differs treats the entry as stale, recomputes, and counts an
/// invalidation. This keeps the cache from serving results across store
/// generations (e.g. across a crash-recovery replay) and gives the metrics
/// layer a precise invalidation signal.
///
/// **Concurrency.** The table is sharded; each shard owns a mutex and a
/// bounded hash map (overflowing shards are dropped wholesale and counted
/// as invalidations). Entity epochs are relaxed atomics. Any number of
/// threads may evaluate concurrently — the CEP engine probes the cache from
/// its *unlocked* optimistic-search window, and the verifier probes it from
/// the shared thread pool.
class EvalCache {
 public:
  /// Counter snapshot; see stats().
  struct Stats {
    int64_t hits = 0;           ///< Probes answered from the table.
    int64_t misses = 0;         ///< Probes that evaluated and inserted.
    int64_t invalidations = 0;  ///< Stale entries replaced (epoch mismatch)
                                ///< plus entries dropped by shard overflow.
    int64_t epoch_bumps = 0;    ///< BumpEntity / InvalidateAll calls.
  };

  /// Constructs a cache sized for `num_entities` dense entity ids (the
  /// epoch table grows on demand via EnsureEntities, which is not safe
  /// under concurrent evaluation — size up front when possible).
  explicit EvalCache(int num_entities = 0);
  ~EvalCache();

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Grows the epoch table to cover entity ids [0, n). Call before
  /// concurrent use; concurrent callers of Eval* must not race with this.
  void EnsureEntities(int n);

  /// Evaluates one clause over `values`, memoized.
  ///
  /// `clause_hash` must be the structural hash of `clause` (see
  /// CachedPredicate, which precomputes it) and `entities` the clause's
  /// entity set in ascending order; `values` must cover every id in
  /// `entities`.
  bool EvalClause(uint64_t clause_hash, const Clause& clause,
                  const std::vector<EntityId>& entities,
                  const ValueVector& values);

  /// Epoch invalidation hook: a version of `e` was installed or rolled
  /// back. Entries over `e` become stale (they are replaced on their next
  /// probe). Ids beyond the epoch table invalidate the whole cache instead.
  void BumpEntity(EntityId e);

  /// Invalidates every entry at once (bumps the global epoch). Used when a
  /// whole store generation is discarded, e.g. on crash recovery.
  void InvalidateAll();

  /// Drops all entries and counters (test hygiene; not thread-safe).
  void Clear();

  /// Snapshot of the hit/miss/invalidation counters.
  Stats stats() const;

  /// The fraction of probes answered from the table, in [0, 1].
  double HitRate() const;

  /// Number of live entries across all shards (approximate under
  /// concurrent use).
  size_t size() const;

  /// Mirrors future hits/misses/invalidations into `metrics`
  /// (cache_hits / cache_misses / cache_invalidations). Not owned; pass
  /// nullptr to detach. Set before concurrent use.
  void SetMetrics(ProtocolMetrics* metrics) { metrics_ = metrics; }

 private:
  struct Entry {
    uint64_t clause_hash = 0;
    uint64_t fingerprint = 0;
    uint64_t epoch_sum = 0;
    bool result = false;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> table;
  };

  static constexpr int kNumShards = 16;
  /// Per-shard entry bound; an overflowing shard is cleared wholesale.
  static constexpr size_t kMaxShardEntries = 1 << 16;

  uint64_t EpochSum(const std::vector<EntityId>& entities) const;

  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<std::atomic<uint64_t>[]> entity_epochs_;
  int num_entities_ = 0;
  std::atomic<uint64_t> global_epoch_{0};

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> invalidations_{0};
  mutable std::atomic<int64_t> epoch_bumps_{0};

  ProtocolMetrics* metrics_ = nullptr;
};

/// Immutable per-predicate companion for EvalCache: the precomputed
/// structural hash and sorted entity list of every clause.
///
/// Construction walks the predicate once; evaluation then binds the *live*
/// predicate (which must be structurally identical to the one given at
/// construction — same clauses in the same order) so callers that move
/// their predicates around, as the protocol engine's per-transaction state
/// does, never hold a dangling pointer.
class CachedPredicate {
 public:
  /// Precomputes clause hashes/entity lists for `predicate` and binds the
  /// cache. `cache` is not owned and must outlive this object.
  CachedPredicate(const Predicate& predicate, EvalCache* cache);

  /// Memoized evaluation of clause `index` of `predicate` (which must be
  /// structurally identical to the construction-time predicate).
  bool EvalClause(const Predicate& predicate, int index,
                  const ValueVector& values) const;

  /// Memoized evaluation of the whole predicate (AND of its clauses).
  bool Eval(const Predicate& predicate, const ValueVector& values) const;

  /// The bound cache (never null).
  EvalCache* cache() const { return cache_; }

  /// Number of clauses captured at construction.
  int num_clauses() const { return static_cast<int>(clause_hashes_.size()); }

  /// Structural 64-bit hash of one clause — stable across copies and moves
  /// of the predicate, so cache entries survive engine restarts.
  static uint64_t HashClause(const Clause& clause);

 private:
  EvalCache* cache_;
  std::vector<uint64_t> clause_hashes_;
  std::vector<std::vector<EntityId>> clause_entities_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_EVAL_CACHE_H_
