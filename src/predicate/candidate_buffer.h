#ifndef NONSERIAL_PREDICATE_CANDIDATE_BUFFER_H_
#define NONSERIAL_PREDICATE_CANDIDATE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "predicate/value.h"

namespace nonserial {

/// Non-owning view of one entity's candidate stripe: a contiguous run of
/// Values inside a CandidateBuffer arena (or any other contiguous storage,
/// e.g. one inner vector of the legacy vector<vector<Value>> shape). The
/// assignment search and the batch evaluator consume candidates exclusively
/// through this view, so both candidate representations share one search
/// core with zero copying.
struct CandidateView {
  const Value* data = nullptr;
  int32_t count = 0;

  int32_t size() const { return count; }
  bool empty() const { return count == 0; }
  const Value& operator[](int32_t i) const { return data[i]; }
  const Value* begin() const { return data; }
  const Value* end() const { return data + count; }

  friend bool operator==(const CandidateView& a, const CandidateView& b) {
    if (a.count != b.count) return false;
    for (int32_t i = 0; i < a.count; ++i) {
      if (a.data[i] != b.data[i]) return false;
    }
    return true;
  }
};

/// Columnar candidate storage: all entities' candidate values live in ONE
/// flat arena, addressed by per-entity offsets. This replaces the
/// vector<vector<Value>> materialization on the validation hot path — one
/// allocation amortized across rescans (Reset keeps capacity), and each
/// entity's stripe is contiguous, which is what lets the predicate batch
/// evaluator run an auto-vectorizable compare over it.
///
/// Build protocol: entities are appended strictly in ascending order —
/// Push values for entity 0, FinishEntity(), Push for entity 1, ... The
/// buffer is then indexed by entity id.
class CandidateBuffer {
 public:
  CandidateBuffer() { offsets_.push_back(0); }

  /// Clears the buffer for rebuilding; keeps the arena capacity.
  void Reset() {
    arena_.clear();
    offsets_.clear();
    offsets_.push_back(0);
  }

  /// Appends one candidate value to the entity currently being built.
  void Push(Value v) { arena_.push_back(v); }

  /// Seals the current entity's stripe; the next Push starts the next
  /// entity.
  void FinishEntity() { offsets_.push_back(static_cast<int32_t>(arena_.size())); }

  int num_entities() const { return static_cast<int>(offsets_.size()) - 1; }

  CandidateView view(EntityId e) const {
    int32_t begin = offsets_[e];
    return CandidateView{arena_.data() + begin, offsets_[e + 1] - begin};
  }

  /// All per-entity views, for handing to the search core.
  std::vector<CandidateView> Views() const {
    std::vector<CandidateView> out(num_entities());
    for (int e = 0; e < num_entities(); ++e) out[e] = view(e);
    return out;
  }

  /// Total candidates across all entities.
  int32_t total() const { return static_cast<int32_t>(arena_.size()); }

  /// Copies the legacy nested shape into a buffer (tests and adapters).
  static CandidateBuffer FromLists(
      const std::vector<std::vector<Value>>& lists) {
    CandidateBuffer out;
    out.arena_.reserve([&lists] {
      size_t n = 0;
      for (const std::vector<Value>& l : lists) n += l.size();
      return n;
    }());
    for (const std::vector<Value>& l : lists) {
      for (Value v : l) out.Push(v);
      out.FinishEntity();
    }
    return out;
  }

  friend bool operator==(const CandidateBuffer& a, const CandidateBuffer& b) {
    return a.offsets_ == b.offsets_ && a.arena_ == b.arena_;
  }

 private:
  std::vector<Value> arena_;
  std::vector<int32_t> offsets_;  // offsets_[e] .. offsets_[e+1] = stripe of e.
};

/// Zero-copy views over the legacy nested candidate shape: each inner
/// vector is already contiguous, so a view can point straight at it.
inline std::vector<CandidateView> ViewsOfLists(
    const std::vector<std::vector<Value>>& lists) {
  std::vector<CandidateView> out(lists.size());
  for (size_t e = 0; e < lists.size(); ++e) {
    out[e] = CandidateView{lists[e].data(),
                           static_cast<int32_t>(lists[e].size())};
  }
  return out;
}

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_CANDIDATE_BUFFER_H_
