#ifndef NONSERIAL_PREDICATE_SAT_H_
#define NONSERIAL_PREDICATE_SAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "predicate/predicate.h"

namespace nonserial {

/// A boolean literal: variable index plus sign. Variable indices are dense
/// [0, num_vars).
struct BoolLiteral {
  int var = 0;
  bool negated = false;
};

/// A boolean CNF formula. This is the substrate for the paper's Lemma 1:
/// satisfiability reduces to one-transaction version correctness.
struct BoolFormula {
  int num_vars = 0;
  std::vector<std::vector<BoolLiteral>> clauses;

  /// Evaluates under a complete assignment (assignment[v] is the truth
  /// value of variable v).
  bool Eval(const std::vector<bool>& assignment) const;

  /// DIMACS-like rendering for diagnostics.
  std::string ToString() const;
};

/// Statistics from a DPLL run.
struct SatStats {
  int64_t decisions = 0;
  int64_t unit_propagations = 0;
  int64_t pure_eliminations = 0;
  int64_t backtracks = 0;
};

/// Davis-Putnam-Logemann-Loveland SAT solver with unit propagation and
/// pure-literal elimination. Returns a satisfying assignment or nullopt if
/// the formula is unsatisfiable.
std::optional<std::vector<bool>> SolveSat(const BoolFormula& formula,
                                          SatStats* stats = nullptr);

/// Generates a uniformly random k-SAT formula with `num_clauses` clauses
/// over `num_vars` variables (distinct variables within a clause).
BoolFormula RandomKSat(int num_vars, int num_clauses, int k, Rng* rng);

/// The Lemma 1 reduction, forward direction: transforms a boolean CNF
/// formula C over variables U into a predicate I_t over entities E = U such
/// that I_t is satisfiable by some version state of S = {all-zeros, all-ones}
/// iff C is satisfiable. Literal u becomes atom (e_u = 1); literal ¬u
/// becomes (e_u = 0).
Predicate FormulaToPredicate(const BoolFormula& formula);

/// The candidate version sets induced by the Lemma 1 database state
/// S = {S^U_0, S^U_1}: every entity has exactly the two versions {0, 1}.
std::vector<std::vector<Value>> Lemma1CandidateSets(int num_vars);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_SAT_H_
