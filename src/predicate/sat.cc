#include "predicate/sat.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace nonserial {

bool BoolFormula::Eval(const std::vector<bool>& assignment) const {
  for (const std::vector<BoolLiteral>& clause : clauses) {
    bool satisfied = false;
    for (const BoolLiteral& lit : clause) {
      if (assignment[lit.var] != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string BoolFormula::ToString() const {
  std::ostringstream os;
  os << "p cnf " << num_vars << " " << clauses.size() << "\n";
  for (const std::vector<BoolLiteral>& clause : clauses) {
    for (const BoolLiteral& lit : clause) {
      os << (lit.negated ? -(lit.var + 1) : (lit.var + 1)) << " ";
    }
    os << "0\n";
  }
  return os.str();
}

namespace {

enum class Truth : int8_t { kUnassigned = -1, kFalse = 0, kTrue = 1 };

struct DpllState {
  const BoolFormula* formula;
  std::vector<Truth> assignment;
  SatStats* stats;

  bool LitTrue(const BoolLiteral& lit) const {
    Truth t = assignment[lit.var];
    if (t == Truth::kUnassigned) return false;
    return (t == Truth::kTrue) != lit.negated;
  }
  bool LitFalse(const BoolLiteral& lit) const {
    Truth t = assignment[lit.var];
    if (t == Truth::kUnassigned) return false;
    return (t == Truth::kTrue) == lit.negated;
  }

  // Unit propagation over all clauses until fixpoint. Returns false on
  // conflict; appends assigned vars to `trail`.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::vector<BoolLiteral>& clause : formula->clauses) {
        int unassigned_count = 0;
        const BoolLiteral* unit = nullptr;
        bool satisfied = false;
        for (const BoolLiteral& lit : clause) {
          if (LitTrue(lit)) {
            satisfied = true;
            break;
          }
          if (assignment[lit.var] == Truth::kUnassigned) {
            ++unassigned_count;
            unit = &lit;
          }
        }
        if (satisfied) continue;
        if (unassigned_count == 0) return false;  // Conflict.
        if (unassigned_count == 1) {
          assignment[unit->var] = unit->negated ? Truth::kFalse : Truth::kTrue;
          trail->push_back(unit->var);
          if (stats != nullptr) ++stats->unit_propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  // Assigns every pure literal (a variable occurring with one polarity
  // among the not-yet-satisfied clauses) the value that satisfies its
  // occurrences. Never conflicts, but may create fresh units, so callers
  // alternate with Propagate until fixpoint. Returns true iff anything was
  // assigned.
  bool EliminatePureLiterals(std::vector<int>* trail) {
    // Bit 0: positive occurrence; bit 1: negated occurrence.
    std::vector<uint8_t> polarity(formula->num_vars, 0);
    for (const std::vector<BoolLiteral>& clause : formula->clauses) {
      bool satisfied = false;
      for (const BoolLiteral& lit : clause) {
        if (LitTrue(lit)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const BoolLiteral& lit : clause) {
        if (assignment[lit.var] == Truth::kUnassigned) {
          polarity[lit.var] |= lit.negated ? 2 : 1;
        }
      }
    }
    bool assigned = false;
    for (int v = 0; v < formula->num_vars; ++v) {
      if (assignment[v] != Truth::kUnassigned) continue;
      if (polarity[v] != 1 && polarity[v] != 2) continue;
      assignment[v] = polarity[v] == 1 ? Truth::kTrue : Truth::kFalse;
      trail->push_back(v);
      if (stats != nullptr) ++stats->pure_eliminations;
      assigned = true;
    }
    return assigned;
  }

  bool Solve() {
    std::vector<int> trail;
    for (;;) {
      if (!Propagate(&trail)) {
        Undo(trail);
        return false;
      }
      if (!EliminatePureLiterals(&trail)) break;
    }
    int var = PickBranchVariable();
    if (var < 0) return true;  // All assigned, no conflict: satisfiable.
    for (Truth value : {Truth::kTrue, Truth::kFalse}) {
      if (stats != nullptr) ++stats->decisions;
      assignment[var] = value;
      if (Solve()) return true;
      if (stats != nullptr) ++stats->backtracks;
      assignment[var] = Truth::kUnassigned;
    }
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<int>& trail) {
    for (int var : trail) assignment[var] = Truth::kUnassigned;
  }

  // Most-frequent unassigned variable among unsatisfied clauses.
  int PickBranchVariable() const {
    std::vector<int> score(formula->num_vars, 0);
    bool any = false;
    for (const std::vector<BoolLiteral>& clause : formula->clauses) {
      bool satisfied = false;
      for (const BoolLiteral& lit : clause) {
        if (LitTrue(lit)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const BoolLiteral& lit : clause) {
        if (assignment[lit.var] == Truth::kUnassigned) {
          ++score[lit.var];
          any = true;
        }
      }
    }
    if (!any) return -1;
    int best = -1;
    for (int v = 0; v < formula->num_vars; ++v) {
      if (assignment[v] == Truth::kUnassigned && score[v] > 0 &&
          (best < 0 || score[v] > score[best])) {
        best = v;
      }
    }
    return best;
  }
};

}  // namespace

std::optional<std::vector<bool>> SolveSat(const BoolFormula& formula,
                                          SatStats* stats) {
  // Empty clause => trivially unsatisfiable.
  for (const std::vector<BoolLiteral>& clause : formula.clauses) {
    if (clause.empty()) return std::nullopt;
  }
  DpllState state;
  state.formula = &formula;
  state.assignment.assign(formula.num_vars, Truth::kUnassigned);
  state.stats = stats;
  if (!state.Solve()) return std::nullopt;
  std::vector<bool> result(formula.num_vars, false);
  for (int v = 0; v < formula.num_vars; ++v) {
    result[v] = state.assignment[v] == Truth::kTrue;
  }
  NONSERIAL_CHECK(formula.Eval(result));
  return result;
}

BoolFormula RandomKSat(int num_vars, int num_clauses, int k, Rng* rng) {
  NONSERIAL_CHECK_GE(num_vars, k);
  BoolFormula formula;
  formula.num_vars = num_vars;
  formula.clauses.reserve(num_clauses);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < k) {
      int v = static_cast<int>(rng->Uniform(static_cast<uint32_t>(num_vars)));
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    std::vector<BoolLiteral> clause;
    for (int v : vars) {
      clause.push_back(BoolLiteral{v, rng->Bernoulli(0.5)});
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

Predicate FormulaToPredicate(const BoolFormula& formula) {
  Predicate predicate;
  for (const std::vector<BoolLiteral>& bool_clause : formula.clauses) {
    Clause clause;
    for (const BoolLiteral& lit : bool_clause) {
      clause.AddAtom(EntityVsConst(static_cast<EntityId>(lit.var),
                                   CompareOp::kEq, lit.negated ? 0 : 1));
    }
    predicate.AddClause(std::move(clause));
  }
  return predicate;
}

std::vector<std::vector<Value>> Lemma1CandidateSets(int num_vars) {
  return std::vector<std::vector<Value>>(num_vars,
                                         std::vector<Value>{0, 1});
}

}  // namespace nonserial
