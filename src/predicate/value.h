#ifndef NONSERIAL_PREDICATE_VALUE_H_
#define NONSERIAL_PREDICATE_VALUE_H_

#include <cstdint>
#include <vector>

namespace nonserial {

/// Database entities hold 64-bit integer values. The paper's model allows
/// arbitrary domains dom(e); integers exercise every comparison operator the
/// predicate language defines, which is all the structure the model uses.
using Value = int64_t;

/// Dense entity identifier, indexing into the entity catalog. Entities are
/// the smallest lockable/versionable units ("data items" in the paper).
using EntityId = int32_t;

constexpr EntityId kInvalidEntity = -1;

/// A full assignment of one value per entity (a unique state, or a version
/// state once provenance is tracked separately). Indexed by EntityId.
using ValueVector = std::vector<Value>;

/// The six comparison operators the paper admits in atoms.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Applies `op` to (lhs, rhs).
inline bool EvalCompare(Value lhs, CompareOp op, Value rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// Symbolic name of a comparison operator ("=", "!=", "<", "<=", ">", ">=").
const char* CompareOpName(CompareOp op);

}  // namespace nonserial

#endif  // NONSERIAL_PREDICATE_VALUE_H_
