#ifndef NONSERIAL_WORKLOAD_NESTED_GEN_H_
#define NONSERIAL_WORKLOAD_NESTED_GEN_H_

#include <cstdint>

#include "protocol/nested_cep.h"
#include "sim/simulator.h"

namespace nonserial {

/// A flat simulator workload plus the two-level scope structure the
/// hierarchical protocol needs.
struct NestedWorkload {
  SimWorkload workload;
  NestedCepController::Options nested;
};

/// Parameters for the nested design workload: `num_projects` top-level
/// design transactions (the paper's Figure 1 children of the root), each
/// decomposed into `members_per_project` cooperating subtransactions over
/// the project's slice of the database. Projects may be chained by the
/// top-level partial order; members within a project may be chained by the
/// member-level partial order.
struct NestedWorkloadParams {
  int num_projects = 4;
  int members_per_project = 4;
  int entities_per_project = 6;
  int reads_per_member = 3;
  double write_fraction = 0.8;
  SimTime think_time = 100;
  double project_chain_prob = 0.3;   ///< P(project i follows project i-1).
  double member_chain_prob = 0.3;    ///< P(member follows an earlier member).
  SimTime arrival_spacing = 15;
  uint64_t seed = 1;
};

/// Builds the nested workload; entities live in [0, 100] with initial value
/// 50 and every write is a clamped bump, so all specifications hold for
/// correct executions.
NestedWorkload MakeNestedDesignWorkload(const NestedWorkloadParams& params);

/// Controller factory running the workload under the hierarchical
/// protocol.
ControllerFactory MakeNestedCepFactory(NestedCepController::Options options);

}  // namespace nonserial

#endif  // NONSERIAL_WORKLOAD_NESTED_GEN_H_
