#include "workload/generators.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {
namespace {

constexpr Value kLo = 0;
constexpr Value kHi = 100;
constexpr Value kInitial = 50;

/// clamp(e + delta, kLo, kHi) as an Expr.
Expr ClampedBump(EntityId e, Value delta) {
  return Expr::Min(Expr::Max(Expr::Add(Expr::Var(e), Expr::Const(delta)),
                             Expr::Const(kLo)),
                   Expr::Const(kHi));
}

ObjectSetList MakeGroups(int num_entities, int num_conjuncts) {
  ObjectSetList groups;
  int k = std::max(1, num_conjuncts);
  int block = (num_entities + k - 1) / k;
  for (int g = 0; g < k; ++g) {
    std::set<EntityId> object;
    for (int e = g * block; e < std::min(num_entities, (g + 1) * block);
         ++e) {
      object.insert(e);
    }
    if (!object.empty()) groups.push_back(std::move(object));
  }
  return groups;
}

Predicate BoundsPredicate(const std::vector<EntityId>& entities) {
  Predicate p;
  for (EntityId e : entities) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, kLo)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, kHi)}));
  }
  return p;
}

}  // namespace

SimWorkload MakeDesignWorkload(const DesignWorkloadParams& params) {
  NONSERIAL_CHECK_GT(params.num_entities, 0);
  NONSERIAL_CHECK_GT(params.num_txs, 0);
  Rng rng(params.seed);
  SimWorkload workload;
  workload.initial.assign(params.num_entities, kInitial);
  workload.objects = MakeGroups(params.num_entities, params.num_conjuncts);

  // Per-transaction write sets and transitive predecessor sets, used to
  // keep relational input clauses away from predecessor-dominated entities
  // (the protocol pins a successor to its predecessors' versions; an input
  // clause those versions can falsify would never validate).
  std::vector<std::set<EntityId>> write_sets;
  std::vector<std::set<int>> ancestors;

  for (int i = 0; i < params.num_txs; ++i) {
    SimTx tx;
    tx.name = StrCat("designer", i);
    tx.arrival = i * params.arrival_spacing;
    tx.think_between_ops = params.think_time;

    // Working set: mostly one "home" group, occasionally elsewhere.
    const std::set<EntityId>& home =
        workload.objects[rng.Uniform(
            static_cast<uint32_t>(workload.objects.size()))];
    std::vector<EntityId> home_list(home.begin(), home.end());
    std::vector<EntityId> working_set;
    int want = std::min(params.reads_per_tx, params.num_entities);
    int guard = 0;
    while (static_cast<int>(working_set.size()) < want && guard++ < 1000) {
      EntityId e;
      if (rng.Bernoulli(params.cross_group_fraction)) {
        e = static_cast<EntityId>(
            rng.Uniform(static_cast<uint32_t>(params.num_entities)));
      } else {
        e = home_list[rng.Zipf(static_cast<uint32_t>(home_list.size()),
                               params.hot_theta)];
      }
      if (std::find(working_set.begin(), working_set.end(), e) ==
          working_set.end()) {
        working_set.push_back(e);
      }
    }

    // Cooperation: this designer may continue the work of an earlier one.
    // Chosen before the specification so relational clauses can avoid the
    // predecessors' write sets.
    std::set<int> my_ancestors;
    if (i > 0 && rng.Bernoulli(params.precedence_prob)) {
      int pred = static_cast<int>(rng.Uniform(static_cast<uint32_t>(i)));
      tx.predecessors.push_back(pred);
      my_ancestors = ancestors[pred];
      my_ancestors.insert(pred);
    }
    std::set<EntityId> dominated;
    for (int ancestor : my_ancestors) {
      dominated.insert(write_sets[ancestor].begin(),
                       write_sets[ancestor].end());
    }

    // Program: read the working set, then write back a subset. Each entity
    // is written at most once (its net design update).
    std::vector<EntityId> writes;
    for (EntityId e : working_set) {
      tx.steps.push_back(SimStep::Read(e));
      if (rng.Bernoulli(params.write_fraction)) writes.push_back(e);
    }
    for (EntityId e : writes) {
      Value delta = rng.UniformInt(-10, 10);
      tx.steps.push_back(SimStep::Write(e, ClampedBump(e, delta)));
    }

    // Specification. I_t bounds every read entity and occasionally relates
    // two of them (giving the version-assignment search real work); O_t
    // bounds every written entity. Both hold for any clamped update, so a
    // correct transaction never fails its own postcondition. Relational
    // clauses never mention predecessor-written entities: the partial order
    // pins those versions, and a clause they falsify would block the
    // transaction forever.
    tx.input = BoundsPredicate(working_set);
    if (rng.Bernoulli(params.relational_clause_prob)) {
      std::vector<EntityId> free;
      for (EntityId e : working_set) {
        if (!dominated.contains(e)) free.push_back(e);
      }
      if (free.size() >= 2) {
        EntityId a = free[0];
        EntityId b = free[1];
        tx.input.AddClause(
            Clause({EntityVsEntity(a, CompareOp::kLe, b),
                    EntityVsConst(a, CompareOp::kLe, kInitial)}));
      }
    }
    tx.output = BoundsPredicate(writes);

    write_sets.emplace_back(writes.begin(), writes.end());
    ancestors.push_back(std::move(my_ancestors));
    workload.txs.push_back(std::move(tx));
  }
  return workload;
}

SimWorkload MakeOltpWorkload(int num_txs, int num_entities, int num_conjuncts,
                             uint64_t seed) {
  DesignWorkloadParams params;
  params.num_txs = num_txs;
  params.num_entities = num_entities;
  params.num_conjuncts = num_conjuncts;
  params.reads_per_tx = 2;
  params.write_fraction = 1.0;
  params.think_time = 0;
  params.cross_group_fraction = 0.2;
  params.precedence_prob = 0.0;
  params.arrival_spacing = 2;
  params.seed = seed;
  SimWorkload workload = MakeDesignWorkload(params);
  for (size_t i = 0; i < workload.txs.size(); ++i) {
    workload.txs[i].name = StrCat("oltp", i);
  }
  return workload;
}

Predicate WorkloadConstraint(const SimWorkload& workload) {
  std::vector<EntityId> all;
  for (EntityId e = 0; e < static_cast<EntityId>(workload.initial.size());
       ++e) {
    all.push_back(e);
  }
  return BoundsPredicate(all);
}

}  // namespace nonserial
