#include "workload/schedule_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {
namespace {

Schedule FromOps(const std::vector<Op>& ops, int num_entities, int num_txs) {
  Schedule schedule;
  // Intern entity names first so ids match op.entity values.
  for (int e = 0; e < num_entities; ++e) {
    schedule.InternEntity(StrCat("x", e));
  }
  for (const Op& op : ops) schedule.Append(op.tx, op.kind, op.entity);
  // Pad the tx envelope: transactions with no ops still count.
  (void)num_txs;
  return schedule;
}

}  // namespace

std::vector<std::vector<Op>> RandomPrograms(const ScheduleGenParams& params,
                                            Rng* rng) {
  std::vector<std::vector<Op>> programs(params.num_txs);
  for (int t = 0; t < params.num_txs; ++t) {
    for (int k = 0; k < params.ops_per_tx; ++k) {
      Op op;
      op.tx = t;
      op.kind = rng->Bernoulli(params.write_fraction) ? OpKind::kWrite
                                                      : OpKind::kRead;
      op.entity = static_cast<EntityId>(
          rng->Uniform(static_cast<uint32_t>(params.num_entities)));
      programs[t].push_back(op);
    }
  }
  return programs;
}

Schedule RandomInterleaving(const std::vector<std::vector<Op>>& programs,
                            int num_entities, Rng* rng) {
  std::vector<size_t> cursor(programs.size(), 0);
  std::vector<Op> merged;
  size_t total = 0;
  for (const std::vector<Op>& p : programs) total += p.size();
  while (merged.size() < total) {
    // Choose the next program proportionally to its remaining length so
    // every merge is equally likely.
    size_t remaining_total = total - merged.size();
    uint64_t pick = rng->Next64() % remaining_total;
    for (size_t t = 0; t < programs.size(); ++t) {
      size_t remaining = programs[t].size() - cursor[t];
      if (pick < remaining) {
        merged.push_back(programs[t][cursor[t]++]);
        break;
      }
      pick -= remaining;
    }
  }
  return FromOps(merged, num_entities, static_cast<int>(programs.size()));
}

Schedule RandomSchedule(const ScheduleGenParams& params, Rng* rng) {
  return RandomInterleaving(RandomPrograms(params, rng), params.num_entities,
                            rng);
}

namespace {

int64_t EnumerateRec(const std::vector<std::vector<Op>>& programs,
                     int num_entities, std::vector<size_t>* cursor,
                     std::vector<Op>* merged, size_t total,
                     const std::function<bool(const Schedule&)>& fn,
                     bool* stop) {
  if (*stop) return 0;
  if (merged->size() == total) {
    Schedule schedule =
        FromOps(*merged, num_entities, static_cast<int>(programs.size()));
    if (!fn(schedule)) *stop = true;
    return 1;
  }
  int64_t count = 0;
  for (size_t t = 0; t < programs.size(); ++t) {
    if ((*cursor)[t] >= programs[t].size()) continue;
    merged->push_back(programs[t][(*cursor)[t]]);
    ++(*cursor)[t];
    count += EnumerateRec(programs, num_entities, cursor, merged, total, fn,
                          stop);
    --(*cursor)[t];
    merged->pop_back();
    if (*stop) break;
  }
  return count;
}

}  // namespace

int64_t ForEachInterleaving(const std::vector<std::vector<Op>>& programs,
                            int num_entities,
                            const std::function<bool(const Schedule&)>& fn) {
  std::vector<size_t> cursor(programs.size(), 0);
  std::vector<Op> merged;
  size_t total = 0;
  for (const std::vector<Op>& p : programs) total += p.size();
  bool stop = false;
  return EnumerateRec(programs, num_entities, &cursor, &merged, total, fn,
                      &stop);
}

ObjectSetList PartitionObjects(int num_entities, int k) {
  ObjectSetList out;
  k = std::max(1, k);
  int block = (num_entities + k - 1) / k;
  for (int g = 0; g < k; ++g) {
    std::set<EntityId> object;
    for (int e = g * block; e < std::min(num_entities, (g + 1) * block);
         ++e) {
      object.insert(e);
    }
    if (!object.empty()) out.push_back(std::move(object));
  }
  return out;
}

}  // namespace nonserial
