#ifndef NONSERIAL_WORKLOAD_GENERATORS_H_
#define NONSERIAL_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "sim/simulator.h"

namespace nonserial {

/// Parameters for the long-duration design workload — the CAD-style
/// environment the paper motivates. Entities live in [0, 100] (initial
/// value 50) and are partitioned into `num_conjuncts` groups; the database
/// consistency constraint bounds every entity and, within each group,
/// loosely orders neighbouring entities. Transactions are designer
/// sessions: they read a working set from (mostly) one group, think for a
/// long time between operations, and write back clamped updates, so every
/// transaction preserves the constraint when run on a consistent input.
struct DesignWorkloadParams {
  int num_txs = 16;
  int num_entities = 32;
  int num_conjuncts = 4;
  int reads_per_tx = 4;            ///< Entities read (each written back with
                                   ///< probability write_fraction).
  double write_fraction = 0.75;
  SimTime think_time = 200;        ///< Human latency between operations.
  double cross_group_fraction = 0.1;  ///< Ops straying outside the home group.
  double precedence_prob = 0.0;    ///< P(edge from a random earlier tx).
  double hot_theta = 0.0;          ///< Zipf skew of entity choice in a group.
  double relational_clause_prob = 0.3;  ///< I_t clauses relating two reads.
  SimTime arrival_spacing = 20;
  uint64_t seed = 1;
};

/// Builds the long-duration design workload described above.
SimWorkload MakeDesignWorkload(const DesignWorkloadParams& params);

/// Short-transaction variant: identical structure with no think time and a
/// small working set — the data-processing-style workload for which the
/// paper concedes classical techniques are adequate.
SimWorkload MakeOltpWorkload(int num_txs, int num_entities, int num_conjuncts,
                             uint64_t seed);

/// The database consistency constraint of a generated workload (bounds for
/// every entity plus in-group ordering clauses); its conjuncts induce
/// exactly the workload's object list.
Predicate WorkloadConstraint(const SimWorkload& workload);

}  // namespace nonserial

#endif  // NONSERIAL_WORKLOAD_GENERATORS_H_
