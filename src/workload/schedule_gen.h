#ifndef NONSERIAL_WORKLOAD_SCHEDULE_GEN_H_
#define NONSERIAL_WORKLOAD_SCHEDULE_GEN_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "predicate/predicate.h"
#include "schedule/schedule.h"

namespace nonserial {

/// Parameters for random classical-schedule generation (the raw material of
/// the class-containment experiment, E2).
struct ScheduleGenParams {
  int num_txs = 2;
  int num_entities = 2;
  int ops_per_tx = 3;
  double write_fraction = 0.5;
};

/// Random per-transaction programs, interleaved uniformly at random.
Schedule RandomSchedule(const ScheduleGenParams& params, Rng* rng);

/// Generates random per-transaction programs only (no interleaving); each
/// program is a sequence of (kind, entity) steps.
std::vector<std::vector<Op>> RandomPrograms(const ScheduleGenParams& params,
                                            Rng* rng);

/// Interleaves fixed programs uniformly at random (each distinct merge
/// equally likely).
Schedule RandomInterleaving(const std::vector<std::vector<Op>>& programs,
                            int num_entities, Rng* rng);

/// Enumerates every interleaving of the given programs, invoking `fn` for
/// each; stops early when `fn` returns false. Returns the number of
/// interleavings visited. The number of merges is multinomial in the
/// program lengths — keep inputs small.
int64_t ForEachInterleaving(const std::vector<std::vector<Op>>& programs,
                            int num_entities,
                            const std::function<bool(const Schedule&)>& fn);

/// Partition of [0, num_entities) into `k` contiguous objects — the
/// canonical conjunct decomposition used across experiments.
ObjectSetList PartitionObjects(int num_entities, int k);

}  // namespace nonserial

#endif  // NONSERIAL_WORKLOAD_SCHEDULE_GEN_H_
