#include "workload/nested_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"

namespace nonserial {
namespace {

constexpr Value kLo = 0;
constexpr Value kHi = 100;
constexpr Value kInitial = 50;

Expr ClampedBump(EntityId e, Value delta) {
  return Expr::Min(Expr::Max(Expr::Add(Expr::Var(e), Expr::Const(delta)),
                             Expr::Const(kLo)),
                   Expr::Const(kHi));
}

Predicate Bounds(const std::vector<EntityId>& entities) {
  Predicate p;
  for (EntityId e : entities) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, kLo)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, kHi)}));
  }
  return p;
}

}  // namespace

NestedWorkload MakeNestedDesignWorkload(const NestedWorkloadParams& params) {
  NONSERIAL_CHECK_GT(params.num_projects, 0);
  NONSERIAL_CHECK_GT(params.members_per_project, 0);
  Rng rng(params.seed);
  NestedWorkload out;
  int num_entities = params.num_projects * params.entities_per_project;
  out.workload.initial.assign(num_entities, kInitial);

  for (int p = 0; p < params.num_projects; ++p) {
    // The project's slice of the database.
    std::vector<EntityId> slice;
    for (int e = 0; e < params.entities_per_project; ++e) {
      slice.push_back(p * params.entities_per_project + e);
    }
    out.workload.objects.push_back(
        std::set<EntityId>(slice.begin(), slice.end()));

    NestedGroup group;
    group.name = StrCat("project", p);
    group.input = Bounds(slice);
    group.output = Bounds(slice);
    if (p > 0 && rng.Bernoulli(params.project_chain_prob)) {
      group.predecessors.push_back(p - 1);
    }
    out.nested.groups.push_back(std::move(group));

    int base_tx = static_cast<int>(out.workload.txs.size());
    for (int m = 0; m < params.members_per_project; ++m) {
      SimTx tx;
      tx.name = StrCat("p", p, ".m", m);
      tx.arrival = (base_tx + m) * params.arrival_spacing;
      tx.think_between_ops = params.think_time;

      std::vector<EntityId> working_set;
      int want = std::min(params.reads_per_member,
                          static_cast<int>(slice.size()));
      while (static_cast<int>(working_set.size()) < want) {
        EntityId e = slice[rng.Uniform(static_cast<uint32_t>(slice.size()))];
        if (std::find(working_set.begin(), working_set.end(), e) ==
            working_set.end()) {
          working_set.push_back(e);
        }
      }
      std::vector<EntityId> writes;
      for (EntityId e : working_set) {
        tx.steps.push_back(SimStep::Read(e));
        if (rng.Bernoulli(params.write_fraction)) writes.push_back(e);
      }
      for (EntityId e : writes) {
        tx.steps.push_back(
            SimStep::Write(e, ClampedBump(e, rng.UniformInt(-10, 10))));
      }
      tx.input = Bounds(working_set);
      tx.output = Bounds(writes);
      if (m > 0 && rng.Bernoulli(params.member_chain_prob)) {
        tx.predecessors.push_back(
            base_tx + static_cast<int>(rng.Uniform(m)));
      }
      out.workload.txs.push_back(std::move(tx));
      out.nested.group_of_tx.push_back(p);
    }
  }
  return out;
}

ControllerFactory MakeNestedCepFactory(NestedCepController::Options options) {
  return [options](VersionStore* store, const SimWorkload& /*workload*/)
             -> std::unique_ptr<ConcurrencyController> {
    return std::make_unique<NestedCepController>(store, options);
  };
}

}  // namespace nonserial
