#include "core/verify.h"

#include <map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace nonserial {

Status VerifyCepHistory(const SimWorkload& workload,
                        const CorrectExecutionProtocol& cep,
                        const VersionStore& store, const Predicate& constraint,
                        EvalCache* cache) {
  return VerifyCepHistory(workload, cep.records(),
                          store.LatestCommittedSnapshot(), constraint, cache);
}

Status VerifyCepHistory(
    const SimWorkload& workload,
    const std::vector<CorrectExecutionProtocol::TxRecord>& records,
    const ValueVector& final_committed_snapshot, const Predicate& constraint,
    EvalCache* cache) {
  // Committed transactions, in registration order; map tx id -> child
  // position within the root.
  std::vector<int> committed;
  std::map<int, int> position_of;
  for (size_t tx = 0; tx < records.size(); ++tx) {
    if (records[tx].committed) {
      position_of[static_cast<int>(tx)] = static_cast<int>(committed.size());
      committed.push_back(static_cast<int>(tx));
    }
  }

  // Replay each committed transaction's writes as constant effects (the
  // transaction's mapping applied to X(t) reproduces exactly the values it
  // wrote). Leaf construction is independent per transaction, so it fans
  // out over the shared pool; insertion into the tree stays ordered.
  std::vector<std::pair<LeafProgram, Specification>> leaves(committed.size());
  ThreadPool::Shared().ParallelFor(
      static_cast<int>(committed.size()), [&](int i) {
        int tx = committed[i];
        const CorrectExecutionProtocol::TxRecord& record = records[tx];
        for (const auto& [entity, value] : record.writes) {
          leaves[i].first.AddWrite(entity, Expr::Const(value));
        }
        leaves[i].second.input = workload.txs[tx].input;
        leaves[i].second.output = workload.txs[tx].output;
      });
  TransactionTree tree;
  std::vector<int> child_nodes;
  for (size_t i = 0; i < committed.size(); ++i) {
    child_nodes.push_back(tree.AddLeaf(records[committed[i]].name,
                                       std::move(leaves[i].first),
                                       std::move(leaves[i].second)));
  }

  // t_f: reads the final database; its input condition is the database
  // consistency constraint (the root's output condition, per Lemma 3's
  // standard-model encoding).
  LeafProgram tf_program;
  int num_entities = static_cast<int>(final_committed_snapshot.size());
  for (EntityId e = 0; e < num_entities; ++e) tf_program.AddRead(e);
  Specification tf_spec;
  tf_spec.input = constraint;
  int tf_node = tree.AddLeaf("t_f", std::move(tf_program), tf_spec);
  child_nodes.push_back(tf_node);
  int tf_position = static_cast<int>(child_nodes.size()) - 1;

  // Partial order P: workload precedence edges restricted to committed
  // transactions, plus everyone-before-t_f.
  std::vector<std::pair<int, int>> partial_order;
  for (int tx : committed) {
    for (int pred : workload.txs[tx].predecessors) {
      auto it = position_of.find(pred);
      if (it != position_of.end()) {
        partial_order.push_back({it->second, position_of[tx]});
      }
    }
    partial_order.push_back({position_of[tx], tf_position});
  }

  Specification root_spec;
  root_spec.output = constraint;
  int root = tree.AddInternal("root", child_nodes, partial_order, root_spec,
                              /*final_child=*/tf_position);
  tree.SetRoot(root);

  // Structural validation of the tree and assembly of the execution (R, X)
  // are independent; overlap them. X comes from the protocol's recorded
  // input states and the final snapshot; R from the recorded version
  // authors.
  Status validate_status;
  Status exec_status;
  TreeExecution exec;
  ThreadPool::Shared().ParallelFor(2, [&](int task) {
    if (task == 0) {
      validate_status = tree.Validate();
      return;
    }
    exec.root_input = workload.initial;
    NodeExecution ne;
    ne.inputs.assign(child_nodes.size(), ValueVector());
    for (int tx : committed) {
      const CorrectExecutionProtocol::TxRecord& record = records[tx];
      ne.inputs[position_of[tx]] = record.input_state;
      for (int feeder : record.feeder_txs) {
        auto it = position_of.find(feeder);
        if (it == position_of.end()) {
          exec_status = Status::Internal(StrCat(
              "committed transaction '", record.name,
              "' was assigned a version authored by uncommitted transaction ",
              feeder, " — commit rule 2 violated"));
          return;
        }
        ne.reads_from.push_back({it->second, position_of[tx]});
      }
    }
    // t_f observes the final committed database; it may read from anyone.
    ne.inputs[tf_position] = final_committed_snapshot;
    for (int tx : committed) {
      ne.reads_from.push_back({position_of[tx], tf_position});
    }
    exec.node_executions[root] = std::move(ne);
  });
  NONSERIAL_RETURN_IF_ERROR(validate_status);
  NONSERIAL_RETURN_IF_ERROR(exec_status);

  return CheckCorrectExecution(tree, exec, cache);
}

}  // namespace nonserial
