#include "core/database.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"
#include "protocol/cep.h"
#include "protocol/mvto.h"
#include "protocol/pw_mvto.h"
#include "protocol/two_phase_locking.h"

namespace nonserial {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCep:
      return "CEP";
    case ProtocolKind::kStrict2pl:
      return "S2PL";
    case ProtocolKind::kPredicatewise2pl:
      return "PW-2PL";
    case ProtocolKind::kMvto:
      return "MVTO";
    case ProtocolKind::kPwMvto:
      return "PW-MVTO";
  }
  return "?";
}

ControllerFactory MakeControllerFactory(ProtocolKind kind) {
  return [kind](VersionStore* store,
                const SimWorkload& workload)
             -> std::unique_ptr<ConcurrencyController> {
    switch (kind) {
      case ProtocolKind::kCep:
        return std::make_unique<CorrectExecutionProtocol>(store);
      case ProtocolKind::kStrict2pl:
      case ProtocolKind::kPredicatewise2pl: {
        TwoPhaseLockingController::Options options;
        options.predicatewise = kind == ProtocolKind::kPredicatewise2pl;
        options.objects = workload.objects;
        auto planned = PlannedOpsOf(workload);
        for (size_t i = 0; i < planned.size(); ++i) {
          std::vector<PlannedOp> ops;
          for (const auto& [is_write, entity] : planned[i]) {
            ops.push_back(PlannedOp{is_write, entity});
          }
          options.planned_ops[static_cast<int>(i)] = std::move(ops);
        }
        return std::make_unique<TwoPhaseLockingController>(
            store, std::move(options));
      }
      case ProtocolKind::kMvto:
        return std::make_unique<MvtoController>(store);
      case ProtocolKind::kPwMvto:
        return std::make_unique<PwMvtoController>(store, workload.objects);
    }
    return nullptr;
  };
}

namespace {

std::string SummarizeStats(const ConcurrencyController& controller) {
  std::ostringstream os;
  if (const auto* cep =
          dynamic_cast<const CorrectExecutionProtocol*>(&controller)) {
    const CorrectExecutionProtocol::Stats& s = cep->stats();
    os << "validations=" << s.validations
       << " retries=" << s.validation_retries
       << " rescans=" << s.validation_rescans << " reevals=" << s.reevals
       << " reassigns=" << s.reassigns << " po_aborts=" << s.po_aborts
       << " cascade_aborts=" << s.cascade_aborts
       << " search_nodes=" << s.search.nodes_visited;
  } else if (const auto* tpl =
                 dynamic_cast<const TwoPhaseLockingController*>(&controller)) {
    const TwoPhaseLockingController::Stats& s = tpl->stats();
    os << "lock_waits=" << s.lock_waits
       << " deadlock_aborts=" << s.deadlock_aborts
       << " group_releases=" << s.group_releases;
  } else if (const auto* mvto =
                 dynamic_cast<const MvtoController*>(&controller)) {
    const MvtoController::Stats& s = mvto->stats();
    os << "late_write_aborts=" << s.late_write_aborts
       << " commit_waits=" << s.commit_waits;
  } else if (const auto* pw_mvto =
                 dynamic_cast<const PwMvtoController*>(&controller)) {
    const PwMvtoController::Stats& s = pw_mvto->stats();
    os << "late_write_aborts=" << s.late_write_aborts
       << " commit_waits=" << s.commit_waits
       << " timestamps=" << s.timestamps_drawn;
  }
  return os.str();
}

}  // namespace

RunReport RunWorkload(const SimWorkload& workload, ProtocolKind kind,
                      const Predicate& constraint, SimConfig config) {
  Simulator simulator(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<ConcurrencyController> controller;
  RunReport report;
  report.protocol = ProtocolKindName(kind);
  report.result = simulator.Run(workload, MakeControllerFactory(kind), &store,
                                &controller);
  report.stats_summary = SummarizeStats(*controller);
  if (kind == ProtocolKind::kCep) {
    const auto* cep =
        dynamic_cast<const CorrectExecutionProtocol*>(controller.get());
    report.verification =
        VerifyCepHistory(workload, *cep, *store, constraint);
  }
  return report;
}

StatusOr<EntityId> Database::AddEntity(const std::string& name,
                                       Value initial) {
  auto id = catalog_.Register(name);
  if (!id.ok()) return id.status();
  initial_.push_back(initial);
  return id;
}

Status Database::SetConstraint(const std::string& cnf_text) {
  auto parsed = ParsePredicate(cnf_text, [this](const std::string& name) {
    return catalog_.Resolve(name);
  });
  if (!parsed.ok()) return parsed.status();
  constraint_ = std::move(parsed).value();
  objects_ = constraint_.Objects();
  return Status::OK();
}

int Database::NewTransaction(const std::string& name, SimTime arrival,
                             SimTime think_time) {
  PendingTx tx;
  tx.script.name = name;
  tx.script.arrival = arrival;
  tx.script.think_between_ops = think_time;
  txs_.push_back(std::move(tx));
  return static_cast<int>(txs_.size()) - 1;
}

Status Database::After(int tx, int predecessor) {
  if (tx < 0 || tx >= static_cast<int>(txs_.size()) || predecessor < 0 ||
      predecessor >= static_cast<int>(txs_.size()) || predecessor == tx) {
    return Status::InvalidArgument("bad transaction index");
  }
  txs_[tx].script.predecessors.push_back(predecessor);
  return Status::OK();
}

Status Database::Read(int tx, const std::string& entity) {
  auto id = catalog_.Resolve(entity);
  if (!id.ok()) return id.status();
  txs_[tx].script.steps.push_back(SimStep::Read(id.value()));
  txs_[tx].reads.insert(id.value());
  return Status::OK();
}

Status Database::Write(int tx, const std::string& entity, Expr expr) {
  auto id = catalog_.Resolve(entity);
  if (!id.ok()) return id.status();
  // Operands must have been read first (the simulator enforces this too).
  std::set<EntityId> operands;
  expr.CollectReads(&operands);
  for (EntityId operand : operands) {
    if (!txs_[tx].reads.contains(operand)) {
      return Status::FailedPrecondition(
          StrCat("transaction '", txs_[tx].script.name, "' writes '", entity,
                 "' from '", catalog_.Name(operand),
                 "' which it has not read"));
    }
  }
  txs_[tx].script.steps.push_back(SimStep::Write(id.value(), std::move(expr)));
  txs_[tx].writes.insert(id.value());
  return Status::OK();
}

Status Database::Think(int tx, SimTime duration) {
  txs_[tx].script.steps.push_back(SimStep::Think(duration));
  return Status::OK();
}

Status Database::SetInput(int tx, const std::string& cnf_text) {
  auto parsed = ParsePredicate(cnf_text, [this](const std::string& name) {
    return catalog_.Resolve(name);
  });
  if (!parsed.ok()) return parsed.status();
  txs_[tx].script.input = std::move(parsed).value();
  txs_[tx].explicit_input = true;
  return Status::OK();
}

Status Database::SetOutput(int tx, const std::string& cnf_text) {
  auto parsed = ParsePredicate(cnf_text, [this](const std::string& name) {
    return catalog_.Resolve(name);
  });
  if (!parsed.ok()) return parsed.status();
  txs_[tx].script.output = std::move(parsed).value();
  txs_[tx].explicit_output = true;
  return Status::OK();
}

StatusOr<Expr> Database::Var(const std::string& entity) const {
  auto id = catalog_.Resolve(entity);
  if (!id.ok()) return id.status();
  return Expr::Var(id.value());
}

Predicate Database::DerivePredicate(const std::set<EntityId>& entities) const {
  Predicate out;
  std::set<EntityId> covered;
  for (const Clause& clause : constraint_.clauses()) {
    std::set<EntityId> object = clause.Object();
    if (object.empty()) continue;
    if (std::includes(entities.begin(), entities.end(), object.begin(),
                      object.end())) {
      out.AddClause(clause);
      covered.insert(object.begin(), object.end());
    }
  }
  for (EntityId e : entities) {
    if (!covered.contains(e)) {
      // Reflexive clause: always true, but makes the predicate mention e so
      // the entity lands in the transaction's input set N_t.
      out.AddClause(Clause({EntityVsEntity(e, CompareOp::kEq, e)}));
    }
  }
  return out;
}

StatusOr<SimWorkload> Database::BuildWorkload() const {
  if (catalog_.size() == 0) {
    return Status::FailedPrecondition("no entities registered");
  }
  SimWorkload workload;
  workload.initial = initial_;
  workload.objects = objects_;
  for (const PendingTx& pending : txs_) {
    SimTx script = pending.script;
    if (!pending.explicit_input) {
      std::set<EntityId> touched = pending.reads;
      script.input = DerivePredicate(touched);
    }
    if (!pending.explicit_output) {
      script.output = DerivePredicate(pending.writes);
    }
    workload.txs.push_back(std::move(script));
  }
  return workload;
}

StatusOr<RunReport> Database::Run(ProtocolKind kind, SimConfig config) {
  auto workload = BuildWorkload();
  if (!workload.ok()) return workload.status();
  return RunWorkload(workload.value(), kind, constraint_, config);
}

}  // namespace nonserial
