#ifndef NONSERIAL_CORE_VERIFY_H_
#define NONSERIAL_CORE_VERIFY_H_

#include "common/status.h"
#include "model/execution.h"
#include "predicate/predicate.h"
#include "protocol/cep.h"
#include "sim/simulator.h"
#include "storage/version_store.h"

namespace nonserial {

/// Theorem 2 of the paper states the Correct Execution Protocol admits only
/// correct executions. This function checks one concrete run: it rebuilds a
/// model-layer transaction tree and execution (R, X) from the protocol's
/// committed-transaction records and the version store, then re-verifies it
/// with the Section 3 checkers (execution structure, parent-based property,
/// input/output predicates).
///
/// The tree is the standard-model encoding of Section 4.1: a root whose
/// children are the committed transactions plus a final pseudo-transaction
/// t_f that reads the whole final database; t_f's input predicate is the
/// database consistency constraint.
///
/// Returns OK iff the emitted history is a correct, parent-based execution.
///
/// `cache`, when non-null, memoizes the predicate-conjunct evaluations of
/// the correctness check (see predicate/eval_cache.h). Sharing the engine's
/// cache makes post-hoc verification re-use evaluations the protocol
/// already performed during validation; repeated verification of the same
/// history (crash-recovery replay cycles) hits almost entirely.
Status VerifyCepHistory(const SimWorkload& workload,
                        const CorrectExecutionProtocol& cep,
                        const VersionStore& store, const Predicate& constraint,
                        EvalCache* cache = nullptr);

/// Record-level variant: verifies a history from the committed-transaction
/// records and the final committed snapshot alone, with no live engine or
/// store. This is what crash recovery needs — after a simulated kill the
/// engine is gone, and the records plus snapshot are exactly what the
/// write-ahead log reconstructs. `cache` as above.
Status VerifyCepHistory(
    const SimWorkload& workload,
    const std::vector<CorrectExecutionProtocol::TxRecord>& records,
    const ValueVector& final_committed_snapshot, const Predicate& constraint,
    EvalCache* cache = nullptr);

}  // namespace nonserial

#endif  // NONSERIAL_CORE_VERIFY_H_
