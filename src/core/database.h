#ifndef NONSERIAL_CORE_DATABASE_H_
#define NONSERIAL_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/verify.h"
#include "model/entity.h"
#include "predicate/predicate.h"
#include "sim/simulator.h"

namespace nonserial {

/// The concurrency-control protocols the library ships.
enum class ProtocolKind {
  kCep,              ///< The paper's Correct Execution Protocol.
  kStrict2pl,        ///< Strict two-phase locking (classical baseline).
  kPredicatewise2pl, ///< Predicate-wise 2PL (Korth et al. 1988).
  kMvto,             ///< Multiversion timestamp ordering.
  kPwMvto            ///< Predicate-wise MVTO ("virtual timestamps").
};

const char* ProtocolKindName(ProtocolKind kind);

/// Builds a simulator controller factory for a protocol.
ControllerFactory MakeControllerFactory(ProtocolKind kind);

/// Outcome of running a workload under one protocol.
struct RunReport {
  std::string protocol;
  SimResult result;
  /// For kCep: the Theorem 2 re-verification of the emitted history (OK =
  /// the history is a correct, parent-based execution). For other
  /// protocols: OK without verification.
  Status verification = Status::OK();
  /// Protocol-specific counters, rendered for humans.
  std::string stats_summary;
};

/// Runs a workload under a protocol and (for CEP) formally verifies the
/// emitted history against the Section 3 model.
RunReport RunWorkload(const SimWorkload& workload, ProtocolKind kind,
                      const Predicate& constraint,
                      SimConfig config = SimConfig());

/// High-level facade: a named-entity database with an explicit CNF
/// consistency constraint and scripted long-duration transactions. This is
/// the API the examples build on.
///
///   Database db;
///   db.AddEntity("x", 50);
///   db.AddEntity("y", 50);
///   db.SetConstraint("(x >= 0) & (x <= 100) & (y >= 0) & (y <= 100)");
///   int t1 = db.NewTransaction("designer-a");
///   db.Read(t1, "x");
///   db.Write(t1, "x", db.Var("x") + 10);   // via Expr helpers
///   RunReport report = db.Run(ProtocolKind::kCep);
class Database {
 public:
  Database() = default;

  /// Registers an entity with its initial value.
  StatusOr<EntityId> AddEntity(const std::string& name, Value initial);

  /// Parses and installs the database consistency constraint; its conjunct
  /// objects become the default object decomposition.
  Status SetConstraint(const std::string& cnf_text);

  /// Overrides the object decomposition (e.g. coarser groups).
  void SetObjects(ObjectSetList objects) { objects_ = std::move(objects); }

  const EntityCatalog& catalog() const { return catalog_; }
  const Predicate& constraint() const { return constraint_; }

  /// Creates a transaction; returns its index. `arrival` is its simulated
  /// start time and `think_time` the latency between its operations.
  int NewTransaction(const std::string& name, SimTime arrival = 0,
                     SimTime think_time = 0);

  /// Declares that `tx` must follow `predecessor` in the partial order.
  Status After(int tx, int predecessor);

  /// Appends a read step.
  Status Read(int tx, const std::string& entity);

  /// Appends a write step computing `expr` from previously read entities.
  Status Write(int tx, const std::string& entity, Expr expr);

  /// Appends an explicit think step.
  Status Think(int tx, SimTime duration);

  /// Overrides the derived input/output predicates with explicit CNF text.
  Status SetInput(int tx, const std::string& cnf_text);
  Status SetOutput(int tx, const std::string& cnf_text);

  /// Entity-reference expression for write computations.
  StatusOr<Expr> Var(const std::string& entity) const;

  /// Finalizes derived specifications and returns the workload.
  StatusOr<SimWorkload> BuildWorkload() const;

  /// Builds the workload and runs it under `kind`.
  StatusOr<RunReport> Run(ProtocolKind kind, SimConfig config = SimConfig());

 private:
  struct PendingTx {
    SimTx script;
    bool explicit_input = false;
    bool explicit_output = false;
    std::set<EntityId> reads;
    std::set<EntityId> writes;
  };

  /// Derives a specification predicate for a touched-entity set: the
  /// constraint clauses fully covered by the set, plus a reflexive clause
  /// (e = e) for each uncovered entity so the predicate mentions every
  /// entity the transaction touches (the model requires every read entity
  /// to appear in I_t).
  Predicate DerivePredicate(const std::set<EntityId>& entities) const;

  EntityCatalog catalog_;
  ValueVector initial_;
  Predicate constraint_;
  ObjectSetList objects_;
  std::vector<PendingTx> txs_;
};

}  // namespace nonserial

#endif  // NONSERIAL_CORE_DATABASE_H_
