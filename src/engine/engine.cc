#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace nonserial {

namespace {
using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}
}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  // Engine-level retirement implies the protocol-level scan-set support
  // (must be set before BuildController copies the protocol options).
  if (options_.retire_terminated_tx) options_.protocol.retirement = true;
  store_ = std::make_shared<VersionStore>(options_.initial);
  if (options_.wal != nullptr) {
    NONSERIAL_CHECK_EQ(options_.wal->initial().size(), options_.initial.size())
        << "write-ahead log initial state does not match the engine's";
    store_->SetWal(options_.wal);
    wal_stats_before_ = options_.wal->stats();
    options_.wal->set_flush_us(options_.wal_flush_us);
    if (options_.wal_group_commit) {
      options_.wal->SetObserver(options_.observer);
      options_.wal->EnableGroupCommit(options_.wal_group_options);
    }
  }
  if (options_.protocol.eval_cache != nullptr) {
    // Size the epoch table and mirror the counters before any client runs.
    // EnsureEntities is safe under concurrent use, but SetMetrics is a
    // plain pointer store and must precede the workers.
    options_.protocol.eval_cache->EnsureEntities(
        static_cast<int>(options_.initial.size()));
    options_.protocol.eval_cache->SetMetrics(options_.protocol.metrics);
  }
  BuildController(store_.get());
}

void Engine::BuildController(VersionStore* store) {
  cep_.reset();
  if (options_.controller_factory) {
    controller_ = options_.controller_factory(store);
    NONSERIAL_CHECK(controller_ != nullptr)
        << "controller_factory returned null";
    // If the factory happens to build a CEP, keep cep() working too.
    cep_ = std::dynamic_pointer_cast<CorrectExecutionProtocol>(controller_);
  } else {
    cep_ = std::make_shared<CorrectExecutionProtocol>(store, options_.protocol);
    controller_ = cep_;
  }
  if (options_.observer != nullptr) controller_->SetObserver(options_.observer);
}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() {
  std::lock_guard<std::mutex> lifecycle_lock(lifecycle_mu_);
  if (shutdown_done_) return;
  stopping_.store(true, std::memory_order_release);
  {
    // Parked sessions re-check shutting_down() under hub_mu_; taking the
    // lock before notifying closes the check-then-park race.
    std::lock_guard<std::mutex> hub_lock(hub_mu_);
    hub_cv_.notify_all();
  }
  if (options_.wal != nullptr) {
    if (options_.wal_group_commit) {
      // DisableGroupCommit (not Flush) on purpose: the stop request makes
      // the writer drain every staged batch even under HoldFlushesForTest,
      // whereas Flush would park forever behind the hold. Pending commit
      // acks resolve as their batches reach the medium.
      options_.wal->DisableGroupCommit();
      options_.wal->SetObserver(nullptr);
    }
    if (ProtocolMetrics* m = metrics(); m != nullptr) {
      WalStats after = options_.wal->stats();
      const WalStats& before = wal_stats_before_;
      m->group_commit_batches.Add(after.group_commit_batches -
                                  before.group_commit_batches);
      m->group_commit_frames.Add(after.group_commit_frames -
                                 before.group_commit_frames);
      m->group_commit_commits.Add(after.group_commit_commits -
                                  before.group_commit_commits);
      m->group_commit_stalls.Add(after.group_commit_stalls -
                                 before.group_commit_stalls);
      m->group_commit_failed_acks.Add(after.group_commit_failed_acks -
                                      before.group_commit_failed_acks);
      m->group_staged_dropped.Add(after.group_staged_dropped -
                                  before.group_staged_dropped);
      m->wal_device_flushes.Add(after.device_flushes - before.device_flushes);
    }
  }
  shutdown_done_ = true;
}

RecoveryResult Engine::CrashRecover(const RecoveryOptions& recovery_options) {
  std::lock_guard<std::mutex> lifecycle_lock(lifecycle_mu_);
  NONSERIAL_CHECK(options_.wal != nullptr)
      << "CrashRecover needs a write-ahead log";
  RecoveryResult rec = options_.wal->Recover(recovery_options);
  if (!rec.status.ok()) return rec;
  // The crash marker fences the log so writer ids re-run after restart
  // cannot resurrect their pre-crash in-flight appends. It also discards
  // the volatile staging buffer (failing its acks) and repairs the medium.
  options_.wal->LogCrashMarker();
  store_ = rec.store;
  store_->SetWal(options_.wal);
  BuildController(store_.get());
  // The pre-crash store generation is gone; memoized evaluations over it
  // must not survive into the rebuilt one.
  if (options_.protocol.eval_cache != nullptr) {
    options_.protocol.eval_cache->InvalidateAll();
  }
  // The token table is the in-memory view of the durable kCommitToken
  // records: rebuild it from what actually survived. A token whose commit
  // record was lost with the crash vanishes here too — its resend
  // re-executes, which is exactly right (the commit never happened).
  {
    std::lock_guard<std::mutex> token_lock(token_mu_);
    tokens_.clear();
    for (const RecoveredTx& tx : rec.committed) {
      if (tx.commit_token != 0) tokens_[tx.commit_token] = {tx.tx, true};
    }
  }
  {
    // Pending retirements referenced the dead controller generation.
    std::lock_guard<std::mutex> retire_lock(retire_mu_);
    retire_pending_.clear();
  }
  // Pending signals referenced the dead controller generation.
  std::lock_guard<std::mutex> hub_lock(hub_mu_);
  std::fill(woken_.begin(), woken_.end(), 0);
  std::fill(forced_.begin(), forced_.end(), 0);
  return rec;
}

int Engine::AllocateTxId() {
  return next_tx_.fetch_add(1, std::memory_order_relaxed);
}

void Engine::ReserveTxIdFloor(int n) {
  int seen = next_tx_.load(std::memory_order_relaxed);
  while (seen < n && !next_tx_.compare_exchange_weak(
                         seen, n, std::memory_order_relaxed)) {
  }
}

void Engine::EnsureTxSlots(int n) {
  std::lock_guard<std::mutex> hub_lock(hub_mu_);
  if (static_cast<int>(woken_.size()) < n) {
    woken_.resize(static_cast<size_t>(n), 0);
    forced_.resize(static_cast<size_t>(n), 0);
  }
}

void Engine::DrainSignals() {
  std::vector<int> forced = controller_->TakeForcedAborts();
  std::vector<int> woken = controller_->TakeWakeups();
  // Fault injection: drop this batch of wakeups. Forced aborts are never
  // dropped — they are correctness signals; wakeups are liveness hints
  // whose loss the parked owners' poll backoff must absorb.
  if (!woken.empty() && NONSERIAL_FAILPOINT("driver.lost_wakeup")) {
    woken.clear();
  }
  if (forced.empty() && woken.empty()) return;
  {
    std::lock_guard<std::mutex> hub_lock(hub_mu_);
    int max_id = 0;
    for (int tx : forced) max_id = std::max(max_id, tx);
    for (int tx : woken) max_id = std::max(max_id, tx);
    if (static_cast<int>(woken_.size()) <= max_id) {
      woken_.resize(static_cast<size_t>(max_id) + 1, 0);
      forced_.resize(static_cast<size_t>(max_id) + 1, 0);
    }
    for (int tx : forced) forced_[tx] = 1;
    for (int tx : woken) woken_[tx] = 1;
  }
  hub_cv_.notify_all();
}

bool Engine::AwaitSignal(int tx, int64_t wait_us, int64_t* blocked_us) {
  Clock::time_point parked = Clock::now();
  bool forced;
  {
    std::unique_lock<std::mutex> hub_lock(hub_mu_);
    if (static_cast<int>(woken_.size()) <= tx) {
      woken_.resize(static_cast<size_t>(tx) + 1, 0);
      forced_.resize(static_cast<size_t>(tx) + 1, 0);
    }
    hub_cv_.wait_for(hub_lock, std::chrono::microseconds(wait_us), [&] {
      return woken_[tx] != 0 || forced_[tx] != 0 ||
             stopping_.load(std::memory_order_relaxed);
    });
    woken_[tx] = 0;
    forced = forced_[tx] != 0;
  }
  int64_t blocked = ElapsedUs(parked);
  if (blocked_us != nullptr) *blocked_us += blocked;
  if (ProtocolMetrics* m = metrics(); m != nullptr) {
    m->wait_micros.Record(blocked);
  }
  return forced;
}

bool Engine::ForcedPending(int tx) {
  std::lock_guard<std::mutex> hub_lock(hub_mu_);
  return static_cast<int>(forced_.size()) > tx && forced_[tx] != 0;
}

void Engine::ClearSignals(int tx) {
  std::lock_guard<std::mutex> hub_lock(hub_mu_);
  if (static_cast<int>(woken_.size()) <= tx) {
    woken_.resize(static_cast<size_t>(tx) + 1, 0);
    forced_.resize(static_cast<size_t>(tx) + 1, 0);
  }
  woken_[tx] = 0;
  forced_[tx] = 0;
}

std::unique_ptr<Session> Engine::OpenSession() {
  if (ProtocolMetrics* m = metrics(); m != nullptr) {
    m->server_sessions_opened.Add();
  }
  return std::unique_ptr<Session>(new Session(this));
}

bool Engine::TryAdmit() {
  ProtocolMetrics* m = metrics();
  auto shed = [m] {
    if (m != nullptr) m->server_shed.Add();
    return false;
  };
  if (stopping_.load(std::memory_order_acquire)) return shed();
  if (options_.max_inflight_tx > 0) {
    int cur = inflight_.load(std::memory_order_relaxed);
    do {
      if (cur >= options_.max_inflight_tx) return shed();
    } while (!inflight_.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_relaxed));
  } else {
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.max_wal_backlog_frames > 0 && options_.wal != nullptr &&
      options_.wal->PipelineDepth() > options_.max_wal_backlog_frames) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return shed();
  }
  if (m != nullptr) {
    m->server_accepted.Add();
    m->server_inflight.Record(inflight_.load(std::memory_order_relaxed));
  }
  return true;
}

void Engine::ReleaseAdmission() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void Engine::OnSessionClosed() {
  if (ProtocolMetrics* m = metrics(); m != nullptr) {
    m->server_sessions_closed.Add();
  }
}

void Engine::RetireTx(int tx) {
  if (!options_.retire_terminated_tx || tx < 0) return;
  std::lock_guard<std::mutex> retire_lock(retire_mu_);
  retire_pending_.push_back(tx);
  // Commit order respects P (rule 1), so a predecessor usually terminates
  // while its successors are still live and parks here; the successor's own
  // retirement then unblocks it. Drain to a fixpoint — one retirement can
  // cascade through a whole chain of parked predecessors.
  ProtocolMetrics* m = metrics();
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = retire_pending_.begin(); it != retire_pending_.end();) {
      if (controller_->Retire(*it)) {
        if (m != nullptr) m->engine_retired_tx.Add();
        it = retire_pending_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

Engine::TokenState Engine::LookupCommitToken(uint64_t token, int* tx) const {
  if (token == 0) return TokenState::kAbsent;
  std::lock_guard<std::mutex> token_lock(token_mu_);
  auto it = tokens_.find(token);
  if (it == tokens_.end()) return TokenState::kAbsent;
  if (!it->second.committed) return TokenState::kPending;
  if (tx != nullptr) *tx = it->second.tx;
  return TokenState::kCommitted;
}

namespace {

/// Shared blocked-wait step for the session's three blocking calls (Begin /
/// Read / Commit): park with exponential backoff, then report whether the
/// attempt may retry. Returns false — the attempt must abort — on a forced
/// abort signal, engine shutdown, or a blown per-attempt blocked budget.
bool WaitForTurn(Engine* engine, int tx, int64_t* poll_us,
                 int64_t* blocked_us) {
  bool forced = engine->AwaitSignal(tx, *poll_us, blocked_us);
  const EngineOptions& o = engine->options();
  *poll_us = std::min(*poll_us * 2, std::max(o.max_poll_us, o.poll_us));
  if (forced) return false;
  if (engine->shutting_down()) return false;
  if (o.max_blocked_us > 0 && *blocked_us > o.max_blocked_us) {
    if (engine->metrics() != nullptr) engine->metrics()->deadline_aborts.Add();
    return false;
  }
  return true;
}

}  // namespace

Session::~Session() {
  if (active_) AbortActive();
  // An aborted id parked for reuse is abandoned now; retire it so churned
  // sessions do not inflate the controller's live scan set. (A committed id
  // was already retired by Commit; reuse_tx_id_ is false then.)
  if (reuse_tx_id_ && tx_ >= 0) engine_->RetireTx(tx_);
  engine_->OnSessionClosed();
}

void Session::AbortActive() {
  engine_->controller()->Abort(tx_);
  engine_->DrainSignals();
  active_ = false;
  reuse_tx_id_ = true;
  engine_->ReleaseAdmission();
}

Status Session::Begin(const engine::TxSpec& spec) {
  if (active_) {
    return Status::FailedPrecondition(
        "begin: session already has an open transaction");
  }
  if (engine_->shutting_down()) {
    return Status::Aborted("begin: engine shutting down");
  }
  if (!engine_->TryAdmit()) {
    return Status::ResourceExhausted(
        "begin: admission control shed the transaction; retry later");
  }
  // Reuse the aborted attempt's id rather than allocating a fresh one, so
  // abort-retry churn cannot grow the controller's per-transaction state
  // without bound. (Ids are single-use after Commit — the controller
  // treats a committed id as terminal.)
  if (!reuse_tx_id_) tx_ = engine_->AllocateTxId();
  reuse_tx_id_ = true;
  for (int pred : spec.predecessors) {
    if (pred < 0 || pred >= tx_) {
      engine_->ReleaseAdmission();
      return Status::InvalidArgument(
          "begin: predecessor ids must name earlier transactions");
    }
    if (engine_->controller()->IsRetired(pred)) {
      // Naming a retired id would re-attach a live successor to it and
      // break the retirement invariant the protocol's live scans rely on.
      engine_->ReleaseAdmission();
      return Status::InvalidArgument(
          "begin: predecessor was retired (terminated long ago)");
    }
  }
  engine_->EnsureTxSlots(tx_ + 1);
  ConcurrencyController* cc = engine_->controller();
  cc->Register(tx_, spec);
  engine_->ClearSignals(tx_);

  int64_t poll_us = std::max<int64_t>(1, engine_->options().poll_us);
  int64_t blocked_us = 0;
  for (;;) {
    engine::RequestOutcome r = cc->Begin(tx_);
    engine_->DrainSignals();
    if (r == engine::RequestOutcome::kGranted) {
      active_ = true;
      return Status::OK();
    }
    if (r == engine::RequestOutcome::kAborted) break;
    if (!WaitForTurn(engine_, tx_, &poll_us, &blocked_us)) break;
  }
  // The attempt died in validation: roll back (releases the Rv locks and
  // any staged state) and hand the slot back.
  cc->Abort(tx_);
  engine_->DrainSignals();
  engine_->ReleaseAdmission();
  return Status::Aborted("begin: attempt aborted by the protocol");
}

StatusOr<Value> Session::Read(EntityId e) {
  if (!active_) {
    return Status::FailedPrecondition("read: no open transaction");
  }
  if (e < 0 || e >= engine_->store()->num_entities()) {
    return Status::InvalidArgument("read: entity id out of range");
  }
  if (engine_->ForcedPending(tx_)) {
    AbortActive();
    return Status::Aborted("read: attempt aborted by the protocol");
  }
  ConcurrencyController* cc = engine_->controller();
  int64_t poll_us = std::max<int64_t>(1, engine_->options().poll_us);
  int64_t blocked_us = 0;
  for (;;) {
    Value value = 0;
    engine::RequestOutcome r = cc->Read(tx_, e, &value);
    engine_->DrainSignals();
    if (r == engine::RequestOutcome::kGranted) return value;
    if (r == engine::RequestOutcome::kAborted ||
        !WaitForTurn(engine_, tx_, &poll_us, &blocked_us)) {
      AbortActive();
      return Status::Aborted("read: attempt aborted by the protocol");
    }
  }
}

Status Session::Write(EntityId e, Value value) {
  if (!active_) {
    return Status::FailedPrecondition("write: no open transaction");
  }
  if (e < 0 || e >= engine_->store()->num_entities()) {
    return Status::InvalidArgument("write: entity id out of range");
  }
  ConcurrencyController* cc = engine_->controller();
  engine::RequestOutcome r = cc->Write(tx_, e, value);
  engine_->DrainSignals();
  if (r == engine::RequestOutcome::kAborted) {
    AbortActive();
    return Status::Aborted("write: attempt aborted by the protocol");
  }
  // A forced abort that raced the write skips WriteDone — Abort's
  // ReleaseAll drops the W hold (same contract as the parallel driver).
  if (engine_->ForcedPending(tx_)) {
    AbortActive();
    return Status::Aborted("write: attempt aborted by the protocol");
  }
  cc->WriteDone(tx_, e);
  engine_->DrainSignals();
  return Status::OK();
}

Status Session::Commit(uint64_t token) {
  if (!active_) {
    return Status::FailedPrecondition("commit: no open transaction");
  }
  if (token != 0) {
    // Claim the token atomically: staged pending iff no *other* transaction
    // holds it in any state (a concurrent lookup must see the commit as in
    // flight, not absent). Two racing commits carrying the same token must
    // not both execute — the loser sheds here, before any apply, so
    // exactly-once holds server-side rather than by client discipline.
    {
      std::lock_guard<std::mutex> token_lock(engine_->token_mu_);
      auto [it, claimed] =
          engine_->tokens_.try_emplace(token, Engine::TokenEntry{tx_, false});
      if (!claimed && it->second.tx != tx_) {
        return Status::ResourceExhausted(
            "commit: token already claimed by another transaction; retry "
            "later");
      }
    }
    // Attach the token to the transaction so the protocol logs it durably
    // next to the commit record.
    if (engine_->cep() != nullptr) engine_->cep()->SetCommitToken(tx_, token);
  }
  ConcurrencyController* cc = engine_->controller();
  int64_t poll_us = std::max<int64_t>(1, engine_->options().poll_us);
  int64_t blocked_us = 0;
  for (;;) {
    engine::RequestOutcome r = cc->Commit(tx_);
    engine_->DrainSignals();
    if (r == engine::RequestOutcome::kGranted) {
      if (token != 0) {
        std::lock_guard<std::mutex> token_lock(engine_->token_mu_);
        engine_->tokens_[token] = {tx_, true};
      }
      active_ = false;
      reuse_tx_id_ = false;
      engine_->ReleaseAdmission();
      engine_->RetireTx(tx_);
      return Status::OK();
    }
    if (r == engine::RequestOutcome::kAborted ||
        !WaitForTurn(engine_, tx_, &poll_us, &blocked_us)) {
      if (token != 0) {
        // The commit never happened; a resend of this token must
        // re-execute, so the pending entry must not linger.
        std::lock_guard<std::mutex> token_lock(engine_->token_mu_);
        engine_->tokens_.erase(token);
      }
      AbortActive();
      return Status::Aborted("commit: attempt aborted by the protocol");
    }
  }
}

Status Session::Abort() {
  if (!active_) return Status::OK();
  AbortActive();
  return Status::OK();
}

}  // namespace nonserial
