#ifndef NONSERIAL_ENGINE_ENGINE_H_
#define NONSERIAL_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/api.h"
#include "predicate/value.h"
#include "protocol/cep.h"
#include "storage/version_store.h"
#include "storage/wal.h"

namespace nonserial {

class Session;

/// Everything needed to assemble one protocol engine. This is the wiring
/// that used to live ad hoc inside ParallelDriver::Run / RunChaos (store +
/// WAL + controller + eval-cache + pipeline scope); promoting it into one
/// options struct is what lets the driver, the simulator harnesses, and
/// the network server all be *clients* of the same engine instead of each
/// owning a private copy of the setup code.
struct EngineOptions {
  /// Initial database state (one value per entity).
  ValueVector initial;
  /// Options forwarded to the protocol engine (search mode, metrics sink,
  /// eval cache). Pointers inside are not owned.
  CorrectExecutionProtocol::Options protocol;
  /// Builds the concurrency controller the engine hosts. Null (the default)
  /// builds a CorrectExecutionProtocol from `protocol`, which keeps cep()
  /// valid for the drivers and the server. A non-null factory may return
  /// any ConcurrencyController (2PL, MVTO, PW variants, Nested-CEP) — the
  /// Session API only speaks the base interface, so every protocol is
  /// hostable behind the same facade. Called once at construction and once
  /// per CrashRecover (against the recovered store).
  std::function<std::unique_ptr<ConcurrencyController>(VersionStore*)>
      controller_factory;
  /// Write-ahead log attached to the store. Not owned; its initial() must
  /// match `initial`. Null runs without durability.
  WriteAheadLog* wal = nullptr;
  /// Run the WAL in group-commit mode for the engine's lifetime: enabled at
  /// construction, drained and disabled by Shutdown(). Ignored without wal.
  bool wal_group_commit = false;
  GroupCommitOptions wal_group_options;
  /// Simulated device-flush latency forwarded to the WAL (set_flush_us).
  int64_t wal_flush_us = 0;
  /// Trace sink attached to the controller (and the WAL writer in group
  /// mode). Not owned; must be thread-safe and outlive the engine.
  TraceSink* observer = nullptr;

  // --- admission control / backpressure ----------------------------------
  /// Bound on concurrently admitted (begun, not yet terminated)
  /// transactions across all sessions. A Session::Begin over budget is
  /// shed with kResourceExhausted (the wire protocol's RETRY_LATER).
  /// 0 = unbounded. Driver-owned transactions do not count against it.
  int max_inflight_tx = 0;
  /// Shed new transactions while the WAL group-commit pipeline backlog
  /// (staged, unflushed frames) exceeds this bound — the "group-commit
  /// acks falling behind" slow path. 0 = unbounded.
  uint64_t max_wal_backlog_frames = 0;

  // --- session blocked-wait policy (mirrors ParallelDriverConfig) --------
  /// Initial re-poll interval for a session parked on a blocked request;
  /// doubles per fruitless wait up to max_poll_us.
  int64_t poll_us = 500;
  int64_t max_poll_us = 8'000;
  /// Bounded waiting: one session attempt may spend at most this long
  /// parked on blocked requests before the engine aborts it (counted as
  /// deadline_aborts). 0 = unbounded.
  int64_t max_blocked_us = 0;

  // --- transaction retirement ---------------------------------------------
  /// Retire terminated session transactions — after a successful Commit,
  /// and on session close for an aborted-and-abandoned id — so the
  /// controller's live scan set stays bounded for long-lived servers
  /// (AllowableVersions cost stops growing with total transaction count).
  /// Implies CorrectExecutionProtocol::Options::retirement for the default
  /// controller. Ids not yet eligible (a live successor remains) park on a
  /// pending list retried at every later retirement. Off by default — the
  /// baseline-candidate summarization restricts the optimistic candidate
  /// sets (see cep.h), which simulation workloads may observe.
  bool retire_terminated_tx = false;
};

/// The engine facade: one store + controller (+ WAL pipeline + eval cache)
/// assembly with an explicit session API. Construction wires everything;
/// Shutdown() (or the destructor) tears it down in the one safe order —
/// wake parked sessions, drain the WAL group-commit pipeline, fold the
/// WAL's pipeline counters into the metrics sink, detach observers.
///
/// Two client styles share one engine:
///  - *Sessions* (OpenSession): independent lifecycles that arrive, issue
///    Begin/Read/Write/Commit/Abort over time, and depart — the network
///    server's per-connection handle, admission-controlled.
///  - *Drivers* (ParallelDriver, tests): register a whole workload against
///    cep() directly and drive it with their own threads, using the
///    engine's shared signal hub for wakeup routing.
///
/// Thread safety: all methods are safe to call concurrently; per-Session
/// calls must stay on one thread at a time (the session owns its
/// transaction's phase transitions, same contract as the controller).
class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Orderly teardown; idempotent, safe to call while sessions are parked
  /// (they are woken and their attempts abort with kAborted). After
  /// Shutdown the components remain readable (records, stats, store) but
  /// new Begins are refused.
  void Shutdown();
  bool shutting_down() const {
    return stopping_.load(std::memory_order_acquire);
  }

  // --- component access ---------------------------------------------------
  VersionStore* store() const { return store_.get(); }
  /// The hosted controller, as the base interface every protocol speaks.
  /// Sessions route through this; so may single-threaded drivers that
  /// inject steps directly (the scenario runner).
  ConcurrencyController* controller() const { return controller_.get(); }
  /// The default-path controller. Null when a custom controller_factory
  /// produced something other than a CorrectExecutionProtocol; CEP-specific
  /// clients (ParallelDriver, the server's validation staging) must check.
  CorrectExecutionProtocol* cep() const { return cep_.get(); }
  WriteAheadLog* wal() const { return options_.wal; }
  ProtocolMetrics* metrics() const { return options_.protocol.metrics; }
  const EngineOptions& options() const { return options_; }
  /// Shared ownership handles (verification outlives the engine).
  std::shared_ptr<VersionStore> store_ref() const { return store_; }
  std::shared_ptr<CorrectExecutionProtocol> cep_ref() const { return cep_; }
  std::shared_ptr<ConcurrencyController> controller_ref() const {
    return controller_;
  }

  // --- crash / recovery (chaos harness) -----------------------------------
  /// Simulated crash-kill + restart: recovers the store from the WAL,
  /// fences the log with a crash marker, swaps in the recovered store,
  /// rebuilds the controller, and invalidates the eval cache (memoized
  /// evaluations must not survive a store generation). On a non-ok
  /// recovery status nothing is swapped (the result still carries the
  /// salvageable prefix for inspection). Requires quiesced clients.
  RecoveryResult CrashRecover(const RecoveryOptions& recovery_options);

  // --- transaction-id space ----------------------------------------------
  /// Allocates one fresh runtime transaction id (sessions).
  int AllocateTxId();
  /// Raises the allocation floor so ids [0, n) are never handed to
  /// sessions — drivers that register a workload by index call this first.
  void ReserveTxIdFloor(int n);

  // --- shared signal hub ---------------------------------------------------
  /// Routes protocol signals (wakeups, forced aborts) to per-transaction
  /// flags. Whichever thread makes a controller call drains afterwards;
  /// parked owners wait on the hub's condition variable. This is the one
  /// router both sessions and driver threads use — a signal drained by any
  /// client reaches the right owner.
  void EnsureTxSlots(int n);
  void DrainSignals();
  /// Parks until a wakeup or forced abort arrives for `tx` or `wait_us`
  /// elapses. Clears the wakeup flag; records the blocked time in
  /// wait_micros and adds it to *blocked_us. Returns true iff a forced
  /// abort is pending (flag left set; ClearSignals resets it).
  bool AwaitSignal(int tx, int64_t wait_us, int64_t* blocked_us);
  bool ForcedPending(int tx);
  void ClearSignals(int tx);

  // --- sessions ------------------------------------------------------------
  /// Opens an independent session. The handle owns its transaction
  /// lifecycle: at most one in-flight transaction, aborted on destruction.
  /// Must not outlive the engine.
  std::unique_ptr<Session> OpenSession();

  /// Admitted session transactions currently in flight.
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

  // --- transaction retirement ---------------------------------------------
  /// Offers `tx` (terminal: committed, or idle-after-abort with no future
  /// reuse) for retirement and drains the pending list to a fixpoint —
  /// retiring a successor can make its predecessors eligible. No-op unless
  /// EngineOptions::retire_terminated_tx. Counted as engine_retired_tx.
  void RetireTx(int tx);

  // --- idempotent commit tokens -------------------------------------------
  /// Fate of a client-generated commit token. kPending means a commit
  /// carrying it is in flight right now; kCommitted means a transaction
  /// carrying it durably committed (resends must be answered with the
  /// original verdict, not re-executed).
  enum class TokenState : uint8_t { kAbsent, kPending, kCommitted };
  /// Looks a token up; on kCommitted, *tx (when non-null) receives the
  /// committed transaction's id. Rebuilt from the WAL by CrashRecover, so
  /// the table survives crash/restart exactly as far as durability does.
  TokenState LookupCommitToken(uint64_t token, int* tx = nullptr) const;

 private:
  friend class Session;

  /// Admission check for one new session transaction: in-flight budget and
  /// WAL pipeline backlog. Counts server_accepted / server_shed.
  bool TryAdmit();
  void ReleaseAdmission();
  void OnSessionClosed();

  /// Builds the hosted controller against `store` (factory or default CEP)
  /// and attaches the observer; fills cep_ iff the default path ran.
  void BuildController(VersionStore* store);

  EngineOptions options_;
  std::shared_ptr<VersionStore> store_;
  std::shared_ptr<ConcurrencyController> controller_;
  std::shared_ptr<CorrectExecutionProtocol> cep_;
  WalStats wal_stats_before_{};

  std::atomic<int> next_tx_{0};
  std::atomic<int> inflight_{0};
  std::atomic<bool> stopping_{false};

  std::mutex lifecycle_mu_;  ///< Serializes Shutdown / CrashRecover.
  bool shutdown_done_ = false;

  std::mutex hub_mu_;
  std::condition_variable hub_cv_;
  std::vector<char> woken_;
  std::vector<char> forced_;

  /// Terminal ids whose retirement was refused (live successor); retried
  /// whenever another id retires.
  std::mutex retire_mu_;
  std::vector<int> retire_pending_;

  /// Commit-token table (exactly-once across reconnects). In-memory view
  /// of the durable kCommitToken records; CrashRecover rebuilds it.
  struct TokenEntry {
    int tx = -1;
    bool committed = false;
  };
  mutable std::mutex token_mu_;
  std::unordered_map<uint64_t, TokenEntry> tokens_;
};

/// An independent client lifecycle against the engine: Begin opens a
/// transaction (admission-controlled), Read/Write/Commit/Abort drive it,
/// and any kAborted return means the engine has already rolled the attempt
/// back — the caller just Begins again. Blocking protocol outcomes are
/// absorbed internally (park + retry with backoff), so every method
/// returns a terminal Status:
///
///   OK                  — performed
///   kAborted            — attempt rolled back; Begin again to retry
///   kResourceExhausted  — shed by admission control; retry later
///   kFailedPrecondition — call sequence error (no/duplicate transaction)
///   kInvalidArgument    — malformed spec (bad predecessor / entity id)
///
/// One thread at a time per session; different sessions are free to run
/// concurrently (the server's per-session queues enforce exactly this).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Starts a transaction from `spec`. Predecessor ids must name already
  /// allocated transactions (smaller than this transaction's id).
  Status Begin(const engine::TxSpec& spec);
  /// Reads an entity within the open transaction.
  StatusOr<Value> Read(EntityId e);
  /// Writes an entity within the open transaction. Never blocks (writes
  /// are never delayed in the protocol, Figure 3).
  Status Write(EntityId e, Value value);
  /// Attempts to commit; OK means durably committed (under a WAL, the
  /// commit record's flush epoch has been waited out). A nonzero `token`
  /// (client-generated idempotency token) is claimed atomically in the
  /// engine's token table — pending iff no other transaction holds it in
  /// any state; a commit racing for an already-claimed token sheds with
  /// kResourceExhausted before executing — and logged durably with the
  /// commit record, so a resend of the same token after a lost ack can be
  /// answered with the original verdict (see Engine::LookupCommitToken).
  /// On commit the entry flips to committed; on abort it is erased.
  Status Commit(uint64_t token = 0);
  /// Voluntarily rolls back the open transaction. OK when idle (no-op).
  Status Abort();

  /// Runtime id of the current (or most recent) transaction; -1 before the
  /// first Begin.
  int tx() const { return tx_; }
  bool in_transaction() const { return active_; }

 private:
  friend class Engine;
  explicit Session(Engine* engine) : engine_(engine) {}

  /// Rolls back the active attempt and releases its admission slot.
  void AbortActive();

  Engine* engine_;
  int tx_ = -1;
  bool active_ = false;
  /// The last transaction aborted: its id is reusable for the next Begin
  /// (abort-retry churn must not grow the controller's id space).
  bool reuse_tx_id_ = false;
};

/// RAII teardown guard: guarantees Engine::Shutdown() on scope exit, so a
/// server (or test) that dies mid-batch still drains the WAL pipeline and
/// joins the writer thread exactly once.
class ScopedEngineShutdown {
 public:
  explicit ScopedEngineShutdown(Engine* engine) : engine_(engine) {}
  ~ScopedEngineShutdown() {
    if (engine_ != nullptr) engine_->Shutdown();
  }

  ScopedEngineShutdown(const ScopedEngineShutdown&) = delete;
  ScopedEngineShutdown& operator=(const ScopedEngineShutdown&) = delete;

 private:
  Engine* engine_;
};

}  // namespace nonserial

#endif  // NONSERIAL_ENGINE_ENGINE_H_
