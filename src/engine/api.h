#ifndef NONSERIAL_ENGINE_API_H_
#define NONSERIAL_ENGINE_API_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"
#include "predicate/value.h"

namespace nonserial {
namespace engine {

/// Static description of a transaction handed to the engine when a session
/// (or a concurrency controller) starts it: its specification (I_t, O_t)
/// and its position in the parent's partial order P (predecessor
/// transaction ids). Promoted from protocol/controller.h (where TxProfile
/// remains as an alias) so that the session-facing facade and the
/// controller layer share one definition.
struct TxSpec {
  std::string name;
  Predicate input;   ///< I_t; every entity the transaction reads appears here.
  Predicate output;  ///< O_t; checked at commit.
  std::vector<int> predecessors;  ///< Direct P-edges into this transaction.
};

/// Result of a single concurrency-control request at the controller layer.
/// Promoted from protocol/controller.h (where ReqResult remains as an
/// alias). The session facade never surfaces kBlocked — Session methods
/// park and retry internally and return Status instead.
enum class RequestOutcome {
  kGranted,  ///< The operation was performed.
  kBlocked,  ///< Not performed; the caller will be woken (TakeWakeups) and
             ///< must retry the same request.
  kAborted   ///< The controller aborted this transaction; the caller must
             ///< call Abort() and restart the attempt.
};

/// Maps a terminal controller outcome to the facade's Status vocabulary.
/// kBlocked is not terminal (the session layer absorbs it); mapping it is a
/// programming error reported as kInternal.
inline Status StatusFromOutcome(RequestOutcome outcome, const char* op) {
  switch (outcome) {
    case RequestOutcome::kGranted:
      return Status::OK();
    case RequestOutcome::kAborted:
      return Status::Aborted(std::string(op) +
                             ": attempt aborted by the protocol");
    case RequestOutcome::kBlocked:
      break;
  }
  return Status::Internal(std::string(op) +
                          ": kBlocked escaped the session retry loop");
}

}  // namespace engine
}  // namespace nonserial

#endif  // NONSERIAL_ENGINE_API_H_
