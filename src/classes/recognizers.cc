#include "classes/recognizers.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace nonserial {
namespace {

/// Per-transaction view profile: the write step feeding each of the
/// transaction's reads, in program order. Step-level (writer plus the
/// write's index within the writer's program) — writer-level profiles are
/// too coarse when a transaction writes an entity more than once.
using ReadsProfile = std::vector<std::vector<Schedule::ReadSource>>;

ReadsProfile ComputeReadsProfile(const Schedule& schedule) {
  ReadsProfile profile(schedule.num_txs());
  std::vector<Schedule::ReadSource> sources = schedule.ReadSources();
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kRead) {
      profile[ops[i].tx].push_back(sources[i]);
    }
  }
  return profile;
}

/// View equivalence of two schedules over the same transactions/programs:
/// identical reads-from profiles and identical final writers.
bool ViewEquivalent(const Schedule& a, const Schedule& b) {
  return ComputeReadsProfile(a) == ComputeReadsProfile(b) &&
         a.FinalWriters() == b.FinalWriters();
}

std::vector<TxId> ActiveTxList(const Schedule& schedule) {
  std::set<TxId> active = schedule.ActiveTxs();
  return std::vector<TxId>(active.begin(), active.end());
}

}  // namespace

Digraph ConflictGraph(const Schedule& schedule) {
  Digraph graph(schedule.num_txs());
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[i].tx == ops[j].tx) continue;
      if (ops[i].entity != ops[j].entity) continue;
      if (ops[i].kind == OpKind::kWrite || ops[j].kind == OpKind::kWrite) {
        graph.AddEdge(ops[i].tx, ops[j].tx);
      }
    }
  }
  return graph;
}

Digraph ReadWriteGraph(const Schedule& schedule,
                       const std::set<EntityId>* entities) {
  Digraph graph(schedule.num_txs());
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kRead) continue;
    if (entities != nullptr && !entities->contains(ops[i].entity)) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[j].kind != OpKind::kWrite) continue;
      if (ops[j].entity != ops[i].entity) continue;
      if (ops[j].tx == ops[i].tx) continue;
      graph.AddEdge(ops[i].tx, ops[j].tx);
    }
  }
  return graph;
}

bool IsConflictSerializable(const Schedule& schedule,
                            std::vector<TxId>* witness_order) {
  Digraph graph = ConflictGraph(schedule);
  graph.EnsureNodes(schedule.num_txs());
  std::optional<std::vector<int>> topo = graph.TopologicalOrder();
  if (!topo.has_value()) return false;
  if (witness_order != nullptr) *witness_order = *topo;
  return true;
}

bool IsViewSerializable(const Schedule& schedule,
                        std::vector<TxId>* witness_order) {
  std::vector<TxId> active = ActiveTxList(schedule);
  NONSERIAL_CHECK_LE(static_cast<int>(active.size()), kMaxExactTxs)
      << "view-serializability testing is NP-complete; exact recognizer "
         "limited to small inputs";
  bool found = ForEachPermutation(
      static_cast<int>(active.size()), [&](const std::vector<int>& perm) {
        std::vector<TxId> order;
        order.reserve(perm.size());
        for (int p : perm) order.push_back(active[p]);
        if (ViewEquivalent(schedule, schedule.Serialize(order))) {
          if (witness_order != nullptr) *witness_order = order;
          return true;
        }
        return false;
      });
  return found;
}

bool IsMVConflictSerializable(const Schedule& schedule) {
  return !ReadWriteGraph(schedule).HasCycle();
}

bool IsMVViewSerializable(const Schedule& schedule,
                          std::vector<TxId>* witness_order) {
  std::vector<TxId> active = ActiveTxList(schedule);
  NONSERIAL_CHECK_LE(static_cast<int>(active.size()), kMaxExactTxs)
      << "MVSR testing is NP-complete; exact recognizer limited to small "
         "inputs";
  const std::vector<Op>& ops = schedule.ops();

  // Read positions per transaction, program order (aligned with profiles),
  // and per-transaction op positions (for locating specific write steps).
  std::vector<std::vector<int>> read_positions(schedule.num_txs());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kRead) {
      read_positions[ops[i].tx].push_back(static_cast<int>(i));
    }
  }
  std::vector<std::vector<int>> ops_of(schedule.num_txs());
  for (TxId tx = 0; tx < schedule.num_txs(); ++tx) {
    ops_of[tx] = schedule.OpsOf(tx);
  }

  bool found = ForEachPermutation(
      static_cast<int>(active.size()), [&](const std::vector<int>& perm) {
        std::vector<TxId> order;
        order.reserve(perm.size());
        for (int p : perm) order.push_back(active[p]);
        // The write step each read would see in the serial execution.
        ReadsProfile serial_profile =
            ComputeReadsProfile(schedule.Serialize(order));
        // A version function can realize this serial view iff every needed
        // version already exists when the actual read happens.
        for (TxId tx = 0; tx < schedule.num_txs(); ++tx) {
          const std::vector<int>& positions = read_positions[tx];
          for (size_t k = 0; k < positions.size(); ++k) {
            const Schedule::ReadSource& source = serial_profile[tx][k];
            if (source.writer == kInitialTx || source.writer == tx) continue;
            // Position of the producing write step in the actual schedule.
            int write_pos = ops_of[source.writer][source.writer_op];
            if (write_pos > positions[k]) return false;  // Future version.
          }
        }
        if (witness_order != nullptr) *witness_order = order;
        return true;
      });
  return found;
}

namespace {

bool ForEachObjectProjection(
    const Schedule& schedule, const ObjectSetList& objects,
    const std::function<bool(const Schedule&)>& is_member) {
  for (const std::set<EntityId>& object : objects) {
    if (!is_member(schedule.ProjectEntities(object))) return false;
  }
  return true;
}

}  // namespace

bool IsPredicatewiseConflictSerializable(const Schedule& schedule,
                                         const ObjectSetList& objects) {
  return ForEachObjectProjection(
      schedule, objects,
      [](const Schedule& s) { return IsConflictSerializable(s); });
}

bool IsPredicatewiseViewSerializable(const Schedule& schedule,
                                     const ObjectSetList& objects) {
  return ForEachObjectProjection(
      schedule, objects,
      [](const Schedule& s) { return IsViewSerializable(s); });
}

bool IsConflictPredicateCorrect(const Schedule& schedule,
                                const ObjectSetList& objects) {
  // Constraints routinely share conjuncts (hot entities appear in many),
  // and the read-before-write graph depends only on the entity set — so
  // evaluate each distinct set once and fan the checks out across the
  // shared pool. The atomic flag lets remaining conjuncts short-circuit
  // once any cycle is found.
  std::set<std::set<EntityId>> unique(objects.begin(), objects.end());
  std::vector<const std::set<EntityId>*> work;
  work.reserve(unique.size());
  for (const std::set<EntityId>& object : unique) work.push_back(&object);
  std::atomic<bool> cyclic{false};
  ThreadPool::Shared().ParallelFor(
      static_cast<int>(work.size()), [&](int i) {
        if (cyclic.load(std::memory_order_relaxed)) return;
        if (ReadWriteGraph(schedule, work[i]).HasCycle()) {
          cyclic.store(true, std::memory_order_relaxed);
        }
      });
  return !cyclic.load(std::memory_order_relaxed);
}

bool IsPredicateCorrect(const Schedule& schedule,
                        const ObjectSetList& objects) {
  return ForEachObjectProjection(
      schedule, objects,
      [](const Schedule& s) { return IsMVViewSerializable(s); });
}

IncrementalCpcChecker::IncrementalCpcChecker(const ObjectSetList& objects) {
  std::set<std::set<EntityId>> unique(objects.begin(), objects.end());
  unique_objects_.assign(unique.begin(), unique.end());
  graphs_.resize(unique_objects_.size());
  int max_entity = -1;
  for (const std::set<EntityId>& object : unique_objects_) {
    if (!object.empty()) max_entity = std::max(max_entity, *object.rbegin());
  }
  objects_of_.resize(max_entity + 1);
  for (size_t i = 0; i < unique_objects_.size(); ++i) {
    for (EntityId e : unique_objects_[i]) {
      objects_of_[e].push_back(static_cast<int>(i));
    }
  }
  readers_.resize(max_entity + 1);
}

void IncrementalCpcChecker::AddOp(TxId tx, OpKind kind, EntityId entity) {
  ++num_ops_;
  if (entity < 0) return;
  if (entity >= static_cast<int>(readers_.size())) {
    // Entities outside every object never contribute edges; track readers
    // lazily so projections with spare entities still work.
    readers_.resize(entity + 1);
  }
  if (kind == OpKind::kRead) {
    readers_[entity].insert(tx);
    return;
  }
  // A write completes a read-before-write edge from every earlier reader
  // of the entity, in each object graph that contains the entity.
  if (entity >= static_cast<int>(objects_of_.size())) return;
  for (int graph_index : objects_of_[entity]) {
    IncrementalDigraph& graph = graphs_[graph_index];
    for (TxId reader : readers_[entity]) {
      if (reader == tx) continue;
      if (!graph.AddEdge(reader, tx)) cpc_ = false;
    }
  }
}

IncrementalDigraph::Stats IncrementalCpcChecker::GraphStats() const {
  IncrementalDigraph::Stats total;
  for (const IncrementalDigraph& graph : graphs_) {
    total.edges_added += graph.stats().edges_added;
    total.reorders += graph.stats().reorders;
    total.region_nodes += graph.stats().region_nodes;
    total.cheap_inserts += graph.stats().cheap_inserts;
  }
  return total;
}

void IncrementalCpcChecker::Reset() {
  for (size_t i = 0; i < graphs_.size(); ++i) {
    graphs_[i] = IncrementalDigraph();
  }
  for (std::set<TxId>& readers : readers_) readers.clear();
  num_ops_ = 0;
  cpc_ = true;
}

std::string ClassMembership::ToString() const {
  std::ostringstream os;
  os << (csr ? "CSR" : "-") << " " << (vsr ? "SR" : "-") << " "
     << (mvcsr ? "MVCSR" : "-") << " " << (mvsr ? "MVSR" : "-") << " "
     << (pwcsr ? "PWCSR" : "-") << " " << (pwsr ? "PWSR" : "-") << " "
     << (cpc ? "CPC" : "-") << " " << (pc ? "PC" : "-");
  return os.str();
}

ClassMembership ClassifyAll(const Schedule& schedule,
                            const ObjectSetList& objects, bool* exact) {
  ClassMembership m;
  m.csr = IsConflictSerializable(schedule);
  m.mvcsr = IsMVConflictSerializable(schedule);
  m.pwcsr = IsPredicatewiseConflictSerializable(schedule, objects);
  m.cpc = IsConflictPredicateCorrect(schedule, objects);
  bool small = static_cast<int>(schedule.ActiveTxs().size()) <= kMaxExactTxs;
  if (exact != nullptr) *exact = small;
  if (small) {
    m.vsr = IsViewSerializable(schedule);
    m.mvsr = IsMVViewSerializable(schedule);
    m.pwsr = IsPredicatewiseViewSerializable(schedule, objects);
    m.pc = IsPredicateCorrect(schedule, objects);
  }
  return m;
}

}  // namespace nonserial
