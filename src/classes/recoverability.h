#ifndef NONSERIAL_CLASSES_RECOVERABILITY_H_
#define NONSERIAL_CLASSES_RECOVERABILITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "schedule/schedule.h"

namespace nonserial {

/// Commit points for a schedule: commit_points[tx] is the number of
/// operations that precede transaction tx's commit (so tx commits "between"
/// op commit_points[tx]-1 and op commit_points[tx]). Every transaction's
/// commit must follow its last operation.
///
/// The paper motivates its model partly by noting that the class of
/// serializable schedules "present[s] several obstacles to crash recovery
/// (allowance of cascading rollbacks and non-recoverable schedules)"; these
/// analyzers make the standard recovery hierarchy checkable:
///
///   strict (ST) ⊆ avoids-cascading-aborts (ACA) ⊆ recoverable (RC).
struct CommitPoints {
  std::vector<int> position;  ///< Indexed by TxId.
  /// Optional strict commit order (serial numbers). When two transactions
  /// commit between the same pair of operations their `position` ties;
  /// `sequence`, when non-empty, disambiguates the recoverability check.
  std::vector<int> sequence;

  /// True iff tx a commits strictly before tx b.
  bool CommitsBefore(TxId a, TxId b) const {
    if (!sequence.empty()) return sequence[a] < sequence[b];
    return position[a] < position[b];
  }
};

/// Commit points with every transaction committing right after the last
/// operation of the whole schedule, in the given transaction order.
CommitPoints CommitsAtEnd(const Schedule& schedule,
                          const std::vector<TxId>& order);

/// Commit points with each transaction committing immediately after its own
/// last operation.
CommitPoints CommitsAfterLastOp(const Schedule& schedule);

/// Validates shape: one commit point per transaction, each after the
/// transaction's last operation.
Status ValidateCommitPoints(const Schedule& schedule,
                            const CommitPoints& commits);

/// RC: whenever t reads from t', t' commits before t does.
bool IsRecoverable(const Schedule& schedule, const CommitPoints& commits);

/// ACA: every read observes a committed write (no dirty reads), so an abort
/// never cascades.
bool IsCascadeless(const Schedule& schedule, const CommitPoints& commits);

/// ST: no entity is read *or overwritten* while its latest writer is
/// uncommitted — the class that makes before-image UNDO logging sound.
bool IsStrict(const Schedule& schedule, const CommitPoints& commits);

/// Summary of the recovery hierarchy for one schedule + commit order.
struct RecoveryClassification {
  bool recoverable = false;
  bool cascadeless = false;
  bool strict = false;

  std::string ToString() const;
};

RecoveryClassification ClassifyRecovery(const Schedule& schedule,
                                        const CommitPoints& commits);

}  // namespace nonserial

#endif  // NONSERIAL_CLASSES_RECOVERABILITY_H_
