#ifndef NONSERIAL_CLASSES_RECOGNIZERS_H_
#define NONSERIAL_CLASSES_RECOGNIZERS_H_

#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/incremental_digraph.h"
#include "predicate/predicate.h"
#include "schedule/schedule.h"

namespace nonserial {

/// Maximum transaction count accepted by the exponential (permutation-
/// enumerating) recognizers: SR, MVSR, PWSR, PC. Testing these classes is
/// NP-complete (Papadimitriou 1979; Theorem 1 of the paper), so the exact
/// recognizers enumerate serial orders and must be kept small.
inline constexpr int kMaxExactTxs = 10;

/// Conflict graph of the standard model: edge a -> b when a step of `a`
/// precedes a conflicting step of `b` (same entity, at least one write).
Digraph ConflictGraph(const Schedule& schedule);

/// The paper's multiversion conflict graph (Section 4.3): edge a -> b when
/// `a` reads an entity and `b` later writes that entity. When `entities` is
/// non-null only steps on those entities contribute (the per-conjunct
/// restriction used by CPC).
Digraph ReadWriteGraph(const Schedule& schedule,
                       const std::set<EntityId>* entities = nullptr);

/// CSR: conflict serializability — conflict graph acyclicity. Polynomial.
bool IsConflictSerializable(const Schedule& schedule,
                            std::vector<TxId>* witness_order = nullptr);

/// SR: view serializability (Lemma 3's class). Exponential: enumerates
/// serial orders of the active transactions; requires at most kMaxExactTxs.
bool IsViewSerializable(const Schedule& schedule,
                        std::vector<TxId>* witness_order = nullptr);

/// MVCSR: multiversion conflict serializability via the paper's
/// read-before-write graph. Polynomial.
bool IsMVConflictSerializable(const Schedule& schedule);

/// MVSR: multiversion (view) serializability — some serial order can be
/// served by a version function that only hands out versions already
/// written. Exponential; requires at most kMaxExactTxs active transactions.
bool IsMVViewSerializable(const Schedule& schedule,
                          std::vector<TxId>* witness_order = nullptr);

/// PWCSR: every projection of the schedule onto an object is CSR.
bool IsPredicatewiseConflictSerializable(const Schedule& schedule,
                                         const ObjectSetList& objects);

/// PWSR: every projection onto an object is view serializable. Exponential.
bool IsPredicatewiseViewSerializable(const Schedule& schedule,
                                     const ObjectSetList& objects);

/// CPC: conflict predicate correct — the per-object read-before-write
/// graphs are all acyclic (Section 4.3). Polynomial: this is the class the
/// paper advertises as efficiently recognizable.
bool IsConflictPredicateCorrect(const Schedule& schedule,
                                const ObjectSetList& objects);

/// PC: predicate correct — every projection onto an object is MVSR.
/// Exponential.
bool IsPredicateCorrect(const Schedule& schedule,
                        const ObjectSetList& objects);

/// Incrementally maintained CPC recognizer: the online counterpart of
/// IsConflictPredicateCorrect.
///
/// The batch recognizer rebuilds every per-object read-before-write graph
/// from the whole schedule on each call — O(ops^2) per check, the dominant
/// cost when a growing history is re-certified after every commit. This
/// checker instead consumes the schedule one step at a time: a read is
/// recorded; a write adds the read-before-write edges it completes (one per
/// earlier reader of the entity) to the graphs of the objects containing
/// that entity, each an IncrementalDigraph that re-tests acyclicity only on
/// the affected region of its topological order.
///
/// Feeding the steps of a schedule in order yields, after every prefix,
/// exactly IsConflictPredicateCorrect of that prefix (the differential
/// fuzzer in tests/incremental_verify_fuzz_test.cc holds it to that).
/// Because edges are only ever added, non-membership is monotone: once a
/// cycle appears the checker latches false.
///
/// Not thread-safe; feed from one thread (or under an engine lock).
class IncrementalCpcChecker {
 public:
  /// Binds the object decomposition (one entity set per conjunct of the
  /// database constraint); duplicate sets are checked once.
  explicit IncrementalCpcChecker(const ObjectSetList& objects);

  /// Consumes the next step of the schedule.
  void AddOp(TxId tx, OpKind kind, EntityId entity);

  /// Convenience overload for Schedule::ops() entries.
  void AddOp(const Op& op) { AddOp(op.tx, op.kind, op.entity); }

  /// True iff every per-object read-before-write graph is still acyclic —
  /// i.e. the fed prefix is conflict predicate correct.
  bool IsCpc() const { return cpc_; }

  /// Steps consumed so far.
  int64_t num_ops() const { return num_ops_; }

  /// Aggregate maintenance counters over all per-object graphs (edge count,
  /// affected-region sizes); see IncrementalDigraph::Stats.
  IncrementalDigraph::Stats GraphStats() const;

  /// Forgets all history, keeping the object decomposition.
  void Reset();

 private:
  std::vector<std::set<EntityId>> unique_objects_;
  std::vector<IncrementalDigraph> graphs_;  ///< One per unique object.
  /// objects_of_[e]: indices into graphs_ whose object contains entity e.
  std::vector<std::vector<int>> objects_of_;
  /// readers_[e]: transactions that have read e so far (deduplicated).
  std::vector<std::set<TxId>> readers_;
  int64_t num_ops_ = 0;
  bool cpc_ = true;
};

/// Membership vector across every implemented class.
struct ClassMembership {
  bool csr = false;
  bool vsr = false;
  bool mvcsr = false;
  bool mvsr = false;
  bool pwcsr = false;
  bool pwsr = false;
  bool cpc = false;
  bool pc = false;

  bool operator==(const ClassMembership& other) const = default;

  /// Compact rendering like "CSR SR MVCSR MVSR PWCSR PWSR CPC PC" with
  /// absent classes rendered as '-'.
  std::string ToString() const;
};

/// Classifies a schedule against all eight classes. The exponential
/// recognizers are skipped (reported false) when the schedule has more than
/// kMaxExactTxs active transactions and `*exact` is set to false.
ClassMembership ClassifyAll(const Schedule& schedule,
                            const ObjectSetList& objects,
                            bool* exact = nullptr);

}  // namespace nonserial

#endif  // NONSERIAL_CLASSES_RECOGNIZERS_H_
