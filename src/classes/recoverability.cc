#include "classes/recoverability.h"

#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

CommitPoints CommitsAtEnd(const Schedule& schedule,
                          const std::vector<TxId>& order) {
  CommitPoints out;
  int total = static_cast<int>(schedule.ops().size());
  out.position.assign(schedule.num_txs(), total);
  // Encode the order by nudging the conceptual commit sequence: since all
  // commits sit at `total`, we spread them as total, total+1, … so that
  // earlier entries in `order` commit first.
  int offset = 0;
  out.sequence.assign(schedule.num_txs(), schedule.num_txs());
  for (TxId tx : order) {
    out.position[tx] = total + offset;
    out.sequence[tx] = offset;
    ++offset;
  }
  return out;
}

CommitPoints CommitsAfterLastOp(const Schedule& schedule) {
  CommitPoints out;
  out.position.assign(schedule.num_txs(),
                      static_cast<int>(schedule.ops().size()));
  for (TxId tx = 0; tx < schedule.num_txs(); ++tx) {
    std::vector<int> ops = schedule.OpsOf(tx);
    if (!ops.empty()) out.position[tx] = ops.back() + 1;
  }
  return out;
}

Status ValidateCommitPoints(const Schedule& schedule,
                            const CommitPoints& commits) {
  if (static_cast<int>(commits.position.size()) < schedule.num_txs()) {
    return Status::InvalidArgument("missing commit points");
  }
  for (TxId tx = 0; tx < schedule.num_txs(); ++tx) {
    std::vector<int> ops = schedule.OpsOf(tx);
    if (!ops.empty() && commits.position[tx] <= ops.back()) {
      return Status::InvalidArgument(
          StrCat("transaction t", tx + 1, " commits before its last op"));
    }
  }
  return Status::OK();
}

namespace {

/// For each op index: the writer whose value a read observes (kInitialTx if
/// none), and for each write: the previous writer it overwrites.
struct Provenance {
  std::vector<TxId> read_from;       // Per op; valid for reads.
  std::vector<TxId> overwrites;      // Per op; valid for writes.
};

Provenance ComputeProvenance(const Schedule& schedule) {
  Provenance out;
  const std::vector<Op>& ops = schedule.ops();
  out.read_from.assign(ops.size(), kInitialTx);
  out.overwrites.assign(ops.size(), kInitialTx);
  std::vector<TxId> last_writer(schedule.num_entities(), kInitialTx);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kRead) {
      out.read_from[i] = last_writer[ops[i].entity];
    } else {
      out.overwrites[i] = last_writer[ops[i].entity];
      last_writer[ops[i].entity] = ops[i].tx;
    }
  }
  return out;
}

}  // namespace

bool IsRecoverable(const Schedule& schedule, const CommitPoints& commits) {
  NONSERIAL_CHECK(ValidateCommitPoints(schedule, commits).ok());
  Provenance prov = ComputeProvenance(schedule);
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kRead) continue;
    TxId writer = prov.read_from[i];
    if (writer == kInitialTx || writer == ops[i].tx) continue;
    if (!commits.CommitsBefore(writer, ops[i].tx)) {
      return false;  // Reader commits before (or with) its source.
    }
  }
  return true;
}

bool IsCascadeless(const Schedule& schedule, const CommitPoints& commits) {
  NONSERIAL_CHECK(ValidateCommitPoints(schedule, commits).ok());
  Provenance prov = ComputeProvenance(schedule);
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kRead) continue;
    TxId writer = prov.read_from[i];
    if (writer == kInitialTx || writer == ops[i].tx) continue;
    if (commits.position[writer] > static_cast<int>(i)) {
      return false;  // Dirty read.
    }
  }
  return true;
}

bool IsStrict(const Schedule& schedule, const CommitPoints& commits) {
  NONSERIAL_CHECK(ValidateCommitPoints(schedule, commits).ok());
  Provenance prov = ComputeProvenance(schedule);
  const std::vector<Op>& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    TxId source = ops[i].kind == OpKind::kRead ? prov.read_from[i]
                                               : prov.overwrites[i];
    if (source == kInitialTx || source == ops[i].tx) continue;
    if (commits.position[source] > static_cast<int>(i)) {
      return false;  // Reads or overwrites an uncommitted value.
    }
  }
  return true;
}

std::string RecoveryClassification::ToString() const {
  std::ostringstream os;
  os << (recoverable ? "RC" : "-") << " " << (cascadeless ? "ACA" : "-")
     << " " << (strict ? "ST" : "-");
  return os.str();
}

RecoveryClassification ClassifyRecovery(const Schedule& schedule,
                                        const CommitPoints& commits) {
  RecoveryClassification out;
  out.recoverable = IsRecoverable(schedule, commits);
  out.cascadeless = IsCascadeless(schedule, commits);
  out.strict = IsStrict(schedule, commits);
  return out;
}

}  // namespace nonserial
