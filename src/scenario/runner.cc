#include "scenario/runner.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "engine/engine.h"
#include "scenario/protocols.h"
#include "storage/wal.h"

namespace nonserial {
namespace scenario {
namespace {

/// The TxSpec a session registers under. Nested-CEP encodes the partial
/// order at the group level (the factory already copied the `after` edges
/// into the group predecessors), so the flat profile must not repeat them.
engine::TxSpec ProfileFor(const ScenarioSpec& spec, int s,
                          const std::string& protocol) {
  const SessionSpec& session = spec.sessions[s];
  engine::TxSpec tx;
  tx.name = session.name;
  tx.input = session.input;
  tx.output = session.output;
  if (protocol != "Nested-CEP") tx.predecessors = session.predecessors;
  return tx;
}

/// One recorded granted data operation (history assembly).
struct HistOp {
  int session = 0;
  OpKind kind = OpKind::kRead;
  EntityId entity = kInvalidEntity;
};

/// The deterministic single-threaded step scheduler. Permutation entries
/// are injected in order; each injection authorizes one more step of its
/// session, then a progress loop (Pump) runs every session as far as its
/// authorized, unblocked steps allow — retrying blocked requests after
/// every state change, exactly as the documented driver-client idiom for
/// the controllers prescribes (see sim/simulator.cc).
class StepDriver {
 public:
  StepDriver(const ScenarioSpec& spec, std::string protocol, bool verbose,
             WriteAheadLog* wal)
      : spec_(spec), protocol_(std::move(protocol)), verbose_(verbose) {
    EngineOptions options;
    options.initial = spec_.initial;
    options.wal = wal;
    StatusOr<ControllerFactory> factory =
        MakeControllerFactory(protocol_, spec_);
    init_status_ = factory.status();
    if (!init_status_.ok()) return;
    options.controller_factory = *std::move(factory);
    engine_ = std::make_unique<Engine>(std::move(options));
    cc_ = engine_->controller();
    sessions_.resize(spec_.sessions.size());
    for (size_t s = 0; s < spec_.sessions.size(); ++s) {
      Sess& sess = sessions_[s];
      const std::vector<Step>& steps = spec_.sessions[s].steps;
      // Programs without an explicit begin step get an implicit one,
      // authorized together with the first step.
      sess.implicit_begin = steps[0].kind != Step::Kind::kBegin;
      cc_->Register(static_cast<int>(s),
                    ProfileFor(spec_, static_cast<int>(s), protocol_));
      sess.view = spec_.initial;
    }
  }

  const Status& init_status() const { return init_status_; }
  Engine* engine() { return engine_.get(); }

  /// Authorizes one more step of ref.session and pumps to fixpoint.
  void Inject(const StepRef& ref) {
    Sess& sess = sessions_[ref.session];
    sess.authorized = ref.step + 1 + (sess.implicit_begin ? 1 : 0);
    Pump();
  }

  /// End of the interleaving: final pump, then every unfinished session is
  /// marked blocked and rolled back (releasing its locks/holds).
  void Finish() {
    Pump();
    for (size_t s = 0; s < sessions_.size(); ++s) {
      Sess& sess = sessions_[s];
      if (sess.terminal) continue;
      sess.verdict = Verdict::kBlocked;
      sess.terminal = true;
      Trace(StrCat(spec_.sessions[s].name, ": still blocked at scenario end",
                   " — rolled back"));
      cc_->Abort(static_cast<int>(s));
      DrainSignals();
    }
  }

  std::vector<int> CommittedSessions() const {
    std::vector<int> committed;
    for (size_t s = 0; s < sessions_.size(); ++s) {
      if (sessions_[s].terminal && sessions_[s].verdict == Verdict::kCommit) {
        committed.push_back(static_cast<int>(s));
      }
    }
    return committed;
  }

  ScenarioRunResult TakeResult() {
    ScenarioRunResult result;
    result.protocol = protocol_;
    for (const Sess& sess : sessions_) result.verdicts.push_back(sess.verdict);
    result.final_state = engine_->store()->LatestCommittedSnapshot();
    result.constraint_ok = spec_.constraint.Eval(result.final_state);
    for (const std::string& name : spec_.entity_names) {
      result.committed.InternEntity(name);
    }
    ObjectSetList objects = spec_.Objects();
    IncrementalCpcChecker checker(objects);
    for (const HistOp& op : history_) {
      if (sessions_[op.session].verdict != Verdict::kCommit) continue;
      result.committed.Append(op.session, op.kind, op.entity);
      checker.AddOp(op.session, op.kind, op.entity);
    }
    result.incremental_cpc = checker.IsCpc();
    result.classes =
        ClassifyAll(result.committed, objects, &result.classes_exact);
    result.log = std::move(log_);
    return result;
  }

 private:
  struct Sess {
    bool implicit_begin = false;
    /// Micro-op cursor: 0 is the (implicit or explicit) begin; step i of
    /// the program is micro-op i (+1 with an implicit begin).
    int cursor = 0;
    int authorized = 0;
    bool begun = false;
    bool terminal = false;
    Verdict verdict = Verdict::kBlocked;
    ValueVector view;  ///< Initial state overlaid with own reads/writes.
  };

  void Trace(std::string line) {
    if (verbose_) log_.push_back(std::move(line));
  }

  /// Forced aborts are correctness signals: the controller has decided the
  /// transaction dies (Figure 4 re-evaluation, deadlock victims,
  /// cascades). Wakeups are drained and dropped — Pump retries every
  /// blocked session eagerly anyway.
  void DrainSignals() {
    for (int tx : cc_->TakeForcedAborts()) {
      Sess& sess = sessions_[tx];
      if (sess.terminal) continue;
      Trace(StrCat(spec_.sessions[tx].name, ": forced abort"));
      cc_->Abort(tx);
      sess.verdict = Verdict::kAbort;
      sess.terminal = true;
    }
    (void)cc_->TakeWakeups();
  }

  /// The step of session s that micro-op `cursor` maps to (-1 = the
  /// implicit begin).
  int StepIndex(const Sess& sess) const {
    return sess.cursor - (sess.implicit_begin ? 1 : 0);
  }

  /// Attempts the current micro-op of session s. Returns true when the
  /// session made progress (granted or reached a terminal state).
  bool TryStep(int s) {
    Sess& sess = sessions_[s];
    if (sess.terminal || sess.cursor >= sess.authorized) return false;
    const SessionSpec& program = spec_.sessions[s];
    int step_index = StepIndex(sess);
    ReqResult r = ReqResult::kGranted;
    if (step_index < 0) {
      r = cc_->Begin(s);
      if (r == ReqResult::kGranted) {
        sess.begun = true;
        Trace(StrCat(program.name, ": begin (implicit)"));
      }
    } else {
      const Step& step = program.steps[step_index];
      switch (step.kind) {
        case Step::Kind::kBegin:
          r = cc_->Begin(s);
          if (r == ReqResult::kGranted) {
            sess.begun = true;
            Trace(StrCat(program.name, ": ", step.name, " begin"));
          }
          break;
        case Step::Kind::kRead: {
          Value value = 0;
          r = cc_->Read(s, step.entity, &value);
          if (r == ReqResult::kGranted) {
            sess.view[step.entity] = value;
            history_.push_back(HistOp{s, OpKind::kRead, step.entity});
            Trace(StrCat(program.name, ": ", step.name, " read ",
                         spec_.entity_names[step.entity], " = ", value));
          }
          break;
        }
        case Step::Kind::kWrite: {
          Value value = step.write_expr.Eval(sess.view);
          r = cc_->Write(s, step.entity, value);
          if (r == ReqResult::kGranted) {
            cc_->WriteDone(s, step.entity);
            sess.view[step.entity] = value;
            history_.push_back(HistOp{s, OpKind::kWrite, step.entity});
            Trace(StrCat(program.name, ": ", step.name, " write ",
                         spec_.entity_names[step.entity], " = ", value));
          }
          break;
        }
        case Step::Kind::kCommit:
          r = cc_->Commit(s);
          if (r == ReqResult::kGranted) {
            sess.verdict = Verdict::kCommit;
            sess.terminal = true;
            Trace(StrCat(program.name, ": ", step.name, " commit"));
          }
          break;
        case Step::Kind::kAbort:
          cc_->Abort(s);
          sess.verdict = Verdict::kAbort;
          sess.terminal = true;
          Trace(StrCat(program.name, ": ", step.name, " abort (voluntary)"));
          DrainSignals();
          return true;
      }
    }
    DrainSignals();
    if (sess.terminal) return true;  // a forced abort raced the grant
    if (r == ReqResult::kGranted) {
      ++sess.cursor;
      return true;
    }
    if (r == ReqResult::kAborted) {
      Trace(StrCat(program.name, ": aborted by the protocol"));
      cc_->Abort(s);
      sess.verdict = Verdict::kAbort;
      sess.terminal = true;
      DrainSignals();
      return true;
    }
    return false;  // kBlocked: retried on the next pump pass
  }

  /// Runs every session as far as it can go, to fixpoint. Each pass makes
  /// at least one grant or terminates a session, so the loop is bounded by
  /// the total number of micro-ops plus aborts.
  void Pump() {
    bool progress = true;
    while (progress) {
      progress = false;
      DrainSignals();
      for (size_t s = 0; s < sessions_.size(); ++s) {
        while (TryStep(static_cast<int>(s))) progress = true;
      }
    }
  }

  const ScenarioSpec& spec_;
  std::string protocol_;
  bool verbose_;
  Status init_status_ = Status::OK();
  std::unique_ptr<Engine> engine_;
  ConcurrencyController* cc_ = nullptr;
  std::vector<Sess> sessions_;
  std::vector<HistOp> history_;
  std::vector<std::string> log_;
};

}  // namespace

StatusOr<ScenarioRunResult> RunPermutation(const ScenarioSpec& spec,
                                           const std::vector<StepRef>& order,
                                           const std::string& protocol,
                                           const RunnerOptions& options) {
  StepDriver driver(spec, protocol, options.verbose, /*wal=*/nullptr);
  if (!driver.init_status().ok()) return driver.init_status();
  for (const StepRef& ref : order) driver.Inject(ref);
  driver.Finish();
  return driver.TakeResult();
}

StatusOr<ScenarioRunResult> RunConcurrentViaSessions(
    const ScenarioSpec& spec, const std::string& protocol,
    int64_t max_blocked_us) {
  EngineOptions engine_options;
  engine_options.initial = spec.initial;
  engine_options.max_blocked_us = max_blocked_us;
  StatusOr<ControllerFactory> factory = MakeControllerFactory(protocol, spec);
  if (!factory.ok()) return factory.status();
  engine_options.controller_factory = *std::move(factory);
  Engine engine(std::move(engine_options));
  ScopedEngineShutdown teardown(&engine);

  const int n = static_cast<int>(spec.sessions.size());
  std::vector<Verdict> verdicts(n, Verdict::kAbort);
  std::vector<HistOp> history;
  std::mutex history_mu;
  // Begin issuance is ticketed in session order so runtime transaction ids
  // equal session indices (predecessor edges and the Nested-CEP group map
  // are expressed in session indices). Everything after Begin returns runs
  // under free OS scheduling.
  std::mutex turn_mu;
  std::condition_variable turn_cv;
  int turn = 0;

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int s = 0; s < n; ++s) {
    threads.emplace_back([&, s] {
      std::unique_ptr<Session> session = engine.OpenSession();
      {
        std::unique_lock<std::mutex> lock(turn_mu);
        turn_cv.wait(lock, [&] { return turn == s; });
      }
      Status begun = session->Begin(ProfileFor(spec, s, protocol));
      {
        std::lock_guard<std::mutex> lock(turn_mu);
        ++turn;
      }
      turn_cv.notify_all();
      if (!begun.ok()) return;  // verdict stays kAbort
      ValueVector view = spec.initial;
      for (const Step& step : spec.sessions[s].steps) {
        switch (step.kind) {
          case Step::Kind::kBegin:
            continue;  // Session::Begin already ran
          case Step::Kind::kRead: {
            StatusOr<Value> value = session->Read(step.entity);
            if (!value.ok()) return;
            view[step.entity] = *value;
            std::lock_guard<std::mutex> lock(history_mu);
            history.push_back(HistOp{s, OpKind::kRead, step.entity});
            continue;
          }
          case Step::Kind::kWrite: {
            Value value = step.write_expr.Eval(view);
            if (!session->Write(step.entity, value).ok()) return;
            view[step.entity] = value;
            std::lock_guard<std::mutex> lock(history_mu);
            history.push_back(HistOp{s, OpKind::kWrite, step.entity});
            continue;
          }
          case Step::Kind::kCommit:
            if (session->Commit().ok()) verdicts[s] = Verdict::kCommit;
            return;
          case Step::Kind::kAbort:
            session->Abort();
            verdicts[s] = Verdict::kAbort;
            return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ScenarioRunResult result;
  result.protocol = protocol;
  result.verdicts = verdicts;
  result.final_state = engine.store()->LatestCommittedSnapshot();
  result.constraint_ok = spec.constraint.Eval(result.final_state);
  for (const std::string& name : spec.entity_names) {
    result.committed.InternEntity(name);
  }
  ObjectSetList objects = spec.Objects();
  IncrementalCpcChecker checker(objects);
  for (const HistOp& op : history) {
    if (verdicts[op.session] != Verdict::kCommit) continue;
    result.committed.Append(op.session, op.kind, op.entity);
    checker.AddOp(op.session, op.kind, op.entity);
  }
  result.incremental_cpc = checker.IsCpc();
  result.classes =
      ClassifyAll(result.committed, objects, &result.classes_exact);
  return result;
}

bool CheckExpectation(const ScenarioSpec& spec, const Expectation& expect,
                      const ScenarioRunResult& result,
                      std::vector<std::string>* failures) {
  size_t before = failures->size();
  for (size_t s = 0; s < spec.sessions.size(); ++s) {
    if (expect.verdicts[s] != result.verdicts[s]) {
      failures->push_back(StrCat(
          spec.sessions[s].name, ": expected ",
          VerdictName(expect.verdicts[s]), ", got ",
          VerdictName(result.verdicts[s])));
    }
  }
  for (const ClassAssertion& assertion : expect.classes) {
    bool actual = false;
    bool exponential = false;
    switch (assertion.cls) {
      case ClassAssertion::Cls::kCsr:
        actual = result.classes.csr;
        break;
      case ClassAssertion::Cls::kSr:
        actual = result.classes.vsr;
        exponential = true;
        break;
      case ClassAssertion::Cls::kCpc:
        actual = result.classes.cpc;
        break;
      case ClassAssertion::Cls::kPc:
        actual = result.classes.pc;
        exponential = true;
        break;
    }
    if (exponential && !result.classes_exact) {
      failures->push_back(StrCat(
          "classes ", assertion.expected ? "+" : "-",
          ClassAssertionName(assertion.cls),
          ": classification was not exact (too many transactions)"));
      continue;
    }
    if (actual != assertion.expected) {
      failures->push_back(StrCat(
          "classes: expected ", assertion.expected ? "+" : "-",
          ClassAssertionName(assertion.cls), ", history classified as [",
          result.classes.ToString(), "]"));
    }
  }
  for (const auto& [entity, value] : expect.final_state) {
    if (result.final_state[entity] != value) {
      failures->push_back(StrCat(
          "final ", spec.entity_names[entity], ": expected ", value, ", got ",
          result.final_state[entity]));
    }
  }
  return failures->size() == before;
}

std::string FormatExpectation(const ScenarioSpec& spec,
                              const ScenarioRunResult& result) {
  std::string out = StrCat("expect \"", result.protocol, "\" {");
  for (size_t s = 0; s < spec.sessions.size(); ++s) {
    out += StrCat(" ", spec.sessions[s].name, " ",
                  VerdictName(result.verdicts[s]));
  }
  if (result.classes_exact) {
    out += StrCat("  classes ", result.classes.csr ? "+" : "-", "csr ",
                  result.classes.vsr ? "+" : "-", "sr ",
                  result.classes.pc ? "+" : "-", "pc ",
                  result.classes.cpc ? "+" : "-", "cpc");
  }
  out += "  final";
  for (size_t e = 0; e < spec.entity_names.size(); ++e) {
    out += StrCat(" ", spec.entity_names[e], " = ", result.final_state[e]);
  }
  out += " }";
  return out;
}

StatusOr<std::vector<std::string>> RunChaosSweep(
    const ScenarioSpec& spec, const std::vector<StepRef>& order,
    uint64_t seed, int crash_point) {
  std::vector<std::string> failures;
  if (crash_point > static_cast<int>(order.size())) {
    return Status::InvalidArgument(
        StrCat("crash point ", crash_point, " out of range; interleaving has ",
               order.size(), " steps (valid: 0..", order.size(), ")"));
  }
  // CEP is the WAL-wired protocol (commit cuts a durable record through the
  // store); chaos replays it at every crash point of the interleaving.
  for (size_t k = 0; k <= order.size(); ++k) {
    if (crash_point >= 0 && k != static_cast<size_t>(crash_point)) continue;
    // Deterministic firing decisions for any armed failpoints, re-seeded
    // per crash point so each replays standalone.
    FailpointRegistry::Global().Seed(seed + k);
    WriteAheadLog wal(spec.initial);
    StepDriver driver(spec, "CEP", /*verbose=*/false, &wal);
    if (!driver.init_status().ok()) return driver.init_status();
    for (size_t i = 0; i < k; ++i) driver.Inject(order[i]);
    std::vector<int> committed_before = driver.CommittedSessions();
    ValueVector snapshot_before =
        driver.engine()->store()->LatestCommittedSnapshot();
    RecoveryResult rec = driver.engine()->CrashRecover(RecoveryOptions{});
    auto fail = [&](const std::string& what) {
      failures.push_back(StrCat("crash point ", k, ": ", what));
    };
    if (!rec.status.ok()) {
      fail(StrCat("recovery failed: ", rec.status.message()));
      continue;
    }
    ValueVector recovered =
        driver.engine()->store()->LatestCommittedSnapshot();
    if (recovered != snapshot_before) {
      fail("recovered snapshot differs from the pre-crash committed state");
    }
    std::vector<int> recovered_committed;
    for (const RecoveredTx& tx : rec.committed) {
      recovered_committed.push_back(tx.tx);
    }
    std::sort(recovered_committed.begin(), recovered_committed.end());
    if (recovered_committed != committed_before) {
      fail("recovered committed-transaction set differs from pre-crash");
    }
  }
  return failures;
}

namespace {

Json VerdictsJson(const ScenarioSpec& spec, const ScenarioRunResult& result) {
  Json verdicts = Json::Object();
  for (size_t s = 0; s < spec.sessions.size(); ++s) {
    verdicts[spec.sessions[s].name] = VerdictName(result.verdicts[s]);
  }
  return verdicts;
}

Json FinalStateJson(const ScenarioSpec& spec,
                    const ScenarioRunResult& result) {
  Json state = Json::Object();
  for (size_t e = 0; e < spec.entity_names.size(); ++e) {
    state[spec.entity_names[e]] = result.final_state[e];
  }
  return state;
}

std::string PermutationSteps(const ScenarioSpec& spec,
                             const Permutation& perm) {
  std::vector<std::string> names;
  names.reserve(perm.order.size());
  for (const StepRef& ref : perm.order) names.push_back(spec.StepAt(ref).name);
  return Join(names, " ");
}

}  // namespace

StatusOr<SpecResult> RunSpec(const ScenarioSpec& spec,
                             const SuiteOptions& options) {
  SpecResult out;
  out.name = spec.name;
  std::vector<std::string> protocols =
      options.protocols.empty() ? ProtocolNames() : options.protocols;
  for (const std::string& protocol : protocols) {
    if (!IsProtocolName(protocol)) {
      return Status::InvalidArgument(
          StrCat("unknown protocol '", protocol, "'"));
    }
  }
  auto selected = [&protocols](const std::string& name) {
    return std::find(protocols.begin(), protocols.end(), name) !=
           protocols.end();
  };

  out.row["name"] = spec.name;
  out.row["class"] = spec.figure2_class.empty() ? "unannotated"
                                                : spec.figure2_class;
  out.row["sessions"] = static_cast<int64_t>(spec.sessions.size());
  out.row["steps"] = static_cast<int64_t>(spec.TotalSteps());

  // Expect blocks referencing unregistered protocols are authoring bugs.
  for (size_t pi = 0; pi < spec.permutations.size(); ++pi) {
    for (const Expectation& expect : spec.permutations[pi].expectations) {
      if (!IsProtocolName(expect.protocol)) {
        out.failures.push_back(StrCat(spec.name, " permutation #", pi,
                                      ": expect block names unknown protocol "
                                      "'", expect.protocol, "'"));
      }
    }
  }

  Json perm_rows = Json::Array();
  for (size_t pi = 0; pi < spec.permutations.size(); ++pi) {
    const Permutation& perm = spec.permutations[pi];
    Json perm_row = Json::Object();
    perm_row["steps"] = PermutationSteps(spec, perm);
    Json by_protocol = Json::Object();
    for (const std::string& protocol : protocols) {
      StatusOr<ScenarioRunResult> run =
          RunPermutation(spec, perm.order, protocol,
                         RunnerOptions{options.verbose});
      if (!run.ok()) return run.status();
      ++out.explicit_runs;
      auto context = [&](const std::string& line) {
        return StrCat(spec.name, " permutation #", pi, " [", protocol, "] ",
                      line);
      };
      if (run->incremental_cpc != run->classes.cpc) {
        out.failures.push_back(context(
            "incremental CPC checker disagrees with the batch recognizer"));
      }
      for (const Expectation& expect : perm.expectations) {
        if (expect.protocol != protocol) continue;
        std::vector<std::string> mismatches;
        CheckExpectation(spec, expect, *run, &mismatches);
        for (const std::string& line : mismatches) {
          out.failures.push_back(context(line));
        }
      }
      if (options.print_expect) {
        out.printed.push_back(StrCat("permutation #", pi, " (",
                                     PermutationSteps(spec, perm), "):\n  ",
                                     FormatExpectation(spec, *run)));
      }
      if (options.verbose) {
        for (const std::string& line : run->log) {
          out.printed.push_back(StrCat("  [", protocol, "] ", line));
        }
      }
      Json proto_row = Json::Object();
      proto_row["verdicts"] = VerdictsJson(spec, *run);
      proto_row["final"] = FinalStateJson(spec, *run);
      proto_row["classes"] = run->classes.ToString();
      proto_row["classes_exact"] = run->classes_exact;
      proto_row["cpc"] = run->classes.cpc;
      proto_row["sr"] = run->classes.vsr;
      proto_row["constraint_ok"] = run->constraint_ok;
      by_protocol[protocol] = std::move(proto_row);
    }
    perm_row["protocols"] = std::move(by_protocol);
    perm_rows.Push(std::move(perm_row));
  }
  out.row["permutations"] = std::move(perm_rows);

  if (spec.all_permutations.enabled) {
    bool truncated = false;
    std::vector<std::vector<StepRef>> orders = EnumerateInterleavings(
        spec, spec.all_permutations.max_runs, &truncated);
    out.sweep_truncated = truncated;
    Json sweep = Json::Object();
    sweep["interleavings"] = static_cast<int64_t>(orders.size());
    // No silent caps: a truncated sweep says so in the report.
    sweep["truncated"] = truncated;
    Json sweep_protocols = Json::Object();
    for (const std::string& protocol : protocols) {
      int64_t all_committed = 0;
      int64_t cpc_count = 0;
      int64_t sr_count = 0;
      int64_t blocked_runs = 0;
      int64_t constraint_violations = 0;
      for (size_t oi = 0; oi < orders.size(); ++oi) {
        StatusOr<ScenarioRunResult> run =
            RunPermutation(spec, orders[oi], protocol, RunnerOptions{});
        if (!run.ok()) return run.status();
        ++out.sweep_runs;
        if (run->incremental_cpc != run->classes.cpc) {
          out.failures.push_back(
              StrCat(spec.name, " sweep #", oi, " [", protocol,
                     "] incremental CPC checker disagrees with the batch "
                     "recognizer"));
        }
        bool committed_all = true;
        bool any_blocked = false;
        for (Verdict v : run->verdicts) {
          committed_all = committed_all && v == Verdict::kCommit;
          any_blocked = any_blocked || v == Verdict::kBlocked;
        }
        if (committed_all) ++all_committed;
        if (any_blocked) ++blocked_runs;
        if (run->classes.cpc) ++cpc_count;
        if (run->classes_exact && run->classes.vsr) ++sr_count;
        if (committed_all && !run->constraint_ok) ++constraint_violations;
      }
      Json aggregate = Json::Object();
      aggregate["runs"] = static_cast<int64_t>(orders.size());
      aggregate["all_committed"] = all_committed;
      aggregate["blocked_runs"] = blocked_runs;
      aggregate["cpc_histories"] = cpc_count;
      aggregate["sr_histories"] = sr_count;
      aggregate["constraint_violations"] = constraint_violations;
      sweep_protocols[protocol] = std::move(aggregate);
    }
    sweep["protocols"] = std::move(sweep_protocols);
    out.row["sweep"] = std::move(sweep);
  }

  if (options.chaos && selected("CEP")) {
    for (size_t pi = 0; pi < spec.permutations.size(); ++pi) {
      int steps = static_cast<int>(spec.permutations[pi].order.size());
      // A pinned --crash-point past this permutation's last step is not an
      // error at suite level; the permutation simply has no such point.
      if (options.chaos_crash_point > steps) continue;
      StatusOr<std::vector<std::string>> chaos =
          RunChaosSweep(spec, spec.permutations[pi].order, options.chaos_seed,
                        options.chaos_crash_point);
      if (!chaos.ok()) return chaos.status();
      out.chaos_crash_points +=
          options.chaos_crash_point >= 0 ? 1 : steps + 1;
      for (const std::string& line : *chaos) {
        out.failures.push_back(
            StrCat(spec.name, " permutation #", pi, " [chaos] ", line));
      }
    }
    out.row["chaos_crash_points"] = out.chaos_crash_points;
  }

  out.row["explicit_runs"] = out.explicit_runs;
  out.row["sweep_runs"] = out.sweep_runs;
  Json failure_rows = Json::Array();
  for (const std::string& line : out.failures) failure_rows.Push(line);
  out.row["failures"] = std::move(failure_rows);
  out.row["ok"] = out.ok();
  return out;
}

}  // namespace scenario
}  // namespace nonserial
